"""Protocol shoot-out: AODV vs OLSR vs DYMO on the Table I scenario.

Runs the paper's evaluation (Section IV-C) at reduced scale — the same
mobility trace under each routing protocol — and prints the Fig. 11-style
PDR table plus the goodput/delay/overhead summary behind the paper's
conclusion that "DYMO has a better performance than AODV and OLSR".

Run:  python examples/routing_comparison.py          (about a minute)
      python examples/routing_comparison.py --full   (the full Table I run)
"""

import sys

from repro.core import Scenario, compare_protocols


def main(full: bool = False) -> None:
    if full:
        scenario = Scenario()  # the paper's exact Table I
    else:
        scenario = Scenario(
            num_nodes=20,
            road_length_m=2000.0,
            sim_time_s=60.0,
            senders=(1, 2, 3, 4, 5),
            traffic_stop_s=55.0,
            seed=4,
        )
    print(f"Scenario: {scenario.num_nodes} nodes, "
          f"{scenario.road_length_m:.0f} m circuit, "
          f"{scenario.sim_time_s:.0f} s, senders {scenario.senders}")
    print("Running AODV, OLSR, DYMO over the same mobility trace...\n")

    comparison = compare_protocols(scenario, ("AODV", "OLSR", "DYMO"))

    print("Packet delivery ratio per sender (Fig. 11):")
    print(comparison.format_pdr_table())

    print("\nSummary:")
    header = f"{'metric':<26}" + "".join(
        f"{name:>10}" for name in comparison.results
    )
    print(header)
    print("-" * len(header))
    rows = [
        ("mean PDR", {k: f"{v:.3f}" for k, v in comparison.mean_pdr().items()}),
        (
            "mean delay (ms)",
            {k: f"{v * 1000:.1f}" for k, v in comparison.mean_delay().items()},
        ),
        (
            "control packets",
            {k: str(v) for k, v in comparison.overhead_table().items()},
        ),
        (
            "ctrl pkts / delivered",
            {
                k: f"{r.normalized_routing_load():.2f}"
                for k, r in comparison.results.items()
            },
        ),
    ]
    for label, values in rows:
        print(
            f"{label:<26}"
            + "".join(f"{values[name]:>10}" for name in comparison.results)
        )

    print(
        "\nPaper's reading: reactive protocols (AODV, DYMO) out-deliver "
        "OLSR;\nAODV tops raw delivery, DYMO combines near-AODV delivery "
        "with low\nroute-search delay — hence the paper's overall verdict "
        "for DYMO."
    )


if __name__ == "__main__":
    main(full="--full" in sys.argv[1:])
