"""Intersection study: the crosspoint as a bottleneck.

The paper's Section III names the intersection of lanes as the second
mobility parameter ("the crosspoint is the bottleneck for the lane") but
leaves it out of CAVENET; this library implements it as an extension.
Two cyclic roads cross at one shared cell; road A has priority and road B
yields.  This example measures how the shared cell throttles both roads
compared with isolated rings, across densities.

Run:  python examples/intersection_bottleneck.py
"""

import numpy as np

from repro.analysis import render_sparkline
from repro.ca import CrossingRoads, NagelSchreckenberg

NUM_CELLS = 100
WARMUP = 200
MEASURE = 400


def isolated_flow(count: int) -> float:
    model = NagelSchreckenberg(NUM_CELLS, count, p=0.0)
    model.run(WARMUP)
    flows = []
    for _ in range(MEASURE):
        model.step()
        flows.append(model.flow())
    return float(np.mean(flows))


def crossing_flows(count: int) -> tuple:
    roads = CrossingRoads(
        NUM_CELLS, count, count, p=0.0, rng=np.random.default_rng(1)
    )
    roads.run(WARMUP)
    priority, yielding = [], []
    for _ in range(MEASURE):
        roads.step()
        priority.append(roads.flow(0))
        yielding.append(roads.flow(1))
    return float(np.mean(priority)), float(np.mean(yielding)), roads


def main() -> None:
    densities = [0.02, 0.05, 0.10, 0.15, 0.20, 0.30]
    print(f"Two {NUM_CELLS}-cell rings crossing at one shared cell "
          f"(road A priority, road B yields)\n")
    print(f"{'rho':>6} {'isolated':>10} {'priority A':>11} "
          f"{'yielding B':>11} {'B/isolated':>11}")
    ratios = []
    for rho in densities:
        count = int(rho * NUM_CELLS)
        base = isolated_flow(count)
        priority, yielding, roads = crossing_flows(count)
        ratio = yielding / base if base > 0 else 1.0
        ratios.append(ratio)
        print(f"{rho:>6.2f} {base:>10.3f} {priority:>11.3f} "
              f"{yielding:>11.3f} {ratio:>11.2f}")
    print(f"\nB/isolated across densities: {render_sparkline(ratios, 24)}")
    print("\nReading: at low density the crossing is rarely contested; as")
    print("density grows, the single shared cell caps both roads' flow —")
    print("the bottleneck the paper describes, now measurable.")


if __name__ == "__main__":
    main()
