"""Multi-lane connectivity study (paper Fig. 1-a).

A sparse lane of vehicles develops gaps wider than the 250 m radio range;
vehicles on a parallel lane fill those gaps as relays.  This example
simulates a two-lane ring road with lane changing and measures how the
second lane transforms network connectivity.

Run:  python examples/multilane_relays.py
"""

import numpy as np

from repro.analysis import (
    connectivity_graph,
    connectivity_series,
    largest_component_fraction,
    pair_connectivity_series,
)
from repro.ca import MultiLaneRoad, NagelSchreckenberg
from repro.geometry import RoadLayout
from repro.mobility import CaMobility

TX_RANGE_M = 250.0
ROAD_M = 3000.0
DURATION_S = 300.0


def study(label, mobility, source, target):
    trace = mobility.sample(DURATION_S)
    lcf = connectivity_series(trace, TX_RANGE_M)
    pair = pair_connectivity_series(trace, TX_RANGE_M, source, target)
    final = connectivity_graph(trace.positions[-1], TX_RANGE_M)
    print(f"{label}:")
    print(f"  vehicles                      : {trace.num_nodes}")
    print(f"  largest component (mean/min)  : {lcf.mean():.2f} / {lcf.min():.2f}")
    print(f"  node {source} <-> node {target} reachable : "
          f"{pair.mean() * 100:.0f}% of samples")
    print(f"  radio links at the end        : {final.number_of_edges()}")
    print()


def main() -> None:
    print(f"Two experiments on a {ROAD_M:.0f} m ring, "
          f"radio range {TX_RANGE_M:.0f} m, {DURATION_S:.0f} s\n")

    # Single sparse lane: 12 vehicles, stochastic dawdling opens gaps.
    single = NagelSchreckenberg.from_density(
        400, 12 / 400, random_start=True,
        rng=np.random.default_rng(11), p=0.5,
    )
    study(
        "Single sparse lane (12 vehicles)",
        CaMobility(single, RoadLayout.single_circuit(ROAD_M)),
        source=0,
        target=6,
    )

    # The same sparse population plus a relay lane (Fig. 1-a).
    road = MultiLaneRoad(
        400, 2, [12, 12], p=0.5, rng=np.random.default_rng(11)
    )
    study(
        "Two lanes (12 + 12 vehicles, lane changing active)",
        CaMobility(road, RoadLayout.multi_lane_circuit(ROAD_M, 2)),
        source=0,
        target=6,
    )

    print("Reading: the relay lane bridges the gaps the sparse lane's own")
    print("jams open — the connectivity effect of paper Fig. 1-a.")


if __name__ == "__main__":
    main()
