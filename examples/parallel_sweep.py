"""Running campaigns in parallel: sweeps and ensembles across processes.

Every campaign in this tool — density sweeps, protocol comparisons,
Monte-Carlo ensembles — is a fan-out of independent seeded trials, so
``max_workers=N`` hands them to N worker processes.  Because every trial's
seed is derived *before* submission, the parallel numbers are bit-identical
to the serial ones; only the wall-clock changes.  A
:class:`~repro.metrics.collector.CampaignTelemetry` watches the campaign:
trials completed, failures, retries and per-trial wall-clock.

Run it:

    PYTHONPATH=src python examples/parallel_sweep.py
"""

import os
import time

import numpy as np

from repro.analysis.fundamental import fundamental_diagram
from repro.core import Scenario, run_sweep
from repro.metrics.collector import CampaignTelemetry
from repro.util.rng import RngStreams

WORKERS = min(4, os.cpu_count() or 1)


def small_scenario() -> Scenario:
    """A quick scenario so the example finishes in well under a minute."""
    return Scenario(
        num_nodes=10,
        road_length_m=1000.0,
        sim_time_s=15.0,
        senders=(1, 2),
        traffic_start_s=5.0,
        traffic_stop_s=14.0,
        initial_placement="uniform",
        dawdle_p=0.5,
        seed=3,
    )


def main() -> None:
    # -- 1. a parameter sweep, fanned out over worker processes -------------
    telemetry = CampaignTelemetry(
        on_record=lambda r: print(
            f"  trial {r.key}: {r.status} in {r.wall_clock_s:.2f}s"
            + (f" (attempt {r.attempt})" if r.attempt > 1 else "")
        )
    )
    print(f"Sweeping CBR rate with {WORKERS} workers "
          f"(2 trials per point, 60s timeout per trial):")
    started = time.perf_counter()
    sweep = run_sweep(
        small_scenario(),
        "cbr_rate_pps",
        values=[2.0, 5.0, 10.0],
        trials=2,
        max_workers=WORKERS,
        trial_timeout_s=60.0,
        telemetry=telemetry,
    )
    elapsed = time.perf_counter() - started
    print(f"campaign: {telemetry.format_summary()} "
          f"({elapsed:.1f}s elapsed)")
    for point in sweep.points:
        print(f"  rate {point.value:>5.1f} pps: "
              f"PDR {point.pdr_mean:.3f} +/- {point.pdr_std:.3f}, "
              f"{point.control_packets_mean:.0f} control packets")

    # -- 2. the same seeds give the same physics, serial or parallel --------
    serial = run_sweep(
        small_scenario(), "cbr_rate_pps", values=[2.0, 5.0, 10.0], trials=2
    )
    identical = bool(np.array_equal(serial.pdr_curve(), sweep.pdr_curve()))
    print(f"\nserial PDR curve == {WORKERS}-worker PDR curve: {identical}")

    # -- 3. a Fig. 4-style ensemble, in parallel ----------------------------
    print(f"\nFundamental diagram (8 trials/point, {WORKERS} workers):")
    diagram = fundamental_diagram(
        densities=[0.05, 1 / 6, 0.30, 0.50],
        p=0.5,
        num_cells=200,
        trials=8,
        steps=200,
        rng=RngStreams(2010),
        max_workers=WORKERS,
    )
    for rho, flow, std in zip(
        diagram.densities, diagram.flows, diagram.flow_std
    ):
        print(f"  rho={rho:.3f}  J={flow:.4f} +/- {std:.4f}")


if __name__ == "__main__":
    main()
