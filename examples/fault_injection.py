"""PDR under churn: AODV vs OLSR while vehicles crash and recover.

The paper's evaluation assumes every vehicle stays up for the whole
run.  This example injects seeded node churn — each relay alternates
between up and down with exponential mean-time-between-failures /
mean-time-to-repair draws — on the 30-vehicle circuit and compares how
a reactive protocol (AODV) and a proactive one (OLSR) hold up: overall
PDR with and without churn, per-window availability, and the route
re-convergence time after each recovery.

The churn schedule is drawn from the scenario seed, so every number
printed here is exactly reproducible.

Run:  python examples/fault_injection.py
"""

import dataclasses
import math

from repro.core import Scenario
from repro.core.simulation import CavenetSimulation

CHURN = [
    {
        "kind": "node-crash",
        # Churn the relays; the receiver (0) and senders stay up so the
        # comparison isolates route repair, not endpoint loss.
        "nodes": [n for n in range(30) if n not in (0, 14, 15, 16)],
        "mtbf_s": 15.0,
        "mttr_s": 5.0,
    }
]

BASE = Scenario(
    num_nodes=30,
    road_length_m=2500.0,
    sim_time_s=40.0,
    # Senders start on the far side of the circuit from the receiver,
    # so every delivery needs the (churning) relays in between.
    senders=(14, 15, 16),
    receiver=0,
    dawdle_p=0.0,
    traffic_start_s=2.0,
    traffic_stop_s=38.0,
    seed=11,
)


def _run(protocol: str, faults) -> "object":
    scenario = dataclasses.replace(BASE, protocol=protocol, faults=faults)
    return CavenetSimulation(scenario).run()


def main() -> None:
    print(f"Scenario: {BASE.num_nodes} vehicles, "
          f"{BASE.road_length_m:.0f} m circuit, {BASE.sim_time_s:.0f} s, "
          f"senders {BASE.senders} -> receiver {BASE.receiver}")
    print(f"Churn: relays fail with MTBF {CHURN[0]['mtbf_s']:.0f} s, "
          f"repair MTTR {CHURN[0]['mttr_s']:.0f} s (seeded, reproducible)\n")

    header = f"{'metric':<28}{'AODV':>12}{'OLSR':>12}"
    print(header)
    print("-" * len(header))
    rows = {}
    for protocol in ("AODV", "OLSR"):
        clean = _run(protocol, [])
        churned = _run(protocol, CHURN)
        crashes = sum(
            1 for e in churned.fault_events if e.kind == "node_down"
        )
        gaps = [g for g in churned.recovery_times_s().values()
                if not math.isnan(g)]
        rows[protocol] = {
            "PDR (no faults)": f"{clean.pdr():.3f}",
            "PDR (under churn)": f"{churned.pdr():.3f}",
            "availability (PDR>=0.5)":
                f"{churned.availability(threshold=0.5):.3f}",
            "node crashes injected": str(crashes),
            "mean re-convergence (s)":
                f"{sum(gaps) / len(gaps):.2f}" if gaps else "n/a",
        }
    for metric in next(iter(rows.values())):
        print(f"{metric:<28}"
              + "".join(f"{rows[p][metric]:>12}" for p in ("AODV", "OLSR")))

    print(
        "\nReading: churn costs both protocols delivery, but the reactive\n"
        "protocol re-discovers routes on demand after each recovery while\n"
        "OLSR must wait for its periodic HELLO/TC exchange to re-converge —\n"
        "the availability and re-convergence rows quantify that gap."
    )


if __name__ == "__main__":
    main()
