"""Observability tour: packet traces, routing audit, energy accounting.

A protocol evaluation is only as good as what you can see.  This example
runs one scenario and then inspects it with the library's three
observability tools:

1. the ns-2-style packet event trace (``repro.metrics.tracefile``);
2. the routing loop audit (``repro.routing.audit``) — the property the
   protocols' sequence numbers exist to guarantee, checked live;
3. per-node radio energy accounting (``repro.phy.energy``).

Run:  python examples/network_observability.py
"""

import collections

from repro.analysis import render_bars
from repro.core import CavenetSimulation, Scenario
from repro.metrics import parse_packet_trace, render_packet_trace


def main() -> None:
    scenario = Scenario(
        num_nodes=16,
        road_length_m=1600.0,
        sim_time_s=40.0,
        protocol="DYMO",
        senders=(1, 5, 9),
        traffic_start_s=8.0,
        traffic_stop_s=36.0,
        seed=6,
    )
    result = CavenetSimulation(scenario).run()
    print(f"Ran {scenario.protocol} over {scenario.num_nodes} vehicles; "
          f"PDR {result.pdr():.3f}\n")

    # 1. The packet event trace.
    text = render_packet_trace(result.collector)
    events = parse_packet_trace(text)
    print(f"1. Packet trace: {len(events)} events "
          f"({len(text):,} characters).  First data packet's life:")
    first_uid = next(e.uid for e in events if e.op == "s")
    for event in events:
        if event.uid == first_uid:
            print(f"   {event.op} t={event.time:8.4f}s node {event.node:>2} "
                  f"{event.layer} {event.kind}")
    by_kind = collections.Counter(e.kind for e in events if e.op == "f")
    print(f"   transmissions by kind: {dict(by_kind)}\n")

    # 2. Routing audit on live protocol state.  The SimulationResult does
    # not keep node objects, so assemble a small static network from the
    # lower-level API and inspect its agents directly.
    import numpy as np

    from repro.des import Simulator
    from repro.mac import Mac80211Params
    from repro.metrics import MetricsCollector
    from repro.net.node import Node
    from repro.phy import Channel, PhyParams, TwoRayGround
    from repro.routing import audit_all, make_protocol
    from repro.util import RngStreams

    print("2. Routing audit (loop freedom across all destinations):")
    sim = Simulator()
    coords = np.array([(i * 200.0, 0.0) for i in range(6)])
    channel = Channel(sim, TwoRayGround(), lambda: coords)
    phy = PhyParams.for_ranges(TwoRayGround(), 250.0, 550.0)
    streams = RngStreams(7)
    metrics = MetricsCollector(sim)
    nodes = []
    for node_id in range(len(coords)):
        node = Node(sim, node_id, channel, phy, Mac80211Params(), metrics,
                    rng=streams.stream(f"mac-{node_id}"))
        node.set_routing(
            make_protocol("DYMO", node, streams.stream(f"r-{node_id}"))
        )
        nodes.append(node)
    for node in nodes:
        node.routing.start()
    nodes[0].originate_data(5, 256, flow_id=1, seq=1)
    sim.run(until=10.0)
    audits = audit_all({n.node_id: n.routing for n in nodes})
    loops = sum(len(audit.loops) for audit in audits.values())
    reaching = sum(len(audit.reaching) for audit in audits.values())
    print(f"   destinations audited: {len(audits)}; loops found: {loops}; "
          f"chains reaching their target: {reaching}\n")

    # 3. Energy.
    print("3. Radio energy over the run (top consumers):")
    consumption = {
        f"node {node_id}": meter.consumed_j()
        for node_id, meter in sorted(
            result.energy.items(),
            key=lambda item: -item[1].consumed_j(),
        )[:5]
    }
    print(render_bars(consumption, width=30, fmt="{:.1f} J"))
    print(f"   total: {result.total_energy_j():.1f} J; "
          f"per delivered packet: "
          f"{result.total_energy_j() / max(result.collector.num_delivered, 1):.3f} J")


if __name__ == "__main__":
    main()
