"""Quickstart: run one CAVENET scenario end to end.

Builds a small vehicular network (15 vehicles on a 1.5 km circuit), runs
AODV over it for 30 simulated seconds, and prints delivery statistics.

Run:  python examples/quickstart.py
"""

from repro.core import CavenetSimulation, Scenario


def main() -> None:
    scenario = Scenario(
        num_nodes=15,
        road_length_m=1500.0,
        sim_time_s=30.0,
        protocol="AODV",
        senders=(1, 2, 3),
        traffic_start_s=5.0,
        traffic_stop_s=28.0,
        seed=7,
    )
    print("Scenario (Table-I style):")
    for key, value in scenario.table1().items():
        print(f"  {key:<28} {value}")

    result = CavenetSimulation(scenario).run()

    print("\nResults:")
    print(f"  data packets originated : {result.collector.num_originated}")
    print(f"  data packets delivered  : {result.collector.num_delivered}")
    print(f"  overall PDR             : {result.pdr():.3f}")
    for sender in scenario.senders:
        goodput = result.mean_goodput_bps(sender)
        print(
            f"  sender {sender}: PDR {result.pdr(sender):.3f}, "
            f"mean goodput {goodput:,.0f} bps"
        )
    delay = result.delay_stats()
    print(f"  mean end-to-end delay   : {delay.mean_s * 1000:.2f} ms")
    overhead = result.control_overhead()
    print(
        f"  routing control packets : {overhead.packets} "
        f"({overhead.bytes:,} bytes)"
    )
    print(f"  frames on the air       : {result.frames_on_air}")


if __name__ == "__main__":
    main()
