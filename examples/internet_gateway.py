"""MANET-Internet gateway scenario with OLSR HNA.

The paper's protocol sections motivate exactly this (Section II: "a car
taking part in a MANET scenario could establish connections using the
public hotspots"; Section III-B: OLSR's HNA messages and DYMO's
"MANET-Internet gateway scenarios").  Here a column of vehicles runs
OLSR; one vehicle doubles as a road-side-unit-attached gateway that
advertises an external "Internet" address via HNA, and every other
vehicle sends traffic to that address without knowing where the gateway
is.

Run:  python examples/internet_gateway.py
"""

import numpy as np

from repro.des import Simulator
from repro.mac import Mac80211Params
from repro.metrics import MetricsCollector, packet_delivery_ratio
from repro.net.node import Node
from repro.phy import Channel, PhyParams, TwoRayGround
from repro.routing import make_protocol
from repro.routing.olsr import OlsrConfig
from repro.traffic import CbrSource
from repro.util import RngStreams

INTERNET = 10_000  # an address far outside the vehicle id space
GATEWAY = 4
NUM_NODES = 8


def main() -> None:
    sim = Simulator()
    coords = np.array([(i * 200.0, 0.0) for i in range(NUM_NODES)])
    channel = Channel(sim, TwoRayGround(), lambda: coords)
    phy = PhyParams.for_ranges(TwoRayGround(), 250.0, 550.0)
    streams = RngStreams(13)
    metrics = MetricsCollector(sim)

    nodes = []
    for node_id in range(NUM_NODES):
        node = Node(sim, node_id, channel, phy, Mac80211Params(), metrics,
                    rng=streams.stream(f"mac-{node_id}"))
        config = (
            OlsrConfig(gateway_for=(INTERNET,))
            if node_id == GATEWAY
            else OlsrConfig()
        )
        node.set_routing(
            make_protocol("OLSR", node, streams.stream(f"r-{node_id}"),
                          config=config)
        )
        nodes.append(node)
    for node in nodes:
        node.routing.start()

    print(f"{NUM_NODES} vehicles in a chain; node {GATEWAY} gateways for "
          f"'Internet' address {INTERNET}.\n")

    # Everyone (except the gateway) uploads to the Internet, 2 pkt/s.
    sources = []
    for node_id in range(NUM_NODES):
        if node_id == GATEWAY:
            continue
        source = CbrSource(
            nodes[node_id], INTERNET, rate_pps=2.0, size_bytes=256,
            start_s=12.0, stop_s=55.0, flow_id=node_id + 1,
        )
        source.start()
        sources.append(source)
    sim.run(until=60.0)

    print(f"{'vehicle':>8} {'hops to gateway':>16} {'PDR':>7}")
    for node_id in range(NUM_NODES):
        if node_id == GATEWAY:
            continue
        pdr = packet_delivery_ratio(metrics, node_id + 1)
        hops = abs(node_id - GATEWAY)
        print(f"{node_id:>8} {hops:>16} {pdr:>7.3f}")

    known = nodes[0].routing.hna_gateways(INTERNET)
    print(f"\nNode 0's HNA view of {INTERNET}: gateways {sorted(known)}")
    overall = packet_delivery_ratio(metrics)
    print(f"Overall Internet-bound PDR: {overall:.3f}")
    print("\nReading: HNA floods the gateway association through the MPR")
    print("backbone; traffic to an address no vehicle owns still routes —")
    print("the MANET-Internet scenario the paper's protocol text describes.")


if __name__ == "__main__":
    main()
