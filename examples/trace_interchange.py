"""Trace interchange: the two-block CAVENET architecture in action.

The paper's Fig. 2 separates the Behavioural Analyzer (mobility) from the
Communication Protocol Simulator via trace files.  This example walks the
full loop:

  1. generate CA mobility,
  2. export it as an ns-2 movement file (paper Fig. 3-b format),
  3. parse the file back into a trace,
  4. run the network simulator on the *parsed* trace,

and shows CSV/JSON round-trips for other consumers.

Run:  python examples/trace_interchange.py
"""

import os
import tempfile

import numpy as np

from repro.ca import NagelSchreckenberg
from repro.core import CavenetSimulation, Scenario
from repro.geometry import RoadLayout
from repro.mobility import CaMobility
from repro.tracegen import (
    Ns2TraceWriter,
    trace_from_csv,
    trace_from_ns2,
    trace_to_csv,
    trace_to_json,
)


def main() -> None:
    # 1. Behavioural Analyzer: 12 vehicles on a 1.2 km circuit, 25 s.
    model = NagelSchreckenberg(
        160, 12, p=0.3, rng=np.random.default_rng(5)
    )
    mobility = CaMobility(model, RoadLayout.single_circuit(1200.0))
    trace = mobility.sample(25.0)
    print(f"Generated trace: {trace.num_nodes} nodes, "
          f"{trace.num_samples} samples, {trace.duration:.0f} s")

    # 2. Export to the ns-2 movement format.
    writer = Ns2TraceWriter(delta=0.5)  # the paper's anti-ns-2-bug offset
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "movement.tcl")
        writer.write(trace, path)
        size = os.path.getsize(path)
        with open(path) as handle:
            lines = handle.read().splitlines()
        print(f"\nns-2 movement file: {len(lines)} lines, {size:,} bytes")
        print("First lines (paper Fig. 3-b format):")
        for line in lines[:6]:
            print(f"  {line}")

        # 3. Parse the text back into a trace.
        with open(path) as handle:
            replayed = trace_from_ns2(handle.read(), duration_s=25.0)
    error = np.abs(replayed.positions - (trace.positions + 0.5)).max()
    print(f"\nRound-trip worst-case position error: {error:.2e} m")

    # 4. Run the CPS on the replayed trace.
    scenario = Scenario(
        num_nodes=12,
        road_length_m=1200.0,
        sim_time_s=25.0,
        senders=(1, 2),
        traffic_start_s=5.0,
        traffic_stop_s=22.0,
        protocol="DYMO",
        seed=5,
    )
    result = CavenetSimulation(scenario).run(trace=replayed)
    print(f"DYMO over the parsed trace: PDR {result.pdr():.3f}, "
          f"{result.collector.num_delivered} packets delivered")

    # Other formats.
    csv_text = trace_to_csv(trace)
    restored = trace_from_csv(csv_text)
    print(f"\nCSV round-trip: {len(csv_text.splitlines())} rows, "
          f"exact={np.array_equal(restored.positions, trace.positions)}")
    json_text = trace_to_json(trace)
    print(f"JSON export: {len(json_text):,} characters")


if __name__ == "__main__":
    main()
