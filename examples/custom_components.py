"""Custom components: extend the simulator without touching its source.

Registers two third-party components through the public registry seam —
a "tunnel" propagation model (free-space attenuation plus a fixed extra
wall loss, a crude road-tunnel approximation) and a "burst" traffic
source that fires short packet clusters at fixed intervals — then runs a
small scenario that selects both purely *by name*.  Nothing in
``repro.*`` knows these classes exist; the scenario field is the only
coupling, and the same names work from scenario JSON files and the CLI's
``--set`` flags.

Run:  python examples/custom_components.py
"""

import numpy as np

from repro.core import CavenetSimulation, Scenario
from repro.core.registry import register
from repro.phy.propagation import FreeSpace
from repro.traffic.base import TrafficSource


class TunnelPropagation(FreeSpace):
    """Free-space path loss plus a constant wall-penetration loss."""

    def __init__(self, extra_loss_db: float) -> None:
        super().__init__()
        self._gain = 10.0 ** (-extra_loss_db / 10.0)

    def rx_power(self, tx_power_w, distance_m):
        return super().rx_power(tx_power_w, distance_m) * self._gain

    def rx_power_vector(self, tx_power_w, distances_m):
        return super().rx_power_vector(tx_power_w, distances_m) * self._gain


# overwrite=True keeps re-registration idempotent when the module is
# imported twice (e.g. the example test harness re-executes it).
@register("propagation", "tunnel", overwrite=True)
def make_tunnel(scenario, streams) -> TunnelPropagation:
    """3 dB of extra wall loss on top of free space."""
    return TunnelPropagation(extra_loss_db=3.0)


class BurstSource(TrafficSource):
    """Emits a fixed-size burst of packets every ``period_s`` seconds."""

    def __init__(self, node, dst, *, size_bytes, start_s, stop_s, flow_id,
                 burst=4, period_s=2.0):
        self._node = node
        self._dst = dst
        self._size = size_bytes
        self._stop = stop_s
        self._start = start_s
        self.flow_id = flow_id
        self._burst = burst
        self._period = period_s
        self._seq = 0
        self._event = None
        self.packets_sent = 0

    def start(self) -> None:
        self._event = self._node.sim.schedule_at(self._start, self._fire)

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        if self._node.sim.now >= self._stop:
            self._event = None
            return
        for _ in range(self._burst):
            self._seq += 1
            self.packets_sent += 1
            self._node.originate_data(
                self._dst, self._size, flow_id=self.flow_id, seq=self._seq
            )
        self._event = self._node.sim.schedule(self._period, self._fire)


@register("traffic", "burst", overwrite=True)
def make_burst(node, dst, *, scenario, flow_id, rng, **options) -> BurstSource:
    """Clustered arrivals shaped by the scenario's traffic window."""
    kwargs = dict(
        size_bytes=scenario.cbr_size_bytes,
        start_s=scenario.traffic_start_s,
        stop_s=scenario.traffic_stop_s,
        flow_id=flow_id,
    )
    kwargs.update(options)
    return BurstSource(node, dst, **kwargs)


def main() -> None:
    scenario = Scenario(
        num_nodes=12,
        road_length_m=1200.0,
        sim_time_s=20.0,
        senders=(1, 2),
        traffic_start_s=5.0,
        traffic_stop_s=18.0,
        initial_placement="uniform",
        dawdle_p=0.0,
        propagation="tunnel",          # <- third-party, selected by name
        traffic="burst",               # <- third-party, selected by name
        traffic_options={"burst": 3, "period_s": 1.0},
        seed=3,
    )
    print("Custom components in play:")
    print(f"  propagation : {scenario.propagation} "
          f"(free space + 3 dB wall loss)")
    print(f"  traffic     : {scenario.traffic} "
          f"(bursts of {scenario.traffic_options['burst']} packets "
          f"every {scenario.traffic_options['period_s']} s)")

    result = CavenetSimulation(scenario).run()

    originated = result.collector.num_originated
    # 2 senders x 13 firings x 3 packets: the burst schedule, exactly.
    expected = 2 * 13 * 3
    print("\nResults:")
    print(f"  packets originated : {originated} (expected {expected})")
    print(f"  packets delivered  : {result.collector.num_delivered}")
    print(f"  overall PDR        : {result.pdr():.3f}")
    print(f"  mean delay         : "
          f"{result.delay_stats().mean_s * 1000:.2f} ms")
    print(f"  frames on the air  : {result.frames_on_air}")
    assert originated == expected, "burst schedule drifted"
    assert isinstance(
        np.asarray(result.trace.positions), np.ndarray
    )  # the usual pipeline ran underneath


if __name__ == "__main__":
    main()
