"""Radio technologies and channel effects: DSSS vs 802.11p past an obstacle.

The paper's Table I fixes one radio: 2 Mbps 802.11 DSSS at 914 MHz.
The PHY realism layer makes that a pluggable *tech profile* — this
example reruns the reference circuit under the default profile and
under ``80211p`` (5.9 GHz DSRC, whose MAC picks a 3-27 Mbps MCS per
link from the cached SNR), then drops an obstacle on one sector of the
circuit (a ``Scenario.effects`` entry) and shows the shadowed sector
eating into delivery.

The circuit maps onto a ring of radius ``road_length / (2*pi)`` centred
on the origin, so a polygon straddling the ring's x > 0 sector shadows
exactly the links that cross (or sit inside) that sector — everything
else is bit-identical to the unobstructed run.

Run:  python examples/tech_profiles.py
"""

import dataclasses
import math

from repro.core import Scenario
from repro.core.simulation import CavenetSimulation

ROAD_M = 2500.0
RADIUS_M = ROAD_M / (2.0 * math.pi)  # ~398 m

#: A building straddling the circuit's easternmost sector: the ring
#: passes straight through this rectangle, so links crossing the sector
#: (and nodes driving through it) lose an extra 20 dB.
OBSTACLE = [
    {
        "kind": "obstacle",
        "polygons": [
            [[RADIUS_M - 100.0, -120.0], [RADIUS_M + 60.0, -120.0],
             [RADIUS_M + 60.0, 120.0], [RADIUS_M - 100.0, 120.0]],
        ],
        "extra_loss_db": 20.0,
    }
]

BASE = Scenario(
    num_nodes=30,
    road_length_m=ROAD_M,
    sim_time_s=30.0,
    # Senders sit across the ring from the receiver, so deliveries are
    # multi-hop along the arcs — one of which passes the obstacle.
    senders=(14, 15, 16),
    receiver=0,
    dawdle_p=0.0,
    traffic_start_s=2.0,
    traffic_stop_s=28.0,
    seed=11,
)


def _run(tech: str, effects) -> "object":
    scenario = dataclasses.replace(BASE, tech=tech, effects=effects)
    return CavenetSimulation(scenario).run()


def main() -> None:
    print(f"Scenario: {BASE.num_nodes} vehicles, {ROAD_M:.0f} m circuit "
          f"(ring radius {RADIUS_M:.0f} m), {BASE.sim_time_s:.0f} s, "
          f"senders {BASE.senders} -> receiver {BASE.receiver}")
    print("Obstacle: 160 x 240 m block on the eastern sector, "
          f"{OBSTACLE[0]['extra_loss_db']:.0f} dB extra loss on "
          "links through it\n")

    cases = [
        ("DSSS 2 Mbps", "80211-dsss", []),
        ("802.11p DSRC", "80211p", []),
        ("DSSS + obstacle", "80211-dsss", OBSTACLE),
        ("802.11p + obstacle", "80211p", OBSTACLE),
    ]
    header = (f"{'case':<20}{'PDR':>8}{'goodput bps':>14}"
              f"{'delay ms':>10}{'energy J':>10}")
    print(header)
    print("-" * len(header))
    for label, tech, effects in cases:
        result = _run(tech, effects)
        goodput = sum(
            result.mean_goodput_bps(s) for s in BASE.senders
        ) / len(BASE.senders)
        delay_ms = result.delay_stats().mean_s * 1000.0
        energy = result.collector.energy
        print(f"{label:<20}{result.pdr():>8.3f}{goodput:>14,.0f}"
              f"{delay_ms:>10.2f}{energy.total_j:>10.2f}")

    print(
        "\nReading: 802.11p's SNR-driven MCS ladder trades the fixed\n"
        "2 Mbps DSSS rate for 3-27 Mbps per link, and the obstacle only\n"
        "hurts flows whose multi-hop path crosses the shadowed sector —\n"
        "the unobstructed arc (and every run's mobility) is untouched."
    )


if __name__ == "__main__":
    main()
