"""Behavioural-Analyzer study: the traffic physics of the NaS model.

Reproduces, at survey scale, the mobility-side analyses of the paper's
Section IV: the fundamental diagram, the two traffic regimes in
space-time, transient times, and the SRD/LRD spectral classification.
Everything prints as text (this library has no plotting dependency); the
space-time plot is rendered as ASCII art.

Run:  python examples/highway_traffic_study.py
"""

import numpy as np

from repro.analysis import (
    fundamental_diagram,
    jam_fraction_series,
    render_spacetime,
    render_sparkline,
    spectral_slope_at_origin,
    transient_time,
    wave_speed_estimate,
)
from repro.ca import NagelSchreckenberg, evolve
from repro.util.rng import RngStreams


def main() -> None:
    print("=" * 70)
    print("1. Fundamental diagram (L=400, 10 trials x 300 steps)")
    print("=" * 70)
    densities = [0.05, 0.1, 1 / 6, 0.25, 0.35, 0.5]
    for p in (0.0, 0.5):
        fd = fundamental_diagram(
            densities, p=p, num_cells=400, trials=10, steps=300,
            rng=RngStreams(1),
        )
        series = "  ".join(
            f"rho={rho:.2f}:J={flow:.2f}" for rho, flow in zip(densities, fd.flows)
        )
        print(f"p={p}:  {series}")
        print(f"        J(rho) {render_sparkline(fd.flows, width=24)}")
        rho_star, j_star = fd.peak()
        print(f"        peak flow {j_star:.2f} at rho={rho_star:.2f}")

    print()
    print("=" * 70)
    print("2. Space-time regimes (100 steps shown, time flows downward)")
    print("=" * 70)
    for rho, label in ((0.08, "laminar"), (0.45, "jammed")):
        model = NagelSchreckenberg.from_density(
            400, rho, random_start=True, rng=np.random.default_rng(2), p=0.3
        )
        history = evolve(model, 100, warmup=100)
        jam = jam_fraction_series(history).mean()
        wave = wave_speed_estimate(history)
        print(f"\nrho={rho} ({label}): jam fraction {jam:.2f}, "
              f"wave drift {wave if not np.isnan(wave) else 0:+.2f} cells/step")
        print(render_spacetime(history, max_rows=20, max_cols=78))

    print()
    print("=" * 70)
    print("3. Transient time of v(t) (p=0, tolerance 2%)")
    print("=" * 70)
    for rho in (0.05, 0.15, 0.45):
        model = NagelSchreckenberg.from_density(
            400, rho, random_start=True, rng=np.random.default_rng(3)
        )
        tau = transient_time(
            evolve(model, 600).mean_velocity_series(), tolerance=0.02
        )
        print(f"rho={rho:.2f}: tau = {tau} steps")

    print()
    print("=" * 70)
    print("4. SRD/LRD classification via the periodogram slope")
    print("=" * 70)
    for p, rho in ((0.0, 0.1), (0.5, 0.1)):
        model = NagelSchreckenberg.from_density(
            400, rho, random_start=True, rng=np.random.default_rng(4), p=p
        )
        series = evolve(model, 4096, warmup=500).mean_velocity_series()
        slope = spectral_slope_at_origin(series)
        kind = "LRD (1/f noise)" if slope < -0.5 else "SRD"
        print(f"p={p}, rho={rho}: low-frequency slope {slope:+.2f} -> {kind}")


if __name__ == "__main__":
    main()
