"""Setup shim for environments whose pip cannot build PEP-660 editable wheels."""
from setuptools import setup

setup()
