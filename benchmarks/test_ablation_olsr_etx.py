"""Ablation: OLSR link metric — minimum hop count vs the LQ/ETX extension.

Section III-B.1 describes olsrd's LQ extension: ETX(i) = 1/(NI(i)*LQI(i))
over a sampling window.  Under clean radio conditions ETX ~ 1 per link and
both metrics choose the same routes; under lossy (shadowed) links ETX
routes around flaky hops that pure hop count happily uses.
"""

from repro.core.config import Scenario
from repro.core.simulation import CavenetSimulation
from repro.routing.olsr import OlsrConfig

from conftest import write_table


def _run(metric, propagation):
    scenario = Scenario(
        num_nodes=20,
        road_length_m=2000.0,
        sim_time_s=60.0,
        senders=(1, 2, 3, 4),
        traffic_stop_s=55.0,
        protocol="OLSR",
        protocol_options={"config": OlsrConfig(metric=metric)},
        propagation=propagation,
        shadowing_sigma_db=6.0,
        seed=4,
    )
    return CavenetSimulation(scenario).run()


def test_ablation_olsr_etx(once):
    results = once(
        lambda: {
            ("hop", "two_ray"): _run("hop", "two_ray"),
            ("etx", "two_ray"): _run("etx", "two_ray"),
            ("hop", "shadowing"): _run("hop", "shadowing"),
            ("etx", "shadowing"): _run("etx", "shadowing"),
        }
    )

    rows = [
        (
            f"{metric} / {prop}",
            float(result.pdr()),
            float(result.delay_stats().mean_s),
            result.control_overhead().packets,
        )
        for (metric, prop), result in results.items()
    ]
    write_table(
        "ablation_olsr_etx",
        "Ablation — OLSR link metric (hop count vs ETX)",
        ["metric / propagation", "PDR", "mean delay", "ctrl pkts"],
        rows,
    )

    clean_hop = results[("hop", "two_ray")].pdr()
    clean_etx = results[("etx", "two_ray")].pdr()
    # Clean links: both metrics route the same; delivery comparable.
    assert abs(clean_hop - clean_etx) < 0.15
    # All variants function.
    for result in results.values():
        assert result.pdr() > 0.15
