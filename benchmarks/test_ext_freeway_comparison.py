"""Extension: NaS vs the IMPORTANT framework's Freeway model.

Paper Section II: "it seems that their Freeway model is not as realistic
as the model we study here."  This bench makes the claim concrete by
comparing the two models at matched density and speed range:

* the NaS automaton produces stop-and-go traffic — stopped vehicles and
  backward-drifting jam waves — at high density;
* the Freeway model cannot: its speeds are clamped above zero and it has
  no over-reaction mechanism, so the jammed regime simply does not exist
  in it.
"""

import numpy as np

from repro.analysis.spacetime import jam_fraction_series, wave_speed_estimate
from repro.ca.history import evolve
from repro.ca.nasch import NagelSchreckenberg
from repro.mobility.freeway import Freeway

from conftest import write_table

ROAD_M = 3000.0
NUM_CELLS = 400
DENSITY = 0.4  # deep in the NaS jammed regime
STEPS = 300


def _nasch_stats():
    rng = np.random.default_rng(31)
    model = NagelSchreckenberg.from_density(
        NUM_CELLS, DENSITY, random_start=True, rng=rng, p=0.3
    )
    history = evolve(model, STEPS, warmup=200)
    velocities = history.velocities * 7.5  # cells/step -> m/s
    return {
        "min speed": float(velocities.min()),
        "mean speed": float(velocities.mean()),
        "stopped fraction": float(jam_fraction_series(history).mean()),
        "wave drift": float(wave_speed_estimate(history)),
    }


def _freeway_stats():
    count = int(DENSITY * NUM_CELLS)
    model = Freeway(
        count, ROAD_M, v_min=5.0, v_max=37.5,
        rng=np.random.default_rng(32),
    )
    speeds = []
    for _ in range(200):  # warm-up
        model.step()
    mins, means, stopped = [], [], []
    for _ in range(STEPS):
        model.step()
        velocities = model.velocities()
        mins.append(velocities.min())
        means.append(velocities.mean())
        stopped.append(float((velocities == 0.0).mean()))
    return {
        "min speed": float(np.min(mins)),
        "mean speed": float(np.mean(means)),
        "stopped fraction": float(np.mean(stopped)),
        "wave drift": float("nan"),  # no jams to drift
    }


def test_freeway_vs_nasch(once):
    nasch, freeway = once(lambda: (_nasch_stats(), _freeway_stats()))

    rows = []
    for key in ("min speed", "mean speed", "stopped fraction", "wave drift"):
        rows.append((key, nasch[key], freeway[key]))
    write_table(
        "ext_freeway_comparison",
        f"Extension — NaS vs Freeway at density {DENSITY} (speeds in m/s)",
        ["statistic", "NaS (p=0.3)", "Freeway"],
        rows,
    )

    # NaS: genuine stop-and-go with backward jam waves.
    assert nasch["stopped fraction"] > 0.2
    assert nasch["min speed"] == 0.0
    assert nasch["wave drift"] < -0.2
    # Freeway: nobody ever stops; no jammed regime exists.
    assert freeway["stopped fraction"] == 0.0
    assert freeway["min speed"] >= 5.0