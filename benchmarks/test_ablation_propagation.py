"""Ablation: radio propagation models (the paper's future work [18, 19]).

The paper's conclusion plans to "extend our work for different radio
propagation models".  This bench runs the same scenario under two-ray
ground (Table I), free space, and log-normal shadowing.  Thresholds are
re-derived per model so the nominal 250 m range is held constant; what
changes is the falloff shape and, for shadowing, the per-frame
randomness — shadowing turns the crisp 250 m disk into a probabilistic
fringe, which costs delivery.
"""

from repro.core.config import Scenario
from repro.core.simulation import CavenetSimulation

from conftest import write_table

MODELS = ("two_ray", "free_space", "shadowing")


def _run(propagation):
    scenario = Scenario(
        num_nodes=20,
        road_length_m=2000.0,
        sim_time_s=60.0,
        senders=(1, 2, 3, 4),
        traffic_stop_s=55.0,
        propagation=propagation,
        shadowing_sigma_db=6.0,
        protocol="AODV",
        seed=4,
    )
    return CavenetSimulation(scenario).run()


def test_ablation_propagation(once):
    results = once(lambda: {m: _run(m) for m in MODELS})

    rows = [
        (
            model,
            float(results[model].pdr()),
            float(results[model].delay_stats().mean_s),
            results[model].control_overhead().packets,
        )
        for model in MODELS
    ]
    write_table(
        "ablation_propagation",
        "Ablation — propagation model (same nominal 250 m range)",
        ["model", "PDR", "mean delay", "ctrl pkts"],
        rows,
    )

    # Deterministic models with identical nominal ranges behave similarly.
    assert abs(results["two_ray"].pdr() - results["free_space"].pdr()) < 0.2
    # Shadowing's random fringe costs delivery relative to two-ray.
    assert results["shadowing"].pdr() < results["two_ray"].pdr() + 0.05
    for model in MODELS:
        assert results[model].pdr() > 0.2  # everything still functions
