"""Extension: vehicle-density sweep.

Density is *the* VANET parameter: too few vehicles and the network
partitions (gaps beyond radio range); plenty of vehicles and the ring is
richly connected.  This bench sweeps the vehicle count of the reference
circuit under AODV using the generic sweep machinery
(:func:`repro.core.sweep.sweep_scenario`).

Expected shape: PDR improves markedly from the sparse regime to the
well-connected regime.
"""

import dataclasses

from repro.core.config import Scenario
from repro.core.sweep import sweep_scenario

from conftest import write_table

NODE_COUNTS = (10, 20, 30, 40)


def test_density_sweep(once):
    base = Scenario(
        num_nodes=30,
        road_length_m=3000.0,
        sim_time_s=60.0,
        senders=(1, 2, 3, 4),
        traffic_stop_s=55.0,
        protocol="AODV",
        seed=4,
    )
    sweep = once(
        lambda: sweep_scenario(base, "num_nodes", NODE_COUNTS, trials=2)
    )

    rows = [
        (
            point.value,
            f"{point.value / 400:.3f}",
            float(point.pdr_mean),
            float(point.pdr_std),
            float(point.delay_mean_s),
            float(point.control_packets_mean),
        )
        for point in sweep.points
    ]
    write_table(
        "ext_density_sweep",
        "Extension — PDR vs vehicle density (AODV, 3000 m circuit, "
        "2 trials)",
        ["nodes", "rho", "PDR", "std", "mean delay", "ctrl pkts"],
        rows,
    )

    curve = sweep.pdr_curve()
    # Sparse traffic partitions the ring; dense traffic connects it.
    assert curve[-1] > curve[0] + 0.15
    # The best-connected point delivers most of its traffic.
    assert curve.max() > 0.8