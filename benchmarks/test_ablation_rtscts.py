"""Ablation: RTS/CTS on vs off (Table I sets "RTS/CTS: None").

With 512-byte packets on a 2 Mbps channel the RTS/CTS handshake adds two
control frames (at the 1 Mbps basic rate) per data frame; on a mostly
linear topology with limited hidden-terminal pressure the handshake buys
little and costs airtime — which is why Table I disables it.  The bench
verifies both configurations work and quantifies the cost.
"""

import dataclasses

from repro.core.config import Scenario
from repro.core.simulation import CavenetSimulation
from repro.mac.params import Mac80211Params

from conftest import write_table


def _run(rts_threshold):
    scenario = Scenario(
        num_nodes=20,
        road_length_m=2000.0,
        sim_time_s=60.0,
        senders=(1, 2, 3, 4),
        traffic_stop_s=55.0,
        mac_params=Mac80211Params(rts_threshold_bytes=rts_threshold),
        protocol="AODV",
        seed=4,
    )
    return CavenetSimulation(scenario).run()


def test_ablation_rts_cts(once):
    off, on = once(lambda: (_run(None), _run(0)))

    def row(name, result):
        rts = sum(s.rts_tx for s in result.mac_stats.values())
        cts = sum(s.cts_tx for s in result.mac_stats.values())
        return (
            name,
            float(result.pdr()),
            float(result.delay_stats().mean_s),
            rts,
            cts,
            result.frames_on_air,
        )

    rows = [row("RTS/CTS off (Table I)", off), row("RTS/CTS on", on)]
    write_table(
        "ablation_rtscts",
        "Ablation — RTS/CTS handshake",
        ["config", "PDR", "mean delay", "RTS sent", "CTS sent", "frames"],
        rows,
    )

    # Off: no control handshake at all.
    assert sum(s.rts_tx for s in off.mac_stats.values()) == 0
    # On: the handshake actually runs.
    assert sum(s.rts_tx for s in on.mac_stats.values()) > 0
    # The handshake costs airtime: more frames for the same traffic.
    assert on.frames_on_air > off.frames_on_air
    # Both deliver comparably on this topology.
    assert abs(on.pdr() - off.pdr()) < 0.25
