"""Shared infrastructure for the figure/table benchmarks.

Each benchmark regenerates one table or figure of the paper: it runs the
experiment once (wrapped in ``benchmark.pedantic`` so pytest-benchmark
reports the cost without re-running a multi-second simulation dozens of
times), asserts the qualitative *shape* the paper reports, and writes the
regenerated numbers to ``benchmarks/out/<name>.txt`` for inspection and for
EXPERIMENTS.md.
"""

import os
from typing import Dict, Iterable, Sequence

import pytest

from repro.core.config import Scenario
from repro.core.experiment import compare_protocols
from repro.core.simulation import CavenetSimulation

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

#: Results of the full Table I scenario, shared by the Figs. 8-11 benches
#: (the paper runs the same mobility pattern under each protocol).
_table1_cache: Dict[str, "SimulationResult"] = {}
_table1_trace = None


def table1_result(protocol: str):
    """Run (once) and return the Table I scenario under ``protocol``."""
    global _table1_trace
    if protocol not in _table1_cache:
        scenario = Scenario().with_protocol(protocol)
        simulation = CavenetSimulation(scenario)
        if _table1_trace is None:
            _table1_trace = simulation.generate_trace()
        _table1_cache[protocol] = simulation.run(trace=_table1_trace)
    return _table1_cache[protocol]


def write_table(
    name: str,
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
) -> str:
    """Render an aligned text table, save it under benchmarks/out/."""
    os.makedirs(OUT_DIR, exist_ok=True)
    rendered_rows = [
        [f"{v:.4f}" if isinstance(v, float) else str(v) for v in row]
        for row in rows
    ]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in rendered_rows)) if rendered_rows
        else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [title, ""]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    text = "\n".join(lines) + "\n"
    with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text)
    print("\n" + text)
    return text


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
