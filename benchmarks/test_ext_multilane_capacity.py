"""Extension: multi-lane capacity and the lane-change relief valve.

The paper's Fig. 1 motivates multiple lanes for *connectivity*; this
bench measures their *traffic* effect: at the same per-lane density, a
two-lane road with lane changing carries at least the flow of an isolated
lane (blocked vehicles sidestep instead of braking), with the relief
visible around the critical density.
"""

import numpy as np

from repro.ca.multilane import MultiLaneRoad
from repro.ca.nasch import NagelSchreckenberg

from conftest import write_table

NUM_CELLS = 200
WARMUP = 300
MEASURE = 300
DENSITIES = (0.10, 1 / 6, 0.25)
P = 0.25


def _single_lane_flow(count, seed):
    model = NagelSchreckenberg(
        NUM_CELLS, count, p=P, rng=np.random.default_rng(seed)
    )
    model.run(WARMUP)
    flows = []
    for _ in range(MEASURE):
        model.step()
        flows.append(model.flow())
    return float(np.mean(flows))


def _two_lane_flow_per_lane(count, seed):
    road = MultiLaneRoad(
        NUM_CELLS, 2, [count, count], p=P, rng=np.random.default_rng(seed)
    )
    road.run(WARMUP)
    flows = []
    for _ in range(MEASURE):
        road.step()
        # Per-lane flow: overall density x mean velocity equals the mean
        # of the per-lane flows when lanes are balanced.
        flows.append(road.density * 2 * road.mean_velocity() / 2)
    return float(np.mean(flows))


def test_multilane_capacity(once):
    def experiment():
        results = {}
        for density in DENSITIES:
            count = int(density * NUM_CELLS)
            trials_single = [
                _single_lane_flow(count, seed) for seed in (1, 2, 3)
            ]
            trials_double = [
                _two_lane_flow_per_lane(count, seed) for seed in (1, 2, 3)
            ]
            results[density] = (
                float(np.mean(trials_single)),
                float(np.mean(trials_double)),
            )
        return results

    results = once(experiment)

    rows = [
        (
            f"{density:.3f}",
            single,
            double,
            double / single if single > 0 else float("nan"),
        )
        for density, (single, double) in results.items()
    ]
    write_table(
        "ext_multilane_capacity",
        f"Extension — per-lane flow, single vs two lanes (p={P})",
        ["per-lane rho", "1 lane", "2 lanes (per lane)", "ratio"],
        rows,
    )

    for density, (single, double) in results.items():
        # Lane changing never hurts per-lane throughput materially.
        assert double > single * 0.95
    # Around the critical density the relief valve is visible.
    critical = results[1 / 6]
    assert critical[1] >= critical[0]