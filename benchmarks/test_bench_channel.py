"""Channel fast-path microbenchmark (BENCH_channel.json).

A seeded 30-node ring scenario drives ~20k frames through the channel twice
— once on the vectorized link-cache fast path, once on the scalar reference
loop (``fast_path=False``, the pre-optimization implementation) — asserts
the two runs deliver the identical frame set, and records wall time,
frames/sec, cache hit-rate and the speedup to ``benchmarks/out/
BENCH_channel.json``.  The acceptance floor is a 3x throughput gain.
"""

import json
import os
import time

import numpy as np

from conftest import OUT_DIR, write_table
from repro.des.engine import Simulator
from repro.mac.frames import Frame, FrameType
from repro.mobility.trace import MobilityTrace, TracePlayer
from repro.net.address import BROADCAST
from repro.net.packet import Packet
from repro.phy.channel import CachedPositionProvider, Channel
from repro.phy.params import PhyParams
from repro.phy.propagation import TwoRayGround
from repro.phy.radio import Radio

NUM_NODES = 30
NUM_FRAMES = 20001
SIM_TIME_S = 50.0
FRAME_DURATION_S = 0.0005
SPEEDUP_FLOOR = 3.0


def _ring_trace():
    """30 vehicles circulating a 16 km ring at ~10 m/s (seeded)."""
    rng = np.random.default_rng(7)
    radius = 16000.0 / (2 * np.pi)
    omega = (10.0 / radius) * rng.uniform(0.8, 1.2, NUM_NODES)
    phase0 = rng.uniform(0, 2 * np.pi, NUM_NODES)
    times = np.linspace(0.0, SIM_TIME_S, 501)
    angle = phase0[None, :] + omega[None, :] * times[:, None]
    positions = np.stack(
        [radius * np.cos(angle), radius * np.sin(angle)], axis=-1
    )
    return MobilityTrace(times, positions)


class _CountingMac:
    __slots__ = ("delivered",)

    def __init__(self):
        self.delivered = 0

    def on_medium_busy(self):
        pass

    def on_medium_idle(self):
        pass

    def on_frame_received(self, frame, rx_power_w):
        self.delivered += 1

    def on_tx_done(self):
        pass


def _drive(fast_path):
    """One full channel run; returns (wall_s, decoded, channel, sim)."""
    sim = Simulator()
    provider = CachedPositionProvider(
        TracePlayer(_ring_trace()), sim, cache_dt=0.1
    )
    channel = Channel(
        sim, TwoRayGround(), provider.positions, fast_path=fast_path
    )
    params = PhyParams.for_ranges(TwoRayGround(), 250.0, 550.0)
    macs = []
    for node_id in range(NUM_NODES):
        radio = Radio(sim, node_id, params, channel)
        mac = _CountingMac()
        radio.attach_mac(mac)
        macs.append(mac)
    for k in range(NUM_FRAMES):
        sender = k % NUM_NODES
        packet = Packet("DATA", sender, BROADCAST, 100, 0.0)
        frame = Frame(
            FrameType.DATA, sender, BROADCAST, 128, packet=packet, seq=k
        )
        sim.schedule(
            0.0025 * k, channel.transmit, sender, frame, FRAME_DURATION_S
        )
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    return wall, [mac.delivered for mac in macs], channel, sim


def test_bench_channel_fast_path_speedup(once):
    def measure():
        wall_fast, decoded_fast, channel_fast, sim_fast = _drive(True)
        wall_scalar, decoded_scalar, channel_scalar, _ = _drive(False)
        return (
            wall_fast, decoded_fast, channel_fast, sim_fast,
            wall_scalar, decoded_scalar, channel_scalar,
        )

    (
        wall_fast, decoded_fast, channel_fast, sim_fast,
        wall_scalar, decoded_scalar, channel_scalar,
    ) = once(measure)

    # Equivalence first: the speedup is meaningless if the physics changed.
    assert decoded_fast == decoded_scalar
    assert channel_fast.frames_delivered == channel_scalar.frames_delivered
    assert channel_fast.frames_cs_dropped == channel_scalar.frames_cs_dropped
    assert channel_fast.frames_transmitted == NUM_FRAMES

    speedup = wall_scalar / wall_fast
    report = {
        "nodes": NUM_NODES,
        "frames": NUM_FRAMES,
        "sim_time_s": SIM_TIME_S,
        "propagation": "two_ray",
        "scalar": {
            "wall_s": round(wall_scalar, 4),
            "frames_per_s": round(NUM_FRAMES / wall_scalar, 1),
        },
        "fast": {
            "wall_s": round(wall_fast, 4),
            "frames_per_s": round(NUM_FRAMES / wall_fast, 1),
            "cache_hit_rate": round(channel_fast.cache_hit_rate, 4),
            "cache_rebuilds": channel_fast.cache_rebuilds,
        },
        "frames_delivered": channel_fast.frames_delivered,
        "events_processed": sim_fast.events_processed,
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
    }
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "BENCH_channel.json"), "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    write_table(
        "BENCH_channel",
        "Channel microbenchmark: vectorized fast path vs scalar loop "
        f"({NUM_NODES} nodes, {NUM_FRAMES} frames)",
        ["path", "wall_s", "frames_per_s", "cache_hit_rate"],
        [
            ["scalar", wall_scalar, NUM_FRAMES / wall_scalar, "-"],
            [
                "fast", wall_fast, NUM_FRAMES / wall_fast,
                channel_fast.cache_hit_rate,
            ],
        ],
    )

    assert channel_fast.cache_hit_rate > 0.9
    assert speedup >= SPEEDUP_FLOOR, (
        f"fast path is only {speedup:.2f}x the scalar loop "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
