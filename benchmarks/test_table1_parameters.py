"""Table I: the simulation parameter set.

The bench validates that the library's *defaults* reproduce every row of
the paper's Table I, and times the Behavioural Analyzer stage (mobility
generation for the reference scenario).
"""

from repro.core.config import Scenario
from repro.core.simulation import CavenetSimulation

from conftest import write_table

#: Paper Table I, row for row (as printed in the paper).
PAPER_TABLE1 = {
    "Routing Protocol": ("AODV, OLSR, DYMO", None),
    "Simulation Time": ("100 s", "Simulation Time"),
    "Simulation Area": ("3000 m Circuit", "Simulation Area"),
    "Number of Nodes": ("30", "Number of Nodes"),
    "DATA TYPE": ("CBR", "DATA TYPE"),
    "Packets Generation Rate": ("5 packets/s", "Packets Generation Rate"),
    "Packet Size": ("512 bytes", "Packet Size"),
    "MAC Protocol": ("IEEE802.11 DCF", "MAC Protocol"),
    "MAC Rate": ("2 Mbps", "MAC Rate"),
    "RTS/CTS": ("None", "RTS/CTS"),
    "Transmission Range": ("250 m", "Transmission Range"),
    "Radio Propagation Models": ("Two-ray Ground", "Radio Propagation Models"),
}


def test_table1_parameters(once):
    scenario = Scenario()
    ours = once(scenario.table1)

    rows = []
    for row_name, (paper_value, our_key) in PAPER_TABLE1.items():
        measured = ours[our_key] if our_key else "per-run"
        rows.append((row_name, paper_value, measured))
        if our_key:
            assert ours[our_key] == paper_value, row_name
    # Timer rows of Table I map to protocol configs:
    from repro.routing.aodv import AodvConfig
    from repro.routing.dymo import DymoConfig
    from repro.routing.olsr import OlsrConfig

    assert AodvConfig().hello_interval_s == 1.0
    assert OlsrConfig().hello_interval_s == 1.0
    assert OlsrConfig().tc_interval_s == 2.0
    assert DymoConfig().hello_interval_s == 1.0
    rows.append(("HelloAODV Interval", "1 s", "1 s"))
    rows.append(("HelloOLSR Interval", "1 s", "1 s"))
    rows.append(("TCOLSR Interval", "2 s", "2 s"))
    rows.append(("HelloDYMO Interval", "1 s", "1 s"))

    write_table(
        "table1_parameters",
        "Table I — simulation parameters (paper vs library defaults)",
        ["Parameter", "Paper", "This library"],
        rows,
    )


def test_table1_mobility_generation(once):
    """Time the BA stage for the reference scenario."""
    trace = once(CavenetSimulation(Scenario()).generate_trace)
    assert trace.num_nodes == 30
    assert trace.duration == 100.0
