"""Extension: energy cost of the three protocols.

Control overhead is airtime, and airtime is energy: this bench prices the
Fig. 11 comparison in joules (ns-2 EnergyModel-style accounting with
WaveLAN-like power draws).  OLSR's proactive beaconing + MPR flooding
should cost visibly more transmit energy than the reactive protocols on
the same traffic.
"""

from conftest import table1_result, write_table

PROTOCOLS = ("AODV", "OLSR", "DYMO")


def test_protocol_energy(once):
    results = once(
        lambda: {name: table1_result(name) for name in PROTOCOLS}
    )

    rows = []
    for name in PROTOCOLS:
        result = results[name]
        meters = result.energy.values()
        tx = sum(m.tx_time_s for m in meters)
        rx = sum(m.rx_time_s for m in meters)
        delivered = max(result.collector.num_delivered, 1)
        rows.append(
            (
                name,
                float(result.total_energy_j()),
                float(tx),
                float(rx),
                float(result.total_energy_j() / delivered),
            )
        )
    write_table(
        "ext_energy",
        "Extension — radio energy over the Table I run (30 nodes, 100 s)",
        ["protocol", "total J", "tx time (s)", "rx time (s)",
         "J per delivered pkt"],
        rows,
    )

    energy = {row[0]: row[1] for row in rows}
    # Raw airtime tracks *data volume*, so AODV (which delivers ~2.3x
    # OLSR's packets) transmits more in total; the meaningful comparison
    # is energy per delivered packet, where OLSR's control plane makes
    # every delivery dearer.
    per_packet = {row[0]: row[4] for row in rows}
    assert per_packet["AODV"] < per_packet["OLSR"]
    assert per_packet["DYMO"] < per_packet["OLSR"]
    for name in PROTOCOLS:
        assert energy[name] > 0