"""Ablation: straight line vs closed circuit — the paper's headline
"improvement" of CAVENET (Section III-B).

In the first CAVENET version vehicles moved on a straight line and were
shifted back to the start on reaching the end; "the vehicles at the
beginning and at the end of the line could not communicate with each
other".  The improved version closes the lane into a circle.

This bench quantifies that with the same vehicles, dynamics and protocol:

* *head/tail communication*: at each trace sample, can the positionally
  first and last vehicles of the column reach each other?  On the line
  they sit at opposite ends (~3 km apart) and need the entire column as a
  relay chain; on the circuit the "seam" does not exist — they are
  physically adjacent.
* *teleports*: the line's wrap shift produces discontinuous jumps (which
  is what breaks routes); the circuit produces none.
* *end-to-end PDR* of the same flows.
"""

import numpy as np

from repro.analysis.connectivity import connectivity_graph, path_exists
from repro.core.config import Scenario
from repro.core.simulation import CavenetSimulation

from conftest import write_table


def _scenario(boundary):
    return Scenario(
        boundary=boundary,
        num_nodes=30,
        sim_time_s=100.0,
        senders=(1, 2, 3, 27, 28, 29),
        protocol="AODV",
        seed=4,
    )


def _head_tail_connectivity(trace, tx_range):
    """Fraction of samples where the column's extreme vehicles connect."""
    connected = []
    for row in range(trace.num_samples):
        positions = trace.positions[row]
        graph = connectivity_graph(positions, tx_range)
        if trace.teleported is not None:
            # Straight line along x: extremes by coordinate.
            head = int(np.argmax(positions[:, 0]))
            tail = int(np.argmin(positions[:, 0]))
        else:
            # Circle: extremes by angle — adjacent across the +-pi seam,
            # exactly the pair the line keeps apart.
            angles = np.arctan2(positions[:, 1], positions[:, 0])
            head = int(np.argmax(angles))
            tail = int(np.argmin(angles))
        connected.append(path_exists(graph, head, tail))
    return float(np.mean(connected))


def _run(boundary):
    scenario = _scenario(boundary)
    simulation = CavenetSimulation(scenario)
    trace = simulation.generate_trace()
    result = simulation.run(trace=trace)
    seam = _head_tail_connectivity(trace, scenario.tx_range_m)
    teleports = (
        int(trace.teleported.sum()) if trace.teleported is not None else 0
    )
    return result, seam, teleports


def test_ablation_line_vs_circuit(once):
    line, circuit = once(lambda: (_run("line"), _run("circuit")))
    line_result, line_seam, line_teleports = line
    circ_result, circ_seam, circ_teleports = circuit

    rows = [
        (
            "line (original CAVENET)",
            line_seam,
            line_teleports,
            float(line_result.pdr()),
        ),
        (
            "circuit (improved CAVENET)",
            circ_seam,
            circ_teleports,
            float(circ_result.pdr()),
        ),
    ]
    write_table(
        "ablation_boundary",
        "Ablation — boundary condition (the Section III-B improvement)",
        ["boundary", "head-tail connected", "teleports", "PDR overall"],
        rows,
    )

    # The paper's complaint, measured: on the line the column's ends can
    # rarely communicate; on the circuit the seam pair is always in touch.
    assert circ_seam > line_seam + 0.3
    # The line teleports vehicles; the circuit never does.
    assert line_teleports > 0
    assert circ_teleports == 0
    # Route stability pays off end to end.
    assert circ_result.pdr() > line_result.pdr()
