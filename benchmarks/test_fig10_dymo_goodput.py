"""Fig. 10: DYMO goodput per sender over time (Table I scenario).

Paper observation: DYMO behaves like AODV (reactive, bursty, senders keep
communicating even when far apart) and clearly outperforms OLSR.
"""

import numpy as np

from repro.core.experiment import goodput_surface

from conftest import table1_result, write_table

CBR_RATE_BPS = 5 * 512 * 8


def test_fig10_dymo_goodput(once):
    result = once(table1_result, "DYMO")
    centers, senders, surface = goodput_surface(result)

    rows = [
        (
            sender,
            float(result.mean_goodput_bps(sender)),
            float(surface[i].max()),
            float(result.pdr(sender)),
        )
        for i, sender in enumerate(senders)
    ]
    write_table(
        "fig10_dymo_goodput",
        "Fig. 10 — DYMO goodput per sender (bps; offered load 20480 bps)",
        ["sender", "mean goodput", "peak goodput", "PDR"],
        rows,
    )

    olsr = table1_result("OLSR")
    assert surface[:, centers < 10.0].sum() == 0.0
    # Reactive burstiness, like AODV.
    assert surface.max() > 2 * CBR_RATE_BPS
    # Clearly better than OLSR in aggregate.
    dymo_total = sum(result.mean_goodput_bps(s) for s in senders)
    olsr_total = sum(olsr.mean_goodput_bps(s) for s in senders)
    assert dymo_total > 1.4 * olsr_total
