"""Extension: the crosspoint bottleneck (the paper's second mobility
parameter, named in Section III but explicitly left out there: "the
crosspoint is the bottleneck for the lane").

Measures the flow of the yielding road of a priority-ruled intersection
against an isolated ring at the same density.

Expected shape: at low density the crossing barely costs anything (the
shared cell is rarely contested); as density grows the yielding road's
flow falls increasingly far below the isolated baseline while the
priority road stays close to it.
"""

import numpy as np

from repro.ca.intersection import CrossingRoads
from repro.ca.nasch import NagelSchreckenberg

from conftest import write_table

NUM_CELLS = 100
STEPS = 400
WARMUP = 200
DENSITIES = (0.05, 0.15, 0.3)


def _isolated_flow(count):
    model = NagelSchreckenberg(NUM_CELLS, count, p=0.0)
    model.run(WARMUP)
    flows = []
    for _ in range(STEPS):
        model.step()
        flows.append(model.flow())
    return float(np.mean(flows))


def _crossing_flows(count):
    roads = CrossingRoads(
        NUM_CELLS, count, count, p=0.0, rng=np.random.default_rng(3)
    )
    roads.run(WARMUP)
    priority, yielding = [], []
    for _ in range(STEPS):
        roads.step()
        priority.append(roads.flow(0))
        yielding.append(roads.flow(1))
    return float(np.mean(priority)), float(np.mean(yielding))


def test_intersection_bottleneck(once):
    def experiment():
        results = {}
        for density in DENSITIES:
            count = int(density * NUM_CELLS)
            results[density] = (
                _isolated_flow(count),
                *_crossing_flows(count),
            )
        return results

    results = once(experiment)

    rows = []
    for density in DENSITIES:
        isolated, priority, yielding = results[density]
        rows.append(
            (
                f"{density:.2f}",
                isolated,
                priority,
                yielding,
                yielding / isolated if isolated > 0 else 0.0,
            )
        )
    write_table(
        "ext_intersection",
        "Extension — crosspoint bottleneck (flow, deterministic NaS)",
        ["rho", "isolated ring", "priority road", "yielding road",
         "yield/isolated"],
        rows,
    )

    for density in DENSITIES:
        isolated, priority, yielding = results[density]
        # The yielding road never out-flows the isolated baseline ...
        assert yielding <= isolated + 1e-9
        # ... and the priority road does not fare materially worse (at
        # high density queued yield-road vehicles stranded ON the cross
        # throttle both roads to an almost identical shared capacity).
        assert priority >= yielding - 0.01
    # The bottleneck bites harder as density grows.
    ratios = [results[d][2] / results[d][0] for d in DENSITIES]
    assert ratios[-1] < ratios[0]