"""Fig. 1: the impact of multiple lanes on connectivity and interference.

The paper's Fig. 1 is an illustration, not a measurement; this bench turns
both of its claims into experiments:

(a) *connectivity*: gaps on one lane can be bridged by relay vehicles on a
    parallel lane — we measure source-destination reachability on a sparse
    circuit with and without a second lane of relays;
(b) *interference*: traffic on the opposite lane degrades message
    penetration — we measure PDR of a fixed flow with and without
    opposite-lane transmitters contending for the same channel.
"""

import numpy as np

from repro.analysis.connectivity import (
    connectivity_graph,
    pair_connectivity_series,
)
from repro.ca.multilane import MultiLaneRoad
from repro.ca.nasch import NagelSchreckenberg
from repro.des.engine import Simulator
from repro.geometry.layout import RoadLayout
from repro.mac.params import Mac80211Params
from repro.metrics.collector import MetricsCollector
from repro.mobility.ca_mobility import CaMobility
from repro.net.node import Node
from repro.phy.channel import Channel
from repro.phy.params import PhyParams
from repro.phy.propagation import TwoRayGround
from repro.routing import make_protocol
from repro.util.rng import RngStreams

from conftest import write_table

TX_RANGE = 250.0


def _connectivity_experiment():
    """(a): fraction of time node 0 can reach the far node, single vs
    two-lane, over a sparse stochastic circuit."""
    length = 3000.0
    duration = 200.0
    # Single sparse lane: 12 vehicles on 400 cells, jams open >250 m gaps.
    single = NagelSchreckenberg.from_density(
        400, 12 / 400, random_start=True, rng=np.random.default_rng(11),
        p=0.5,
    )
    single_trace = CaMobility(
        single, RoadLayout.single_circuit(length)
    ).sample(duration)
    single_connected = pair_connectivity_series(
        single_trace, TX_RANGE, 0, 6
    ).mean()
    # Same sparse lane plus a second lane of 12 relays.
    road = MultiLaneRoad(
        400, 2, [12, 12], p=0.5, rng=np.random.default_rng(11)
    )
    layout = RoadLayout.multi_lane_circuit(length, 2)
    double_trace = CaMobility(road, layout).sample(duration)
    double_connected = pair_connectivity_series(
        double_trace, TX_RANGE, 0, 6
    ).mean()
    return float(single_connected), float(double_connected)


def _interference_experiment(with_interferers: bool):
    """(b): PDR of a 3-hop flow, with/without opposite-lane transmitters."""
    sim = Simulator()
    # Forward lane: a 4-node chain; opposite lane: interferers placed
    # between the chain nodes (offset 5 m in y), saturating the channel.
    coords = [(i * 200.0, 0.0) for i in range(4)]
    interferers = []
    if with_interferers:
        interferers = [(100.0, 5.0), (300.0, 5.0), (500.0, 5.0)]
    all_coords = np.array(coords + interferers)
    channel = Channel(sim, TwoRayGround(), lambda: all_coords)
    phy = PhyParams.for_ranges(TwoRayGround(), TX_RANGE, 550.0)
    metrics = MetricsCollector(sim)
    streams = RngStreams(12)
    nodes = []
    for node_id in range(len(all_coords)):
        node = Node(
            sim, node_id, channel, phy, Mac80211Params(), metrics,
            rng=streams.stream(f"mac-{node_id}"),
        )
        node.set_routing(
            make_protocol("AODV", node, streams.stream(f"r-{node_id}"))
        )
        nodes.append(node)
    for node in nodes:
        node.routing.start()
    # The flow under test: node 0 -> node 3, 20 pkt/s x 512 B.
    from repro.des.timer import PeriodicTimer
    from repro.net.address import BROADCAST
    from repro.net.packet import Packet
    from repro.traffic.cbr import CbrSource

    source = CbrSource(
        nodes[0], 3, rate_pps=20.0, size_bytes=512, start_s=2.0,
        stop_s=18.0, flow_id=1,
    )
    source.start()
    # Interferers saturate the opposite lane with one-hop broadcast noise
    # (sent straight to the MAC: pure channel contention, no routing).
    timers = []
    for i in range(4, len(all_coords)):
        def blast(node=nodes[i]):
            noise = Packet("DATA", node.node_id, BROADCAST, 1400, sim.now)
            node.send_via(noise, BROADCAST)

        timer = PeriodicTimer(
            sim, 1.0 / 100.0, blast, jitter=1.0 / 200.0,
            rng=streams.stream(f"i-{i}"),
        )
        timer.start()
        timers.append(timer)
    sim.run(until=20.0)
    sent = sum(1 for e in metrics.originated if e.flow_id == 1)
    delivered = [e for e in metrics.delivered if e.flow_id == 1]
    pdr = len(delivered) / sent if sent else 0.0
    mean_delay = (
        float(np.mean([e.delay_s for e in delivered])) if delivered else float("inf")
    )
    return pdr, mean_delay


def test_fig1_multilane_connectivity(once):
    def experiment():
        single, double = _connectivity_experiment()
        clean = _interference_experiment(with_interferers=False)
        noisy = _interference_experiment(with_interferers=True)
        return single, double, clean, noisy

    single, double, clean, noisy = once(experiment)
    clean_pdr, clean_delay = clean
    noisy_pdr, noisy_delay = noisy

    write_table(
        "fig1_multilane",
        "Fig. 1 — multi-lane effects, measured",
        ["experiment", "value"],
        [
            ("(a) src-dst reachable, single sparse lane", single),
            ("(a) src-dst reachable, + relay lane", double),
            ("(b) flow PDR, quiet opposite lane", clean_pdr),
            ("(b) flow PDR, interfering opposite lane", noisy_pdr),
            ("(b) mean delay (s), quiet opposite lane", clean_delay),
            ("(b) mean delay (s), interfering lane", noisy_delay),
        ],
    )

    # (a) Relays on the second lane fill connectivity gaps.
    assert double > single + 0.1
    # (b) Opposite-lane contention costs the flow dearly.  802.11's
    # retransmissions can mask the loss as latency, so the degradation
    # must show in delivery or delay (typically delay: every hop now
    # fights three saturating broadcasters for the medium).
    assert clean_pdr > 0.95
    assert noisy_pdr <= clean_pdr
    assert noisy_delay > 2.0 * clean_delay or noisy_pdr < clean_pdr - 0.05
