"""End-to-end trial wall clock: python vs compiled kernels (BENCH_trial.json).

Where BENCH_scale times the channel layer in isolation, this benchmark
times :meth:`CavenetSimulation.run` whole — trace generation, DES, MAC,
routing, metrics — on constant-density ring scenarios at N in
{30, 300, 3000} (~100 m vehicle spacing, grid spatial culling, AODV),
once under ``kernels="python"`` (the explicit-loop reference) and once
under the best compiled backend ``kernels="auto"`` resolves to on this
machine.

Two claims are enforced:

* **Bit identity**: both backends must deliver the same packets with
  the same PDR — the compiled path changes wall clock, never results.
* **The tentpole floor**: at N = 3000 the compiled end-to-end trial
  must run at least 5x faster than the reference.  The same floor is
  wired into CI via ``scripts/bench_gate.py --floor`` over the
  committed ``benchmarks/baseline/BENCH_trial.json``.

The mobility warmup is the city-scale knob: discarding the jam
transient costs ``warmup x N`` CA cell updates before the network
starts, which is exactly the loop the kernels compile — at N = 3000
it dominates the reference trial, as ``repro run --profile`` shows.

When no compiled backend is available (no numba, no C compiler) the
JSON is still written, flagged ``"compiled": false``, and the floor
assertion is skipped — the fallback machine still proves identity.
"""

import json
import os
import time

import pytest

from conftest import OUT_DIR, write_table
from repro.core.config import Scenario
from repro.core.simulation import CavenetSimulation
from repro.kernels import resolve_backend

NODE_COUNTS = (30, 300, 3000)
#: Mean vehicle spacing (m): road length grows with N at fixed density.
SPACING_M = 100.0
SIM_TIME_S = 4.0
WARMUP_STEPS = 4000
SPEEDUP_FLOOR_AT_MAX_N = 5.0


def _scenario(num_nodes, kernels):
    return Scenario(
        num_nodes=num_nodes,
        road_length_m=SPACING_M * num_nodes,
        boundary="circuit",
        initial_placement="random",
        mobility_warmup_steps=WARMUP_STEPS,
        sim_time_s=SIM_TIME_S,
        protocol="AODV",
        senders=(1, 2),
        receiver=0,
        traffic_start_s=0.5,
        traffic_stop_s=3.5,
        spatial="grid",
        kernels=kernels,
        seed=11,
    )


def _trial(num_nodes, kernels):
    """One full simulation; returns (wall_s, result)."""
    scenario = _scenario(num_nodes, kernels)
    start = time.perf_counter()
    result = CavenetSimulation(scenario).run()
    wall = time.perf_counter() - start
    return wall, result


def test_bench_trial_python_vs_compiled(once):
    best = resolve_backend("auto")

    def measure():
        curve = []
        for num_nodes in NODE_COUNTS:
            wall_py, result_py = _trial(num_nodes, "python")
            wall_c, result_c = _trial(num_nodes, best.name)
            curve.append((num_nodes, wall_py, result_py, wall_c, result_c))
        return curve

    curve = once(measure)

    end_to_end = {}
    rows = []
    for num_nodes, wall_py, result_py, wall_c, result_c in curve:
        # Identity first: a kernel backend may only change the clock.
        assert (
            result_c.collector.num_delivered
            == result_py.collector.num_delivered
        ), f"backends disagree on deliveries at N={num_nodes}"
        assert (
            result_c.collector.num_originated
            == result_py.collector.num_originated
        )
        assert result_c.pdr() == result_py.pdr(), (
            f"backends disagree on PDR at N={num_nodes}"
        )
        speedup = wall_py / wall_c
        end_to_end[f"n{num_nodes}"] = {
            "nodes": num_nodes,
            "python_wall_s": round(wall_py, 4),
            "compiled_wall_s": round(wall_c, 4),
            "speedup": round(speedup, 2),
            "pdr": round(result_c.pdr(), 4),
            "delivered": result_c.collector.num_delivered,
        }
        rows.append([
            num_nodes, wall_py, wall_c, speedup,
            result_c.pdr(), result_c.collector.num_delivered,
        ])

    report = {
        "spacing_m": SPACING_M,
        "sim_time_s": SIM_TIME_S,
        "warmup_steps": WARMUP_STEPS,
        "protocol": "AODV",
        "spatial": "grid",
        "reference_backend": "python",
        "compiled_backend": best.name,
        "compiled": best.compiled,
        "end_to_end": end_to_end,
        "speedup_floor_at_n3000": SPEEDUP_FLOOR_AT_MAX_N,
    }
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "BENCH_trial.json"), "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    write_table(
        "BENCH_trial",
        "End-to-end trial wall clock: kernels=python vs "
        f"kernels={best.name} (~{SPACING_M:.0f} m spacing, AODV, grid)",
        ["nodes", "python_s", "compiled_s", "speedup", "pdr", "delivered"],
        rows,
    )

    if not best.compiled:
        pytest.skip(
            f"best available backend {best.name!r} is not compiled; "
            "identity verified, speedup floor not applicable"
        )
    at_max = end_to_end[f"n{max(NODE_COUNTS)}"]
    assert at_max["speedup"] >= SPEEDUP_FLOOR_AT_MAX_N, (
        f"compiled trial is only {at_max['speedup']:.2f}x the reference "
        f"at N={at_max['nodes']} (floor {SPEEDUP_FLOOR_AT_MAX_N}x)"
    )
