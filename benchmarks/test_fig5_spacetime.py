"""Fig. 5: space-time plots showing the jam wave in different settings.

Paper panels: (a) rho=0.0625, p=0.3 (L=800); (b) rho=0.5, p=0.3;
(c) rho=0.1, p=0; (d) rho=0.5, p=0 — each 100 time steps.

Expected shape: the low-density panels are laminar (no stopped vehicles
after relaxation); the high-density panels show jam clusters drifting
*backwards* relative to the driving direction.
"""

import numpy as np

from repro.analysis.spacetime import jam_fraction_series, wave_speed_estimate
from repro.ca.history import evolve
from repro.ca.nasch import NagelSchreckenberg

from conftest import write_table

PANELS = {
    "a (rho=0.0625, p=0.3)": dict(num_cells=800, density=0.0625, p=0.3),
    "b (rho=0.5,    p=0.3)": dict(num_cells=400, density=0.5, p=0.3),
    "c (rho=0.1,    p=0.0)": dict(num_cells=400, density=0.1, p=0.0),
    "d (rho=0.5,    p=0.0)": dict(num_cells=400, density=0.5, p=0.0),
}
STEPS = 100


def _run_panels():
    results = {}
    for name, cfg in PANELS.items():
        rng = np.random.default_rng(5)
        model = NagelSchreckenberg.from_density(
            cfg["num_cells"], cfg["density"], random_start=True, rng=rng,
            p=cfg["p"],
        )
        history = evolve(model, STEPS, warmup=200)
        results[name] = history
    return results


def test_fig5_spacetime(once):
    histories = once(_run_panels)

    rows = []
    measured = {}
    for name, history in histories.items():
        jam = float(jam_fraction_series(history).mean())
        wave = float(wave_speed_estimate(history))
        measured[name] = (jam, wave)
        regime = "jammed" if jam > 0.1 else "laminar"
        rows.append((name, jam, wave if not np.isnan(wave) else "n/a", regime))
    write_table(
        "fig5_spacetime",
        "Fig. 5 — space-time regimes (jam fraction, wave drift cells/step)",
        ["panel", "jam fraction", "wave speed", "regime"],
        rows,
    )

    # Low-density panels: laminar.
    assert measured["a (rho=0.0625, p=0.3)"][0] < 0.1
    assert measured["c (rho=0.1,    p=0.0)"][0] == 0.0
    # High-density panels: jammed, with backward-travelling waves.
    for key in ("b (rho=0.5,    p=0.3)", "d (rho=0.5,    p=0.0)"):
        jam, wave = measured[key]
        assert jam > 0.3
        assert wave < -0.2
