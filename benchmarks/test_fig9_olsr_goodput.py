"""Fig. 9: OLSR goodput per sender over time (Table I scenario).

Paper observation: OLSR's goodput is an order of magnitude below the
reactive protocols' for the distant senders (its y-axis tops at 2x10^4
against AODV's 3x10^5): a proactive protocol drops data outright whenever
its tables lag the topology, and never produces catch-up bursts.
"""

import numpy as np

from repro.core.experiment import goodput_surface

from conftest import table1_result, write_table

CBR_RATE_BPS = 5 * 512 * 8


def test_fig9_olsr_goodput(once):
    result = once(table1_result, "OLSR")
    centers, senders, surface = goodput_surface(result)

    rows = [
        (
            sender,
            float(result.mean_goodput_bps(sender)),
            float(surface[i].max()),
            float(result.pdr(sender)),
        )
        for i, sender in enumerate(senders)
    ]
    write_table(
        "fig9_olsr_goodput",
        "Fig. 9 — OLSR goodput per sender (bps; offered load 20480 bps)",
        ["sender", "mean goodput", "peak goodput", "PDR"],
        rows,
    )

    aodv = table1_result("AODV")
    # Nothing before traffic start.
    assert surface[:, centers < 10.0].sum() == 0.0
    # No catch-up bursts: OLSR peaks stay far below AODV peaks.
    _, _, aodv_surface = goodput_surface(aodv)
    assert surface.max() < aodv_surface.max()
    # Aggregate goodput clearly below AODV (paper: reactive wins).
    olsr_total = sum(result.mean_goodput_bps(s) for s in senders)
    aodv_total = sum(aodv.mean_goodput_bps(s) for s in senders)
    assert olsr_total < 0.7 * aodv_total
