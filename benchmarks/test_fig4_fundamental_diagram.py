"""Fig. 4: the fundamental diagram — flow J vs density rho.

Paper setting: L = 400, each point the ensemble average of 20 trials of a
500-iteration trace, for the deterministic (p=0) and stochastic (p=0.5)
models.

Expected shape: the p=0 curve rises linearly (J = 5 rho), peaks near the
critical density rho* = 1/6 at J* = 5/6, then decays; the p=0.5 curve lies
strictly below it everywhere with an earlier, flatter maximum.
"""

import numpy as np

from repro.analysis.fundamental import fundamental_diagram
from repro.util.rng import RngStreams

from conftest import write_table

DENSITIES = [0.05, 0.10, 0.15, 1 / 6, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50]
NUM_CELLS = 400
TRIALS = 20
STEPS = 500


def _sweep():
    streams = RngStreams(2010)
    deterministic = fundamental_diagram(
        DENSITIES, p=0.0, num_cells=NUM_CELLS, trials=TRIALS, steps=STEPS,
        rng=streams,
    )
    stochastic = fundamental_diagram(
        DENSITIES, p=0.5, num_cells=NUM_CELLS, trials=TRIALS, steps=STEPS,
        rng=streams,
    )
    return deterministic, stochastic


def test_fig4_fundamental_diagram(once):
    deterministic, stochastic = once(_sweep)

    rows = [
        (
            f"{rho:.3f}",
            float(j0),
            float(s0),
            float(j5),
            float(s5),
        )
        for rho, j0, s0, j5, s5 in zip(
            DENSITIES,
            deterministic.flows,
            deterministic.flow_std,
            stochastic.flows,
            stochastic.flow_std,
        )
    ]
    write_table(
        "fig4_fundamental_diagram",
        "Fig. 4 — fundamental diagram, L=400, 20 trials x 500 iterations",
        ["rho", "J (p=0)", "std", "J (p=0.5)", "std"],
        rows,
    )

    # Shape assertions (the paper's qualitative claims):
    # 1. p=0.5 strictly below p=0 at every density.
    assert np.all(stochastic.flows < deterministic.flows)
    # 2. Deterministic peak at the critical density, J* ~ 5/6.
    rho_star, j_star = deterministic.peak()
    assert abs(rho_star - 1 / 6) < 0.03
    assert abs(j_star - 5 / 6) < 0.08
    # 3. Free-flow branch is linear: J ~ 5 rho below rho*.
    low = np.asarray(DENSITIES) < 1 / 6
    assert np.allclose(
        deterministic.flows[low], 5 * np.asarray(DENSITIES)[low], rtol=0.15
    )
    # 4. Both curves decay in the congested branch.
    high = np.asarray(DENSITIES) >= 0.3
    assert np.all(np.diff(deterministic.flows[high]) < 0)
    assert np.all(np.diff(stochastic.flows[high]) < 0.02)
