"""Section IV-B: transient time tau of the deterministic model vs density.

The paper measures "the transient time tau for p = 0" to decide how many
samples to discard before treating v(t) as stationary, and notes that the
transient depends on the density.  This bench regenerates that
measurement: tau (ensemble mean over 10 random starts) across densities.

Expected shape: tau is small deep in the free-flow regime, peaks around
the critical density rho* = 1/(v_max+1) where jam sorting takes longest
(critical slowing down), and falls again in the deeply jammed regime.
"""

import numpy as np

from repro.analysis.montecarlo import monte_carlo
from repro.analysis.transient import transient_time
from repro.ca.history import evolve
from repro.ca.nasch import NagelSchreckenberg
from repro.util.rng import RngStreams

from conftest import write_table

DENSITIES = [0.05, 0.10, 0.15, 0.20, 0.30, 0.45]
NUM_CELLS = 400
STEPS = 800
TRIALS = 10


def _tau_for(density):
    def trial(rng):
        model = NagelSchreckenberg.from_density(
            NUM_CELLS, density, random_start=True, rng=rng
        )
        history = evolve(model, STEPS)
        return transient_time(
            history.mean_velocity_series(), tolerance=0.02
        )

    return monte_carlo(
        trial, trials=TRIALS, rng=RngStreams(int(density * 1000))
    )


def test_transient_time_vs_density(once):
    results = once(lambda: {rho: _tau_for(rho) for rho in DENSITIES})

    rows = [
        (f"{rho:.2f}", float(results[rho].mean), float(results[rho].std))
        for rho in DENSITIES
    ]
    write_table(
        "secIVB_transient",
        "Section IV-B — transient time tau (steps) of v(t), p=0, L=400",
        ["rho", "mean tau", "std"],
        rows,
    )

    taus = {rho: float(results[rho].mean) for rho in DENSITIES}
    # tau depends on the density (the section's headline claim) ...
    assert max(taus.values()) > 2.5 * min(taus.values())
    # ... peaking near the critical density.
    peak_rho = max(taus, key=taus.get)
    assert peak_rho in (0.10, 0.15, 0.20)
    # Deep free flow settles almost immediately.
    assert taus[0.05] < 15
