"""Fig. 11: packet delivery ratio per sender for AODV, OLSR and DYMO.

Paper claims this bench asserts:
* "among three protocols AODV has a better [PDR]";
* DYMO is close behind AODV;
* OLSR is clearly the worst;
* PDR degrades for the distant senders (higher sender ids sit farther
  from receiver 0 along the circuit).

The paper's overall verdict — "DYMO has a better performance than AODV and
OLSR" — rests on DYMO combining near-AODV delivery with lower route-search
delay; the delay columns let the reader check that trade-off here.
"""

import numpy as np

from conftest import table1_result, write_table

PROTOCOLS = ("AODV", "OLSR", "DYMO")


def test_fig11_pdr(once):
    results = once(
        lambda: {name: table1_result(name) for name in PROTOCOLS}
    )

    senders = sorted(results["AODV"].scenario.senders)
    rows = []
    for sender in senders:
        rows.append(
            (sender,)
            + tuple(float(results[p].pdr(sender)) for p in PROTOCOLS)
        )
    mean_row = ("mean",) + tuple(
        float(results[p].pdr()) for p in PROTOCOLS
    )
    delay_row = ("delay(s)",) + tuple(
        float(results[p].delay_stats().mean_s) for p in PROTOCOLS
    )
    overhead_row = ("ctrl pkts",) + tuple(
        results[p].control_overhead().packets for p in PROTOCOLS
    )
    write_table(
        "fig11_pdr",
        "Fig. 11 — PDR per sender, plus summary metrics",
        ["sender", *PROTOCOLS],
        rows + [mean_row, delay_row, overhead_row],
    )

    aodv, olsr, dymo = (results[p].pdr() for p in PROTOCOLS)
    # AODV delivers best overall; DYMO close; OLSR clearly worst.
    assert aodv >= dymo * 0.95
    assert dymo > olsr * 1.3
    assert aodv > olsr * 1.3
    # Reactive protocols beat OLSR for (almost) every sender.
    per_sender_wins = sum(
        results["AODV"].pdr(s) >= results["OLSR"].pdr(s) for s in senders
    )
    assert per_sender_wins >= len(senders) - 1
    # Distance effect: the nearest sender outperforms the average of the
    # three farthest for every protocol.
    for name in PROTOCOLS:
        far = np.mean([results[name].pdr(s) for s in senders[-3:]])
        assert results[name].pdr(senders[0]) >= far
