"""Fig. 7: periodograms — SRD for the deterministic model, 1/f (LRD) for
the stochastic one.

Paper panels: (a) rho=0.1, p=0 — the spectrum does NOT diverge as f -> 0;
(b) rho=0.05, p=0.5 — the spectrum diverges at the origin (1/f noise).

Deviation: in this implementation the LRD regime of the stochastic model
begins at its critical density (rho ~ 0.07 for p=0.5, v_max=5); below it
vehicles almost never interact and v(t) is white.  Panel (b) therefore
uses rho=0.08 — the smallest density in the 1/f regime.  The phenomenon
the figure demonstrates (spectral divergence at the origin for p>0) is
reproduced; only its density threshold differs.

We quantify "diverges at the origin" as the log-log slope of the
periodogram over the lowest decade of frequencies: ~0 for SRD, clearly
negative for LRD.  The Hurst exponents tell the same story.
"""

import numpy as np

from repro.analysis.correlation import hurst_aggregated_variance
from repro.analysis.spectral import spectral_slope_at_origin
from repro.ca.history import evolve
from repro.ca.nasch import NagelSchreckenberg

from conftest import write_table

STEPS = 8192
NUM_CELLS = 400


def _series():
    runs = {}
    rng = np.random.default_rng(7)
    deterministic = NagelSchreckenberg.from_density(
        NUM_CELLS, 0.1, random_start=True, rng=rng, p=0.0
    )
    runs["a (rho=0.10, p=0.0)"] = evolve(
        deterministic, STEPS, warmup=500
    ).mean_velocity_series()
    stochastic = NagelSchreckenberg.from_density(
        NUM_CELLS, 0.08, random_start=True, rng=np.random.default_rng(8),
        p=0.5,
    )
    runs["b (rho=0.08, p=0.5)"] = evolve(
        stochastic, STEPS, warmup=500
    ).mean_velocity_series()
    return runs


def test_fig7_periodogram(once):
    runs = once(_series)

    slopes = {}
    rows = []
    for name, series in runs.items():
        slope = spectral_slope_at_origin(series)
        if series.std() > 0:
            hurst = hurst_aggregated_variance(series)
        else:
            hurst = 0.5
        slopes[name] = slope
        classification = "LRD (1/f divergence)" if slope < -0.5 else "SRD"
        rows.append((name, float(slope), float(hurst), classification))
    write_table(
        "fig7_periodogram",
        "Fig. 7 — low-frequency periodogram slope and Hurst exponent",
        ["panel", "slope at origin", "Hurst", "classification"],
        rows,
    )

    # (a): deterministic — bounded spectrum at the origin.
    assert slopes["a (rho=0.10, p=0.0)"] > -0.5
    # (b): stochastic — 1/f-like divergence.
    assert slopes["b (rho=0.08, p=0.5)"] < -0.5
