"""Fig. 6: sample realisations of the average velocity v(t).

Paper: 5000-step traces at rho=0.1 and rho=0.5 vehicles/cell.  At low
density v(t) relaxes to (near) v_max and stays there; at high density it
hovers low with persistent fluctuations.
"""

import numpy as np

from repro.ca.history import evolve
from repro.ca.nasch import NagelSchreckenberg

from conftest import write_table

STEPS = 5000
NUM_CELLS = 400
P = 0.3  # the paper's Fig. 5 stochastic setting; Fig. 6 shows the same runs


def _realisations():
    series = {}
    for rho in (0.1, 0.5):
        rng = np.random.default_rng(6)
        model = NagelSchreckenberg.from_density(
            NUM_CELLS, rho, random_start=True, rng=rng, p=P
        )
        series[rho] = evolve(model, STEPS).mean_velocity_series()
    return series


def test_fig6_velocity_realizations(once):
    series = once(_realisations)

    rows = []
    for rho, v in series.items():
        tail = v[1000:]
        rows.append(
            (
                f"rho={rho}",
                float(tail.mean()),
                float(tail.std()),
                float(v[:50].mean()),
            )
        )
    write_table(
        "fig6_velocity",
        "Fig. 6 — v(t) realisations over 5000 steps (p=0.3)",
        ["series", "stationary mean v", "stationary std", "early mean v"],
        rows,
    )

    low, high = series[0.1], series[0.5]
    # Low density: close to v_max = 5, small fluctuations.
    assert low[1000:].mean() > 4.0
    # High density: far below v_max.
    assert high[1000:].mean() < 1.5
    # The two regimes are unmistakably separated (paper's visual gap).
    assert low[1000:].min() > high[1000:].max()
