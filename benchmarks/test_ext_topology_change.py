"""Extension: topology-change rate (named as future work in the paper's
conclusion: "other parameters such as ... topology change").

Measures the radio-topology churn of the CA mobility as a function of the
dawdling probability p, and correlates it with protocol delivery: more
dawdling -> more jam dynamics -> more link churn -> lower PDR.
"""

import numpy as np

from repro.analysis.topology import topology_change_summary
from repro.core.config import Scenario
from repro.core.simulation import CavenetSimulation

from conftest import write_table

P_VALUES = (0.0, 0.3, 0.5)


def _run(p):
    scenario = Scenario(dawdle_p=p, protocol="AODV", seed=4)
    simulation = CavenetSimulation(scenario)
    trace = simulation.generate_trace()
    summary = topology_change_summary(trace, scenario.tx_range_m)
    result = simulation.run(trace=trace)
    return summary, result


def test_topology_change_vs_dawdling(once):
    outcomes = once(lambda: {p: _run(p) for p in P_VALUES})

    rows = []
    for p in P_VALUES:
        summary, result = outcomes[p]
        rows.append(
            (
                f"{p:g}",
                float(summary.changes_per_second),
                float(summary.mean_link_lifetime_s),
                float(summary.mean_links),
                float(result.pdr()),
            )
        )
    write_table(
        "ext_topology_change",
        "Extension — topology churn vs dawdling p (Table I mobility, AODV)",
        ["p", "link changes/s", "mean link lifetime (s)", "mean links", "PDR"],
        rows,
    )

    churn = {p: outcomes[p][0].changes_per_second for p in P_VALUES}
    lifetime = {p: outcomes[p][0].mean_link_lifetime_s for p in P_VALUES}
    # Dawdling drives churn.
    assert churn[0.5] > churn[0.3] > churn[0.0]
    # ... and shortens link lifetimes.
    assert lifetime[0.5] < lifetime[0.0]
    # The deterministic relaxed ring is essentially static.
    assert churn[0.0] < 0.5