"""Fig. 8: AODV goodput per sender over time (Table I scenario).

Paper observations this bench asserts:
* no goodput before traffic starts at 10 s;
* the goodput is bursty — "the goodput of AODV is about ten times of [the]
  CBR packet [rate]" in its spikes, because data buffered during route
  discovery is flushed in a batch once the route appears;
* the nearest sender (id 1) sustains goodput through the run.
"""

import numpy as np

from repro.core.experiment import goodput_surface

from conftest import table1_result, write_table

CBR_RATE_BPS = 5 * 512 * 8  # 20,480 bps offered per sender


def test_fig8_aodv_goodput(once):
    result = once(table1_result, "AODV")
    centers, senders, surface = goodput_surface(result)

    rows = []
    for i, sender in enumerate(senders):
        series = surface[i]
        rows.append(
            (
                sender,
                float(result.mean_goodput_bps(sender)),
                float(series.max()),
                float(series.max() / CBR_RATE_BPS),
                float(result.pdr(sender)),
            )
        )
    write_table(
        "fig8_aodv_goodput",
        "Fig. 8 — AODV goodput per sender (bps; offered load 20480 bps)",
        ["sender", "mean goodput", "peak goodput", "peak/CBR", "PDR"],
        rows,
    )

    # Nothing delivered before the sources start.
    before_start = centers < 10.0
    assert surface[:, before_start].sum() == 0.0
    # Burstiness: some sender's peak exceeds twice the offered rate
    # (buffered packets flushed after discovery — the paper's "ten times
    # the CBR packet" effect; the exact factor depends on the stall time).
    assert surface.max() > 2 * CBR_RATE_BPS
    # The nearest sender sustains traffic.
    assert result.mean_goodput_bps(1) > 0.8 * CBR_RATE_BPS
    # Every sender gets at least some data through.
    assert all(result.mean_goodput_bps(s) > 0 for s in senders)
