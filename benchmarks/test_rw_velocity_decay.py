"""Sections I & IV-B: the Random-Waypoint velocity-decay problem vs the
CA model's finite-state stationarity.

The paper motivates the CA mobility model by the RW pathology ("the
simulation of such models has shown the problem of velocity decay") and
its known fixes (Le Boudec's Palm-calculus initialisation [2], Noble's
stationary construction [3]).  This bench measures all three behaviours:

* naive RW (v_min ~ 0): mean speed decays over the run;
* RW with the stationary initialisation: no decay;
* the NaS circuit: v(t) settles to a stationary value quickly and stays.
"""

import numpy as np

from repro.ca.history import evolve
from repro.ca.nasch import NagelSchreckenberg
from repro.mobility.random_waypoint import RandomWaypoint

from conftest import write_table


def _mean_speed_drift(trace_speeds):
    """(late mean) / (early mean) of a mean-speed series."""
    n = len(trace_speeds)
    early = np.nanmean(trace_speeds[: n // 10])
    late = np.nanmean(trace_speeds[-n // 10:])
    return float(early), float(late), float(late / early)


def _experiment():
    results = {}
    naive = RandomWaypoint(
        80, (1500.0, 1500.0), v_min=0.01, v_max=20.0,
        rng=np.random.default_rng(21),
    )
    results["RW naive"] = _mean_speed_drift(
        naive.sample(4000.0, interval_s=10.0).mean_speed_series()
    )
    fixed = RandomWaypoint(
        80, (1500.0, 1500.0), v_min=0.01, v_max=20.0, stationary_fix=True,
        rng=np.random.default_rng(21),
    )
    results["RW stationary init"] = _mean_speed_drift(
        fixed.sample(4000.0, interval_s=10.0).mean_speed_series()
    )
    ca = NagelSchreckenberg.from_density(
        400, 0.075, random_start=True, rng=np.random.default_rng(22), p=0.5
    )
    series = evolve(ca, 4000).mean_velocity_series() * 7.5  # cells -> m/s
    results["NaS circuit (rho=0.075, p=0.5)"] = _mean_speed_drift(series)
    return results


def test_rw_velocity_decay(once):
    results = once(_experiment)

    rows = [
        (name, early, late, ratio)
        for name, (early, late, ratio) in results.items()
    ]
    write_table(
        "rw_velocity_decay",
        "RW velocity decay vs CA stationarity (mean speed, m/s)",
        ["model", "early mean", "late mean", "late/early"],
        rows,
    )

    # Naive RW decays markedly.
    assert results["RW naive"][2] < 0.75
    # The stationary initialisation removes the drift.
    assert results["RW stationary init"][2] > 0.75
    # The CA process is stationary: no systematic drift.
    assert 0.8 < results["NaS circuit (rho=0.075, p=0.5)"][2] < 1.25