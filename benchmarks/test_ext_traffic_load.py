"""Extension: traffic-quantity sweep (named as future work in the paper's
conclusion: "we would like to consider other parameters such as ...
traffic quantity").

The paper itself observes (Section IV): "If we increase the background
traffic, the number of transmitted packets will again increase and the
network may be congested."  This bench makes that observation
quantitative: the Table I scenario (reduced to 20 nodes / 60 s for
runtime) under AODV at increasing CBR rates.

Expected shape: PDR holds at low rates and collapses once the multi-hop
offered load exceeds what the shared 2 Mbps channel can carry; delay and
queue drops climb with the load.
"""

import dataclasses

from repro.core.config import Scenario
from repro.core.simulation import CavenetSimulation

from conftest import write_table

RATES_PPS = (2.0, 5.0, 20.0, 60.0, 120.0)


def _run(rate_pps):
    scenario = Scenario(
        num_nodes=20,
        road_length_m=2000.0,
        sim_time_s=60.0,
        senders=(1, 2, 3, 4),
        traffic_stop_s=55.0,
        cbr_rate_pps=rate_pps,
        protocol="AODV",
        seed=4,
    )
    return CavenetSimulation(scenario).run()


def test_traffic_load_sweep(once):
    results = once(lambda: {rate: _run(rate) for rate in RATES_PPS})

    rows = []
    for rate in RATES_PPS:
        result = results[rate]
        offered = rate * 512 * 8 * len(result.scenario.senders)
        drops = result.collector.drops
        rows.append(
            (
                f"{rate:g}",
                f"{offered / 1000:.0f} kbps",
                float(result.pdr()),
                float(result.delay_stats().mean_s),
                drops.get("ifq_full", 0),
            )
        )
    write_table(
        "ext_traffic_load",
        "Extension — PDR vs offered CBR load (4 senders, AODV)",
        ["rate (pkt/s)", "offered", "PDR", "mean delay", "IFQ drops"],
        rows,
    )

    pdrs = [results[rate].pdr() for rate in RATES_PPS]
    # Light load delivers well; saturation collapses delivery.
    assert pdrs[0] > 0.8
    assert pdrs[-1] < 0.5 * pdrs[0]
    # The collapse is monotone-ish: the heaviest load is the worst.
    assert pdrs[-1] == min(pdrs)
    # Congestion shows up as queue drops.
    assert results[RATES_PPS[-1]].collector.drops.get("ifq_full", 0) > 0