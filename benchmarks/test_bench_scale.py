"""City-scale channel benchmark (BENCH_scale.json).

Seeded ring-road scenarios at N in {30, 300, 3000} — constant ~100 m
vehicle spacing, so the road grows with N exactly as a city grows — drive
scripted broadcasts through the channel twice: once on the dense O(N^2)
link cache, once with uniform-grid spatial culling (cull radius = the
550 m carrier-sense range).  Every configuration asserts the two paths
decode the identical frame sets (two-ray propagation is deterministic, so
culling is exact), then records the frames/s-per-node curve to
``benchmarks/out/BENCH_scale.json``.

The acceptance floor is the tentpole claim: at N = 3000 the grid path
must clear at least 5x the dense frames/s.  (At N = 30 the whole ring
fits inside one 3x3 cell neighborhood, so the grid does dense work plus
bucketing overhead — the curve exists to show exactly where culling
starts to pay.)
"""

import json
import os
import time

import numpy as np

from conftest import OUT_DIR, write_table
from repro.des.engine import Simulator
from repro.mac.frames import Frame, FrameType
from repro.mobility.trace import MobilityTrace, TracePlayer
from repro.net.address import BROADCAST
from repro.net.packet import Packet
from repro.phy.channel import CachedPositionProvider, Channel
from repro.phy.params import PhyParams
from repro.phy.propagation import TwoRayGround
from repro.phy.radio import Radio
from repro.phy.spatial import UniformGridIndex

NODE_COUNTS = (30, 300, 3000)
#: Mean vehicle spacing along the ring (m) — density stays constant as N
#: grows, which is what makes dense O(N^2) and culled O(N k) diverge.
SPACING_M = 100.0
CULL_RADIUS_M = 550.0
SIM_TIME_S = 5.0
#: Frames per configuration: enough to amortize rebuilds, small enough
#: that the dense N=3000 leg stays in CI-friendly territory.
NUM_FRAMES = {30: 6000, 300: 4000, 3000: 2000}
SPEEDUP_FLOOR_AT_MAX_N = 5.0


def _ring_trace(num_nodes):
    """``num_nodes`` vehicles on a ring of ``SPACING_M * N`` metres,
    circulating at ~10 m/s with seeded per-vehicle jitter."""
    rng = np.random.default_rng(7)
    radius = (SPACING_M * num_nodes) / (2 * np.pi)
    omega = (10.0 / radius) * rng.uniform(0.8, 1.2, num_nodes)
    phase0 = np.sort(rng.uniform(0, 2 * np.pi, num_nodes))
    times = np.linspace(0.0, SIM_TIME_S, 51)
    angle = phase0[None, :] + omega[None, :] * times[:, None]
    positions = np.stack(
        [radius * np.cos(angle), radius * np.sin(angle)], axis=-1
    )
    return MobilityTrace(times, positions)


class _CountingMac:
    __slots__ = ("delivered",)

    def __init__(self):
        self.delivered = 0

    def on_medium_busy(self):
        pass

    def on_medium_idle(self):
        pass

    def on_frame_received(self, frame, rx_power_w):
        self.delivered += 1

    def on_tx_done(self):
        pass


def _drive(num_nodes, trace, grid):
    """One full channel run; returns (wall_s, decoded, channel)."""
    sim = Simulator()
    provider = CachedPositionProvider(TracePlayer(trace), sim, cache_dt=0.1)
    spatial = UniformGridIndex(CULL_RADIUS_M) if grid else None
    channel = Channel(
        sim, TwoRayGround(), provider.positions, spatial=spatial
    )
    params = PhyParams.for_ranges(TwoRayGround(), 250.0, CULL_RADIUS_M)
    macs = []
    for node_id in range(num_nodes):
        radio = Radio(sim, node_id, params, channel)
        mac = _CountingMac()
        radio.attach_mac(mac)
        macs.append(mac)
    frames = NUM_FRAMES[num_nodes]
    interval = SIM_TIME_S / frames
    for k in range(frames):
        sender = (k * 17) % num_nodes  # coprime stride: full sender coverage
        packet = Packet("DATA", sender, BROADCAST, 100, 0.0)
        frame = Frame(
            FrameType.DATA, sender, BROADCAST, 128, packet=packet, seq=k
        )
        sim.schedule(
            interval * k, channel.transmit, sender, frame, 0.0005
        )
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    return wall, [mac.delivered for mac in macs], channel


def test_bench_scale_grid_vs_dense(once):
    def measure():
        curve = []
        for num_nodes in NODE_COUNTS:
            trace = _ring_trace(num_nodes)
            wall_d, decoded_d, channel_d = _drive(num_nodes, trace, False)
            wall_g, decoded_g, channel_g = _drive(num_nodes, trace, True)
            curve.append(
                (num_nodes, trace, wall_d, decoded_d, channel_d,
                 wall_g, decoded_g, channel_g)
            )
        return curve

    curve = once(measure)

    report_curve = []
    rows = []
    for (num_nodes, trace, wall_d, decoded_d, channel_d,
         wall_g, decoded_g, channel_g) in curve:
        frames = NUM_FRAMES[num_nodes]
        # Exactness first: two-ray is deterministic and the cull radius
        # equals the CS range, so the grid must deliver the identical
        # frame sets with identical telemetry.
        assert decoded_g == decoded_d, f"grid != dense at N={num_nodes}"
        assert channel_g.frames_delivered == channel_d.frames_delivered
        assert channel_g.frames_cs_dropped == channel_d.frames_cs_dropped
        assert channel_g.frames_transmitted == frames
        (low_x, low_y), (high_x, high_y) = trace.bounds()
        area_km2 = ((high_x - low_x) / 1e3) * ((high_y - low_y) / 1e3)
        speedup = wall_d / wall_g
        report_curve.append({
            "nodes": num_nodes,
            "frames": frames,
            "area_km2": round(area_km2, 2),
            "dense": {
                "wall_s": round(wall_d, 4),
                "frames_per_s": round(frames / wall_d, 1),
                "links_evaluated": channel_d.links_evaluated,
            },
            "grid": {
                "wall_s": round(wall_g, 4),
                "frames_per_s": round(frames / wall_g, 1),
                "links_evaluated": channel_g.links_evaluated,
                "occupied_cells": channel_g.spatial.num_occupied_cells,
                "mean_occupancy": round(channel_g.spatial.mean_occupancy, 2),
            },
            "frames_delivered": channel_g.frames_delivered,
            "speedup": round(speedup, 2),
        })
        rows.append([
            num_nodes, frames,
            frames / wall_d, frames / wall_g, speedup,
            channel_d.links_evaluated, channel_g.links_evaluated,
        ])

    report = {
        "spacing_m": SPACING_M,
        "cull_radius_m": CULL_RADIUS_M,
        "sim_time_s": SIM_TIME_S,
        "propagation": "two_ray",
        "curve": report_curve,
        "speedup_floor_at_n3000": SPEEDUP_FLOOR_AT_MAX_N,
    }
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "BENCH_scale.json"), "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    write_table(
        "BENCH_scale",
        "Channel scale curve: dense O(N^2) vs uniform-grid culling "
        f"(~{SPACING_M:.0f} m spacing, {CULL_RADIUS_M:.0f} m cull radius)",
        ["nodes", "frames", "dense_fps", "grid_fps", "speedup",
         "dense_links", "grid_links"],
        rows,
    )

    at_max = report_curve[-1]
    assert at_max["nodes"] == max(NODE_COUNTS)
    assert at_max["speedup"] >= SPEEDUP_FLOOR_AT_MAX_N, (
        f"grid is only {at_max['speedup']:.2f}x dense at N={at_max['nodes']} "
        f"(floor {SPEEDUP_FLOOR_AT_MAX_N}x)"
    )
