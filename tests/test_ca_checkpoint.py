"""CA checkpoint (state_dict/from_state) tests."""

import json

import numpy as np
import pytest

from repro.ca.boundary import Boundary
from repro.ca.nasch import NagelSchreckenberg


def test_roundtrip_preserves_configuration_and_state():
    model = NagelSchreckenberg(
        100, 20, p=0.4, v_max=4, rng=np.random.default_rng(5)
    )
    model.run(37)
    restored = NagelSchreckenberg.from_state(model.state_dict())
    assert restored.num_cells == 100
    assert restored.p == 0.4
    assert restored.v_max == 4
    assert restored.time == 37
    assert np.array_equal(restored.positions, model.positions)
    assert np.array_equal(restored.velocities, model.velocities)
    assert np.array_equal(restored.wraps, model.wraps)


def test_restored_model_continues_exact_trajectory():
    """Checkpoint mid-run: the restored copy's future equals the
    original's — including the stochastic dawdling draws."""
    model = NagelSchreckenberg(
        200, 60, p=0.5, rng=np.random.default_rng(9)
    )
    model.run(100)
    checkpoint = model.state_dict()
    model.run(200)
    restored = NagelSchreckenberg.from_state(checkpoint)
    restored.run(200)
    assert np.array_equal(restored.positions, model.positions)
    assert np.array_equal(restored.velocities, model.velocities)


def test_state_is_json_serialisable():
    model = NagelSchreckenberg(50, 10, p=0.3, rng=np.random.default_rng(1))
    model.run(10)
    text = json.dumps(model.state_dict())
    restored = NagelSchreckenberg.from_state(json.loads(text))
    restored.step()
    model.step()
    assert np.array_equal(restored.positions, model.positions)


def test_checkpoint_of_open_boundary_lane():
    model = NagelSchreckenberg(
        30,
        boundary=Boundary.OPEN,
        injection_rate=0.8,
        rng=np.random.default_rng(2),
    )
    model.run(40)
    restored = NagelSchreckenberg.from_state(model.state_dict())
    restored.run(20)
    model.run(20)
    assert np.array_equal(restored.positions, model.positions)
    assert np.array_equal(restored.vehicle_ids, model.vehicle_ids)


def test_rotated_ring_order_accepted():
    """A running model's arrays are rotated, not sorted: [5, 3, 4] is the
    valid ring order starting at the vehicle on cell 5."""
    model = NagelSchreckenberg(20, 3)
    state = model.state_dict()
    state["positions"] = [5, 8, 2]
    restored = NagelSchreckenberg.from_state(state)
    assert restored.positions.tolist() == [5, 8, 2]


@pytest.mark.parametrize(
    "positions",
    [
        [3, 5, 4],  # not a rotation of a sorted sequence
        [3, 3, 4],  # duplicate cell
        [3, 25, 4],  # out of range
    ],
)
def test_corrupt_state_rejected(positions):
    model = NagelSchreckenberg(20, 3)
    state = model.state_dict()
    state["positions"] = positions
    with pytest.raises(ValueError):
        NagelSchreckenberg.from_state(state)
