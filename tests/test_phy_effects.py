"""Channel effects: identity contracts, geometry, and end-to-end impact.

Three invariants matter here: a configured no-op stack (empty, or
effects whose parameters make them identities) is *bit-identical* to no
stack at all; lossy effects measurably lower delivery; and effects that
touch only some links leave every other link's event stream untouched.
"""


import numpy as np
import pytest

from repro.core import registry
from repro.core.config import Scenario
from repro.core.simulation import CavenetSimulation
from repro.phy.effects import Obstacle, ObstacleShadowing
from repro.util.errors import ConfigError


def _scenario(**overrides):
    base = dict(
        num_nodes=14,
        road_length_m=1200.0,
        sim_time_s=12.0,
        traffic_start_s=2.0,
        traffic_stop_s=10.0,
        senders=(6, 7),
        receiver=0,
        dawdle_p=0.0,
        seed=3,
    )
    base.update(overrides)
    return Scenario(**base)


def _run(**overrides):
    return CavenetSimulation(_scenario(**overrides)).run()


def _event_streams(result):
    """Event tuples modulo packet uid (a process-global counter)."""
    delivered = [
        (e.flow_id, e.time, e.size_bytes, e.delay_s, e.hops, e.node)
        for e in result.collector.delivered
    ]
    transmitted = [
        (e.kind, e.node, e.next_hop, e.time, e.size_bytes)
        for e in result.collector.transmissions
    ]
    return delivered, transmitted


# -- registry / configuration -------------------------------------------------


def test_effect_namespace_registers_the_builtins():
    names = registry.known("effect")
    assert {"db-offset", "random-loss", "obstacle"} <= set(names)


def test_effect_kinds_normalize_and_validate():
    s = _scenario(effects=({"kind": "DB-Offset", "offset_db": 3.0},))
    assert s.effects[0]["kind"] == "db-offset"
    with pytest.raises(ConfigError, match="unknown channel effect"):
        _scenario(effects=({"kind": "wormhole"},))
    with pytest.raises(ConfigError):
        _scenario(effects=("db-offset",))  # spec must be a mapping


def test_bad_effect_options_raise_config_error():
    with pytest.raises(ConfigError, match="loss_p"):
        CavenetSimulation(
            _scenario(effects=({"kind": "random-loss", "loss_p": 1.5},))
        ).run()
    bad = _scenario(effects=({"kind": "db-offset", "gain": 3.0},))
    with pytest.raises(ConfigError, match="bad options"):
        CavenetSimulation(bad).run()


# -- identity contracts -------------------------------------------------------


def test_identity_effects_are_bit_identical_to_no_stack():
    """A 0 dB offset and a loss_p=0 Bernoulli both return the input
    power object unchanged — the run must not drift by one bit (and the
    loss effect must not consume a single RNG draw)."""
    baseline = _run()
    noop = _run(
        effects=(
            {"kind": "db-offset", "offset_db": 0.0},
            {"kind": "random-loss", "loss_p": 0.0},
        )
    )
    assert _event_streams(noop) == _event_streams(baseline)
    assert noop.frames_on_air == baseline.frames_on_air
    assert noop.pdr() == baseline.pdr()


def test_obstacle_away_from_every_link_is_bit_identical():
    """Shadowing is geometric: a polygon no link ever crosses leaves
    every event stream untouched, even though the per-frame loop runs."""
    # The circuit ring has radius ~191 m; park the building at 10 km.
    far = (
        {
            "kind": "obstacle",
            "polygons": [
                [[10000.0, 10000.0], [10100.0, 10000.0], [10000.0, 10100.0]]
            ],
            "extra_loss_db": 40.0,
        },
    )
    baseline = _run()
    obstructed = _run(effects=far)
    assert _event_streams(obstructed) == _event_streams(baseline)
    assert obstructed.frames_on_air == baseline.frames_on_air


# -- lossy effects lower delivery ---------------------------------------------


def test_db_offset_attenuation_lowers_delivery():
    baseline = _run()
    attenuated = _run(effects=({"kind": "db-offset", "offset_db": 60.0},))
    # 60 dB off every link silences the circuit outright.
    assert attenuated.frames_on_air < baseline.frames_on_air
    assert attenuated.pdr() < baseline.pdr()


def test_random_loss_lowers_pdr_and_is_seed_deterministic():
    baseline = _run()
    lossy = _run(effects=({"kind": "random-loss", "loss_p": 0.3},))
    again = _run(effects=({"kind": "random-loss", "loss_p": 0.3},))
    assert lossy.pdr() < baseline.pdr()
    # Named per-sender streams: the loss pattern reproduces exactly.
    assert _event_streams(lossy) == _event_streams(again)


def test_obstacle_on_the_ring_lowers_pdr_but_keeps_mobility():
    """A building over one sector of a 2500 m circuit (ring radius
    ~398 m) shadows the multi-hop chains crossing it: delivery and
    per-frame fanout both drop, while the mobility trace — upstream of
    the channel — stays identical."""
    import math

    radius = 2500.0 / (2.0 * math.pi)
    block = (
        {
            "kind": "obstacle",
            "polygons": [
                [[radius - 100.0, -120.0], [radius + 60.0, -120.0],
                 [radius + 60.0, 120.0], [radius - 100.0, 120.0]]
            ],
            "extra_loss_db": 20.0,
        },
    )
    kwargs = dict(
        num_nodes=30, road_length_m=2500.0, sim_time_s=8.0,
        traffic_start_s=2.0, traffic_stop_s=6.0,
        senders=(14, 15, 16), receiver=0, seed=11,
    )
    baseline = _run(**kwargs)
    shadowed = _run(effects=block, **kwargs)
    assert shadowed.pdr() < baseline.pdr()
    assert (
        shadowed.collector.channel.delivery_fanout
        < baseline.collector.channel.delivery_fanout
    )
    # Mobility is upstream of the channel: the traces are identical.
    assert np.array_equal(
        baseline.trace.positions, shadowed.trace.positions
    )


# -- obstacle geometry --------------------------------------------------------


def test_obstacle_contains_and_blocks():
    square = Obstacle([[0.0, 0.0], [10.0, 0.0], [10.0, 10.0], [0.0, 10.0]])
    assert square.contains(5.0, 5.0)
    assert not square.contains(15.0, 5.0)
    # Segment crossing two edges.
    assert square.blocks(-5.0, 5.0, 15.0, 5.0)
    # Endpoint inside counts as blocked (the vehicle is indoors).
    assert square.blocks(5.0, 5.0, 50.0, 50.0)
    # Clear miss.
    assert not square.blocks(-5.0, 20.0, 15.0, 20.0)
    with pytest.raises(ConfigError, match=">= 3 vertices"):
        Obstacle([[0.0, 0.0], [1.0, 1.0]])


def test_obstacle_shadowing_scales_only_blocked_rows():
    square = Obstacle([[4.0, -1.0], [6.0, -1.0], [6.0, 1.0], [4.0, 1.0]])
    effect = ObstacleShadowing([square], extra_loss_db=10.0)
    positions = np.array(
        [[0.0, 0.0], [10.0, 0.0], [0.0, 5.0]], dtype=np.float64
    )
    powers = np.array([1e-6, 2e-6, 3e-6])
    sel_ids = np.array([0, 1, 2])
    out = effect.apply_row(powers, 0, sel_ids, positions)
    assert out is not powers  # link 0->1 crosses the square: lazy copy
    assert out[1] == 2e-6 * effect.factor
    # The sender's own slot and the unshadowed 0->2 link are untouched
    # bit-for-bit, and the scalar hook agrees with the vector hook.
    assert out[0] == powers[0]
    assert out[2] == powers[2]
    assert effect.apply_link(2e-6, 0, 1, positions) == out[1]
    assert effect.apply_link(3e-6, 0, 2, positions) == 3e-6
    # A no-op configuration returns the very same array object.
    noop = ObstacleShadowing([square], extra_loss_db=0.0)
    assert noop.apply_row(powers, 0, sel_ids, positions) is powers


# -- composition with the spatial grid / kernel backends ----------------------


def test_obstacle_run_is_identical_across_spatial_and_kernels():
    """Static effects bake into the cached rows on every spatial index
    and kernel backend; all four combinations land on one event stream."""
    import math

    radius = 1200.0 / (2.0 * math.pi)
    effects = (
        {
            "kind": "obstacle",
            "polygons": [
                [[radius - 60.0, -80.0], [radius + 40.0, -80.0],
                 [radius + 40.0, 80.0], [radius - 60.0, 80.0]]
            ],
            "extra_loss_db": 30.0,
        },
    )
    reference = None
    for spatial in ("dense", "grid"):
        for kernels in ("python", "auto"):
            result = _run(
                effects=effects, spatial=spatial, kernels=kernels,
                cull_radius_m=600.0 if spatial == "grid" else None,
            )
            streams = _event_streams(result)
            if reference is None:
                reference = streams
            else:
                assert streams == reference, (spatial, kernels)
