"""Ctrl-C during a CLI campaign: journal intact, summary printed, exit 130.

A real subprocess gets a real SIGINT mid-sweep — anything less (calling
the handler directly, raising KeyboardInterrupt in-process) would miss
the interaction between the interpreter's signal handling and the
campaign loop that this regression test exists to pin down.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _wait_for_journalled_trial(path: Path, deadline_s: float) -> int:
    """Block until the journal holds >= 1 trial record; return the count."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if path.exists():
            lines = path.read_text().splitlines()
            if len(lines) >= 2:  # header + at least one trial
                return len(lines) - 1
        time.sleep(0.05)
    raise AssertionError("no trial reached the journal before the deadline")


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals only")
def test_sigint_mid_sweep_exits_130_with_partial_summary(tmp_path):
    journal = tmp_path / "sweep.jsonl"
    # Enough sweep points that the campaign cannot finish before the
    # signal lands, each point quick enough to journal a trial early.
    argv = [
        sys.executable, "-m", "repro", "sweep",
        "--nodes", "10", "--road", "900", "--time", "10",
        "--senders", "1,2", "--p", "0.0", "--seed", "3",
        "--field", "seed", "--values", ",".join(str(v) for v in range(400)),
        "--journal", str(journal),
    ]
    env = {**os.environ, "PYTHONPATH": SRC, "PYTHONUNBUFFERED": "1"}
    proc = subprocess.Popen(
        argv, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True,
    )
    try:
        completed_before = _wait_for_journalled_trial(journal, deadline_s=60.0)
        proc.send_signal(signal.SIGINT)
        stdout, stderr = proc.communicate(timeout=60.0)
    finally:
        proc.kill()

    assert proc.returncode == 130, (stdout, stderr)
    assert "interrupted (SIGINT)" in stderr
    assert "partial results:" in stderr
    assert "--resume" in stderr  # the hint names the recovery path

    # Every trial journalled before the interrupt is durable and valid.
    lines = journal.read_text().splitlines()
    assert len(lines) - 1 >= completed_before
    header = json.loads(lines[0])
    assert "fingerprint" in header
    for line in lines[1:]:
        assert "key" in json.loads(line)
