"""AODV behaviour tests on static chain topologies."""

import pytest

from repro.routing.aodv import Aodv, AodvConfig

from helpers import TestNetwork, chain_coords


def _chain(n, **kwargs):
    network = TestNetwork(chain_coords(n), protocol="AODV", **kwargs)
    network.start_routing()
    return network


def test_route_discovery_three_hops():
    network = _chain(4)
    packet = network.nodes[0].originate_data(3, 512, flow_id=1, seq=1)
    network.run(until=5.0)
    assert packet.uid in network.delivered_uids()
    delivered = network.metrics.delivered[0]
    assert delivered.hops == 3


def test_control_traffic_recorded():
    network = _chain(4)
    network.nodes[0].originate_data(3, 512, flow_id=1, seq=1)
    network.run(until=5.0)
    kinds = {t.kind for t in network.metrics.control_transmissions()}
    assert "AODV_RREQ" in kinds
    assert "AODV_RREP" in kinds


def test_buffered_packets_flushed_after_discovery():
    network = _chain(4)
    packets = [
        network.nodes[0].originate_data(3, 512, flow_id=1, seq=i)
        for i in range(5)
    ]
    network.run(until=5.0)
    assert {p.uid for p in packets} <= network.delivered_uids()


def test_forward_route_installed_at_intermediates():
    network = _chain(4)
    network.nodes[0].originate_data(3, 512, flow_id=1, seq=1)
    network.run(until=5.0)
    aodv_1: Aodv = network.nodes[1].routing
    entry = aodv_1.table.lookup(3, network.sim.now)
    assert entry is not None
    assert entry.next_hop == 2
    # Reverse route towards the originator too.
    reverse = aodv_1.table.lookup(0, network.sim.now)
    assert reverse is not None
    assert reverse.next_hop == 0


def test_second_flow_reuses_route_without_new_rreq():
    network = _chain(4)
    network.nodes[0].originate_data(3, 512, flow_id=1, seq=1)
    network.run(until=3.0)
    rreqs_before = sum(
        1
        for t in network.metrics.control_transmissions()
        if t.kind == "AODV_RREQ"
    )
    network.nodes[0].originate_data(3, 512, flow_id=1, seq=2)
    network.run(until=4.0)
    rreqs_after = sum(
        1
        for t in network.metrics.control_transmissions()
        if t.kind == "AODV_RREQ"
    )
    assert rreqs_after == rreqs_before


def test_partitioned_destination_dropped_after_retries():
    coords = chain_coords(3) + [(5000.0, 0.0)]  # node 3 unreachable
    network = TestNetwork(coords, protocol="AODV")
    network.start_routing()
    packet = network.nodes[0].originate_data(3, 512, flow_id=1, seq=1)
    network.run(until=30.0)
    assert packet.uid not in network.delivered_uids()
    assert network.metrics.drops.get("no_route", 0) >= 1


def test_link_break_triggers_rerr_and_rediscovery():
    network = _chain(5)
    network.nodes[0].originate_data(4, 512, flow_id=1, seq=1)
    network.run(until=3.0)
    assert len(network.metrics.delivered) == 1
    # Partition the chain: node 2 leaves entirely.
    network.positions.move(2, 5000.0, 5000.0)
    network.run(until=6.0)
    network.nodes[0].originate_data(4, 512, flow_id=1, seq=2)
    network.run(until=16.0)
    kinds = [t.kind for t in network.metrics.control_transmissions()]
    assert "AODV_RERR" in kinds
    assert len(network.metrics.delivered) == 1  # seq=2 had no path
    # The relay returns.  Wait past the failing discovery's final timeout
    # (its last RREQ went out while the network was still partitioned),
    # then a fresh discovery must deliver again.
    network.positions.move(2, 400.0, 0.0)
    network.run(until=27.0)
    network.nodes[0].originate_data(4, 512, flow_id=1, seq=3)
    network.run(until=35.0)
    assert len(network.metrics.delivered) == 2


def test_hello_messages_flow():
    network = _chain(2)
    network.run(until=5.0)
    hellos = [
        t
        for t in network.metrics.control_transmissions()
        if t.kind == "AODV_HELLO"
    ]
    assert len(hellos) >= 8  # two nodes, ~1/s each


def test_ttl_expiry_drops_data():
    network = _chain(3)
    # Forge a data packet with a tiny TTL by sending through routing after
    # discovery.
    network.nodes[0].originate_data(2, 512, flow_id=1, seq=1)
    network.run(until=3.0)
    from repro.net.packet import Packet

    doomed = Packet("DATA", 0, 2, 512, network.sim.now, ttl=1)
    network.nodes[1].routing.forward_data(doomed, prev_hop=0)
    assert network.metrics.drops.get("ttl_expired", 0) == 1


def test_config_derived_times():
    config = AodvConfig()
    assert config.net_traversal_time_s == pytest.approx(2.8)
    assert config.path_discovery_time_s == pytest.approx(5.6)
    assert config.neighbor_lifetime_s == pytest.approx(2.0)


def test_buffer_overflow_drops_oldest():
    coords = chain_coords(2) + [(9000.0, 0.0)]
    network = TestNetwork(coords, protocol="AODV")
    network.start_routing()
    for i in range(70):  # buffer capacity is 64
        network.nodes[0].originate_data(2, 512, flow_id=1, seq=i)
    network.run(until=0.5)
    assert network.metrics.drops.get("buffer_overflow", 0) >= 6
