"""Space-time structure tests (paper Fig. 5 regimes)."""

import numpy as np
import pytest

from repro.analysis.spacetime import (
    jam_fraction_series,
    spacetime_matrix,
    wave_speed_estimate,
)
from repro.ca.history import evolve
from repro.ca.nasch import NagelSchreckenberg


def _history(density, p, steps=100, num_cells=400, warmup=50, seed=0):
    rng = np.random.default_rng(seed)
    model = NagelSchreckenberg.from_density(
        num_cells, density, random_start=True, rng=rng, p=p
    )
    return evolve(model, steps, warmup=warmup)


def test_laminar_regime_no_jams():
    """Fig. 5-c: rho=0.1, p=0 — free flow, nobody stopped after warmup."""
    history = _history(0.1, 0.0, warmup=400)
    assert jam_fraction_series(history).max() == 0.0


def test_congested_regime_has_jams():
    """Fig. 5-d: rho=0.5, p=0 — about half the vehicles are stopped."""
    history = _history(0.5, 0.0, warmup=400)
    assert jam_fraction_series(history).mean() > 0.3


def test_stochastic_congested_regime_has_jams():
    """Fig. 5-b: rho=0.5, p=0.3."""
    history = _history(0.5, 0.3)
    assert jam_fraction_series(history).mean() > 0.3


def test_jam_wave_travels_backwards():
    """The signature of Fig. 5: jam structures drift against traffic."""
    history = _history(0.5, 0.0, warmup=400)
    speed = wave_speed_estimate(history)
    assert speed < -0.2


def test_stochastic_jam_wave_backwards():
    history = _history(0.5, 0.3, steps=200)
    speed = wave_speed_estimate(history)
    assert speed < -0.2


def test_wave_speed_nan_when_no_jams():
    history = _history(0.05, 0.0, warmup=400)
    assert np.isnan(wave_speed_estimate(history))


def test_spacetime_matrix_velocity_encoding():
    history = _history(0.3, 0.0, steps=10)
    matrix = spacetime_matrix(history)
    assert matrix.shape == (11, 400)
    assert matrix.min() == -1
    assert matrix.max() <= 5


def test_spacetime_matrix_binary():
    history = _history(0.3, 0.0, steps=10)
    binary = spacetime_matrix(history, binary=True)
    assert set(np.unique(binary)) <= {0, 1}
    assert binary.sum(axis=1).tolist() == [history.num_vehicles] * 11


def test_wave_speed_rejects_bad_max_shift():
    history = _history(0.5, 0.0, steps=10)
    with pytest.raises(ValueError):
        wave_speed_estimate(history, max_shift=0)
