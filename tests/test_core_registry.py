"""Component-registry tests: registration, lookup, views, dispatch hygiene."""

import re
from pathlib import Path

import pytest

from repro.core import registry
from repro.core.registry import Registry, RegistryView, register, resolve
from repro.util.errors import ConfigError

SRC_CORE = Path(__file__).resolve().parent.parent / "src" / "repro" / "core"


# -- the generic Registry -----------------------------------------------------


def test_register_and_resolve_roundtrip():
    reg = Registry("routing", "routing protocol")
    reg.register("GPSR", object)
    assert reg.get("GPSR") is object
    assert reg.names() == ("GPSR",)


def test_lookup_is_case_insensitive_with_canonical_spelling():
    reg = Registry("routing", "routing protocol")
    reg.register("GPSR", object)
    assert reg.get("gpsr") is object
    assert reg.normalize("GpSr") == "GPSR"


def test_duplicate_registration_rejected():
    reg = Registry("routing", "routing protocol")
    reg.register("GPSR", object)
    with pytest.raises(ConfigError, match="already registered"):
        reg.register("GPSR", int)
    # Case-insensitively: "gpsr" collides with "GPSR".
    with pytest.raises(ConfigError, match="already registered"):
        reg.register("gpsr", int)


def test_overwrite_replaces_and_updates_canonical_spelling():
    reg = Registry("routing", "routing protocol")
    reg.register("GPSR", object)
    reg.register("gpsr", int, overwrite=True)
    assert reg.get("GPSR") is int
    assert reg.names() == ("gpsr",)


def test_unknown_name_lists_known_choices():
    reg = Registry("routing", "routing protocol")
    reg.register("GPSR", object)
    with pytest.raises(
        ConfigError, match=r"unknown routing protocol 'OSPF'.*GPSR"
    ):
        reg.normalize("OSPF")


def test_empty_name_rejected():
    reg = Registry("routing", "routing protocol")
    with pytest.raises(ConfigError, match="non-empty"):
        reg.register("", object)


def test_unregister_removes_and_unknown_unregister_raises():
    reg = Registry("routing", "routing protocol")
    reg.register("GPSR", object)
    reg.unregister("gpsr")
    assert reg.names() == ()
    with pytest.raises(ConfigError, match="nothing removed"):
        reg.unregister("GPSR")


# -- module-level namespaces --------------------------------------------------


def test_all_twelve_kinds_have_builtin_entries():
    expected = {
        "propagation": {"two_ray", "free_space", "shadowing", "nakagami"},
        "routing": {"AODV", "OLSR", "DYMO", "DSDV", "FLOODING"},
        "mobility": {"random", "uniform"},
        "traffic": {"cbr", "poisson"},
        "boundary": {"circuit", "line"},
        "fault": {
            "node-crash",
            "radio-silence",
            "channel-degradation",
            "packet-blackhole",
        },
        "spatial": {"dense", "grid"},
        "kernels": {"python", "vector", "numba", "cjit", "auto"},
        "backend": {
            "auto", "local-serial", "local-process", "local-supervised",
            "dir-queue",
        },
        "tech": {"80211-dsss", "80211p"},
        "effect": {"db-offset", "random-loss", "obstacle"},
        "queue": {"dir"},
    }
    assert set(registry.KINDS) == set(expected)
    for kind, names in expected.items():
        assert names <= set(registry.known(kind)), kind


def test_unknown_kind_rejected():
    with pytest.raises(ConfigError, match="unknown component kind"):
        registry.registry("quantum")


def test_decorator_registers_third_party_component():
    @register("routing", "TEST-NULL")
    class NullRouting:
        def __init__(self, node, rng):
            pass

    try:
        assert resolve("routing", "test-null") is NullRouting
        assert "TEST-NULL" in registry.known("routing")
    finally:
        registry.registry("routing").unregister("TEST-NULL")
    assert "TEST-NULL" not in registry.known("routing")


def test_decorator_duplicate_against_builtin_rejected():
    with pytest.raises(ConfigError, match="already registered"):
        @register("routing", "aodv")  # collides with builtin AODV
        class Impostor:
            pass


def test_describe_points_at_implementations():
    described = registry.describe("routing")
    assert described["AODV"].startswith("repro.routing.aodv:")
    assert set(described) == set(registry.known("routing"))


# -- RegistryView (the PROTOCOLS alias) ---------------------------------------


def test_protocols_view_has_mapping_semantics():
    from repro.routing import PROTOCOLS, Aodv

    assert PROTOCOLS["AODV"] is Aodv
    assert PROTOCOLS["aodv"] is Aodv  # case-insensitive like the registry
    assert "OLSR" in PROTOCOLS
    assert len(PROTOCOLS) >= 5
    assert sorted(PROTOCOLS) == sorted(registry.known("routing"))
    with pytest.raises(KeyError):
        PROTOCOLS["OSPF"]


def test_view_reflects_late_registrations():
    view = RegistryView("routing")
    before = len(view)
    register("routing", "TEST-LATE")(object)
    try:
        assert len(view) == before + 1
        assert view["test-late"] is object
    finally:
        registry.registry("routing").unregister("TEST-LATE")
    assert len(view) == before


# -- dispatch hygiene ---------------------------------------------------------


def test_no_literal_component_dispatch_in_core():
    """Mirror of the CI grep gate: core modules must not dispatch on
    component names with if/elif chains — the registry is the one seam."""
    pattern = re.compile(
        r"if (scenario|self\.scenario|base)\."
        r"(propagation|boundary|initial_placement|traffic|protocol) =="
    )
    offenders = []
    for path in SRC_CORE.rglob("*.py"):
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            if pattern.search(line):
                offenders.append(f"{path.name}:{lineno}: {line.strip()}")
    assert not offenders, "\n".join(offenders)
