"""Spatial-index tests: grid mechanics, edge cases, grid-vs-dense identity.

The uniform grid must (a) never lose a node — cell-boundary positions,
negative coordinates and empty neighbor cells included — and (b) leave
the simulation's physics untouched: with deterministic propagation and a
cull radius covering the maximum link range, a grid run is bit-identical
to the dense run, down to the PR 4 golden numbers of the default
Table I scenario.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import registry
from repro.core.config import Scenario
from repro.core.simulation import CavenetSimulation
from repro.des.engine import Simulator
from repro.mac.frames import Frame, FrameType
from repro.net.address import BROADCAST
from repro.net.packet import Packet
from repro.phy.channel import Channel
from repro.phy.params import PhyParams
from repro.phy.propagation import TwoRayGround
from repro.phy.radio import Radio
from repro.phy.spatial import UniformGridIndex, cull_radius_for
from repro.util.errors import ConfigError

from test_regression_defaults import GOLDEN


# -- grid mechanics -----------------------------------------------------------


def test_cell_boundary_nodes_are_candidates():
    """Nodes exactly on cell boundaries (x = k * cell) stay reachable."""
    cell = 550.0
    positions = np.array(
        [
            [0.0, 0.0],  # sender, on the (0,0)/(−1,0) boundary corner
            [cell, 0.0],  # exactly one cell size away -> neighbor cell
            [-cell, -cell],  # boundary corner in the negative quadrant
            [2 * cell, 0.0],  # two cells away: outside the 3x3 scan
        ]
    )
    index = UniformGridIndex(cell_size_m=cell)
    index.rebuild(positions)
    cand = set(index.candidates(0).tolist())
    assert {0, 1, 2} <= cand
    assert 3 not in cand


def test_all_in_radius_nodes_always_candidates():
    """Randomized containment: the 3x3 scan is a superset of the ball."""
    rng = np.random.default_rng(3)
    cell = 100.0
    positions = rng.uniform(-1000.0, 1000.0, size=(200, 2))
    # Mix in exact-boundary coordinates (multiples of the cell size).
    positions[::7] = np.round(positions[::7] / cell) * cell
    index = UniformGridIndex(cell_size_m=cell)
    index.rebuild(positions)
    for node in range(len(positions)):
        cand = set(index.candidates(node).tolist())
        dist = np.hypot(*(positions - positions[node]).T)
        in_radius = set(np.nonzero(dist <= cell)[0].tolist())
        assert in_radius <= cand, f"node {node} lost an in-radius neighbor"


def test_empty_neighbor_cells_are_skipped():
    """Isolated nodes see only themselves; nothing trips on empty cells."""
    positions = np.array([[0.0, 0.0], [10_000.0, 10_000.0]])
    index = UniformGridIndex(cell_size_m=550.0)
    index.rebuild(positions)
    assert index.candidates(0).tolist() == [0]
    assert index.candidates(1).tolist() == [1]
    assert index.num_occupied_cells == 2
    assert index.mean_occupancy == 1.0


def test_query_before_rebuild_raises():
    index = UniformGridIndex(cell_size_m=550.0)
    with pytest.raises(ConfigError, match="rebuild"):
        index.candidates(0)


def test_nonpositive_cell_size_rejected():
    with pytest.raises(ConfigError, match="> 0"):
        UniformGridIndex(cell_size_m=0.0)


# -- scenario field -----------------------------------------------------------


def test_cull_radius_smaller_than_link_range_rejected():
    """Culling inside carrier sense would drop detectable links."""
    with pytest.raises(ConfigError, match="maximum link range"):
        Scenario(spatial="grid", cull_radius_m=200.0)


def test_nonpositive_cull_radius_rejected():
    with pytest.raises(ConfigError, match="> 0"):
        Scenario(spatial="grid", cull_radius_m=-5.0)


def test_spatial_name_normalized_and_unknown_rejected():
    assert Scenario(spatial="GRID").spatial == "grid"
    assert Scenario().spatial == "dense"
    with pytest.raises(ConfigError, match="unknown spatial index"):
        Scenario(spatial="octree")


def test_grid_factory_derives_cell_size_from_cs_range():
    scenario = Scenario(spatial="grid")
    assert cull_radius_for(scenario) == scenario.cs_range_m
    index = registry.resolve("spatial", "grid")(scenario)
    assert isinstance(index, UniformGridIndex)
    assert index.cell_size_m == scenario.cs_range_m
    wider = registry.resolve("spatial", "grid")(
        dataclasses.replace(scenario, cull_radius_m=800.0)
    )
    assert wider.cell_size_m == 800.0
    assert registry.resolve("spatial", "dense")(scenario) is None


def test_spatial_fields_roundtrip():
    s = Scenario(spatial="grid", cull_radius_m=600.0)
    d = s.to_dict()
    assert d["spatial"] == "grid" and d["cull_radius_m"] == 600.0
    assert Scenario.from_dict(d) == s
    assert s.with_overrides({"spatial": "dense"}).spatial == "dense"


# -- grid-vs-dense channel equivalence ----------------------------------------


def _frame(tx, seq):
    packet = Packet("DATA", tx, BROADCAST, 100, 0.0)
    return Frame(FrameType.DATA, tx, BROADCAST, 128, packet=packet, seq=seq)


class _Log:
    def __init__(self, sim):
        self._sim = sim
        self.events = []

    def on_medium_busy(self):
        self.events.append(("busy", self._sim.now))

    def on_medium_idle(self):
        self.events.append(("idle", self._sim.now))

    def on_frame_received(self, frame, rx_power_w):
        self.events.append(("rx", self._sim.now, frame.tx_addr, rx_power_w))

    def on_tx_done(self):
        pass


def _run_channel(spatial, positions_list, attenuate_at=None,
                 kernels="auto"):
    """Drive scripted broadcasts over static boundary-heavy positions."""
    positions = np.array(positions_list, dtype=float)
    sim = Simulator()
    channel = Channel(
        sim, TwoRayGround(), lambda: positions, spatial=spatial,
        kernels=kernels,
    )
    params = PhyParams.for_ranges(TwoRayGround(), 250.0, 550.0)
    logs = []
    for node_id in range(len(positions)):
        radio = Radio(sim, node_id, params, channel)
        log = _Log(sim)
        radio.attach_mac(log)
        logs.append(log)
    seq = 0
    for k in range(3 * len(positions)):
        sender = k % len(positions)
        seq += 1
        sim.schedule(
            0.01 * k, channel.transmit, sender, _frame(sender, seq), 0.001
        )
    if attenuate_at is not None:
        sim.schedule_at(attenuate_at, channel.set_attenuation, 0.1)
    sim.run()
    return channel, [log.events for log in logs]


#: Positions engineered onto cell boundaries of a 550 m grid, spanning
#: negative coordinates, with one pair exactly at the 550 m CS range.
_BOUNDARY_POSITIONS = [
    [0.0, 0.0],
    [550.0, 0.0],
    [0.0, 550.0],
    [-550.0, -550.0],
    [1100.0, 0.0],
    [275.0, 275.0],
    [825.0, 550.0],
]


@pytest.mark.parametrize("kernels", ["python", "auto"])
def test_grid_event_stream_identical_to_dense_on_boundaries(kernels):
    """Grid-vs-dense identity must hold under the reference loops and
    under the best backend on this machine — one event stream, four
    (spatial, kernel) combinations."""
    channel_d, logs_d = _run_channel(None, _BOUNDARY_POSITIONS,
                                     kernels=kernels)
    channel_g, logs_g = _run_channel(
        UniformGridIndex(550.0), _BOUNDARY_POSITIONS, kernels=kernels
    )
    assert logs_d == logs_g
    assert channel_d.frames_delivered == channel_g.frames_delivered
    assert channel_d.frames_cs_dropped == channel_g.frames_cs_dropped
    # Culling must actually have culled something to be a meaningful test.
    assert channel_g.links_evaluated < channel_d.links_evaluated


def test_event_stream_identical_across_backends():
    """The same (spatial, positions) run must emit byte-equal event
    streams whichever kernel backend builds the rows."""
    _, logs_py = _run_channel(UniformGridIndex(550.0), _BOUNDARY_POSITIONS,
                              kernels="python")
    _, logs_auto = _run_channel(UniformGridIndex(550.0), _BOUNDARY_POSITIONS,
                                kernels="auto")
    _, logs_vec = _run_channel(UniformGridIndex(550.0), _BOUNDARY_POSITIONS,
                               kernels="vector")
    assert logs_py == logs_auto == logs_vec


def test_grid_identical_to_dense_through_attenuation_burst():
    """A mid-run set_attenuation invalidates rows, never grid buckets."""
    index = UniformGridIndex(550.0)
    channel_d, logs_d = _run_channel(None, _BOUNDARY_POSITIONS, 0.1)
    channel_g, logs_g = _run_channel(index, _BOUNDARY_POSITIONS, 0.1)
    assert logs_d == logs_g
    assert channel_d.frames_delivered == channel_g.frames_delivered
    # Static positions: exactly one bucket rebuild despite the burst.
    assert channel_g.cache_rebuilds == 1


# -- end-to-end bit-identity (the PR 4 goldens, grid path) --------------------


@pytest.mark.parametrize("kernels", ["python", "auto"])
def test_grid_matches_pr4_golden_on_default_scenario(kernels):
    """The default 30-node Table I scenario under spatial="grid" must
    reproduce the dense golden numbers bit-for-bit (deterministic
    two-ray propagation, cull radius = CS range = max link range) —
    under the reference kernels and the best compiled backend alike."""
    result = CavenetSimulation(
        Scenario(spatial="grid", kernels=kernels)
    ).run()
    observed = (
        result.pdr(),
        result.collector.num_originated,
        result.collector.num_delivered,
        result.frames_on_air,
        result.delay_stats().mean_s,
        result.control_overhead().packets,
    )
    assert observed == GOLDEN["AODV"]
