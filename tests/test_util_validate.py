"""Validation-helper tests."""

import pytest

from repro.util.validate import check_positive, check_probability, check_range


def test_check_positive_passes_value_through():
    assert check_positive("x", 2.5) == 2.5


@pytest.mark.parametrize("value", [0, -1, -0.001])
def test_check_positive_rejects(value):
    with pytest.raises(ValueError, match="x must be > 0"):
        check_positive("x", value)


@pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
def test_check_probability_accepts(value):
    assert check_probability("p", value) == value


@pytest.mark.parametrize("value", [-0.01, 1.01, 2])
def test_check_probability_rejects(value):
    with pytest.raises(ValueError, match="p must be in"):
        check_probability("p", value)


def test_check_range_accepts_bounds():
    assert check_range("r", 1.0, 1.0, 2.0) == 1.0
    assert check_range("r", 2.0, 1.0, 2.0) == 2.0


def test_check_range_rejects_outside():
    with pytest.raises(ValueError, match="r must be in"):
        check_range("r", 2.5, 1.0, 2.0)
