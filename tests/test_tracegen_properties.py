"""Property-based trace round-trip tests (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility.trace import MobilityTrace
from repro.tracegen.ns2 import Ns2TraceWriter, trace_from_ns2
from repro.tracegen.tabular import (
    trace_from_csv,
    trace_from_json,
    trace_to_csv,
    trace_to_json,
)


@st.composite
def traces(draw, max_nodes=5, max_samples=8, allow_teleports=True):
    """Random well-formed mobility traces."""
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    num_samples = draw(st.integers(min_value=1, max_value=max_samples))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.uniform(0.5, 2.0, num_samples))
    positions = rng.uniform(0.0, 1000.0, size=(num_samples, num_nodes, 2))
    teleported = None
    if allow_teleports and draw(st.booleans()):
        teleported = rng.random((num_samples, num_nodes)) < 0.2
        teleported[0] = False
        if not teleported.any():
            teleported = None
    return MobilityTrace(times, positions, teleported)


@given(traces())
@settings(max_examples=50, deadline=None)
def test_json_roundtrip_lossless(trace):
    restored = trace_from_json(trace_to_json(trace))
    assert np.array_equal(restored.times, trace.times)
    assert np.array_equal(restored.positions, trace.positions)
    if trace.teleported is None:
        assert restored.teleported is None
    else:
        assert np.array_equal(restored.teleported, trace.teleported)


@given(traces())
@settings(max_examples=50, deadline=None)
def test_csv_roundtrip_lossless(trace):
    restored = trace_from_csv(trace_to_csv(trace))
    assert np.array_equal(restored.times, trace.times)
    assert np.array_equal(restored.positions, trace.positions)


@st.composite
def integer_time_traces(draw, max_nodes=5, max_samples=8):
    """Traces sampled on whole seconds (so the ns-2 replayer's 1 Hz
    sampling grid hits every original sample exactly)."""
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    num_samples = draw(st.integers(min_value=2, max_value=max_samples))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    times = np.arange(num_samples, dtype=float)
    positions = rng.uniform(0.0, 1000.0, size=(num_samples, num_nodes, 2))
    return MobilityTrace(times, positions)


@given(integer_time_traces())
@settings(max_examples=30, deadline=None)
def test_ns2_replay_recovers_sampled_positions(trace):
    """Writing a trace as ns-2 setdest legs and replaying it recovers every
    sampled position (within float text noise)."""
    writer = Ns2TraceWriter(delta=0.0)
    replayed = trace_from_ns2(
        writer.render(trace), duration_s=float(trace.times[-1])
    )
    for row, t in enumerate(trace.times):
        index = int(round(float(t)))
        assert replayed.times[index] == pytest.approx(t)
        assert np.allclose(
            replayed.positions[index], trace.positions[row], atol=1e-3
        )


@given(traces())
@settings(max_examples=30, deadline=None)
def test_speeds_shape_and_nonnegative(trace):
    speeds = trace.speeds()
    assert speeds.shape == (trace.num_samples - 1, trace.num_nodes)
    finite = speeds[np.isfinite(speeds)]
    assert np.all(finite >= 0)
