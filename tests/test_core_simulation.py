"""End-to-end CavenetSimulation tests (small scenarios for speed)."""

import numpy as np
import pytest

from repro.core.config import Scenario
from repro.core.simulation import CavenetSimulation
from repro.tracegen.ns2 import Ns2TraceWriter, trace_from_ns2


def _small(protocol="AODV", **kwargs):
    defaults = dict(
        num_nodes=12,
        road_length_m=1200.0,
        sim_time_s=20.0,
        senders=(1, 2),
        traffic_start_s=5.0,
        traffic_stop_s=18.0,
        protocol=protocol,
        initial_placement="uniform",
        dawdle_p=0.0,
        seed=3,
    )
    defaults.update(kwargs)
    return Scenario(**defaults)


def test_run_produces_result():
    result = CavenetSimulation(_small()).run()
    assert result.collector.num_originated == 130  # 2 senders x 65 pkts
    assert result.frames_on_air > 0
    assert set(result.sources) == {1, 2}


def test_connected_uniform_scenario_delivers_everything():
    result = CavenetSimulation(_small()).run()
    assert result.pdr() == pytest.approx(1.0)
    assert result.pdr(1) == pytest.approx(1.0)


def test_goodput_series_covers_traffic_window():
    result = CavenetSimulation(_small()).run()
    centers, series = result.goodput_series(1)
    assert len(centers) == 20
    assert series[:4].sum() == 0.0  # before traffic start
    assert series.max() > 0


def test_mean_goodput_positive():
    result = CavenetSimulation(_small()).run()
    assert result.mean_goodput_bps(1) > 0


def test_delay_stats_available():
    result = CavenetSimulation(_small()).run()
    stats = result.delay_stats()
    assert stats.count > 0
    assert stats.mean_s > 0


def test_same_seed_same_trace():
    a = CavenetSimulation(_small()).generate_trace()
    b = CavenetSimulation(_small()).generate_trace()
    assert np.array_equal(a.positions, b.positions)


def test_different_seed_different_trace():
    a = CavenetSimulation(_small(seed=1)).generate_trace()
    b = CavenetSimulation(_small(seed=2, initial_placement="random")).generate_trace()
    # Same-seed uniform traces coincide; different seeds with random
    # placement must differ.
    c = CavenetSimulation(_small(seed=3, initial_placement="random")).generate_trace()
    assert not np.array_equal(b.positions, c.positions)


def test_trace_rebased_to_zero():
    trace = CavenetSimulation(_small()).generate_trace()
    assert trace.times[0] == 0.0
    assert trace.times[-1] == pytest.approx(20.0)


def test_external_trace_bypasses_mobility():
    """The two-block decoupling: run the CPS on a trace that went through
    the ns-2 text format."""
    scenario = _small()
    trace = CavenetSimulation(scenario).generate_trace()
    text = Ns2TraceWriter(delta=0.0).render(trace)
    replayed = trace_from_ns2(text, scenario.sim_time_s)
    result = CavenetSimulation(scenario).run(trace=replayed)
    assert result.pdr() == pytest.approx(1.0)


def test_wrong_node_count_trace_rejected():
    scenario = _small()
    other = CavenetSimulation(_small(num_nodes=5, senders=(1,))).generate_trace()
    with pytest.raises(ValueError, match="nodes"):
        CavenetSimulation(scenario).run(trace=other)


@pytest.mark.parametrize("protocol", ["AODV", "OLSR", "DYMO", "DSDV", "FLOODING"])
def test_all_protocols_run(protocol):
    result = CavenetSimulation(_small(protocol=protocol, sim_time_s=25.0,
                                      traffic_start_s=16.0,
                                      traffic_stop_s=24.0)).run()
    # Connected static ring with warm-up time: every protocol delivers.
    assert result.pdr() > 0.9


def test_line_boundary_runs():
    result = CavenetSimulation(_small(boundary="line")).run()
    assert result.collector.num_originated > 0


@pytest.mark.parametrize("propagation", ["free_space", "shadowing"])
def test_propagation_variants_run(propagation):
    result = CavenetSimulation(_small(propagation=propagation)).run()
    assert result.pdr() > 0.5


def test_reproducible_end_to_end():
    a = CavenetSimulation(_small()).run()
    b = CavenetSimulation(_small()).run()
    assert a.pdr_per_sender() == b.pdr_per_sender()
    assert a.frames_on_air == b.frames_on_air


def test_mac_stats_exposed():
    result = CavenetSimulation(_small()).run()
    assert set(result.mac_stats) == set(range(12))
    total_data = sum(s.data_tx for s in result.mac_stats.values())
    assert total_data >= result.collector.num_delivered


# -- registry dispatch at the simulation layer --------------------------------


def test_unknown_propagation_rejected_at_dispatch_point():
    """Regression: the old _propagation() if/elif silently fell back to
    log-normal shadowing for any unrecognized name.  The registry dispatch
    must reject it even when Scenario validation is bypassed."""
    scenario = _small()
    object.__setattr__(scenario, "propagation", "psychic")  # bypass checks
    from repro.util.errors import ConfigError

    with pytest.raises(ConfigError, match="unknown propagation model"):
        CavenetSimulation(scenario).run()


def test_poisson_traffic_runs_end_to_end():
    result = CavenetSimulation(
        _small(traffic="poisson", traffic_options={"off_mean_s": 0.5})
    ).run()
    assert result.collector.num_originated > 0
    assert result.pdr() > 0.5  # connected ring still delivers
    from repro.traffic.poisson import PoissonOnOffSource

    assert all(
        isinstance(source, PoissonOnOffSource)
        for source in result.sources.values()
    )


def test_traffic_options_reach_the_source():
    result = CavenetSimulation(
        _small(traffic_options={"rate_pps": 1.0})
    ).run()
    # 1 pps over a 13 s window instead of the scenario's 10 pps default.
    assert result.collector.num_originated == 26  # 2 senders x 13 pkts


def test_build_stages_are_overridable():
    """run() is an orchestrator over build_* seams; a subclass can wrap a
    single stage and inherit the rest."""

    class Instrumented(CavenetSimulation):
        def __init__(self, scenario):
            super().__init__(scenario)
            self.built = []

        def build_channel(self, sim, streams, trace):
            self.built.append("channel")
            return super().build_channel(sim, streams, trace)

        def build_nodes(self, sim, channel, phy_params, metrics, streams):
            self.built.append("nodes")
            return super().build_nodes(
                sim, channel, phy_params, metrics, streams
            )

        def build_traffic(self, nodes, streams):
            self.built.append("traffic")
            return super().build_traffic(nodes, streams)

    simulation = Instrumented(_small())
    result = simulation.run()
    assert simulation.built == ["channel", "nodes", "traffic"]
    assert result.pdr() == pytest.approx(1.0)  # behaviour unchanged
