"""Packet-trace rendering/parsing tests."""

import pytest

from repro.metrics.tracefile import parse_packet_trace, render_packet_trace

from helpers import TestNetwork, chain_coords


def _run_network():
    network = TestNetwork(chain_coords(3), protocol="AODV")
    network.start_routing()
    network.nodes[0].originate_data(2, 512, flow_id=7, seq=1)
    network.run(until=5.0)
    return network


def test_trace_contains_send_forward_receive():
    network = _run_network()
    text = render_packet_trace(network.metrics)
    assert "s " in text
    assert "f " in text
    assert "r " in text
    assert "AODV_RREQ" in text  # control traffic appears as RTR lines


def test_trace_is_time_ordered():
    network = _run_network()
    events = parse_packet_trace(render_packet_trace(network.metrics))
    times = [e.time for e in events]
    assert times == sorted(times)


def test_roundtrip_counts_match_collector():
    network = _run_network()
    events = parse_packet_trace(render_packet_trace(network.metrics))
    sends = [e for e in events if e.op == "s"]
    receives = [e for e in events if e.op == "r"]
    forwards = [e for e in events if e.op == "f"]
    assert len(sends) == network.metrics.num_originated
    assert len(receives) == network.metrics.num_delivered
    assert len(forwards) == len(network.metrics.transmissions)


def test_data_packet_traceable_end_to_end():
    network = _run_network()
    events = parse_packet_trace(render_packet_trace(network.metrics))
    send = next(e for e in events if e.op == "s")
    receive = next(e for e in events if e.op == "r" and e.uid == send.uid)
    assert receive.time > send.time
    assert receive.flow_id == send.flow_id == 7
    assert receive.node == 2  # delivered at the destination
    # The packet's RTR hand-offs happened at nodes 0 and 1.
    hops = [e.node for e in events if e.op == "f" and e.uid == send.uid]
    assert hops == [0, 1]


def test_parser_skips_junk():
    events = parse_packet_trace("garbage\n# comment\n")
    assert events == []


def test_empty_collector_renders_empty():
    from repro.des.engine import Simulator
    from repro.metrics.collector import MetricsCollector

    assert render_packet_trace(MetricsCollector(Simulator())) == ""


def test_flow_none_roundtrip():
    network = _run_network()
    events = parse_packet_trace(render_packet_trace(network.metrics))
    control = [e for e in events if e.kind.startswith("AODV")]
    assert control
    assert all(e.flow_id is None for e in control)
