"""Routing-audit tests, plus live loop-freedom checks of every protocol."""

import pytest

from repro.routing.audit import audit_all, audit_destination, next_hop_map

from helpers import TestNetwork, chain_coords


class _Stub:
    """Minimal protocol stand-in with a fixed next-hop table."""

    def __init__(self, hops):
        self._hops = hops

    def next_hop_for(self, dst):
        return self._hops.get(dst)


def test_chain_of_routes_reaches_destination():
    protocols = {
        0: _Stub({9: 1}),
        1: _Stub({9: 2}),
        2: _Stub({9: 9}),
        9: _Stub({}),
    }
    audit = audit_destination(protocols, 9)
    assert audit.loop_free
    assert sorted(audit.reaching) == [0, 1, 2]
    assert audit.dead_ends == []


def test_detects_two_node_loop():
    protocols = {
        0: _Stub({9: 1}),
        1: _Stub({9: 0}),  # 0 <-> 1 ping-pong
        9: _Stub({}),
    }
    audit = audit_destination(protocols, 9)
    assert not audit.loop_free
    assert len(audit.loops) == 1
    assert set(audit.loops[0]) == {0, 1}


def test_detects_longer_cycle_once():
    protocols = {
        0: _Stub({9: 1}),
        1: _Stub({9: 2}),
        2: _Stub({9: 0}),
        3: _Stub({9: 1}),  # feeds into the same cycle
        9: _Stub({}),
    }
    audit = audit_destination(protocols, 9)
    assert len(audit.loops) == 1  # reported once, not per entry point
    assert set(audit.loops[0]) == {0, 1, 2}


def test_dead_end_reported():
    protocols = {0: _Stub({9: 1}), 1: _Stub({}), 9: _Stub({})}
    audit = audit_destination(protocols, 9)
    assert audit.loop_free
    assert audit.dead_ends == [0, 1]


def test_next_hop_map():
    protocols = {0: _Stub({9: 1}), 1: _Stub({})}
    assert next_hop_map(protocols, 9) == {0: 1, 1: None}


@pytest.mark.parametrize("protocol", ["AODV", "OLSR", "DYMO", "DSDV"])
def test_live_protocols_loop_free_on_chain(protocol):
    """Converged real protocols on a static chain: no routing loops for
    any destination — the property sequence numbers guarantee."""
    network = TestNetwork(chain_coords(5), protocol=protocol)
    network.start_routing()
    # Give proactive protocols time to converge; trigger reactive ones.
    network.run(until=12.0)
    if protocol in ("AODV", "DYMO"):
        network.nodes[0].originate_data(4, 256, flow_id=1, seq=1)
        network.nodes[4].originate_data(0, 256, flow_id=2, seq=1)
        network.run(until=16.0)
    protocols = {n.node_id: n.routing for n in network.nodes}
    for dst, audit in audit_all(protocols).items():
        assert audit.loop_free, f"{protocol}: loop towards {dst}: {audit.loops}"


def test_flooding_has_no_next_hops():
    network = TestNetwork(chain_coords(3), protocol="FLOODING")
    network.start_routing()
    network.run(until=2.0)
    protocols = {n.node_id: n.routing for n in network.nodes}
    audit = audit_destination(protocols, 2)
    assert audit.loop_free
    assert audit.reaching == []
