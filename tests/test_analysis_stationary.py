"""Stationarity-test tests (paper Section IV-B)."""

import numpy as np
import pytest

from repro.analysis.stationary import recommended_discard, stationarity_test
from repro.ca.history import evolve
from repro.ca.nasch import NagelSchreckenberg


def test_white_noise_is_stationary():
    series = np.random.default_rng(0).normal(size=4000)
    result = stationarity_test(series)
    assert result.stationary
    assert result.p_value > 0.01


def test_drifting_mean_rejected():
    rng = np.random.default_rng(1)
    series = np.linspace(0, 5, 4000) + rng.normal(size=4000)
    result = stationarity_test(series)
    assert not result.stationary


def test_constant_series_trivially_stationary():
    result = stationarity_test(np.ones(100))
    assert result.stationary
    assert result.p_value == 1.0


def test_transient_then_flat_detected_and_cured_by_discard():
    rng = np.random.default_rng(2)
    transient = np.linspace(0.0, 5.0, 300)
    steady = 5.0 + 0.1 * rng.normal(size=3000)
    series = np.concatenate([transient, steady])
    assert not stationarity_test(series).stationary
    cured = stationarity_test(series, discard=320)
    assert cured.stationary


def test_recommended_discard_finds_the_transient():
    # Noise well inside the 2% tolerance band: the estimator requires the
    # series to *stay* within the band, so steady-state noise must not
    # brush against it (for noisier series, smooth before estimating).
    rng = np.random.default_rng(3)
    transient = np.linspace(0.0, 5.0, 200)
    steady = 5.0 + 0.015 * rng.normal(size=2000)
    series = np.concatenate([transient, steady])
    discard = recommended_discard(series)
    assert 150 <= discard <= 400


def test_deterministic_nasch_stationary_after_warmup():
    """The paper's setting: the deterministic model's v(t) pins to its
    steady state; after discarding the transient the halves agree."""
    model = NagelSchreckenberg(400, 30)
    series = evolve(model, 1000).mean_velocity_series()
    discard = recommended_discard(series)
    result = stationarity_test(series, discard=discard)
    assert result.stationary


def test_validation():
    with pytest.raises(ValueError):
        stationarity_test(np.ones(10), discard=5)
    with pytest.raises(ValueError):
        stationarity_test(np.ones(100), alpha=0.0)
    with pytest.raises(ValueError):
        stationarity_test(np.ones(100), thin=0)
