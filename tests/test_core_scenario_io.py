"""Declarative-scenario tests: to_dict/from_dict, files, overrides,
fingerprint stability."""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import Scenario
from repro.core.journal import campaign_fingerprint, canonical_json
from repro.mac.params import Mac80211Params
from repro.util.errors import ConfigError


# -- exact round-trip ---------------------------------------------------------


def test_default_scenario_roundtrips_exactly():
    s = Scenario()
    assert Scenario.from_dict(s.to_dict()) == s


def test_roundtrip_with_every_nondefault_knob():
    s = Scenario(
        num_nodes=12,
        road_length_m=1500.0,
        boundary="line",
        initial_placement="uniform",
        protocol="OLSR",
        protocol_options={"hello_interval_s": 0.5},
        senders=(2, 3),
        receiver=1,
        traffic="poisson",
        traffic_options={"on_mean_s": 2.0, "off_mean_s": 1.0},
        mac_params=Mac80211Params(cw_min=15),
        propagation="shadowing",
        sim_time_s=30.0,
        traffic_start_s=2.0,
        traffic_stop_s=25.0,
        seed=99,
    )
    assert Scenario.from_dict(s.to_dict()) == s


def test_roundtrip_with_explicit_flows():
    s = Scenario(num_nodes=8, flows=((1, 0), (2, 5)), senders=())
    d = s.to_dict()
    assert d["flows"] == [[1, 0], [2, 5]]  # JSON-native nesting
    restored = Scenario.from_dict(d)
    assert restored == s
    assert restored.flows == ((1, 0), (2, 5))  # tuples, not lists


scenario_dicts = st.fixed_dictionaries(
    {},
    optional={
        "num_nodes": st.integers(10, 40),
        "road_length_m": st.sampled_from([1000.0, 2000.0, 3000.0]),
        "boundary": st.sampled_from(["circuit", "line", "CIRCUIT"]),
        "initial_placement": st.sampled_from(["random", "uniform"]),
        "dawdle_p": st.floats(0.0, 1.0, allow_nan=False),
        "v_max": st.integers(1, 7),
        "protocol": st.sampled_from(["AODV", "olsr", "Dymo", "DSDV"]),
        "protocol_options": st.dictionaries(
            st.sampled_from(["alpha", "beta"]), st.integers(0, 5), max_size=2
        ),
        "senders": st.lists(
            st.integers(1, 9), min_size=1, max_size=4, unique=True
        ).map(tuple),
        "traffic": st.sampled_from(["cbr", "poisson"]),
        "traffic_options": st.dictionaries(
            st.sampled_from(["on_mean_s", "off_mean_s"]),
            st.floats(0.5, 5.0, allow_nan=False),
            max_size=2,
        ),
        "cbr_rate_pps": st.sampled_from([1.0, 5.0, 10.0]),
        "mac_params": st.sampled_from(
            [Mac80211Params(), Mac80211Params(cw_min=15)]
        ),
        "propagation": st.sampled_from(
            ["two_ray", "free_space", "shadowing", "nakagami", "TWO_RAY"]
        ),
        # Spatial culling: any spelling normalizes to the canonical name,
        # and cull radii at or above the default cs_range_m (550) are the
        # only valid ones (smaller is a ConfigError, tested elsewhere).
        "spatial": st.sampled_from(["dense", "grid", "GRID", "Dense"]),
        "cull_radius_m": st.sampled_from([None, 550.0, 600.0, 1250.0]),
        # Kernel backends: any spelling normalizes; every name is valid
        # on every machine (unavailable toolchains fall back at build
        # time, not at configuration time).
        "kernels": st.sampled_from(
            ["auto", "python", "vector", "numba", "cjit", "AUTO", "Python"]
        ),
        # Execution backends: any spelling normalizes; the choice never
        # affects results, so every value is round-trip safe.
        "backend": st.sampled_from(
            [
                "auto",
                "local-serial",
                "local-process",
                "local-supervised",
                "AUTO",
                "Local-Supervised",
            ]
        ),
        "lease_ttl_s": st.sampled_from([0.5, 5.0, 30.0, 300.0]),
        # Radio technology profiles: any spelling normalizes to the
        # canonical name; options ride along as a JSON-native mapping.
        "tech": st.sampled_from(
            ["80211-dsss", "80211p", "80211-DSSS", "80211P"]
        ),
        "tech_options": st.sampled_from(
            [{}, {"noise_figure_db": 8.0}, {"basic_rate_bps": 2e6}]
        ),
        # Channel effects: same spec shape as faults (list of dicts with
        # a normalized "kind"); polygons stay JSON-native nested lists.
        "effects": st.sampled_from(
            [
                (),
                ({"kind": "db-offset", "offset_db": 3.0},),
                ({"kind": "DB-Offset", "offset_db": 1.5},),
                (
                    {"kind": "random-loss", "loss_p": 0.1},
                    {
                        "kind": "obstacle",
                        "polygons": [
                            [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]]
                        ],
                        "extra_loss_db": 10.0,
                    },
                ),
            ]
        ),
        "seed": st.integers(0, 2**31),
    },
)


@settings(max_examples=60, deadline=None)
@given(scenario_dicts)
def test_property_roundtrip_over_randomized_scenarios(kwargs):
    s = Scenario(**kwargs)
    assert Scenario.from_dict(s.to_dict()) == s
    # A second hop through JSON text changes nothing either.
    assert Scenario.from_dict(json.loads(json.dumps(s.to_dict()))) == s


# -- files --------------------------------------------------------------------


def test_save_load_roundtrip(tmp_path):
    path = str(tmp_path / "scenario.json")
    s = Scenario(num_nodes=14, protocol="DYMO", traffic="poisson", seed=11)
    s.save(path)
    assert Scenario.load(path) == s
    document = json.loads((tmp_path / "scenario.json").read_text())
    assert document["format"] == "cavenet-scenario"
    assert document["schema"] == 1


def test_load_rejects_unknown_field(tmp_path):
    path = tmp_path / "bad.json"
    payload = {**Scenario().to_dict(), "nodes": 10}  # typo for num_nodes
    path.write_text(json.dumps(payload))
    with pytest.raises(ConfigError, match="unknown Scenario field.*nodes"):
        Scenario.load(str(path))


def test_load_rejects_non_json_and_wrong_format(tmp_path):
    garbled = tmp_path / "garbled.json"
    garbled.write_text("{not json")
    with pytest.raises(ConfigError, match="not JSON"):
        Scenario.load(str(garbled))
    wrong = tmp_path / "wrong.json"
    wrong.write_text(json.dumps({"format": "other-tool", "num_nodes": 10}))
    with pytest.raises(ConfigError, match="not a scenario file"):
        Scenario.load(str(wrong))


def test_save_rejects_unserializable_options(tmp_path):
    s = Scenario(protocol_options={"callback": object()})
    with pytest.raises(ConfigError, match="not JSON-serializable"):
        s.save(str(tmp_path / "nope.json"))


# -- dotted overrides (the CLI's --set) ---------------------------------------


def test_with_overrides_top_level_and_nested():
    s = Scenario().with_overrides(
        {"seed": 7, "protocol": "OLSR", "mac_params.cw_min": 15}
    )
    assert s.seed == 7
    assert s.protocol == "OLSR"
    assert s.mac_params.cw_min == 15
    assert s.mac_params.cw_max == Scenario().mac_params.cw_max


def test_with_overrides_kernels_normalizes_case():
    # The CLI's `--set kernels=CJIT` lands here; any spelling of a
    # registered backend canonicalizes, unknown names are ConfigError.
    assert Scenario().with_overrides({"kernels": "CJIT"}).kernels == "cjit"
    with pytest.raises(ConfigError, match="unknown kernel backend"):
        Scenario().with_overrides({"kernels": "fortran"})


def test_with_overrides_backend_normalizes_and_validates():
    # The CLI's `--backend` flag lands here as a scenario override.
    s = Scenario().with_overrides({"backend": "Local-Supervised"})
    assert s.backend == "local-supervised"
    with pytest.raises(ConfigError, match="unknown execution backend"):
        Scenario().with_overrides({"backend": "teleport"})
    with pytest.raises(ConfigError, match="lease_ttl_s"):
        Scenario(lease_ttl_s=0.0)


def test_with_overrides_can_add_option_keys():
    s = Scenario(traffic="poisson").with_overrides(
        {"traffic_options.on_mean_s": 2.5}
    )
    assert s.traffic_options == {"on_mean_s": 2.5}


def test_with_overrides_rejects_unknown_field_and_bad_path():
    with pytest.raises(ConfigError, match="unknown Scenario field 'sede'"):
        Scenario().with_overrides({"sede": 7})
    with pytest.raises(ConfigError, match="not a mapping"):
        Scenario().with_overrides({"seed.deep": 7})


# -- fingerprint stability ----------------------------------------------------


def test_protocol_case_spellings_share_a_fingerprint():
    lower = campaign_fingerprint(
        scenario=Scenario(protocol="aodv").to_dict(), kind="compare"
    )
    upper = campaign_fingerprint(
        scenario=Scenario(protocol="AODV").to_dict(), kind="compare"
    )
    assert lower == upper


def test_component_case_spellings_share_a_fingerprint():
    a = Scenario(boundary="CIRCUIT", propagation="TWO_RAY").to_dict()
    b = Scenario(boundary="circuit", propagation="two_ray").to_dict()
    assert campaign_fingerprint(s=a) == campaign_fingerprint(s=b)


def test_to_dict_fingerprints_match_legacy_asdict():
    """Journals recorded when fingerprints hashed dataclasses.asdict must
    still match the canonical to_dict path (same canonical JSON)."""
    for s in (
        Scenario(),
        Scenario(protocol="OLSR", senders=(1, 2), num_nodes=12,
                 road_length_m=1000.0, flows=None),
        Scenario(num_nodes=8, flows=((1, 0),), senders=(),
                 protocol_options={"x": 1}),
    ):
        assert canonical_json(dataclasses.asdict(s)) == canonical_json(
            s.to_dict()
        )


def test_prerefactor_journal_still_resumes(tmp_path):
    """A sweep journal fingerprinted via the legacy asdict path resumes
    under the to_dict path without being rejected as a different campaign."""
    from repro.core.journal import open_journal
    from repro.core.sweep import sweep_scenario

    base = Scenario(
        num_nodes=10, road_length_m=1000.0, sim_time_s=6.0,
        traffic_start_s=1.0, traffic_stop_s=5.0, senders=(1, 2), seed=3,
        dawdle_p=0.0,
    )
    values = [10, 12]
    path = str(tmp_path / "legacy.jsonl")
    legacy_fingerprint = campaign_fingerprint(
        kind="sweep",
        scenario=dataclasses.asdict(base),  # the pre-refactor expression
        field="num_nodes",
        values=values,
        trials=1,
    )
    journal = open_journal(path, legacy_fingerprint, resume=False)
    journal.close()
    # Resuming through today's code path reuses the legacy-headed journal.
    result = sweep_scenario(
        base, "num_nodes", values, journal_path=path, resume=True
    )
    assert [p.value for p in result.points] == values
