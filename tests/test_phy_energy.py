"""Energy-model tests."""

import pytest

from repro.phy.energy import EnergyMeter, EnergyParams

from helpers import TestNetwork, chain_coords


def _network_with_meters(n=3):
    network = TestNetwork(chain_coords(n), protocol="AODV")
    meters = {
        node.node_id: EnergyMeter(network.sim, node.radio)
        for node in network.nodes
    }
    network.start_routing()
    return network, meters


def test_idle_node_consumes_idle_power_only():
    network = TestNetwork(chain_coords(2))  # no routing: total silence
    meter = EnergyMeter(network.sim, network.nodes[0].radio)
    network.run(until=100.0)
    params = EnergyParams()
    assert meter.consumed_j() == pytest.approx(100.0 * params.idle_power_w)
    assert meter.tx_time_s == 0.0
    assert meter.rx_time_s == 0.0


def test_traffic_costs_more_than_idle():
    network, meters = _network_with_meters()
    network.nodes[0].originate_data(2, 512, flow_id=1, seq=1)
    network.run(until=30.0)
    idle_only = 30.0 * EnergyParams().idle_power_w
    # Everyone at least beaconed hellos: all above the idle floor.
    for meter in meters.values():
        assert meter.consumed_j() > idle_only
        assert meter.tx_time_s > 0


def test_center_hears_more_beacons_than_edge():
    """On a 5-node chain (200 m spacing, 550 m carrier-sense range) the
    centre node detects beacons from 4 neighbours, the edge from 2."""
    network, meters = _network_with_meters(5)
    network.run(until=30.0)  # hello beacons only, no data
    assert meters[2].rx_time_s > meters[0].rx_time_s
    assert meters[2].rx_time_s > meters[4].rx_time_s


def test_remaining_depletes_to_zero():
    network = TestNetwork(chain_coords(2))
    params = EnergyParams(initial_energy_j=1.0, idle_power_w=1.0)
    meter = EnergyMeter(network.sim, network.nodes[0].radio, params)
    network.run(until=0.5)
    assert not meter.depleted
    assert meter.remaining_j() == pytest.approx(0.5)
    network.run(until=2.0)
    assert meter.depleted
    assert meter.remaining_j() == 0.0


def test_attach_later_measures_from_attachment():
    network, _ = _network_with_meters()
    network.run(until=10.0)
    late = EnergyMeter(network.sim, network.nodes[0].radio)
    assert late.elapsed_s == 0.0
    assert late.tx_time_s == 0.0
    network.run(until=20.0)
    assert late.elapsed_s == pytest.approx(10.0)


def test_params_validation():
    with pytest.raises(ValueError):
        EnergyParams(tx_power_w=-1.0)
    with pytest.raises(ValueError):
        EnergyParams(initial_energy_j=0.0)


def test_energy_ranks_protocol_overhead():
    """OLSR's chattiness costs measurable energy relative to AODV when
    idle (no data at all): proactive beacons + TC flooding vs hellos."""

    def total_energy(protocol):
        network = TestNetwork(chain_coords(4), protocol=protocol)
        meters = [
            EnergyMeter(network.sim, node.radio) for node in network.nodes
        ]
        network.start_routing()
        network.run(until=60.0)
        return sum(m.consumed_j() for m in meters)

    assert total_energy("OLSR") > total_energy("AODV")
