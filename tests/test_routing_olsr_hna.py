"""OLSR HNA (gateway advertisement) tests — paper Section III-B.1:
"HNA messages are used by OLSR to disseminate network route
advertisements in the same way TC messages advertise host routes"."""

import pytest

from repro.routing.olsr import Olsr, OlsrConfig

from helpers import TestNetwork, chain_coords

#: An address outside the node-id space, representing an Internet host.
INTERNET = 1000


def _chain_with_gateway(n, gateway_index, **config_kwargs):
    """Chain of n nodes; one of them gateways for INTERNET."""
    network = TestNetwork(chain_coords(n), protocol=None)
    from repro.routing import make_protocol

    for node in network.nodes:
        if node.node_id == gateway_index:
            config = OlsrConfig(gateway_for=(INTERNET,), **config_kwargs)
        else:
            config = OlsrConfig(**config_kwargs)
        node.set_routing(
            make_protocol(
                "OLSR",
                node,
                network.streams.stream(f"routing-{node.node_id}"),
                config=config,
            )
        )
    network.start_routing()
    return network


def test_hna_messages_flood():
    network = _chain_with_gateway(4, gateway_index=3)
    network.run(until=15.0)
    hnas = [
        t
        for t in network.metrics.control_transmissions()
        if t.kind == "OLSR_HNA"
    ]
    assert hnas
    # Flooding reached beyond the gateway's neighbourhood: forwarders
    # other than the gateway transmitted HNAs too.
    assert {t.node for t in hnas} != {3}


def test_gateway_learned_across_the_network():
    network = _chain_with_gateway(4, gateway_index=3)
    network.run(until=15.0)
    olsr_0: Olsr = network.nodes[0].routing
    assert 3 in olsr_0.hna_gateways(INTERNET)


def test_external_destination_routed_via_gateway():
    network = _chain_with_gateway(4, gateway_index=3)
    network.run(until=15.0)
    packet = network.nodes[0].originate_data(INTERNET, 512, flow_id=1, seq=1)
    network.run(until=17.0)
    assert packet.uid in network.delivered_uids()
    # Delivered by the gateway, three radio hops away.
    assert network.metrics.delivered[0].hops == 3


def test_gateway_origination_delivers_locally():
    network = _chain_with_gateway(3, gateway_index=0)
    network.run(until=12.0)
    packet = network.nodes[0].originate_data(INTERNET, 512, flow_id=1, seq=1)
    assert packet.uid in network.delivered_uids()


def test_external_unreachable_without_gateway():
    network = _chain_with_gateway(3, gateway_index=2)
    network.run(until=15.0)
    packet = network.nodes[0].originate_data(9999, 512, flow_id=1, seq=1)
    network.run(until=16.0)
    assert packet.uid not in network.delivered_uids()
    assert network.metrics.drops.get("no_route", 0) >= 1


def test_nearest_gateway_preferred():
    """Two gateways for the same external network: traffic takes the
    closer one."""
    network = TestNetwork(chain_coords(5), protocol=None)
    from repro.routing import make_protocol

    for node in network.nodes:
        if node.node_id in (1, 4):
            config = OlsrConfig(gateway_for=(INTERNET,))
        else:
            config = OlsrConfig()
        node.set_routing(
            make_protocol(
                "OLSR",
                node,
                network.streams.stream(f"routing-{node.node_id}"),
                config=config,
            )
        )
    network.start_routing()
    network.run(until=20.0)
    packet = network.nodes[0].originate_data(INTERNET, 512, flow_id=1, seq=1)
    network.run(until=22.0)
    assert packet.uid in network.delivered_uids()
    assert network.metrics.delivered[0].hops == 1  # via gateway 1, not 4


def test_gateway_expiry_after_silence():
    network = _chain_with_gateway(3, gateway_index=2)
    network.run(until=15.0)
    olsr_0: Olsr = network.nodes[0].routing
    assert olsr_0.hna_gateways(INTERNET)
    # Silence the gateway: move it out of range, let holds lapse.
    network.positions.move(2, 90000.0, 0.0)
    network.run(until=network.sim.now + 20.0)
    assert olsr_0.hna_gateways(INTERNET) == {}


def test_hna_config_validation():
    with pytest.raises(ValueError):
        OlsrConfig(hna_interval_s=0.0)
