"""Channel fast-path tests: equivalence, staleness, telemetry, regression.

The vectorized link-cache path must be indistinguishable from the scalar
reference loop (``fast_path=False``): same deliveries, same received powers,
same event ordering, same RNG consumption — and the per-slot cache must
refresh when the position slot advances mid-run.
"""

import numpy as np
import pytest

from repro.core.config import Scenario
from repro.core.simulation import CavenetSimulation
from repro.des.engine import Simulator
from repro.mac.frames import Frame, FrameType
from repro.mobility.trace import MobilityTrace, TracePlayer
from repro.net.address import BROADCAST
from repro.net.packet import Packet
from repro.phy.channel import CachedPositionProvider, Channel
from repro.phy.params import PhyParams
from repro.phy.propagation import (
    LogNormalShadowing,
    NakagamiFading,
    TwoRayGround,
)
from repro.phy.radio import Radio


class RecordingMac:
    """Captures deliveries and busy edges for exact-equality comparison."""

    def __init__(self, sim):
        self._sim = sim
        self.log = []

    def on_medium_busy(self):
        self.log.append(("busy", self._sim.now))

    def on_medium_idle(self):
        self.log.append(("idle", self._sim.now))

    def on_frame_received(self, frame, rx_power_w):
        self.log.append(("rx", self._sim.now, frame.tx_addr, rx_power_w))

    def on_tx_done(self):
        pass


def _drifting_trace(num_nodes=8, spread=260.0, duration=10.0):
    """Nodes on a line that slowly stretches: links cross the CS/TX ranges
    as the run progresses, so per-slot cache refreshes change outcomes."""
    start = np.array([[i * spread, 0.0] for i in range(num_nodes)])
    end = np.array([[i * spread * 1.6, 0.0] for i in range(num_nodes)])
    times = np.array([0.0, duration])
    return MobilityTrace(times, np.stack([start, end]))


def _frame(tx, seq):
    packet = Packet("DATA", tx, BROADCAST, 100, 0.0)
    return Frame(FrameType.DATA, tx, BROADCAST, 128, packet=packet, seq=seq)


def _run(fast_path, propagation_factory, num_nodes=8, cache_dt=0.5,
         params_for=None):
    """Drive a moving-topology channel with scripted transmissions."""
    sim = Simulator()
    player = TracePlayer(_drifting_trace(num_nodes=num_nodes))
    provider = CachedPositionProvider(player, sim, cache_dt=cache_dt)
    propagation = propagation_factory()
    channel = Channel(
        sim, propagation, provider.positions, fast_path=fast_path
    )
    default_params = PhyParams.for_ranges(TwoRayGround(), 250.0, 550.0)
    macs = []
    for node_id in range(num_nodes):
        params = (
            params_for(node_id, default_params) if params_for
            else default_params
        )
        radio = Radio(sim, node_id, params, channel)
        mac = RecordingMac(sim)
        radio.attach_mac(mac)
        macs.append(mac)
    seq = 0
    for k in range(180):
        sender = k % num_nodes
        seq += 1
        sim.schedule(
            0.05 * k, channel.transmit, sender, _frame(sender, seq), 0.001
        )
    sim.run()
    return channel, [mac.log for mac in macs]


@pytest.mark.parametrize(
    "factory",
    [
        TwoRayGround,
        lambda: NakagamiFading(m=3.0, rng=np.random.default_rng(42)),
        lambda: LogNormalShadowing(sigma_db=4.0, rng=np.random.default_rng(42)),
    ],
    ids=["two_ray", "nakagami", "shadowing"],
)
def test_fast_path_event_stream_identical_to_scalar(factory):
    """Same deliveries, powers, timestamps and RNG draws as the scalar loop."""
    channel_fast, logs_fast = _run(True, factory)
    channel_ref, logs_ref = _run(False, factory)
    assert logs_fast == logs_ref
    assert channel_fast.frames_transmitted == channel_ref.frames_transmitted
    assert channel_fast.frames_delivered == channel_ref.frames_delivered
    assert channel_fast.frames_cs_dropped == channel_ref.frames_cs_dropped


def test_fast_path_with_per_radio_tx_power():
    """Non-uniform transmit powers take the per-row branch; still exact."""

    def params_for(node_id, default):
        if node_id % 2:
            return PhyParams.for_ranges(
                TwoRayGround(), 250.0, 550.0, tx_power_w=0.5
            )
        return default

    _, logs_fast = _run(True, TwoRayGround, params_for=params_for)
    _, logs_ref = _run(False, TwoRayGround, params_for=params_for)
    assert logs_fast == logs_ref
    assert any(log for log in logs_fast)


def test_cache_refreshes_when_slot_advances():
    """A link that drifts out of carrier-sense range mid-run must actually
    disappear — a stale distance matrix would keep delivering."""
    sim = Simulator()
    # Two nodes: in CS range (400 m) at t=0, far out (4000 m) by t=2.
    trace = MobilityTrace(
        np.array([0.0, 2.0]),
        np.stack([
            np.array([[0.0, 0.0], [400.0, 0.0]]),
            np.array([[0.0, 0.0], [4000.0, 0.0]]),
        ]),
    )
    provider = CachedPositionProvider(TracePlayer(trace), sim, cache_dt=0.1)
    channel = Channel(sim, TwoRayGround(), provider.positions)
    params = PhyParams.for_ranges(TwoRayGround(), 250.0, 550.0)
    radio0 = Radio(sim, 0, params, channel)
    radio1 = Radio(sim, 1, params, channel)
    mac = RecordingMac(sim)
    radio1.attach_mac(mac)
    assert radio0 is not None
    sim.schedule(0.0, channel.transmit, 0, _frame(0, 1), 0.001)
    sim.schedule(1.9, channel.transmit, 0, _frame(0, 2), 0.001)
    sim.run()
    busy_times = [t for kind, t in mac.log if kind == "busy"]
    assert len(busy_times) == 1  # only the t=0 frame was detectable
    assert busy_times[0] < 0.1
    assert channel.cache_rebuilds == 2  # one per transmitted-in slot
    assert channel.frames_delivered == 1
    assert channel.frames_cs_dropped == 1


def test_invalidate_link_cache_for_inplace_providers():
    """Providers that mutate one array in place can force a rebuild."""
    positions = np.array([[0.0, 0.0], [200.0, 0.0]])
    sim = Simulator()
    channel = Channel(sim, TwoRayGround(), lambda: positions)
    params = PhyParams.for_ranges(TwoRayGround(), 250.0, 550.0)
    Radio(sim, 0, params, channel)
    radio1 = Radio(sim, 1, params, channel)
    mac = RecordingMac(sim)
    radio1.attach_mac(mac)
    channel.transmit(0, _frame(0, 1), 0.001)
    sim.run()
    positions[1] = (5000.0, 0.0)  # in-place move, same array object
    channel.invalidate_link_cache()
    channel.transmit(0, _frame(0, 2), 0.001)
    sim.run()
    received = [e for e in mac.log if e[0] == "rx"]
    assert len(received) == 1  # second frame fell out of range


def test_channel_telemetry_counters():
    channel, logs = _run(True, TwoRayGround)
    n = channel.num_radios
    assert channel.frames_transmitted == 180
    assert (
        channel.frames_delivered + channel.frames_cs_dropped
        == 180 * (n - 1)
    )
    assert channel.cache_lookups == 180
    # 10 s of transmissions at cache_dt=0.5 -> ~21 slots touched.
    assert 1 < channel.cache_rebuilds < 30
    assert 0.5 < channel.cache_hit_rate < 1.0
    deliveries = sum(
        1 for log in logs for entry in log if entry[0] == "busy"
    )
    assert deliveries == channel.frames_delivered


def test_record_channel_telemetry_through_collector():
    from repro.metrics.collector import MetricsCollector

    sim = Simulator()
    positions = np.array([[0.0, 0.0], [200.0, 0.0]])
    channel = Channel(sim, TwoRayGround(), lambda: positions)
    params = PhyParams.for_ranges(TwoRayGround(), 250.0, 550.0)
    Radio(sim, 0, params, channel)
    Radio(sim, 1, params, channel)
    channel.transmit(0, _frame(0, 1), 0.001)
    sim.run()
    collector = MetricsCollector(sim)
    telemetry = collector.record_channel(channel)
    assert collector.channel is telemetry
    assert telemetry.frames_transmitted == 1
    assert telemetry.frames_delivered == 1
    assert telemetry.delivery_fanout == 1.0
    assert telemetry.events_processed == sim.events_processed > 0
    assert telemetry.cache_hit_rate == channel.cache_hit_rate


# -- seeded end-to-end regression (paper Fig. 8 style) -----------------------


class TestSeededRegression:
    """30 nodes, TwoRayGround, AODV, seed 4 — the Fig. 8 configuration on a
    shortened clock.  The golden numbers were produced by the pre-fast-path
    scalar implementation; the fast path must reproduce them bit-for-bit
    (the run spans ~200 position slots, so any cache-staleness bug when the
    slot advances mid-run shifts these immediately)."""

    GOLDEN = {
        "pdr": 0.915625,
        "goodput_bps": 120012.8,
        "frames_transmitted": 8875,
        "delivered": 293,
        "originated": 320,
    }

    @pytest.fixture(scope="class")
    def result(self):
        scenario = Scenario(sim_time_s=20.0, traffic_stop_s=18.0)
        assert scenario.propagation == "two_ray"
        assert scenario.protocol == "AODV"
        assert scenario.num_nodes == 30
        return CavenetSimulation(scenario).run()

    def test_pdr_bit_identical(self, result):
        assert result.pdr() == self.GOLDEN["pdr"]

    def test_goodput_bit_identical(self, result):
        assert result.mean_goodput_bps() == self.GOLDEN["goodput_bps"]

    def test_frame_and_packet_counts(self, result):
        assert result.frames_on_air == self.GOLDEN["frames_transmitted"]
        assert result.collector.num_delivered == self.GOLDEN["delivered"]
        assert result.collector.num_originated == self.GOLDEN["originated"]

    def test_telemetry_attached(self, result):
        telemetry = result.channel_telemetry
        assert telemetry is not None
        assert telemetry.frames_transmitted == result.frames_on_air
        assert telemetry.cache_hit_rate > 0.9
        assert telemetry.events_processed > telemetry.frames_transmitted
