"""PriQueue behaviour tests: control packets jump the interface queue."""

from repro.net.packet import Packet
from repro.net.queue import DropTailQueue

from helpers import TestNetwork, chain_coords


def test_priority_enqueue_goes_to_head():
    queue = DropTailQueue(10)
    data = Packet("DATA", 0, 1, 100, 0.0)
    control = Packet("AODV_RREQ", 0, -1, 24, 0.0)
    queue.enqueue(data, 1)
    queue.enqueue(control, -1, priority=True)
    first, _ = queue.dequeue()
    assert first.uid == control.uid


def test_priority_does_not_evict_when_full():
    queue = DropTailQueue(2)
    queue.enqueue(Packet("DATA", 0, 1, 100, 0.0), 1)
    queue.enqueue(Packet("DATA", 0, 1, 100, 0.0), 1)
    control = Packet("AODV_RREQ", 0, -1, 24, 0.0)
    assert not queue.enqueue(control, -1, priority=True)
    assert queue.drops == 1


def test_multiple_priority_packets_lifo_at_head():
    # Matching ns-2 PriQueue: each priority packet is inserted at the
    # head, so among themselves they come out newest-first.
    queue = DropTailQueue(10)
    a = Packet("X_CTRL", 0, -1, 10, 0.0)
    b = Packet("X_CTRL", 0, -1, 10, 0.0)
    queue.enqueue(a, -1, priority=True)
    queue.enqueue(b, -1, priority=True)
    assert queue.dequeue()[0].uid == b.uid
    assert queue.dequeue()[0].uid == a.uid


def test_send_via_prioritises_control_over_data_backlog():
    """Node.send_via marks routing packets as priority: a control packet
    injected behind a data backlog is the next thing the MAC serves."""
    network = TestNetwork(chain_coords(2))
    node = network.nodes[0]
    first = Packet("DATA", 0, 1, 1500, 0.0)
    node.send_via(first, 1)  # enters MAC service immediately
    backlog = [Packet("DATA", 0, 1, 1500, 0.0) for _ in range(5)]
    for packet in backlog:
        node.send_via(packet, 1)
    control = Packet("AODV_HELLO", 0, -1, 20, 0.0)
    node.send_via(control, -1)
    head, _ = node.mac.queue.dequeue()
    assert head.uid == control.uid  # ahead of all queued data