"""Nagel-Schreckenberg automaton unit tests."""

import numpy as np
import pytest

from repro.ca.boundary import Boundary
from repro.ca.nasch import NagelSchreckenberg


def test_single_free_vehicle_accelerates_to_vmax():
    model = NagelSchreckenberg(100, positions=[0], v_max=5)
    velocities = []
    for _ in range(7):
        model.step()
        velocities.append(int(model.velocities[0]))
    assert velocities == [1, 2, 3, 4, 5, 5, 5]


def test_deterministic_rule_2_brakes_to_gap():
    # Leader parked at cell 10, follower at 5 with v=5: gap is 4, so the
    # follower must slow to 4.
    model = NagelSchreckenberg(
        100, positions=[5, 10], velocities=[5, 0], v_max=5
    )
    model.step()
    # Leader accelerates to 1 and moves; follower brakes to gap.
    assert model.velocities[1] == 1
    assert model.velocities[0] == 4


def test_no_collisions_two_vehicles():
    model = NagelSchreckenberg(50, positions=[0, 1], v_max=5)
    for _ in range(200):
        model.step()
        assert len(set(model.positions.tolist())) == 2


def test_positions_stay_in_range():
    model = NagelSchreckenberg(40, 10, p=0.5, rng=np.random.default_rng(0))
    for _ in range(100):
        model.step()
        assert np.all(model.positions >= 0)
        assert np.all(model.positions < 40)


def test_density_conserved_on_closed_lane():
    model = NagelSchreckenberg(100, 25, p=0.3, rng=np.random.default_rng(1))
    before = model.density
    model.run(500)
    assert model.density == before
    assert model.num_vehicles == 25


def test_paper_density_definition():
    model = NagelSchreckenberg(400, 30)
    assert model.density == pytest.approx(30 / 400)


def test_occupancy_vector_matches_paper_encoding():
    # Paper III-A: L_{i,n} = v_{i,n} at occupied sites, -1 otherwise.
    model = NagelSchreckenberg(10, positions=[2, 7], velocities=[3, 0])
    lane = model.occupancy_vector()
    assert lane[2] == 3
    assert lane[7] == 0
    assert np.sum(lane == -1) == 8


def test_gaps_cyclic():
    model = NagelSchreckenberg(10, positions=[0, 4, 9])
    # 0 -> 4: 3 free; 4 -> 9: 4 free; 9 -> 0 (wrap): 0 free.
    assert model.gaps().tolist() == [3, 4, 0]


def test_gap_single_vehicle_sees_whole_lane():
    model = NagelSchreckenberg(25, positions=[11])
    assert model.gaps().tolist() == [24]


def test_wrap_increments_counter_and_sets_shift_flag():
    model = NagelSchreckenberg(10, positions=[8], velocities=[3], v_max=3)
    model.step()  # 8 + 3 = 11 -> wraps to 1
    assert model.positions[0] == 1
    assert model.wraps[0] == 1
    assert model.shifted[0]
    model.step()
    assert not model.shifted[0]


def test_odometer_accumulates_across_wraps():
    model = NagelSchreckenberg(10, positions=[0], v_max=5)
    model.run(30)
    odometer = model.odometer_cells()[0]
    # Reaches v=5 after 5 steps; total distance 1+2+3+4+5 + 25*5.
    assert odometer == 15 + 25 * 5


def test_mean_velocity_and_flow():
    model = NagelSchreckenberg(10, positions=[0, 5], velocities=[2, 4])
    assert model.mean_velocity() == pytest.approx(3.0)
    assert model.flow() == pytest.approx(0.2 * 3.0)


def test_flow_zero_when_empty():
    model = NagelSchreckenberg(
        10, boundary=Boundary.OPEN, injection_rate=0.0
    )
    assert model.flow() == 0.0
    assert np.isnan(model.mean_velocity())


def test_deterministic_full_jam_cannot_move():
    # Every cell occupied: all gaps 0 forever.
    model = NagelSchreckenberg(5, 5)
    model.run(10)
    assert model.mean_velocity() == 0.0


def test_dawdling_slows_traffic():
    free = NagelSchreckenberg(200, 20, p=0.0)
    slow = NagelSchreckenberg(200, 20, p=0.5, rng=np.random.default_rng(2))
    free.run(300)
    slow.run(300)
    assert slow.mean_velocity() < free.mean_velocity()


def test_p_equal_one_is_deterministic_and_slow():
    a = NagelSchreckenberg(100, 10, p=1.0, rng=np.random.default_rng(1))
    b = NagelSchreckenberg(100, 10, p=1.0, rng=np.random.default_rng(2))
    a.run(50)
    b.run(50)
    # p=1 dawdles every step regardless of the generator: trajectories match.
    assert np.array_equal(a.positions, b.positions)


def test_from_density_places_requested_fraction():
    model = NagelSchreckenberg.from_density(400, 0.075)
    assert model.num_vehicles == 30


def test_from_density_random_start_is_sorted_and_unique():
    model = NagelSchreckenberg.from_density(
        100, 0.3, random_start=True, rng=np.random.default_rng(5)
    )
    pos = model.positions
    assert np.all(np.diff(pos) > 0)
    assert model.num_vehicles == 30


def test_vehicles_records_match_arrays():
    model = NagelSchreckenberg(20, positions=[3, 9], velocities=[1, 2])
    records = model.vehicles()
    assert [v.cell for v in records] == [3, 9]
    assert [v.velocity for v in records] == [1, 2]
    assert [v.vehicle_id for v in records] == [0, 1]
    assert records[0].gap == 5


def test_open_boundary_vehicles_leave():
    model = NagelSchreckenberg(
        10,
        positions=[8],
        velocities=[5],
        v_max=5,
        boundary=Boundary.OPEN,
        injection_rate=0.0,
    )
    model.step()
    assert model.num_vehicles == 0


def test_open_boundary_injection():
    model = NagelSchreckenberg(
        20,
        boundary=Boundary.OPEN,
        injection_rate=1.0,
        rng=np.random.default_rng(0),
    )
    model.step()
    assert model.num_vehicles == 1
    assert model.positions[0] == 0
    model.run(50)
    assert model.num_vehicles > 1
    ids = model.vehicle_ids
    assert len(set(ids.tolist())) == len(ids)


class TestValidation:
    def test_rejects_unsorted_positions(self):
        with pytest.raises(ValueError):
            NagelSchreckenberg(10, positions=[5, 3])

    def test_rejects_duplicate_positions(self):
        with pytest.raises(ValueError):
            NagelSchreckenberg(10, positions=[3, 3])

    def test_rejects_out_of_range_positions(self):
        with pytest.raises(ValueError):
            NagelSchreckenberg(10, positions=[10])

    def test_rejects_too_many_vehicles(self):
        with pytest.raises(ValueError):
            NagelSchreckenberg(10, 11)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            NagelSchreckenberg(10, 2, p=1.5)

    def test_rejects_bad_vmax(self):
        with pytest.raises(ValueError):
            NagelSchreckenberg(10, 2, v_max=0)

    def test_rejects_mismatched_velocities(self):
        with pytest.raises(ValueError):
            NagelSchreckenberg(10, positions=[1, 2], velocities=[1])

    def test_rejects_excess_velocity(self):
        with pytest.raises(ValueError):
            NagelSchreckenberg(10, positions=[1], velocities=[9], v_max=5)

    def test_closed_lane_requires_population(self):
        with pytest.raises(ValueError):
            NagelSchreckenberg(10)

    def test_rejects_negative_steps(self):
        model = NagelSchreckenberg(10, 2)
        with pytest.raises(ValueError):
            model.run(-1)
