"""Wall-clock speedup of the parallel trial runner (slow; needs >= 4 cores).

The acceptance bar for the engine: a 20-trial ensemble with
``max_workers=4`` must beat serial execution by more than 2x wall-clock.
The trial body burns CPU (a seeded NaS evolution) so the measurement
reflects genuine parallel execution, not just overlapped sleeping.
"""

import os
import time

import numpy as np
import pytest

from repro.analysis.montecarlo import monte_carlo
from repro.util.rng import RngStreams

TRIALS = 20


def _cpu_bound_trial(rng):
    """~0.2s of NumPy work per trial, deterministic in the generator."""
    total = 0.0
    for _ in range(12):
        matrix = rng.random((220, 220))
        total += float(np.linalg.norm(matrix @ matrix))
    return total


@pytest.mark.slow
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup demonstration needs >= 4 cores",
)
def test_20_trial_ensemble_speedup_over_2x():
    started = time.perf_counter()
    serial = monte_carlo(
        _cpu_bound_trial, trials=TRIALS, rng=RngStreams(11), max_workers=1
    )
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = monte_carlo(
        _cpu_bound_trial, trials=TRIALS, rng=RngStreams(11), max_workers=4
    )
    parallel_s = time.perf_counter() - started

    # identical physics first, speed second
    assert np.array_equal(serial.samples, parallel.samples)
    speedup = serial_s / parallel_s
    assert speedup > 2.0, (
        f"expected > 2x speedup with 4 workers, measured {speedup:.2f}x "
        f"({serial_s:.2f}s serial vs {parallel_s:.2f}s parallel)"
    )
