"""SIGTERM during a CLI campaign: same grace as Ctrl-C, exit 143.

Schedulers, CI timeouts and ``kill`` all deliver SIGTERM; the CLI must
treat it exactly like SIGINT — journal already durable, partial summary
and a ``--resume`` hint on stderr — distinguished only by the
conventional exit code (128 + 15).  A real subprocess gets a real
signal, matching the SIGINT regression test it mirrors.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _wait_for_journalled_trial(path: Path, deadline_s: float) -> int:
    """Block until the journal holds >= 1 trial record; return the count."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if path.exists():
            lines = path.read_text().splitlines()
            if len(lines) >= 2:  # header + at least one trial
                return len(lines) - 1
        time.sleep(0.05)
    raise AssertionError("no trial reached the journal before the deadline")


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals only")
def test_sigterm_mid_sweep_exits_143_with_partial_summary(tmp_path):
    journal = tmp_path / "sweep.jsonl"
    argv = [
        sys.executable, "-m", "repro", "sweep",
        "--nodes", "10", "--road", "900", "--time", "10",
        "--senders", "1,2", "--p", "0.0", "--seed", "3",
        "--field", "seed", "--values", ",".join(str(v) for v in range(400)),
        "--journal", str(journal),
    ]
    env = {**os.environ, "PYTHONPATH": SRC, "PYTHONUNBUFFERED": "1"}
    proc = subprocess.Popen(
        argv, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True,
    )
    try:
        completed_before = _wait_for_journalled_trial(journal, deadline_s=60.0)
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=60.0)
    finally:
        proc.kill()

    assert proc.returncode == 143, (stdout, stderr)
    assert "interrupted (SIGTERM)" in stderr
    assert "partial results:" in stderr
    assert "--resume" in stderr  # the hint names the recovery path

    # Every trial journalled before the terminate is durable and valid.
    lines = journal.read_text().splitlines()
    assert len(lines) - 1 >= completed_before
    header = json.loads(lines[0])
    assert "fingerprint" in header
    for line in lines[1:]:
        assert "key" in json.loads(line)
