"""CLI tests (small scenarios for speed)."""

import json

import pytest

from repro.cli import build_parser, main

SMALL = [
    "--nodes", "10",
    "--road", "1000",
    "--time", "20",
    "--senders", "1,2",
    "--p", "0",
    "--seed", "3",
]


def test_run_command(capsys):
    assert main(["run", "--protocol", "AODV", *SMALL]) == 0
    out = capsys.readouterr().out
    assert "PDR" in out
    assert "sender  1" in out
    assert "delivered" in out


def test_compare_command(capsys):
    assert main(["compare", "--protocols", "AODV,DYMO", *SMALL]) == 0
    out = capsys.readouterr().out
    assert "AODV" in out and "DYMO" in out
    assert "mean PDR" in out
    assert "█" in out  # bar chart rendered


def test_trace_command_stdout_ns2(capsys):
    assert main(["trace", *SMALL]) == 0
    out = capsys.readouterr().out
    assert "$node_(0) set X_" in out
    assert "setdest" in out


def test_trace_command_json_to_file(tmp_path, capsys):
    path = tmp_path / "trace.json"
    assert main(
        ["trace", "--format", "json", "--output", str(path), *SMALL]
    ) == 0
    document = json.loads(path.read_text())
    assert document["format"] == "cavenet-trace"
    assert document["num_nodes"] == 10
    assert "wrote" in capsys.readouterr().out


def test_trace_command_csv(capsys):
    assert main(["trace", "--format", "csv", *SMALL]) == 0
    out = capsys.readouterr().out
    assert out.startswith("time,node,x,y,teleported")


def test_fundamental_command(capsys):
    assert main(
        [
            "fundamental",
            "--densities", "0.1,0.167,0.3",
            "--cells", "100",
            "--trials", "2",
            "--steps", "50",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "peak:" in out
    assert "J(rho):" in out


def test_spacetime_command(capsys):
    assert main(
        ["spacetime", "--density", "0.5", "--cells", "100", "--steps", "20"]
    ) == 0
    out = capsys.readouterr().out
    assert "#" in out  # jammed vehicles visible at rho=0.5


def test_compare_with_workers(capsys):
    assert main(
        ["compare", "--protocols", "AODV,DYMO", "--workers", "2", *SMALL]
    ) == 0
    out = capsys.readouterr().out
    assert "[2 workers]" in out
    assert "trials ok" in out
    assert "mean PDR" in out


def test_fundamental_with_workers(capsys):
    assert main(
        [
            "fundamental",
            "--densities", "0.1,0.3",
            "--cells", "100",
            "--trials", "2",
            "--steps", "50",
            "--workers", "2",
            "--trial-timeout", "60",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "[2 workers]" in out
    assert "peak:" in out


def test_fundamental_workers_match_serial(capsys):
    args = [
        "fundamental", "--densities", "0.1,0.3", "--cells", "100",
        "--trials", "2", "--steps", "50",
    ]
    assert main(args) == 0
    serial = capsys.readouterr().out
    assert main([*args, "--workers", "2"]) == 0
    parallel = capsys.readouterr().out
    # identical numbers; the parallel run only adds its telemetry line
    assert serial.strip() in parallel


def test_negative_workers_rejected():
    with pytest.raises(SystemExit):
        main(
            ["compare", "--protocols", "AODV", "--workers", "-2", *SMALL]
        )


def test_parser_requires_command(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_unknown_propagation_is_config_error_exit_2(capsys):
    # The parser no longer hard-codes propagation choices; the registry
    # rejects unknown names at Scenario construction, listing the live set.
    code = main(["run", "--propagation", "psychic", *SMALL])
    assert code == 2
    err = capsys.readouterr().err
    assert "error (ConfigError)" in err
    assert "unknown propagation model" in err
    assert "psychic" in err and "two_ray" in err


# -- sweep command + campaign flags (journal / resume / strict) ---------------


def test_sweep_command(capsys):
    assert main(
        ["sweep", "--field", "num_nodes", "--values", "10,12", *SMALL]
    ) == 0
    out = capsys.readouterr().out
    assert "sweep: num_nodes over 2 values" in out
    assert "PDR" in out and "failed" in out


def test_sweep_journal_then_resume(tmp_path, capsys):
    journal = str(tmp_path / "sweep.jsonl")
    base = ["sweep", "--field", "num_nodes", "--values", "10,12", *SMALL]
    assert main([*base, "--journal", journal]) == 0
    first = capsys.readouterr().out
    assert main([*base, "--journal", journal, "--resume"]) == 0
    second = capsys.readouterr().out
    assert "2 resumed from journal" in second
    # The aggregated table is identical whether computed fresh or resumed.
    table = [l for l in first.splitlines() if l and "resumed" not in l
             and not l.startswith("[")]
    resumed_table = [l for l in second.splitlines() if l and
                     "resumed" not in l and not l.startswith("[")]
    assert table == resumed_table


def test_resume_requires_journal(capsys):
    code = main(
        ["sweep", "--field", "num_nodes", "--values", "10,12",
         "--resume", *SMALL]
    )
    assert code == 2
    assert "error (ConfigError)" in capsys.readouterr().err


def test_sweep_resume_rejects_changed_campaign(tmp_path, capsys):
    journal = str(tmp_path / "sweep.jsonl")
    base = ["sweep", "--field", "num_nodes", *SMALL]
    assert main(
        [*base, "--values", "10,12", "--journal", journal]
    ) == 0
    capsys.readouterr()
    code = main(
        [*base, "--values", "10,14", "--journal", journal, "--resume"]
    )
    assert code == 2
    assert "error (JournalCorruptError)" in capsys.readouterr().err


def test_unknown_protocol_is_config_error_exit_2(capsys):
    code = main(
        ["run", "--protocol", "BOGUS", "--nodes", "12", "--road", "1000",
         "--time", "20", "--senders", "1,2", "--p", "0", "--seed", "3"]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "error (ConfigError)" in err
    assert "BOGUS" in err


def _sweep_with_induced_failures(monkeypatch, extra):
    import repro.core.sweep as sweep_mod

    real = sweep_mod._run_scenario_trial

    def failing(scenario):
        # Exactly one (value, trial) combination fails, across retries:
        # trial 1 of num_nodes=12 (per-trial seeds are base.seed + 1000*t).
        if scenario.num_nodes == 12 and scenario.seed == 1003:
            raise RuntimeError("induced trial failure")
        return real(scenario)

    monkeypatch.setattr(sweep_mod, "_run_scenario_trial", failing)
    return main(
        ["sweep", "--field", "num_nodes", "--values", "10,12",
         "--trials", "2", *SMALL, *extra]
    )


def test_failed_trials_are_reported_not_silently_dropped(
    monkeypatch, capsys
):
    assert _sweep_with_induced_failures(monkeypatch, []) == 0
    captured = capsys.readouterr()
    assert "WARNING" in captured.err
    assert "num_nodes=12: 1/2 trials failed" in captured.err


def test_strict_makes_failed_trials_fatal(monkeypatch, capsys):
    assert _sweep_with_induced_failures(monkeypatch, ["--strict"]) == 1
    captured = capsys.readouterr()
    assert "--strict" in captured.err


def test_resume_without_journal_names_the_missing_flag(capsys):
    # Rejected at argument-validation time: the hint must name --journal
    # and no campaign work may have started (the error comes instantly).
    code = main(
        ["sweep", "--field", "num_nodes", "--values", "10,12",
         "--resume", *SMALL]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "error (ConfigError)" in err
    assert "--journal" in err  # the usage hint names the fix


def test_sweep_supervised_backend_matches_default(tmp_path, capsys):
    base = ["sweep", "--field", "num_nodes", "--values", "10,12", *SMALL]
    assert main(base) == 0
    default_out = capsys.readouterr().out
    assert main([
        *base, "--workers", "2", "--backend", "local-supervised",
        "--lease-ttl", "20", "--max-retries", "2",
    ]) == 0
    supervised_out = capsys.readouterr().out
    # Identical aggregates: the backend affects failure handling only.
    table = [l for l in default_out.splitlines() if l.startswith(" ")]
    sup_table = [l for l in supervised_out.splitlines() if l.startswith(" ")]
    assert table == sup_table


def test_negative_max_retries_rejected(capsys):
    code = main(
        ["sweep", "--field", "num_nodes", "--values", "10",
         "--max-retries", "-1", *SMALL]
    )
    assert code == 2
    assert "--max-retries" in capsys.readouterr().err


def test_components_lists_backend_namespace(capsys):
    assert main(["components"]) == 0
    out = capsys.readouterr().out
    assert "backend (execution backend" in out
    assert "local-supervised" in out


def test_components_lists_every_registered_namespace(capsys):
    """Regression gate: a registry namespace added without surfacing in
    ``repro components`` is invisible to users — every kind in
    ``registry.KINDS`` must print a section with at least one entry."""
    from repro.core import registry

    assert main(["components"]) == 0
    out = capsys.readouterr().out
    for kind in registry.KINDS:
        noun = registry.registry(kind).noun
        assert f"{kind} ({noun}" in out, f"namespace {kind} not listed"
    # The PHY realism namespaces specifically, with their builtins.
    assert "tech (tech profile" in out
    assert "80211p" in out
    assert "effect (channel effect" in out
    assert "obstacle" in out


def test_run_accepts_tech_flag_and_reports_energy(capsys):
    assert main(["run", *SMALL, "--tech", "80211P"]) == 0
    out = capsys.readouterr().out
    assert "energy consumed" in out


def test_journal_inspect_and_compact_commands(tmp_path, capsys):
    journal = str(tmp_path / "sweep.jsonl")
    assert main([
        "sweep", "--field", "num_nodes", "--values", "10,12", *SMALL,
        "--workers", "2", "--backend", "local-supervised",
        "--journal", journal,
    ]) == 0
    capsys.readouterr()

    assert main(["journal", "inspect", journal]) == 0
    out = capsys.readouterr().out
    assert "fingerprint" in out
    assert "trials ok       : 2" in out
    assert "torn tail         : no" in out

    assert main(["journal", "compact", journal]) == 0
    out = capsys.readouterr().out
    assert "compacted" in out
    # Compacted journal still resumes the identical campaign.  (The
    # backend is a Scenario field, so it is part of the fingerprint —
    # the resume must name the same one.)
    assert main([
        "sweep", "--field", "num_nodes", "--values", "10,12", *SMALL,
        "--workers", "2", "--backend", "local-supervised",
        "--journal", journal, "--resume",
    ]) == 0
    assert "2 resumed from journal" in capsys.readouterr().out


def test_journal_inspect_missing_file_is_typed_error(tmp_path, capsys):
    code = main(["journal", "inspect", str(tmp_path / "nope.jsonl")])
    assert code == 2
    assert "error (" in capsys.readouterr().err


def test_serve_submit_run_and_attach_roundtrip(tmp_path, capsys):
    from repro.core.config import Scenario

    spool = str(tmp_path / "spool")
    envelope = str(tmp_path / "job.json")
    scenario = Scenario(
        num_nodes=8, sim_time_s=10.0, senders=(1, 2), seed=3,
        traffic_start_s=1.0, traffic_stop_s=8.0,
    )
    with open(envelope, "w") as handle:
        json.dump(
            {"scenario": scenario.to_dict(), "field": "num_nodes",
             "values": [8, 10], "trials": 1, "max_workers": 2},
            handle,
        )
    assert main(["serve", spool, "--once", "--submit", envelope]) == 0
    out = capsys.readouterr().out
    assert "1 job(s) finished" in out

    assert main(["attach", spool, "--no-follow"]) == 0
    lines = [
        json.loads(line)
        for line in capsys.readouterr().out.splitlines() if line
    ]
    assert sorted(tuple(r["key"]) for r in lines) == [(8, 0), (10, 0)]
    assert all(r["ok"] for r in lines)

    # A worker attached to the drained spool finds nothing to do.
    assert main(["worker", spool]) == 0
    assert "0 trial(s)" in capsys.readouterr().err


def test_serve_rejects_bad_envelope_at_submit(tmp_path, capsys):
    spool = str(tmp_path / "spool")
    envelope = str(tmp_path / "bad.json")
    with open(envelope, "w") as handle:
        json.dump({"scenario": {}, "field": "nope", "values": [1]}, handle)
    code = main(["serve", spool, "--once", "--submit", envelope])
    assert code == 2
    assert "error (ConfigError)" in capsys.readouterr().err


def test_sweep_dir_queue_backend_matches_default(tmp_path, capsys):
    base = ["sweep", "--field", "num_nodes", "--values", "10,12", *SMALL]
    assert main(base) == 0
    default_out = capsys.readouterr().out
    assert main([
        *base, "--workers", "2", "--backend", "dir-queue",
        "--queue-dir", str(tmp_path / "q"), "--lease-ttl", "20",
    ]) == 0
    queued_out = capsys.readouterr().out
    table = [l for l in default_out.splitlines() if l.startswith(" ")]
    q_table = [l for l in queued_out.splitlines() if l.startswith(" ")]
    assert table == q_table


def test_journal_inspect_quarantined_exits_3(tmp_path, capsys):
    from repro.core.journal import TrialJournal, campaign_fingerprint

    path = str(tmp_path / "poison.jsonl")
    fp = campaign_fingerprint(kind="test", what="cli-quarantine")
    with TrialJournal(path, fp) as journal:
        journal.record_lease(
            (1, 0), "vm-a:11:1", 1, ttl_s=3600.0,
            host="vm-a", pid=11, token=2,
        )
        journal.record_quarantine(
            (0, 0), owners=["vm-a:11:1", "vm-b:22:2"], attempts=2,
            traceback_text="Fatal Python error: Aborted",
        )
    assert main(["journal", "inspect", path]) == 3
    out = capsys.readouterr().out
    assert "quarantined" in out
    assert "fencing token 2" in out
    assert "vm-a" in out and "vm-b:22:2" in out
    assert "Fatal Python error" in out
