"""CLI tests (small scenarios for speed)."""

import json

import pytest

from repro.cli import build_parser, main

SMALL = [
    "--nodes", "10",
    "--road", "1000",
    "--time", "20",
    "--senders", "1,2",
    "--p", "0",
    "--seed", "3",
]


def test_run_command(capsys):
    assert main(["run", "--protocol", "AODV", *SMALL]) == 0
    out = capsys.readouterr().out
    assert "PDR" in out
    assert "sender  1" in out
    assert "delivered" in out


def test_compare_command(capsys):
    assert main(["compare", "--protocols", "AODV,DYMO", *SMALL]) == 0
    out = capsys.readouterr().out
    assert "AODV" in out and "DYMO" in out
    assert "mean PDR" in out
    assert "█" in out  # bar chart rendered


def test_trace_command_stdout_ns2(capsys):
    assert main(["trace", *SMALL]) == 0
    out = capsys.readouterr().out
    assert "$node_(0) set X_" in out
    assert "setdest" in out


def test_trace_command_json_to_file(tmp_path, capsys):
    path = tmp_path / "trace.json"
    assert main(
        ["trace", "--format", "json", "--output", str(path), *SMALL]
    ) == 0
    document = json.loads(path.read_text())
    assert document["format"] == "cavenet-trace"
    assert document["num_nodes"] == 10
    assert "wrote" in capsys.readouterr().out


def test_trace_command_csv(capsys):
    assert main(["trace", "--format", "csv", *SMALL]) == 0
    out = capsys.readouterr().out
    assert out.startswith("time,node,x,y,teleported")


def test_fundamental_command(capsys):
    assert main(
        [
            "fundamental",
            "--densities", "0.1,0.167,0.3",
            "--cells", "100",
            "--trials", "2",
            "--steps", "50",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "peak:" in out
    assert "J(rho):" in out


def test_spacetime_command(capsys):
    assert main(
        ["spacetime", "--density", "0.5", "--cells", "100", "--steps", "20"]
    ) == 0
    out = capsys.readouterr().out
    assert "#" in out  # jammed vehicles visible at rho=0.5


def test_compare_with_workers(capsys):
    assert main(
        ["compare", "--protocols", "AODV,DYMO", "--workers", "2", *SMALL]
    ) == 0
    out = capsys.readouterr().out
    assert "[2 workers]" in out
    assert "trials ok" in out
    assert "mean PDR" in out


def test_fundamental_with_workers(capsys):
    assert main(
        [
            "fundamental",
            "--densities", "0.1,0.3",
            "--cells", "100",
            "--trials", "2",
            "--steps", "50",
            "--workers", "2",
            "--trial-timeout", "60",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "[2 workers]" in out
    assert "peak:" in out


def test_fundamental_workers_match_serial(capsys):
    args = [
        "fundamental", "--densities", "0.1,0.3", "--cells", "100",
        "--trials", "2", "--steps", "50",
    ]
    assert main(args) == 0
    serial = capsys.readouterr().out
    assert main([*args, "--workers", "2"]) == 0
    parallel = capsys.readouterr().out
    # identical numbers; the parallel run only adds its telemetry line
    assert serial.strip() in parallel


def test_negative_workers_rejected():
    with pytest.raises(SystemExit):
        main(
            ["compare", "--protocols", "AODV", "--workers", "-2", *SMALL]
        )


def test_parser_requires_command(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_propagation():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--propagation", "psychic"])
