"""Metric aggregation tests on synthetic collector events."""

import numpy as np
import pytest

from repro.des.engine import Simulator
from repro.metrics.collector import MetricsCollector
from repro.metrics.delay import delay_stats, mean_delay
from repro.metrics.goodput import goodput_series, total_goodput_bps
from repro.metrics.overhead import control_overhead, normalized_routing_load
from repro.metrics.pdr import packet_delivery_ratio, pdr_by_flow
from repro.net.packet import Packet


def _collector_with_traffic():
    sim = Simulator()
    collector = MetricsCollector(sim)

    def at(t, fn, *args):
        sim.schedule(t, fn, *args)

    # Flow 1: 4 packets sent, 3 delivered.  Flow 2: 2 sent, 0 delivered.
    packets = {}
    for i, t in enumerate([1.0, 2.0, 3.0, 4.0]):
        packet = Packet("DATA", 1, 0, 512, t, flow_id=1, seq=i)
        packets[i] = packet
        at(t, collector.data_originated, packet)
    for i, t in enumerate([1.5, 2.5, 3.5]):
        at(t, collector.data_delivered, packets[i])
    for i, t in enumerate([1.0, 2.0]):
        packet = Packet("DATA", 2, 0, 512, t, flow_id=2, seq=i)
        at(t, collector.data_originated, packet)
    ctrl = Packet("AODV_RREQ", 1, -1, 24, 0.5)
    at(0.5, collector.transmission, ctrl, 1, -1)
    at(0.6, collector.transmission, ctrl, 2, -1)
    sim.run()
    return collector


def test_pdr_per_flow():
    collector = _collector_with_traffic()
    assert packet_delivery_ratio(collector, 1) == pytest.approx(0.75)
    assert packet_delivery_ratio(collector, 2) == 0.0
    assert packet_delivery_ratio(collector) == pytest.approx(0.5)
    assert pdr_by_flow(collector) == {
        1: pytest.approx(0.75),
        2: pytest.approx(0.0),
    }


def test_pdr_by_flow_includes_silent_configured_flows():
    # A configured flow that never originated a packet must appear with
    # an explicit 0.0 — its absence would hide a totally dead sender.
    collector = _collector_with_traffic()
    table = pdr_by_flow(collector, flows=[1, 2, 3])
    assert table == {
        1: pytest.approx(0.75),
        2: pytest.approx(0.0),
        3: pytest.approx(0.0),
    }
    assert list(table) == [1, 2, 3]  # sorted, deterministic order


def test_pdr_by_flow_includes_delivered_only_flows():
    # Deliveries with no matching origination (e.g. after a collector
    # reset) still surface rather than being silently dropped.
    sim = Simulator()
    collector = MetricsCollector(sim)
    packet = Packet("DATA", 5, 0, 512, 0.0, flow_id=7)
    collector.data_delivered(packet)
    assert 7 in pdr_by_flow(collector)


def test_pdr_empty_flow_is_zero():
    sim = Simulator()
    collector = MetricsCollector(sim)
    assert packet_delivery_ratio(collector, 42) == 0.0


def test_duplicate_delivery_counted_once():
    sim = Simulator()
    collector = MetricsCollector(sim)
    packet = Packet("DATA", 1, 0, 512, 0.0, flow_id=1)
    collector.data_originated(packet)
    collector.data_delivered(packet)
    collector.data_delivered(packet)
    assert collector.num_delivered == 1


def test_delay_stats():
    collector = _collector_with_traffic()
    stats = delay_stats(collector, 1)
    assert stats.count == 3
    assert stats.mean_s == pytest.approx(0.5)
    assert mean_delay(collector, 1) == pytest.approx(0.5)


def test_delay_empty_is_nan():
    sim = Simulator()
    collector = MetricsCollector(sim)
    assert np.isnan(mean_delay(collector))
    assert delay_stats(collector).count == 0


def test_goodput_series_bins():
    collector = _collector_with_traffic()
    centers, series = goodput_series(collector, 1, duration_s=5.0, bin_s=1.0)
    assert len(centers) == 5
    # Deliveries at 1.5, 2.5, 3.5: bins 1, 2, 3 get 512*8 bps each.
    assert series[0] == 0.0
    assert series[1] == pytest.approx(512 * 8)
    assert series[4] == 0.0


def test_total_goodput():
    collector = _collector_with_traffic()
    bps = total_goodput_bps(collector, 1, 0.0, 4.0)
    assert bps == pytest.approx(3 * 512 * 8 / 4.0)


def test_goodput_validation():
    collector = _collector_with_traffic()
    with pytest.raises(ValueError):
        goodput_series(collector, 1, duration_s=0.0)
    with pytest.raises(ValueError):
        goodput_series(collector, 1, duration_s=5.0, bin_s=0.0)
    with pytest.raises(ValueError):
        total_goodput_bps(collector, 1, 5.0, 5.0)


def test_control_overhead():
    collector = _collector_with_traffic()
    overhead = control_overhead(collector)
    assert overhead.packets == 2
    assert overhead.bytes == 48
    assert overhead.by_kind == {"AODV_RREQ": 2}


def test_normalized_routing_load():
    collector = _collector_with_traffic()
    assert normalized_routing_load(collector) == pytest.approx(2 / 3)


def test_normalized_routing_load_edge_cases():
    sim = Simulator()
    collector = MetricsCollector(sim)
    assert normalized_routing_load(collector) == 0.0
    ctrl = Packet("X_CTRL", 0, -1, 10, 0.0)
    collector.transmission(ctrl, 0, -1)
    assert normalized_routing_load(collector) == float("inf")


def test_transmission_partition():
    collector = _collector_with_traffic()
    assert len(collector.control_transmissions()) == 2
    assert collector.data_transmissions() == []


# -- resilience metrics -------------------------------------------------------


def test_pdr_timeline_bins_by_origination_time():
    from repro.metrics.resilience import pdr_timeline

    collector = _collector_with_traffic()
    timeline = pdr_timeline(collector, sim_time_s=5.0, bin_s=1.0)
    assert [start for start, _ in timeline] == [0.0, 1.0, 2.0, 3.0, 4.0]
    by_start = dict(timeline)
    # Window [1, 2): flow-1 packet 0 (delivered) + flow-2 packet (lost).
    assert by_start[1.0] == pytest.approx(0.5)
    # Window [4, 5): flow-1 packet 3, never delivered.
    assert by_start[4.0] == pytest.approx(0.0)
    # Window [0, 1): nothing offered -> NaN, not 0.0.
    assert np.isnan(by_start[0.0])
    with pytest.raises(ValueError):
        pdr_timeline(collector, sim_time_s=5.0, bin_s=0.0)


def test_availability_counts_only_traffic_carrying_windows():
    from repro.metrics.resilience import availability

    collector = _collector_with_traffic()
    # Carrying windows: [1,2)=0.5, [2,3)=0.5, [3,4)=0.5, [4,5)=0.0.
    assert availability(collector, 5.0, bin_s=1.0, threshold=0.5) == (
        pytest.approx(3 / 4)
    )
    # Only window [3, 4) (a lone delivered flow-1 packet) clears 0.9.
    assert availability(collector, 5.0, threshold=0.9) == pytest.approx(1 / 4)
    empty = MetricsCollector(Simulator())
    assert np.isnan(availability(empty, 5.0))


def test_recovery_times_measure_gap_to_next_delivery():
    from repro.metrics.resilience import recovery_times_s

    sim = Simulator()
    collector = MetricsCollector(sim)
    packet = Packet("DATA", 1, 0, 512, 0.0, flow_id=1)
    collector.data_originated(packet)
    sim.schedule(2.0, collector.record_fault, "node_down", 0)
    sim.schedule(3.0, collector.record_fault, "node_up", 0)
    sim.schedule(3.4, collector.data_delivered, packet)
    sim.schedule(8.0, collector.record_fault, "node_up", 0)
    sim.run()
    gaps = recovery_times_s(collector)
    assert gaps[3.0] == pytest.approx(0.4)
    assert np.isnan(gaps[8.0])  # nothing delivered after the second one
    assert len(gaps) == 2  # node_down events are not recovery points
