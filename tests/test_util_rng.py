"""Random-stream determinism and independence tests."""

import numpy as np

from repro.util.rng import RngStreams


def test_same_seed_same_stream():
    a = RngStreams(5).stream("x").random(10)
    b = RngStreams(5).stream("x").random(10)
    assert np.array_equal(a, b)


def test_different_names_give_different_streams():
    streams = RngStreams(5)
    a = streams.stream("alpha").random(10)
    b = streams.stream("beta").random(10)
    assert not np.array_equal(a, b)


def test_different_seeds_give_different_streams():
    a = RngStreams(1).stream("x").random(10)
    b = RngStreams(2).stream("x").random(10)
    assert not np.array_equal(a, b)


def test_stream_object_is_cached():
    streams = RngStreams(0)
    assert streams.stream("mac") is streams.stream("mac")


def test_drawing_from_one_stream_does_not_affect_another():
    reference = RngStreams(9).stream("b").random(5)
    streams = RngStreams(9)
    streams.stream("a").random(1000)  # consume heavily
    assert np.array_equal(streams.stream("b").random(5), reference)


def test_spawn_is_deterministic():
    a = RngStreams(3).spawn("trial-0").stream("x").random(3)
    b = RngStreams(3).spawn("trial-0").stream("x").random(3)
    assert np.array_equal(a, b)


def test_spawn_children_differ():
    parent = RngStreams(3)
    a = parent.spawn("trial-0").stream("x").random(3)
    b = parent.spawn("trial-1").stream("x").random(3)
    assert not np.array_equal(a, b)


def test_seed_property():
    assert RngStreams(42).seed == 42
