"""Text-rendering tests."""

import numpy as np
import pytest

from repro.analysis.render import (
    render_bars,
    render_heatmap,
    render_sparkline,
    render_spacetime,
)
from repro.ca.history import evolve
from repro.ca.nasch import NagelSchreckenberg


class TestSpacetime:
    def _history(self, density, p=0.0, steps=50):
        rng = np.random.default_rng(1)
        model = NagelSchreckenberg.from_density(
            200, density, random_start=True, rng=rng, p=p
        )
        return evolve(model, steps, warmup=100)

    def test_dimensions_respected(self):
        text = render_spacetime(self._history(0.3), max_rows=10, max_cols=40)
        lines = text.splitlines()
        assert len(lines) <= 10
        assert all(len(line) <= 40 for line in lines)

    def test_laminar_has_no_jam_glyphs(self):
        text = render_spacetime(self._history(0.05))
        assert "#" not in text
        assert "o" in text

    def test_jammed_shows_jam_glyphs(self):
        text = render_spacetime(self._history(0.5))
        assert "#" in text

    def test_charset(self):
        text = render_spacetime(self._history(0.3, p=0.3))
        assert set(text) <= set(".o#\n")

    def test_validation(self):
        with pytest.raises(ValueError):
            render_spacetime(self._history(0.3), max_rows=0)


class TestSparkline:
    def test_length_capped_at_width(self):
        line = render_sparkline(np.arange(1000), width=50)
        assert len(line) == 50

    def test_short_series_uncompressed(self):
        line = render_sparkline([1.0, 2.0, 3.0], width=50)
        assert len(line) == 3

    def test_monotone_series_monotone_glyphs(self):
        line = render_sparkline([0, 1, 2, 3, 4, 5, 6, 7], width=10)
        assert line == "▁▂▃▄▅▆▇█"

    def test_constant_series_mid_height(self):
        line = render_sparkline([5.0] * 10, width=10)
        assert len(set(line)) == 1

    def test_nan_rendered_as_space(self):
        line = render_sparkline([1.0, float("nan"), 2.0], width=10)
        assert line[1] == " "

    def test_empty_series(self):
        assert render_sparkline([]) == ""

    def test_validation(self):
        with pytest.raises(ValueError):
            render_sparkline([1.0], width=0)


class TestHeatmap:
    def test_dimensions(self):
        grid = np.random.default_rng(0).random((40, 200))
        text = render_heatmap(grid, max_rows=8, max_cols=50)
        lines = text.splitlines()
        assert len(lines) <= 8
        assert all(len(line) <= 50 for line in lines)

    def test_zero_matrix_renders_blank(self):
        text = render_heatmap(np.zeros((3, 5)))
        assert set(text) <= {" ", "\n"}

    def test_peak_renders_densest_glyph(self):
        grid = np.zeros((2, 2))
        grid[0, 0] = 10.0
        text = render_heatmap(grid)
        assert "@" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            render_heatmap(np.zeros(5))
        with pytest.raises(ValueError):
            render_heatmap(np.zeros((2, 2)), max_rows=0)


class TestBars:
    def test_labels_and_values_present(self):
        text = render_bars({"AODV": 0.7, "OLSR": 0.3})
        assert "AODV" in text and "0.700" in text
        assert "OLSR" in text and "0.300" in text

    def test_bar_lengths_proportional(self):
        text = render_bars({"a": 1.0, "b": 0.5}, width=20)
        line_a, line_b = text.splitlines()
        assert line_a.count("█") == 2 * line_b.count("█")

    def test_max_value_scaling(self):
        text = render_bars({"a": 0.5}, width=10, max_value=1.0)
        assert text.count("█") == 5

    def test_empty_mapping(self):
        assert render_bars({}) == ""

    def test_validation(self):
        with pytest.raises(ValueError):
            render_bars({"a": 1.0}, width=0)
