"""Affine-transform tests, including the paper's Fig. 3 lane matrix."""

import math

import numpy as np
import pytest

from repro.geometry.affine import AffineTransform2D


def test_identity_maps_points_to_themselves():
    t = AffineTransform2D.identity()
    assert t.apply(3.0, -2.0) == (3.0, -2.0)


def test_translation():
    t = AffineTransform2D.translation(10.0, -5.0)
    assert t.apply(1.0, 1.0) == (11.0, -4.0)


def test_rotation_quarter_turn():
    t = AffineTransform2D.rotation(math.pi / 2)
    x, y = t.apply(1.0, 0.0)
    assert x == pytest.approx(0.0, abs=1e-12)
    assert y == pytest.approx(1.0)


def test_scaling():
    t = AffineTransform2D.scaling(2.0, 3.0)
    assert t.apply(1.0, 1.0) == (2.0, 3.0)


def test_paper_fig3_lane3_matrix():
    # Paper Section III-D: lane 3 swaps axes and translates:
    # X~ = [[0,1,XS/2],[1,0,D],[0,0,1]] @ (X, 0, 1).
    xs, delta = 1000.0, 0.5
    lane3 = AffineTransform2D(
        [[0.0, 1.0, xs / 2], [1.0, 0.0, delta], [0.0, 0.0, 1.0]]
    )
    x, y = lane3.apply(100.0, 0.0)
    assert x == pytest.approx(xs / 2)  # Y-component of input is 0
    assert y == pytest.approx(100.0 + delta)


def test_axis_swap():
    t = AffineTransform2D.axis_swap()
    assert t.apply(2.0, 7.0) == (7.0, 2.0)


def test_compose_applies_right_first():
    rotate = AffineTransform2D.rotation(math.pi / 2)
    translate = AffineTransform2D.translation(1.0, 0.0)
    # translate∘rotate: rotate (1,0)->(0,1), then translate -> (1,1)
    x, y = translate.compose(rotate).apply(1.0, 0.0)
    assert (round(x, 12), round(y, 12)) == (1.0, 1.0)


def test_matmul_is_compose():
    a = AffineTransform2D.translation(1.0, 2.0)
    b = AffineTransform2D.scaling(2.0, 2.0)
    assert (a @ b) == a.compose(b)


def test_inverse_roundtrip():
    t = AffineTransform2D.rotation(0.7) @ AffineTransform2D.translation(3, 4)
    x, y = t.inverse().apply(*t.apply(5.0, -1.0))
    assert x == pytest.approx(5.0)
    assert y == pytest.approx(-1.0)


def test_apply_many_matches_apply():
    t = AffineTransform2D.rotation(0.3) @ AffineTransform2D.translation(1, 1)
    points = np.array([[0.0, 0.0], [1.0, 2.0], [-3.0, 4.0]])
    batch = t.apply_many(points)
    for point, mapped in zip(points, batch):
        assert t.apply(*point) == pytest.approx(tuple(mapped))


def test_rejects_bad_shapes():
    with pytest.raises(ValueError):
        AffineTransform2D(np.eye(2))
    with pytest.raises(ValueError):
        AffineTransform2D([[1, 0, 0], [0, 1, 0], [1, 0, 1]])


def test_apply_many_rejects_bad_shape():
    with pytest.raises(ValueError):
        AffineTransform2D.identity().apply_many(np.zeros((3, 3)))


def test_matrix_is_read_only():
    t = AffineTransform2D.identity()
    with pytest.raises(ValueError):
        t.matrix[0, 0] = 5.0


def test_equality_and_hash():
    a = AffineTransform2D.translation(1.0, 2.0)
    b = AffineTransform2D.translation(1.0, 2.0)
    assert a == b
    assert hash(a) == hash(b)
    assert a != AffineTransform2D.identity()
