"""White-box OLSR route-computation tests on hand-built state.

The live-network tests exercise the protocol end to end; these pin the
Dijkstra route computation itself against known topologies — including
ETX-weighted ones, where hop count and cost disagree.
"""

import collections

import numpy as np
import pytest

from repro.routing.olsr import Olsr, OlsrConfig, _Link

from helpers import TestNetwork, chain_coords


def _lone_olsr(metric="hop"):
    network = TestNetwork([(0.0, 0.0), (1.0, 0.0)], protocol=None)
    from repro.routing import make_protocol

    olsr = make_protocol(
        "OLSR",
        network.nodes[0],
        np.random.default_rng(0),
        config=OlsrConfig(metric=metric),
    )
    network.nodes[0].set_routing(olsr)
    return network, olsr


def _add_sym_link(olsr, nbr, until=1e9):
    link = _Link()
    link.heard_until = until
    link.sym_until = until
    olsr._links[nbr] = link


def test_direct_neighbor_route():
    _, olsr = _lone_olsr()
    _add_sym_link(olsr, 1)
    olsr._dirty = True
    assert olsr.routing_table() == {1: (1, 1)}


def test_two_hop_route_via_neighbor():
    _, olsr = _lone_olsr()
    _add_sym_link(olsr, 1)
    olsr._two_hop[(1, 5)] = (1e9, 1.0)
    olsr._dirty = True
    table = olsr.routing_table()
    assert table[5] == (1, 2)


def test_topology_route_three_hops():
    _, olsr = _lone_olsr()
    _add_sym_link(olsr, 1)
    olsr._two_hop[(1, 5)] = (1e9, 1.0)
    olsr._topology[(9, 5)] = (1e9, 1.0)  # node 5 advertises selector 9
    olsr._dirty = True
    table = olsr.routing_table()
    assert table[9] == (1, 3)


def test_shortest_of_two_paths_wins():
    _, olsr = _lone_olsr()
    _add_sym_link(olsr, 1)
    _add_sym_link(olsr, 2)
    # Destination 7 reachable via 1 in two hops, via 2 in three.
    olsr._two_hop[(1, 7)] = (1e9, 1.0)
    olsr._two_hop[(2, 6)] = (1e9, 1.0)
    olsr._topology[(7, 6)] = (1e9, 1.0)
    olsr._dirty = True
    assert olsr.routing_table()[7] == (1, 2)


def test_etx_prefers_reliable_longer_path():
    """ETX mode: a 2-hop path of clean links beats a 1-hop lossy link."""
    _, olsr = _lone_olsr(metric="etx")
    _add_sym_link(olsr, 1)  # lossy direct link to... make dst=1 itself
    _add_sym_link(olsr, 2)  # clean link
    # Make the direct link to 1 expensive: no hellos recorded -> NI=0 ->
    # cost capped at 100; link via 2 (cost ~ received ratio) cheaper.
    now = olsr.sim.now
    olsr._hello_rx[2] = collections.deque(
        [now - 0.5 * k for k in range(10)], maxlen=10
    )
    olsr._links[2].lqi = 1.0
    olsr._two_hop[(2, 1)] = (1e9, 1.0)  # node 2 reaches 1 cleanly
    olsr._dirty = True
    next_hop, hops = olsr.routing_table()[1]
    assert next_hop == 2
    assert hops == 2


def test_expired_topology_ignored():
    network, olsr = _lone_olsr()
    _add_sym_link(olsr, 1)
    olsr._topology[(9, 1)] = (network.sim.now - 1.0, 1.0)  # stale
    olsr._dirty = True
    assert 9 not in olsr.routing_table()


def test_expired_link_ignored():
    network, olsr = _lone_olsr()
    _add_sym_link(olsr, 1, until=network.sim.now - 1.0)
    olsr._dirty = True
    assert olsr.routing_table() == {}


def test_asymmetric_link_not_used():
    network, olsr = _lone_olsr()
    link = _Link()
    link.heard_until = 1e9  # heard, but they do not hear us
    link.sym_until = 0.0
    olsr._links[1] = link
    olsr._dirty = True
    assert olsr.routing_table() == {}
