"""Scenario sweep tests."""

import numpy as np
import pytest

from repro.core.config import Scenario
from repro.core.sweep import sweep_scenario


def _base():
    return Scenario(
        num_nodes=10,
        road_length_m=1000.0,
        sim_time_s=15.0,
        senders=(1, 2),
        traffic_start_s=5.0,
        traffic_stop_s=14.0,
        initial_placement="uniform",
        dawdle_p=0.0,
        seed=3,
    )


def test_sweep_runs_each_value():
    result = sweep_scenario(_base(), "cbr_rate_pps", [2.0, 5.0])
    assert result.field == "cbr_rate_pps"
    assert result.values() == [2.0, 5.0]
    assert len(result.points[0].results) == 1
    assert all(0.0 <= p <= 1.0 for p in result.pdr_curve())


def test_sweep_field_actually_varies():
    result = sweep_scenario(_base(), "cbr_rate_pps", [2.0, 10.0])
    low, high = (p.results[0] for p in result.points)
    assert high.collector.num_originated > 2 * low.collector.num_originated


def test_trials_use_distinct_seeds():
    result = sweep_scenario(
        _base(), "dawdle_p", [0.5], trials=2
    )
    a, b = result.points[0].results
    assert not np.array_equal(a.trace.positions, b.trace.positions)
    assert result.points[0].pdr_std >= 0.0


def test_single_trial_zero_std():
    result = sweep_scenario(_base(), "dawdle_p", [0.0])
    assert result.points[0].pdr_std == 0.0


def test_curves_align_with_points():
    result = sweep_scenario(_base(), "cbr_rate_pps", [2.0, 5.0])
    assert len(result.pdr_curve()) == 2
    assert len(result.delay_curve()) == 2


def test_unknown_field_rejected():
    with pytest.raises(ValueError, match="not a Scenario field"):
        sweep_scenario(_base(), "warp_factor", [1])


def test_zero_trials_rejected():
    with pytest.raises(ValueError):
        sweep_scenario(_base(), "dawdle_p", [0.0], trials=0)
