"""Scenario sweep tests."""

import time

import numpy as np
import pytest

import repro.core.sweep as sweep_module
from repro.core.config import Scenario
from repro.core.sweep import run_sweep, sweep_scenario


def _base():
    return Scenario(
        num_nodes=10,
        road_length_m=1000.0,
        sim_time_s=15.0,
        senders=(1, 2),
        traffic_start_s=5.0,
        traffic_stop_s=14.0,
        initial_placement="uniform",
        dawdle_p=0.0,
        seed=3,
    )


def test_sweep_runs_each_value():
    result = sweep_scenario(_base(), "cbr_rate_pps", [2.0, 5.0])
    assert result.field == "cbr_rate_pps"
    assert result.values() == [2.0, 5.0]
    assert len(result.points[0].results) == 1
    assert all(0.0 <= p <= 1.0 for p in result.pdr_curve())


def test_sweep_field_actually_varies():
    result = sweep_scenario(_base(), "cbr_rate_pps", [2.0, 10.0])
    low, high = (p.results[0] for p in result.points)
    assert high.collector.num_originated > 2 * low.collector.num_originated


def test_trials_use_distinct_seeds():
    result = sweep_scenario(
        _base(), "dawdle_p", [0.5], trials=2
    )
    a, b = result.points[0].results
    assert not np.array_equal(a.trace.positions, b.trace.positions)
    assert result.points[0].pdr_std >= 0.0


def test_single_trial_zero_std():
    result = sweep_scenario(_base(), "dawdle_p", [0.0])
    assert result.points[0].pdr_std == 0.0


def test_curves_align_with_points():
    result = sweep_scenario(_base(), "cbr_rate_pps", [2.0, 5.0])
    assert len(result.pdr_curve()) == 2
    assert len(result.delay_curve()) == 2


def test_unknown_field_rejected():
    with pytest.raises(ValueError, match="not a Scenario field"):
        sweep_scenario(_base(), "warp_factor", [1])


def test_zero_trials_rejected():
    with pytest.raises(ValueError):
        sweep_scenario(_base(), "dawdle_p", [0.0], trials=0)


def test_run_sweep_is_sweep_scenario():
    assert run_sweep is sweep_scenario


# -- parallel execution -------------------------------------------------------

_real_trial = sweep_module._run_scenario_trial


def _raise_for_seed(scenario):
    """Patched trial fn: the second trial (seed base+1000) always fails."""
    if scenario.seed == 3 + 1000:
        raise RuntimeError("injected trial failure")
    return _real_trial(scenario)


def _hang_for_seed(scenario):
    """Patched trial fn: the second trial hangs past any sane timeout."""
    if scenario.seed == 3 + 1000:
        time.sleep(60.0)
    return _real_trial(scenario)


def _fail_once_per_marker(scenario, marker_dir):
    """Patched trial fn: each trial fails once, then succeeds on retry."""
    import os

    marker = os.path.join(marker_dir, f"seed-{scenario.seed}")
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("attempted")
        raise RuntimeError("transient failure")
    return _real_trial(scenario)


def test_parallel_identical_to_serial():
    serial = sweep_scenario(
        _base(), "cbr_rate_pps", [2.0, 5.0], trials=2, max_workers=1
    )
    parallel = sweep_scenario(
        _base(), "cbr_rate_pps", [2.0, 5.0], trials=2, max_workers=4
    )
    assert np.array_equal(serial.pdr_curve(), parallel.pdr_curve())
    assert np.array_equal(
        serial.delay_curve(), parallel.delay_curve(), equal_nan=True
    )
    for point_s, point_p in zip(serial.points, parallel.points):
        assert point_s.pdr_std == point_p.pdr_std
        assert point_s.control_packets_mean == point_p.control_packets_mean
        assert [r.pdr() for r in point_s.results] == [
            r.pdr() for r in point_p.results
        ]


def test_raising_trial_drops_to_surviving_aggregates(monkeypatch):
    monkeypatch.setattr(
        sweep_module, "_run_scenario_trial", _raise_for_seed
    )
    result = sweep_scenario(
        _base(), "cbr_rate_pps", [5.0], trials=3, max_workers=2,
        max_attempts=1,
    )
    point = result.points[0]
    assert point.num_failed == 1
    assert len(point.results) == 2
    assert 0.0 <= point.pdr_mean <= 1.0


def test_timed_out_trial_drops_to_surviving_aggregates(monkeypatch):
    monkeypatch.setattr(sweep_module, "_run_scenario_trial", _hang_for_seed)
    result = sweep_scenario(
        _base(), "cbr_rate_pps", [5.0], trials=2, max_workers=2,
        trial_timeout_s=5.0, max_attempts=1,
    )
    point = result.points[0]
    assert point.num_failed == 1
    assert len(point.results) == 1
    assert point.pdr_std == 0.0  # one survivor: ddof=1 would be undefined


def test_retry_then_succeed_keeps_every_trial(monkeypatch, tmp_path):
    def flaky(scenario):
        return _fail_once_per_marker(scenario, str(tmp_path))

    monkeypatch.setattr(sweep_module, "_run_scenario_trial", flaky)
    result = sweep_scenario(
        _base(), "cbr_rate_pps", [5.0], trials=2, max_workers=2,
        max_attempts=2,
    )
    point = result.points[0]
    assert point.num_failed == 0
    assert len(point.results) == 2


def test_all_trials_failed_raises(monkeypatch):
    def always_fail(scenario):
        raise RuntimeError("nothing works")

    monkeypatch.setattr(sweep_module, "_run_scenario_trial", always_fail)
    with pytest.raises(RuntimeError, match="all 2 trials failed"):
        sweep_scenario(
            _base(), "cbr_rate_pps", [5.0], trials=2, max_workers=2,
            max_attempts=1,
        )
