"""Property-based tests of core data structures (hypothesis).

Model-based checks: the drop-tail queue against a plain list model, the
route table's sequence-number monotonicity, and the trace player's
interpolation bounds.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility.trace import MobilityTrace, TracePlayer
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.routing.table import RouteTable


# -- DropTailQueue vs a list model ---------------------------------------------

_queue_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 5), st.booleans()),
        st.tuples(st.just("pop"), st.just(0), st.just(False)),
        st.tuples(st.just("flush"), st.integers(0, 5), st.just(False)),
    ),
    max_size=60,
)


@given(capacity=st.integers(1, 8), ops=_queue_ops)
@settings(max_examples=80, deadline=None)
def test_droptail_queue_matches_list_model(capacity, ops):
    queue = DropTailQueue(capacity)
    model = []  # list of (uid, next_hop)
    drops = 0
    for op, hop, priority in ops:
        if op == "push":
            packet = Packet("DATA", 0, hop, 10, 0.0)
            accepted = queue.enqueue(packet, hop, priority)
            if len(model) >= capacity:
                assert not accepted
                drops += 1
            else:
                assert accepted
                if priority:
                    model.insert(0, (packet.uid, hop))
                else:
                    model.append((packet.uid, hop))
        elif op == "pop":
            got = queue.dequeue()
            if model:
                expected = model.pop(0)
                assert (got[0].uid, got[1]) == expected
            else:
                assert got is None
        else:  # flush
            removed = queue.remove_for_next_hop(hop)
            expected_removed = [m for m in model if m[1] == hop]
            model = [m for m in model if m[1] != hop]
            assert removed == len(expected_removed)
            drops += removed
        assert len(queue) == len(model)
        assert queue.drops == drops


# -- RouteTable invariants ---------------------------------------------------------

_table_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("update"),
            st.integers(0, 3),   # dst
            st.integers(0, 3),   # next_hop
            st.integers(1, 5),   # hops
            st.integers(0, 10),  # seq
        ),
        st.tuples(
            st.just("invalidate"),
            st.integers(0, 3),
            st.just(0), st.just(0), st.just(0),
        ),
        st.tuples(
            st.just("invalidate_via"),
            st.integers(0, 3),
            st.just(0), st.just(0), st.just(0),
        ),
    ),
    max_size=50,
)


@given(ops=_table_ops)
@settings(max_examples=80, deadline=None)
def test_route_table_seq_never_decreases(ops):
    table = RouteTable()
    best_seq = {}
    now = 0.0
    for op, dst, next_hop, hops, seq in ops:
        now += 0.1
        if op == "update":
            table.update(dst, next_hop, hops, seq, lifetime=100.0, now=now)
        elif op == "invalidate":
            table.invalidate(dst)
        else:
            table.invalidate_via(dst)  # dst doubles as a hop id here
        for key in range(4):
            entry = table.get(key)
            if entry is None:
                continue
            previous = best_seq.get(key, -1)
            assert entry.seq >= previous  # freshness is monotone
            best_seq[key] = entry.seq
            # A valid entry is never served beyond its expiry.
            looked_up = table.lookup(key, now)
            if looked_up is not None:
                assert looked_up.valid
                assert looked_up.expires_at > now


# -- TracePlayer interpolation bounds ------------------------------------------------

@given(
    seed=st.integers(0, 2**31 - 1),
    num_samples=st.integers(2, 8),
    queries=st.lists(st.floats(-5.0, 20.0), min_size=1, max_size=20),
)
@settings(max_examples=60, deadline=None)
def test_trace_player_interpolation_bounded(seed, num_samples, queries):
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.uniform(0.5, 2.0, num_samples))
    positions = rng.uniform(0.0, 100.0, size=(num_samples, 2, 2))
    player = TracePlayer(MobilityTrace(times, positions))
    for t in queries:
        for node in range(2):
            x, y = player.position(node, float(t))
            # Interpolation never leaves the bounding box of the samples.
            assert positions[:, node, 0].min() - 1e-9 <= x
            assert x <= positions[:, node, 0].max() + 1e-9
            assert positions[:, node, 1].min() - 1e-9 <= y
            assert y <= positions[:, node, 1].max() + 1e-9


@given(seed=st.integers(0, 2**31 - 1), num_samples=st.integers(2, 8))
@settings(max_examples=60, deadline=None)
def test_trace_player_exact_at_samples(seed, num_samples):
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.uniform(0.5, 2.0, num_samples))
    positions = rng.uniform(0.0, 100.0, size=(num_samples, 1, 2))
    player = TracePlayer(MobilityTrace(times, positions))
    for row, t in enumerate(times):
        x, y = player.position(0, float(t))
        assert abs(x - positions[row, 0, 0]) < 1e-9
        assert abs(y - positions[row, 0, 1]) < 1e-9
