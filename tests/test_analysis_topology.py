"""Topology-change analysis tests."""

import numpy as np
import pytest

from repro.analysis.topology import (
    link_change_series,
    link_lifetimes,
    topology_change_summary,
)
from repro.ca.nasch import NagelSchreckenberg
from repro.geometry.layout import RoadLayout
from repro.mobility.ca_mobility import CaMobility
from repro.mobility.trace import MobilityTrace


def _trace(position_rows):
    times = np.arange(len(position_rows), dtype=float)
    return MobilityTrace(times, np.array(position_rows, dtype=float))


def test_static_topology_has_no_changes():
    rows = [[[0.0, 0.0], [100.0, 0.0]]] * 5
    trace = _trace(rows)
    _, changes = link_change_series(trace, 250.0)
    assert changes.tolist() == [0, 0, 0, 0]


def test_link_break_counts_one_change():
    rows = [
        [[0.0, 0.0], [100.0, 0.0]],
        [[0.0, 0.0], [100.0, 0.0]],
        [[0.0, 0.0], [900.0, 0.0]],  # link breaks here
    ]
    _, changes = link_change_series(_trace(rows), 250.0)
    assert changes.tolist() == [0, 1]


def test_flapping_link_counts_each_transition():
    near = [[0.0, 0.0], [100.0, 0.0]]
    far = [[0.0, 0.0], [900.0, 0.0]]
    _, changes = link_change_series(_trace([near, far, near, far]), 250.0)
    assert changes.tolist() == [1, 1, 1]


def test_link_lifetimes_contiguous_episodes():
    near = [[0.0, 0.0], [100.0, 0.0]]
    far = [[0.0, 0.0], [900.0, 0.0]]
    # Alive t=0..1 (episode 1, length 1), dead t=2, alive t=3..4
    # (episode 2, censored at length 1).
    lifetimes = link_lifetimes(_trace([near, near, far, near, near]), 250.0)
    assert sorted(lifetimes.tolist()) == [1.0, 2.0]


def test_always_alive_link_censored_at_duration():
    rows = [[[0.0, 0.0], [100.0, 0.0]]] * 4
    lifetimes = link_lifetimes(_trace(rows), 250.0)
    assert lifetimes.tolist() == [3.0]


def test_summary_static():
    rows = [[[0.0, 0.0], [100.0, 0.0], [200.0, 0.0]]] * 5
    summary = topology_change_summary(_trace(rows), 250.0)
    assert summary.mean_links == 3.0  # 0-1, 1-2, 0-2 all within 250
    assert summary.changes_per_second == 0.0
    assert summary.num_link_births == 3


def test_summary_requires_two_samples():
    rows = [[[0.0, 0.0], [100.0, 0.0]]]
    with pytest.raises(ValueError):
        topology_change_summary(_trace(rows), 250.0)


def test_stochastic_ca_churns_more_than_deterministic():
    """The conclusion's metric, demonstrated: dawdling increases topology
    change; the deterministic ring (after relaxation) is almost static."""

    def churn(p):
        model = NagelSchreckenberg.from_density(
            200, 0.15, random_start=True, rng=np.random.default_rng(3), p=p
        )
        model.run(100)
        trace = CaMobility(model, RoadLayout.single_circuit(1500.0)).sample(
            100.0
        )
        return topology_change_summary(trace, 250.0).changes_per_second

    assert churn(0.5) > churn(0.0) + 0.05


def test_empty_graph_lifetimes():
    rows = [[[0.0, 0.0], [5000.0, 0.0]]] * 3
    assert len(link_lifetimes(_trace(rows), 250.0)) == 0
    summary = topology_change_summary(_trace(rows), 250.0)
    assert summary.mean_link_lifetime_s == 0.0
