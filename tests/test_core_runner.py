"""Trial-runner tests: ordering, failure paths, timeouts, retries, telemetry."""

import time

import pytest

from repro.core.runner import TrialRunner, TrialSpec, run_trials
from repro.metrics.collector import CampaignTelemetry


def _square(x):
    return x * x


def _boom(message):
    raise ValueError(message)


def _sleep_then_return(seconds, value):
    time.sleep(seconds)
    return value


def _fail_until_marker(marker_path, value):
    """Fail on the first attempt, succeed once the marker file exists.

    The marker lives on disk so the state survives the process boundary:
    each retry is a fresh worker process.
    """
    import os

    if os.path.exists(marker_path):
        return value
    with open(marker_path, "w") as handle:
        handle.write("attempted")
    raise RuntimeError("transient failure: first attempt always fails")


def _specs(count):
    return [TrialSpec(key=i, fn=_square, args=(i,)) for i in range(count)]


# -- basics -------------------------------------------------------------------


def test_serial_runs_in_order():
    outcomes = run_trials(_specs(5))
    assert [o.value for o in outcomes] == [0, 1, 4, 9, 16]
    assert [o.index for o in outcomes] == [0, 1, 2, 3, 4]
    assert all(o.ok and o.attempts == 1 for o in outcomes)


def test_parallel_preserves_submission_order():
    outcomes = run_trials(_specs(9), max_workers=3)
    assert [o.value for o in outcomes] == [i * i for i in range(9)]
    assert [o.key for o in outcomes] == list(range(9))


def test_parallel_matches_serial():
    serial = run_trials(_specs(7))
    parallel = run_trials(_specs(7), max_workers=4)
    assert [o.value for o in serial] == [o.value for o in parallel]


def test_empty_specs():
    assert run_trials([]) == []
    assert run_trials([], max_workers=4) == []


def test_kwargs_are_passed():
    spec = TrialSpec(key="k", fn=_sleep_then_return,
                     kwargs={"seconds": 0.0, "value": 42})
    assert run_trials([spec])[0].value == 42
    assert run_trials([spec], max_workers=2)[0].value == 42


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        TrialRunner(max_workers=0)
    with pytest.raises(ValueError):
        TrialRunner(max_attempts=0)
    with pytest.raises(ValueError):
        TrialRunner(trial_timeout_s=0.0)


# -- failure paths ------------------------------------------------------------


def test_raising_trial_is_reported_not_raised():
    specs = [
        TrialSpec(key="ok", fn=_square, args=(3,)),
        TrialSpec(key="bad", fn=_boom, args=("broken trial",)),
    ]
    for workers in (1, 2):
        outcomes = run_trials(specs, max_workers=workers, max_attempts=2)
        assert outcomes[0].ok and outcomes[0].value == 9
        assert not outcomes[1].ok
        assert outcomes[1].attempts == 2
        assert "ValueError" in outcomes[1].error
        assert "broken trial" in outcomes[1].error


def test_timeout_kills_and_reports():
    specs = [
        TrialSpec(key="fast", fn=_sleep_then_return, args=(0.0, "fast")),
        TrialSpec(key="stuck", fn=_sleep_then_return, args=(30.0, "stuck")),
    ]
    started = time.monotonic()
    outcomes = run_trials(
        specs, max_workers=2, trial_timeout_s=0.3, max_attempts=1
    )
    elapsed = time.monotonic() - started
    assert outcomes[0].ok and outcomes[0].value == "fast"
    assert not outcomes[1].ok
    assert outcomes[1].timed_out
    assert "trial_timeout_s" in outcomes[1].error
    assert elapsed < 10.0  # the stuck worker was terminated, not waited out


def test_timed_out_trial_is_retried():
    telemetry = CampaignTelemetry()
    outcomes = run_trials(
        [TrialSpec(key="s", fn=_sleep_then_return, args=(30.0, None))],
        max_workers=2,
        trial_timeout_s=0.2,
        max_attempts=2,
        telemetry=telemetry,
    )
    assert outcomes[0].attempts == 2
    assert outcomes[0].timed_out
    assert telemetry.timeouts == 2
    assert telemetry.retries == 1


def test_retry_then_succeed(tmp_path):
    marker = str(tmp_path / "attempted.marker")
    outcomes = run_trials(
        [TrialSpec(key="flaky", fn=_fail_until_marker, args=(marker, 99))],
        max_workers=2,
        max_attempts=3,
    )
    assert outcomes[0].ok
    assert outcomes[0].value == 99
    assert outcomes[0].attempts == 2


def test_retry_then_succeed_serial(tmp_path):
    marker = str(tmp_path / "attempted.marker")
    outcomes = run_trials(
        [TrialSpec(key="flaky", fn=_fail_until_marker, args=(marker, 7))]
    )
    assert outcomes[0].ok and outcomes[0].attempts == 2


# -- degradation --------------------------------------------------------------


def test_falls_back_to_serial_when_pool_unavailable(monkeypatch):
    monkeypatch.setattr(TrialRunner, "_context", staticmethod(lambda: None))
    outcomes = run_trials(_specs(4), max_workers=4)
    assert [o.value for o in outcomes] == [0, 1, 4, 9]


def test_falls_back_to_serial_when_launch_fails(monkeypatch):
    def refuse_launch(self, context, spec, index, attempt):
        raise OSError("no more processes")

    monkeypatch.setattr(TrialRunner, "_launch", refuse_launch)
    outcomes = run_trials(_specs(3), max_workers=2)
    assert [o.value for o in outcomes] == [0, 1, 4]


# -- telemetry ----------------------------------------------------------------


def test_telemetry_counts_and_durations():
    telemetry = CampaignTelemetry()
    run_trials(_specs(4), max_workers=2, telemetry=telemetry)
    assert telemetry.trials_completed == 4
    assert telemetry.trials_failed == 0
    assert telemetry.retries == 0
    assert len(telemetry.wall_clock_per_trial()) == 4
    assert all(w >= 0.0 for w in telemetry.wall_clock_per_trial())
    summary = telemetry.summary()
    assert summary["completed"] == 4.0
    assert summary["total_wall_clock_s"] >= 0.0
    assert "4 trials ok" in telemetry.format_summary()


def test_telemetry_records_failures_per_attempt():
    telemetry = CampaignTelemetry()
    run_trials(
        [TrialSpec(key="bad", fn=_boom, args=("x",))],
        max_attempts=3,
        telemetry=telemetry,
    )
    assert telemetry.trials_failed == 3
    assert telemetry.retries == 2
    assert [r.attempt for r in telemetry.records] == [1, 2, 3]
    assert all(r.status == "error" for r in telemetry.records)


def test_telemetry_live_callback():
    seen = []
    telemetry = CampaignTelemetry(on_record=seen.append)
    run_trials(_specs(3), telemetry=telemetry)
    assert len(seen) == 3
    assert all(record.ok for record in seen)


# -- result-channel failures (retry accounting) -------------------------------


def _raise_on_unpickle(message):
    raise RuntimeError(message)


class _PoisonOnUnpickle:
    """Pickles fine in the worker; explodes when the parent unpickles it."""

    def __reduce__(self):
        return (_raise_on_unpickle, ("poisoned result",))


def _return_unpicklable_result():
    return _PoisonOnUnpickle()


def _die_after_send_once(marker_path, value):
    """Succeed, but make the first attempt's worker exit nonzero *after*
    the result has been sent (via a multiprocessing finalizer, which runs
    during worker shutdown)."""
    import os

    from multiprocessing import util

    if not os.path.exists(marker_path):
        with open(marker_path, "w") as handle:
            handle.write("attempted")
        util.Finalize(None, os._exit, args=(3,), exitpriority=100)
    return value


def test_unpicklable_result_counts_as_failed_attempt_and_retries():
    telemetry = CampaignTelemetry()
    specs = [
        TrialSpec(key="ok", fn=_square, args=(4,)),
        TrialSpec(key="poison", fn=_return_unpicklable_result),
    ]
    outcomes = run_trials(
        specs, max_workers=2, max_attempts=2, telemetry=telemetry
    )
    # The sibling trial is untouched; the poisoned one is a terminal
    # failure after a real retry, not a pool crash or a spurious success.
    assert outcomes[0].ok and outcomes[0].value == 16
    assert not outcomes[1].ok
    assert outcomes[1].attempts == 2
    assert "unpickled" in outcomes[1].error
    assert telemetry.retries == 1
    assert telemetry.trials_failed == 2  # both attempts of the poison trial


def test_worker_death_after_result_send_is_retried(tmp_path):
    telemetry = CampaignTelemetry()
    marker = str(tmp_path / "attempted")
    outcomes = run_trials(
        [TrialSpec(key="flaky", fn=_die_after_send_once, args=(marker, 7))],
        max_workers=2,
        max_attempts=2,
        telemetry=telemetry,
    )
    # Attempt 1 delivered a value but the worker exited nonzero: suspect,
    # retried.  Attempt 2 succeeds cleanly.
    assert outcomes[0].ok and outcomes[0].value == 7
    assert outcomes[0].attempts == 2
    assert telemetry.retries == 1
    errors = [r.error for r in telemetry.records if r.error]
    assert any("after sending its result" in e for e in errors)
