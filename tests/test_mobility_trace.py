"""MobilityTrace and TracePlayer tests."""

import numpy as np
import pytest

from repro.mobility.trace import MobilityTrace, TracePlayer


def _simple_trace():
    times = np.array([0.0, 1.0, 2.0])
    positions = np.array(
        [
            [[0.0, 0.0], [10.0, 0.0]],
            [[5.0, 0.0], [10.0, 5.0]],
            [[5.0, 5.0], [10.0, 10.0]],
        ]
    )
    return MobilityTrace(times=times, positions=positions)


def test_basic_properties():
    trace = _simple_trace()
    assert trace.num_samples == 3
    assert trace.num_nodes == 2
    assert trace.duration == pytest.approx(2.0)


def test_node_path():
    trace = _simple_trace()
    path = trace.node_path(0)
    assert path.shape == (3, 2)
    assert path[1].tolist() == [5.0, 0.0]


def test_speeds():
    trace = _simple_trace()
    speeds = trace.speeds()
    assert speeds.shape == (2, 2)
    assert speeds[0, 0] == pytest.approx(5.0)  # node 0 first segment
    assert speeds[0, 1] == pytest.approx(5.0)  # node 1 first segment


def test_mean_speed_series():
    trace = _simple_trace()
    assert trace.mean_speed_series().tolist() == pytest.approx([5.0, 5.0])


def test_teleport_speed_is_nan():
    times = np.array([0.0, 1.0])
    positions = np.array([[[0.0, 0.0]], [[1000.0, 0.0]]])
    teleported = np.array([[False], [True]])
    trace = MobilityTrace(times, positions, teleported)
    assert np.isnan(trace.speeds()[0, 0])


class TestTracePlayer:
    def test_interpolates_linearly(self):
        player = TracePlayer(_simple_trace())
        assert player.position(0, 0.5) == pytest.approx((2.5, 0.0))
        assert player.position(1, 1.5) == pytest.approx((10.0, 7.5))

    def test_clamps_outside_range(self):
        player = TracePlayer(_simple_trace())
        assert player.position(0, -5.0) == (0.0, 0.0)
        assert player.position(0, 99.0) == (5.0, 5.0)

    def test_exact_sample_times(self):
        player = TracePlayer(_simple_trace())
        assert player.position(0, 1.0) == pytest.approx((5.0, 0.0))

    def test_teleport_holds_then_jumps(self):
        times = np.array([0.0, 1.0, 2.0])
        positions = np.array(
            [[[0.0, 0.0]], [[1000.0, 0.0]], [[1005.0, 0.0]]]
        )
        teleported = np.array([[False], [True], [False]])
        player = TracePlayer(MobilityTrace(times, positions, teleported))
        # Mid-teleport segment: node holds its old position.
        assert player.position(0, 0.5) == (0.0, 0.0)
        # After the teleport sample it is at the new place.
        assert player.position(0, 1.0) == (1000.0, 0.0)
        assert player.position(0, 1.5) == pytest.approx((1002.5, 0.0))

    def test_positions_at_returns_all_nodes(self):
        player = TracePlayer(_simple_trace())
        matrix = player.positions_at(0.5)
        assert matrix.shape == (2, 2)
        assert matrix[0].tolist() == pytest.approx([2.5, 0.0])


class TestValidation:
    def test_times_positions_mismatch(self):
        with pytest.raises(ValueError):
            MobilityTrace(np.array([0.0, 1.0]), np.zeros((3, 2, 2)))

    def test_non_increasing_times(self):
        with pytest.raises(ValueError):
            MobilityTrace(np.array([0.0, 0.0]), np.zeros((2, 1, 2)))

    def test_bad_position_shape(self):
        with pytest.raises(ValueError):
            MobilityTrace(np.array([0.0]), np.zeros((1, 2, 3)))

    def test_bad_teleport_shape(self):
        with pytest.raises(ValueError):
            MobilityTrace(
                np.array([0.0]),
                np.zeros((1, 2, 2)),
                np.zeros((2, 2), dtype=bool),
            )

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            MobilityTrace(np.array([]), np.zeros((0, 1, 2)))
