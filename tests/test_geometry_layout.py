"""Road-layout tests."""

import numpy as np
import pytest

from repro.geometry.layout import Lane, RoadLayout
from repro.geometry.shapes import CircularShape, StraightShape


def test_single_circuit_layout():
    layout = RoadLayout.single_circuit(3000.0)
    assert layout.num_lanes == 1
    lane = layout.lane(0)
    assert lane.shape.closed
    assert lane.num_cells == 400  # 3000 m / 7.5 m


def test_single_line_layout():
    layout = RoadLayout.single_line(3000.0)
    assert not layout.lane(0).shape.closed
    assert layout.lane(0).num_cells == 400


def test_cell_to_plane_uses_cell_length():
    layout = RoadLayout.single_line(750.0)
    x, y = layout.lane(0).cell_to_plane(10)
    assert (x, y) == pytest.approx((75.0, 0.0))


def test_multi_lane_circuit_radial_spacing():
    layout = RoadLayout.multi_lane_circuit(3000.0, 3, lane_spacing_m=4.0)
    assert layout.num_lanes == 3
    r0 = layout.lane(0).shape.radius
    r2 = layout.lane(2).shape.radius
    assert r2 - r0 == pytest.approx(8.0)


def test_opposite_lane_runs_reverse():
    layout = RoadLayout.multi_lane_circuit(1000.0, 2, opposite=(1,))
    forward = layout.lane(0)
    reverse = layout.lane(1)
    assert forward.direction == 1
    assert reverse.direction == -1
    # Advancing cells moves the reverse lane the other way around: compare
    # angular drift of small steps.
    f0 = np.array(forward.cell_to_plane(0))
    f1 = np.array(forward.cell_to_plane(1))
    r0 = np.array(reverse.cell_to_plane(0))
    r1 = np.array(reverse.cell_to_plane(1))
    cross_f = f0[0] * f1[1] - f0[1] * f1[0]
    cross_r = r0[0] * r1[1] - r0[1] * r1[0]
    assert np.sign(cross_f) == -np.sign(cross_r)


def test_duplicate_lane_ids_rejected():
    lane = Lane(0, CircularShape(100.0))
    with pytest.raises(ValueError):
        RoadLayout([lane, Lane(0, CircularShape(100.0))])


def test_empty_layout_rejected():
    with pytest.raises(ValueError):
        RoadLayout([])


def test_invalid_direction_rejected():
    with pytest.raises(ValueError):
        Lane(0, StraightShape(10.0), direction=2)


def test_iteration_order():
    lanes = [Lane(2, CircularShape(50.0)), Lane(0, CircularShape(50.0))]
    layout = RoadLayout(lanes)
    assert [lane.lane_id for lane in layout] == [2, 0]
    assert layout.lane_ids == [2, 0]
    assert len(layout) == 2
