"""Headway-distribution tests."""

import numpy as np
import pytest

from repro.analysis.headways import (
    headway_distribution,
    headway_summary,
    headways,
)
from repro.ca.history import evolve
from repro.ca.nasch import NagelSchreckenberg


def _history(density, p=0.0, steps=100, seed=0):
    rng = np.random.default_rng(seed)
    model = NagelSchreckenberg.from_density(
        200, density, random_start=True, rng=rng, p=p
    )
    return evolve(model, steps, warmup=200)


def test_headways_sum_to_free_cells():
    history = _history(0.25)
    gaps = headways(history)
    n = history.num_vehicles
    # Per step: gaps + vehicles cover the ring exactly.
    assert np.all(gaps.sum(axis=1) + n == history.num_cells)


def test_distribution_normalised():
    dist = headway_distribution(_history(0.3, p=0.3))
    assert dist.sum() == pytest.approx(1.0)
    assert np.all(dist >= 0)


def test_free_flow_has_no_zero_gaps():
    """Relaxed deterministic free flow: every gap >= v_max."""
    summary = headway_summary(_history(0.05))
    assert summary.zero_fraction == 0.0
    assert summary.mean_cells > 5


def test_jammed_regime_spikes_at_zero():
    summary = headway_summary(_history(0.6))
    assert summary.zero_fraction > 0.3
    assert summary.mean_cells < 2.0


def test_dawdling_broadens_distribution():
    calm = headway_summary(_history(0.15, p=0.0))
    noisy = headway_summary(_history(0.15, p=0.5, seed=1))
    assert noisy.std_cells > calm.std_cells


def test_max_gap_folding():
    dist = headway_distribution(_history(0.05), max_gap=5)
    assert len(dist) == 6
    assert dist[5] > 0  # sparse traffic has gaps above 5, folded in


def test_validation():
    with pytest.raises(ValueError):
        headway_distribution(_history(0.2), max_gap=0)
