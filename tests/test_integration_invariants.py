"""System-wide invariants that must hold for ANY protocol and scenario.

These are the conservation laws of the simulator: packets cannot be
delivered that were never sent, time cannot run backwards, delivery
cannot exceed origination — checked over a matrix of small scenarios.
"""

import numpy as np
import pytest

from repro.core.config import Scenario
from repro.core.simulation import CavenetSimulation

SCENARIOS = [
    # (protocol, boundary, dawdle_p, placement)
    ("AODV", "circuit", 0.0, "uniform"),
    ("AODV", "circuit", 0.5, "random"),
    ("AODV", "line", 0.5, "random"),
    ("OLSR", "circuit", 0.5, "random"),
    ("DYMO", "circuit", 0.5, "random"),
    ("DSDV", "circuit", 0.0, "uniform"),
    ("FLOODING", "circuit", 0.5, "random"),
]


@pytest.fixture(scope="module", params=SCENARIOS, ids=lambda s: "-".join(map(str, s)))
def result(request):
    protocol, boundary, p, placement = request.param
    scenario = Scenario(
        num_nodes=14,
        road_length_m=1400.0,
        boundary=boundary,
        dawdle_p=p,
        initial_placement=placement,
        sim_time_s=30.0,
        senders=(1, 2, 7),
        traffic_start_s=8.0,
        traffic_stop_s=28.0,
        protocol=protocol,
        seed=9,
    )
    return CavenetSimulation(scenario).run()


def test_delivered_subset_of_originated(result):
    originated = {e.uid for e in result.collector.originated}
    delivered = {e.uid for e in result.collector.delivered}
    assert delivered <= originated


def test_delivery_counts_bounded(result):
    assert result.collector.num_delivered <= result.collector.num_originated
    assert 0.0 <= result.pdr() <= 1.0
    for sender in result.scenario.senders:
        assert 0.0 <= result.pdr(sender) <= 1.0


def test_origination_count_matches_cbr_schedule(result):
    scenario = result.scenario
    expected_per_flow = int(
        (scenario.traffic_stop_s - scenario.traffic_start_s)
        * scenario.cbr_rate_pps
    )
    for source in result.sources.values():
        assert abs(source.packets_sent - expected_per_flow) <= 1


def test_delays_positive_and_causal(result):
    for event in result.collector.delivered:
        assert event.delay_s > 0
        assert event.time <= result.scenario.sim_time_s


def test_event_times_ordered_and_in_range(result):
    times = [e.time for e in result.collector.transmissions]
    assert all(0 <= t <= result.scenario.sim_time_s for t in times)
    assert times == sorted(times)


def test_hop_counts_physical(result):
    for event in result.collector.delivered:
        assert 1 <= event.hops <= result.scenario.num_nodes


def test_frames_on_air_cover_mac_transmissions(result):
    total_mac = sum(s.frames_tx() for s in result.mac_stats.values())
    assert result.frames_on_air == total_mac


def test_control_traffic_matches_protocol(result):
    protocol = result.scenario.protocol
    kinds = {t.kind for t in result.collector.control_transmissions()}
    assert all(k.startswith(protocol) for k in kinds)
