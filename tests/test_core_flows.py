"""Explicit traffic-matrix (Scenario.flows) tests."""

import pytest

from repro.core.config import Scenario
from repro.core.simulation import CavenetSimulation


def _base(**kwargs):
    defaults = dict(
        num_nodes=12,
        road_length_m=1200.0,
        sim_time_s=20.0,
        traffic_start_s=5.0,
        traffic_stop_s=18.0,
        initial_placement="uniform",
        dawdle_p=0.0,
        seed=3,
    )
    defaults.update(kwargs)
    return Scenario(**defaults)


def test_default_flows_are_many_to_one():
    scenario = _base(senders=(1, 2))
    assert scenario.traffic_flows() == ((1, 1, 0), (2, 2, 0))


def test_explicit_flows_positional_ids():
    scenario = _base(flows=((3, 7), (8, 2)))
    assert scenario.traffic_flows() == ((1, 3, 7), (2, 8, 2))


def test_explicit_flows_run_end_to_end():
    scenario = _base(flows=((3, 7), (8, 2), (5, 11)))
    result = CavenetSimulation(scenario).run()
    # 3 flows x 65 packets each.
    assert result.collector.num_originated == 195
    for flow_id in (1, 2, 3):
        assert result.pdr(flow_id) == pytest.approx(1.0)
    # Sinks exist at every flow destination.
    assert set(result.sinks) >= {7, 2, 11}
    assert result.sinks[7].flow_receptions(1)


def test_bidirectional_flows():
    scenario = _base(flows=((1, 6), (6, 1)))
    result = CavenetSimulation(scenario).run()
    assert result.pdr(1) == pytest.approx(1.0)
    assert result.pdr(2) == pytest.approx(1.0)


def test_flow_validation():
    with pytest.raises(ValueError, match="loops"):
        _base(flows=((3, 3),))
    with pytest.raises(ValueError, match="non-empty"):
        _base(flows=())
    with pytest.raises(ValueError, match="outside"):
        _base(flows=((1, 99),))


def test_senders_ignored_when_flows_given():
    scenario = _base(flows=((3, 7),), senders=(1, 2, 4))
    result = CavenetSimulation(scenario).run()
    sources = {e.src for e in result.collector.originated}
    assert sources == {3}
