"""Fault injection must be a pure function of (scenario, seed).

Two angles: serial-vs-parallel campaigns over fault-laden scenarios are
bit-identical (faults ride inside the trial function, so worker count
cannot matter), and randomized fault plans survive every scenario
serialization path unchanged.
"""

import dataclasses
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import Scenario
from repro.core.runner import TrialSpec, run_trials
from repro.core.simulation import CavenetSimulation
from repro.core.sweep import _run_scenario_trial

ALL_FOUR = [
    {"kind": "node-crash", "nodes": [3], "at_s": 4.0, "down_s": 3.0},
    {"kind": "node-crash", "nodes": [5, 6], "mtbf_s": 6.0, "mttr_s": 2.0},
    {"kind": "radio-silence", "nodes": [1], "at_s": 6.0, "duration_s": 1.0},
    {"kind": "channel-degradation", "extra_loss_db": 12.0, "at_s": 8.0,
     "duration_s": 2.0},
    {"kind": "packet-blackhole", "nodes": [4], "at_s": 2.0,
     "duration_s": 5.0},
]

BASE = Scenario(
    num_nodes=10,
    road_length_m=900.0,
    sim_time_s=12.0,
    senders=(1, 2),
    dawdle_p=0.0,
    traffic_start_s=1.0,
    traffic_stop_s=11.0,
    seed=7,
    faults=ALL_FOUR,
)


def _fingerprint(result):
    return (
        result.pdr(),
        result.collector.num_originated,
        result.collector.num_delivered,
        result.frames_on_air,
        result.delay_stats().mean_s,
        result.channel_telemetry.events_processed,
        tuple(
            (e.kind, e.node, e.time, e.detail) for e in result.fault_events
        ),
    )


def _specs():
    return [
        TrialSpec(
            key=("faults", trial),
            fn=_run_scenario_trial,
            args=(dataclasses.replace(BASE, seed=BASE.seed + trial),),
        )
        for trial in range(4)
    ]


def test_same_seed_same_faults_bitwise_repeatable():
    first = CavenetSimulation(BASE).run()
    second = CavenetSimulation(BASE).run()
    assert _fingerprint(first) == _fingerprint(second)
    # The fault plan actually fired (this is not a vacuous comparison).
    assert first.fault_events


def test_serial_and_parallel_campaigns_bit_identical():
    serial = run_trials(_specs(), max_workers=1)
    parallel = run_trials(_specs(), max_workers=4)
    assert all(o.ok for o in serial) and all(o.ok for o in parallel)
    by_index = lambda outcomes: sorted(outcomes, key=lambda o: o.index)
    serial_prints = [_fingerprint(o.value) for o in by_index(serial)]
    parallel_prints = [_fingerprint(o.value) for o in by_index(parallel)]
    assert serial_prints == parallel_prints
    assert any(prints[6] for prints in serial_prints)  # faults fired


# -- randomized fault plans round-trip through every serialization path -------


fault_specs = st.lists(
    st.one_of(
        st.fixed_dictionaries(
            {"kind": st.just("node-crash"),
             "at_s": st.floats(0.0, 50.0, allow_nan=False),
             "down_s": st.floats(0.5, 10.0, allow_nan=False)},
            optional={"nodes": st.lists(
                st.integers(0, 9), min_size=1, max_size=3, unique=True)},
        ),
        st.fixed_dictionaries(
            {"kind": st.sampled_from(["radio-silence", "RADIO-SILENCE"]),
             "duration_s": st.floats(0.5, 5.0, allow_nan=False)},
        ),
        st.fixed_dictionaries(
            {"kind": st.just("channel-degradation"),
             "extra_loss_db": st.floats(1.0, 40.0, allow_nan=False)},
        ),
        st.fixed_dictionaries(
            {"kind": st.just("packet-blackhole"),
             "nodes": st.lists(
                 st.integers(0, 9), min_size=1, max_size=3, unique=True)},
        ),
    ),
    max_size=4,
)


@settings(max_examples=60, deadline=None)
@given(fault_specs)
def test_property_faults_roundtrip_dict_and_json(faults):
    s = Scenario(faults=faults)
    assert Scenario.from_dict(s.to_dict()) == s
    assert Scenario.from_dict(json.loads(json.dumps(s.to_dict()))) == s
    # Canonical kind spelling survives the hop.
    restored = Scenario.from_dict(s.to_dict())
    assert [f["kind"] for f in restored.faults] == [
        f["kind"] for f in s.faults
    ]


@settings(max_examples=40, deadline=None)
@given(fault_specs)
def test_property_faults_roundtrip_with_overrides(faults):
    # Replacing the plan via the CLI's --set path (with_overrides) is
    # equivalent to constructing the scenario with it directly.
    assert Scenario().with_overrides({"faults": faults}) == Scenario(
        faults=faults
    )
    # And overriding something else leaves the plan untouched.
    s = Scenario(faults=faults).with_overrides({"seed": 123})
    assert s.faults == Scenario(faults=faults).faults
