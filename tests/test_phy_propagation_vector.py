"""Scalar-vs-vector equivalence of the propagation models.

The channel's fast path batches ``rx_power`` over whole distance rows; these
tests pin the contract that makes that safe:

* deterministic models: ``rx_power_vector`` is *bit-identical* to a loop of
  scalar ``rx_power`` calls (the implementations avoid libm ``pow``, whose
  rounding differs from NumPy's array kernels at the last ulp);
* stochastic models: identical values *and* identical RNG consumption under
  a fixed seed — the documented draw order is one variate per eligible link
  (``d > 0`` for Nakagami, ``d > d0`` for shadowing) in ascending index
  order, which is exactly how NumPy fills a vectorized batch;
* the link-cache split (``link_cache_row`` + ``rx_power_from_cache``)
  reproduces ``rx_power_vector`` exactly.
"""

import numpy as np
import pytest

from repro.phy.propagation import (
    FreeSpace,
    LogNormalShadowing,
    NakagamiFading,
    PropagationModel,
    TwoRayGround,
)

TX = 0.28183815


def _distances():
    """Distances covering the edges: d=0, sub-metre, the two-ray crossover
    neighbourhood (~86.2 m), the shadowing reference distance, and a broad
    random spread."""
    crossover = TwoRayGround().crossover_distance_m
    rng = np.random.default_rng(1234)
    return np.concatenate(
        [
            [0.0, 0.5, 1.0, 1.0000001, 50.0],
            [crossover * 0.999, crossover, crossover * 1.001],
            [250.0, 550.0, 3000.0],
            rng.uniform(0.01, 3000.0, 4000),
        ]
    )


def _scalar_loop(model, distances):
    return np.array([model.rx_power(TX, float(d)) for d in distances])


@pytest.mark.parametrize(
    "model",
    [
        FreeSpace(),
        TwoRayGround(),
        LogNormalShadowing(sigma_db=0.0),
        FreeSpace(frequency_hz=2.4e9, system_loss=1.2),
        TwoRayGround(height_tx_m=2.0, height_rx_m=1.0),
    ],
    ids=["free_space", "two_ray", "shadowing_sigma0", "free_space_24", "two_ray_asym"],
)
def test_deterministic_vector_bit_identical(model):
    distances = _distances()
    scalar = _scalar_loop(model, distances)
    vector = model.rx_power_vector(TX, distances)
    np.testing.assert_array_equal(scalar, vector)


def test_vector_zero_distance_returns_tx_power():
    for model in (FreeSpace(), TwoRayGround()):
        assert model.rx_power_vector(TX, np.array([0.0]))[0] == TX


def test_vector_preserves_shape():
    d = np.full((3, 4), 100.0)
    out = TwoRayGround().rx_power_vector(TX, d)
    assert out.shape == (3, 4)
    assert np.all(out == TwoRayGround().rx_power(TX, 100.0))


@pytest.mark.parametrize(
    "make",
    [
        lambda rng: NakagamiFading(m=3.0, rng=rng),
        lambda rng: NakagamiFading(m=1.0, mean_model=FreeSpace(), rng=rng),
        lambda rng: LogNormalShadowing(sigma_db=4.0, rng=rng),
        lambda rng: LogNormalShadowing(
            path_loss_exponent=3.5, sigma_db=8.0, rng=rng
        ),
    ],
    ids=["nakagami_m3", "rayleigh_friis", "shadowing_s4", "shadowing_s8"],
)
def test_stochastic_vector_matches_scalar_under_fixed_rng(make):
    distances = _distances()
    scalar = _scalar_loop(make(np.random.default_rng(99)), distances)
    vector = make(np.random.default_rng(99)).rx_power_vector(TX, distances)
    np.testing.assert_array_equal(scalar, vector)


@pytest.mark.parametrize(
    "make",
    [
        lambda rng: NakagamiFading(m=3.0, rng=rng),
        lambda rng: LogNormalShadowing(sigma_db=4.0, rng=rng),
    ],
    ids=["nakagami", "shadowing"],
)
def test_link_cache_split_matches_vector(make):
    """rx_power_from_cache(link_cache_row(...)) == rx_power_vector(...)."""
    distances = _distances()
    direct = make(np.random.default_rng(7)).rx_power_vector(TX, distances)
    model = make(np.random.default_rng(7))
    state = model.link_cache_row(TX, distances)
    np.testing.assert_array_equal(direct, model.rx_power_from_cache(state))
    # The cached state is reusable: a second draw consumes fresh randomness
    # but stays distributed around the same mean row.
    again = model.rx_power_from_cache(state)
    assert again.shape == direct.shape
    assert not np.array_equal(again, direct)


def test_stochastic_draw_order_skips_ineligible_links():
    """d = 0 (Nakagami) and d <= d0 (shadowing) links consume no RNG."""
    d = np.array([0.0, 200.0, 0.0, 300.0])
    naka_a = NakagamiFading(m=2.0, rng=np.random.default_rng(5))
    with_zeros = naka_a.rx_power_vector(TX, d)
    naka_b = NakagamiFading(m=2.0, rng=np.random.default_rng(5))
    dense = naka_b.rx_power_vector(TX, np.array([200.0, 300.0]))
    np.testing.assert_array_equal(with_zeros[[1, 3]], dense)

    shad_a = LogNormalShadowing(sigma_db=4.0, rng=np.random.default_rng(5))
    mixed = shad_a.rx_power_vector(TX, np.array([0.5, 1.0, 200.0, 300.0]))
    shad_b = LogNormalShadowing(sigma_db=4.0, rng=np.random.default_rng(5))
    dense = shad_b.rx_power_vector(TX, np.array([200.0, 300.0]))
    np.testing.assert_array_equal(mixed[[2, 3]], dense)


def test_base_class_fallback_loop():
    """A third-party subclass without a vector override still works."""

    class InverseSquare(PropagationModel):
        def rx_power(self, tx_power_w, distance_m):
            if distance_m <= 0:
                return tx_power_w
            return tx_power_w / (distance_m * distance_m)

    model = InverseSquare()
    d = np.array([0.0, 2.0, 10.0])
    np.testing.assert_array_equal(
        model.rx_power_vector(2.0, d), np.array([2.0, 0.5, 0.02])
    )
    np.testing.assert_array_equal(
        model.rx_power_from_cache(model.link_cache_row(2.0, d)),
        model.rx_power_vector(2.0, d),
    )


# -- mean power / range inversion for stochastic models ----------------------


def test_mean_rx_power_is_uniform_api():
    assert FreeSpace().mean_rx_power(TX, 100.0) == FreeSpace().rx_power(
        TX, 100.0
    )
    naka = NakagamiFading(m=3.0)
    assert naka.mean_rx_power(TX, 250.0) == TwoRayGround().rx_power(TX, 250.0)
    shad = LogNormalShadowing(sigma_db=6.0)
    flat = LogNormalShadowing(sigma_db=0.0)
    assert shad.mean_rx_power(TX, 250.0) == flat.rx_power(TX, 250.0)


def test_mean_rx_power_vector_matches_scalar():
    distances = _distances()
    for model in (
        NakagamiFading(m=3.0),
        LogNormalShadowing(sigma_db=4.0),
        TwoRayGround(),
    ):
        scalar = np.array(
            [model.mean_rx_power(TX, float(d)) for d in distances]
        )
        np.testing.assert_array_equal(
            scalar, model.mean_rx_power_vector(TX, distances)
        )


def test_deterministic_flag():
    assert FreeSpace().deterministic
    assert TwoRayGround().deterministic
    assert LogNormalShadowing(sigma_db=0.0).deterministic
    assert not LogNormalShadowing(sigma_db=4.0).deterministic
    assert not NakagamiFading().deterministic


@pytest.mark.parametrize(
    "model",
    [NakagamiFading(m=1.0), LogNormalShadowing(sigma_db=8.0)],
    ids=["nakagami", "shadowing"],
)
def test_range_for_threshold_stochastic_uses_mean_and_no_rng(model):
    """Bisection runs on the monotone mean power and consumes no draws."""
    state_before = model._rng.bit_generator.state
    threshold = model.mean_rx_power(TX, 250.0)
    rng_range = model.range_for_threshold(TX, threshold)
    assert rng_range == pytest.approx(250.0, rel=1e-3)
    assert model._rng.bit_generator.state == state_before


def test_range_for_threshold_repeatable():
    model = NakagamiFading(m=1.0)
    threshold = model.mean_rx_power(TX, 400.0)
    first = model.range_for_threshold(TX, threshold)
    second = model.range_for_threshold(TX, threshold)
    assert first == second == pytest.approx(400.0, rel=1e-3)
