"""Scheduler robustness under load and adversarial patterns."""

import numpy as np
import pytest

from repro.des.engine import SimulationError, Simulator


def test_hundred_thousand_events_in_order():
    sim = Simulator()
    rng = np.random.default_rng(0)
    times = rng.uniform(0, 1000, 100_000)
    fired = []
    for t in times:
        sim.schedule(float(t), fired.append, float(t))
    sim.run()
    assert len(fired) == 100_000
    assert fired == sorted(fired)


def test_mass_cancellation():
    sim = Simulator()
    fired = []
    events = [
        sim.schedule(float(i), fired.append, i) for i in range(10_000)
    ]
    for event in events[::2]:
        event.cancel()
    assert sim.pending_events == 5_000
    sim.run()
    assert fired == list(range(1, 10_000, 2))


def test_event_storm_scheduled_during_run():
    """Events that spawn events at the same timestamp drain correctly."""
    sim = Simulator()
    fired = []

    def spawn(depth):
        fired.append(depth)
        if depth < 500:
            sim.schedule(0.0, spawn, depth + 1)

    sim.schedule(1.0, spawn, 0)
    sim.run()
    assert fired == list(range(501))
    assert sim.now == 1.0


def test_reentrant_run_rejected():
    sim = Simulator()

    def nested():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, nested)
    sim.run()


def test_interleaved_run_until_segments():
    sim = Simulator()
    fired = []
    for i in range(100):
        sim.schedule(float(i), fired.append, i)
    for boundary in (10.0, 50.0, 99.0, 200.0):
        sim.run(until=boundary)
    assert fired == list(range(100))
    assert sim.now == 200.0
