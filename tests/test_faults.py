"""Fault-injection subsystem: registry, scenario plumbing, model behavior.

The acceptance test at the bottom is the headline property from the
issue: a seeded node-crash produces a measurable outage *and* a
measurable re-convergence (recovery time > 0, post-recovery PDR rebound)
for every routing protocol under test.
"""

import dataclasses
import math

import pytest

from repro.core import registry
from repro.core.config import Scenario
from repro.core.simulation import CavenetSimulation
from repro.util.errors import ConfigError

CRASH = {"kind": "node-crash", "nodes": [0], "at_s": 10.0, "down_s": 8.0}


def _tiny(**overrides) -> Scenario:
    base = dict(
        num_nodes=10,
        road_length_m=900.0,
        sim_time_s=15.0,
        senders=(1, 2),
        receiver=0,
        dawdle_p=0.0,
        traffic_start_s=2.0,
        traffic_stop_s=12.0,
        seed=3,
    )
    base.update(overrides)
    return Scenario(**base)


# -- registry namespace -------------------------------------------------------


def test_fault_is_a_registry_namespace():
    assert "fault" in registry.KINDS
    assert set(registry.known("fault")) >= {
        "node-crash",
        "radio-silence",
        "channel-degradation",
        "packet-blackhole",
    }
    from repro.faults.models import NodeCrash

    assert registry.resolve("fault", "node-crash") is NodeCrash


# -- Scenario plumbing --------------------------------------------------------


def test_faults_default_empty_and_in_to_dict():
    scenario = _tiny()
    assert scenario.faults == ()
    assert scenario.to_dict()["faults"] == []


def test_faults_normalize_kind_spelling():
    scenario = _tiny(faults=[{"kind": "NODE-CRASH", "nodes": [0]}])
    assert scenario.faults[0]["kind"] == "node-crash"


def test_faults_entry_must_be_mapping_with_kind():
    with pytest.raises(ConfigError, match="'kind'"):
        _tiny(faults=["node-crash"])
    with pytest.raises(ConfigError, match="'kind'"):
        _tiny(faults=[{"nodes": [0]}])
    with pytest.raises(ConfigError, match="unknown fault model"):
        _tiny(faults=[{"kind": "meteor-strike"}])


def test_faults_round_trip_dict_json_and_overrides(tmp_path):
    scenario = _tiny(faults=[dict(CRASH), {"kind": "radio-silence"}])
    assert Scenario.from_dict(scenario.to_dict()) == scenario

    path = tmp_path / "scenario.json"
    scenario.save(path)
    assert Scenario.load(path) == scenario

    # Overriding an unrelated field keeps the fault plan verbatim.
    reseeded = scenario.with_overrides({"seed": 99})
    assert reseeded.faults == scenario.faults
    # Overriding the fault plan itself replaces it wholesale.
    cleared = scenario.with_overrides({"faults": []})
    assert cleared.faults == ()


def test_faults_tuple_is_deep_copied_from_input():
    spec = {"kind": "node-crash", "nodes": [0], "at_s": 10.0, "down_s": 8.0}
    scenario = _tiny(faults=[spec])
    spec["at_s"] = 999.0
    spec["nodes"].append(5)
    assert scenario.faults[0]["at_s"] == 10.0
    assert scenario.faults[0]["nodes"] == [0]


# -- model option validation --------------------------------------------------


@pytest.mark.parametrize(
    "fault, message",
    [
        ({"kind": "node-crash", "at_s": 5.0, "mtbf_s": 3.0, "mttr_s": 1.0},
         "not both"),
        ({"kind": "node-crash", "mtbf_s": 3.0}, "mttr_s"),
        ({"kind": "node-crash", "nodes": [99], "at_s": 1.0}, "names node 99"),
        ({"kind": "node-crash", "at_s": 1.0, "down_s": 0.0}, "down_s"),
        ({"kind": "radio-silence", "duration_s": -1.0}, "duration_s"),
        ({"kind": "radio-silence", "duration_s": 5.0, "repeat_every_s": 2.0},
         "repeat_every_s"),
        ({"kind": "channel-degradation", "extra_loss_db": 0.0},
         "extra_loss_db"),
        ({"kind": "packet-blackhole"}, "nodes"),
        ({"kind": "node-crash", "warp_factor": 9}, "warp_factor"),
    ],
)
def test_invalid_fault_options_raise_config_error(fault, message):
    with pytest.raises(ConfigError, match=message):
        CavenetSimulation(_tiny(faults=[fault])).run()


# -- per-model behavior -------------------------------------------------------


def test_radio_silence_suppresses_frames():
    quiet = CavenetSimulation(_tiny(faults=[
        {"kind": "radio-silence", "at_s": 4.0, "duration_s": 6.0},
    ])).run()
    loud = CavenetSimulation(_tiny()).run()
    assert quiet.channel_telemetry.frames_suppressed > 0
    assert loud.channel_telemetry.frames_suppressed == 0
    assert quiet.pdr() < loud.pdr()
    kinds = [e.kind for e in quiet.fault_events]
    assert kinds == ["radio_silence_on", "radio_silence_off"]


def test_channel_degradation_tanks_pdr_while_active():
    degraded = CavenetSimulation(_tiny(faults=[
        {"kind": "channel-degradation", "extra_loss_db": 60.0,
         "at_s": 4.0, "duration_s": 6.0},
    ])).run()
    clean = CavenetSimulation(_tiny()).run()
    assert degraded.pdr() < clean.pdr()
    kinds = [e.kind for e in degraded.fault_events]
    assert kinds == ["channel_degraded", "channel_restored"]
    assert degraded.fault_events[0].detail == "60 dB"


def test_packet_blackhole_drops_transit_traffic():
    # A 2 km road forces multi-hop routes (the fault-free run delivers
    # everything in 4 hops); turning every relay into a blackhole
    # severs them all, and the drops are attributed to the fault.
    scenario = _tiny(
        road_length_m=2000.0,
        num_nodes=20,
        senders=(10,),
        faults=[{"kind": "packet-blackhole",
                 "nodes": [n for n in range(20) if n not in (0, 10)]}],
    )
    result = CavenetSimulation(scenario).run()
    assert result.collector.drops.get("blackhole", 0) > 0
    assert result.pdr() < 1.0
    assert {e.kind for e in result.fault_events} == {"blackhole_on"}


def test_node_crash_churn_mode_cycles_deterministically():
    scenario = _tiny(faults=[
        {"kind": "node-crash", "nodes": [3, 4], "mtbf_s": 4.0,
         "mttr_s": 2.0},
    ])
    first = CavenetSimulation(scenario).run()
    second = CavenetSimulation(scenario).run()
    events = [(e.kind, e.node, e.time) for e in first.fault_events]
    assert events == [(e.kind, e.node, e.time) for e in second.fault_events]
    downs = [e for e in first.fault_events if e.kind == "node_down"]
    ups = [e for e in first.fault_events if e.kind == "node_up"]
    assert downs and ups
    assert {e.node for e in downs} <= {3, 4}


def test_empty_faults_change_nothing():
    # The lazy fault stage must not perturb RNG draws or event counts:
    # faults=() and an absent faults field are the same simulation.
    with_field = CavenetSimulation(_tiny(faults=[])).run()
    baseline = CavenetSimulation(_tiny()).run()
    assert with_field.pdr() == baseline.pdr()
    assert (with_field.channel_telemetry.events_processed
            == baseline.channel_telemetry.events_processed)
    assert with_field.fault_events == []


# -- acceptance: measurable outage and re-convergence -------------------------


@pytest.mark.parametrize("protocol", ["AODV", "OLSR", "DYMO"])
def test_node_crash_shows_outage_then_reconvergence(protocol):
    scenario = _tiny(
        sim_time_s=30.0,
        traffic_stop_s=28.0,
        protocol=protocol,
        faults=[dict(CRASH)],  # receiver down over [10 s, 18 s)
    )
    result = CavenetSimulation(scenario).run()

    kinds = [(e.kind, e.node, e.time) for e in result.fault_events]
    assert kinds == [("node_down", 0, 10.0), ("node_up", 0, 18.0)]

    timeline = dict(result.pdr_timeline(bin_s=1.0))
    outage = [p for t, p in timeline.items()
              if 10.0 <= t < 18.0 and not math.isnan(p)]
    post = [p for t, p in timeline.items()
            if 20.0 <= t < 28.0 and not math.isnan(p)]
    assert outage and post
    mean_outage = sum(outage) / len(outage)
    mean_post = sum(post) / len(post)
    # The outage bites and the protocol re-converges afterwards.
    assert mean_outage < 0.7
    assert mean_post > 0.9
    assert mean_post > mean_outage

    gaps = result.recovery_times_s()
    assert list(gaps) == [18.0]
    assert gaps[18.0] > 0.0 and not math.isnan(gaps[18.0])
    assert result.availability(threshold=0.5) < 1.0
