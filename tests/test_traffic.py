"""Traffic-source (CBR, Poisson on/off) and sink tests."""

import numpy as np
import pytest

from repro.traffic.base import TrafficSource
from repro.traffic.cbr import CbrSource
from repro.traffic.poisson import PoissonOnOffSource
from repro.traffic.sink import Sink

from helpers import TestNetwork, chain_coords


def _pair():
    network = TestNetwork(chain_coords(2), protocol="AODV")
    network.start_routing()
    return network


def test_cbr_emits_at_configured_rate():
    network = _pair()
    source = CbrSource(
        network.nodes[0], 1, rate_pps=5.0, size_bytes=512,
        start_s=1.0, stop_s=5.0, flow_id=7,
    )
    source.start()
    network.run(until=10.0)
    # Emissions at 1.0, 1.2, ... , 4.8: exactly 20 packets.
    assert source.packets_sent == 20
    assert network.metrics.num_originated == 20


def test_cbr_table1_shape():
    """Table I: 5 pkt/s x 512 B between 10 s and 90 s = 400 packets."""
    network = _pair()
    source = CbrSource(network.nodes[0], 1, flow_id=7)
    source.start()
    network.run(until=100.0)
    assert source.packets_sent == 400


def test_cbr_jitter_shifts_start_only():
    import numpy as np

    network = _pair()
    source = CbrSource(
        network.nodes[0], 1, rate_pps=2.0, start_s=1.0, stop_s=4.0,
        jitter_s=0.1, rng=np.random.default_rng(0), flow_id=7,
    )
    source.start()
    network.run(until=5.0)
    times = [e.time for e in network.metrics.originated]
    gaps = np.diff(times)
    assert np.allclose(gaps, 0.5)
    assert 1.0 <= times[0] < 1.1


def test_cbr_stop_cancels():
    network = _pair()
    source = CbrSource(
        network.nodes[0], 1, rate_pps=5.0, start_s=1.0, stop_s=9.0, flow_id=7
    )
    source.start()
    network.run(until=2.0)
    source.stop()
    sent_at_stop = source.packets_sent
    network.run(until=9.0)
    assert source.packets_sent == sent_at_stop


def test_cbr_double_start_rejected():
    network = _pair()
    source = CbrSource(network.nodes[0], 1, flow_id=7)
    source.start()
    with pytest.raises(RuntimeError):
        source.start()


def test_cbr_validation():
    network = _pair()
    with pytest.raises(ValueError):
        CbrSource(network.nodes[0], 1, rate_pps=0.0)
    with pytest.raises(ValueError):
        CbrSource(network.nodes[0], 1, size_bytes=0)
    with pytest.raises(ValueError):
        CbrSource(network.nodes[0], 1, start_s=10.0, stop_s=5.0)
    with pytest.raises(ValueError):
        CbrSource(network.nodes[0], 1, jitter_s=-0.1)


def test_sink_records_receptions():
    network = _pair()
    sink = Sink(network.nodes[1])
    source = CbrSource(
        network.nodes[0], 1, rate_pps=5.0, start_s=1.0, stop_s=3.0, flow_id=7
    )
    source.start()
    network.run(until=5.0)
    assert len(sink.receptions) == 10
    assert sink.received_seqs(7) == list(range(1, 11))
    assert sink.missing_seqs(7, source.packets_sent) == []
    assert all(r.delay_s > 0 for r in sink.receptions)


def test_sink_missing_seqs_detects_loss():
    network = _pair()
    sink = Sink(network.nodes[1])
    # No traffic: everything "missing".
    assert sink.missing_seqs(7, 3) == [1, 2, 3]
    assert sink.flow_receptions(7) == []


# -- Poisson on/off source ----------------------------------------------------


def test_sources_share_the_trafficsource_interface():
    assert issubclass(CbrSource, TrafficSource)
    assert issubclass(PoissonOnOffSource, TrafficSource)


def _poisson(network, **kwargs):
    defaults = dict(
        rate_pps=20.0, start_s=1.0, stop_s=9.0, flow_id=7,
        rng=np.random.default_rng(5),
    )
    defaults.update(kwargs)
    return PoissonOnOffSource(network.nodes[0], 1, **defaults)


def test_poisson_emits_within_window_only():
    network = _pair()
    source = _poisson(network)
    source.start()
    network.run(until=12.0)
    times = [e.time for e in network.metrics.originated]
    assert source.packets_sent == len(times) > 0
    assert all(1.0 <= t < 9.0 for t in times)


def test_poisson_always_on_approximates_rate():
    """With off_mean_s=0 the source is a plain Poisson process: over an
    8 s window at 20 pps, the count concentrates around 160."""
    network = _pair()
    source = _poisson(network, off_mean_s=0.0, on_mean_s=1000.0)
    source.start()
    network.run(until=10.0)
    assert 100 < source.packets_sent < 230  # ~5 sigma around 160


def test_poisson_bursts_thin_the_average():
    """Equal on/off means gate roughly half the window off."""
    network = _pair()
    source = _poisson(
        network, on_mean_s=0.5, off_mean_s=0.5,
        rng=np.random.default_rng(11),
    )
    source.start()
    network.run(until=10.0)
    assert 0 < source.packets_sent < 140  # clearly below always-on ~160


def test_poisson_is_reproducible_by_seed():
    counts = []
    for _ in range(2):
        network = _pair()
        source = _poisson(network, rng=np.random.default_rng(42))
        source.start()
        network.run(until=10.0)
        counts.append(source.packets_sent)
    assert counts[0] == counts[1]


def test_poisson_stop_cancels():
    network = _pair()
    source = _poisson(network, off_mean_s=0.0)
    source.start()
    network.run(until=3.0)
    source.stop()
    sent = source.packets_sent
    network.run(until=9.0)
    assert source.packets_sent == sent


def test_poisson_double_start_rejected():
    network = _pair()
    source = _poisson(network)
    source.start()
    with pytest.raises(RuntimeError):
        source.start()


def test_poisson_validation():
    network = _pair()
    with pytest.raises(ValueError):
        _poisson(network, rate_pps=0.0)
    with pytest.raises(ValueError):
        _poisson(network, on_mean_s=0.0)
    with pytest.raises(ValueError):
        _poisson(network, off_mean_s=-1.0)
    with pytest.raises(ValueError):
        _poisson(network, start_s=5.0, stop_s=5.0)
