"""CSV/JSON trace exporter round-trip tests."""

import numpy as np
import pytest

from repro.mobility.trace import MobilityTrace
from repro.tracegen.tabular import (
    trace_from_csv,
    trace_from_json,
    trace_to_csv,
    trace_to_json,
)


def _trace(with_teleports=False):
    times = np.array([0.0, 1.0, 2.5])
    positions = np.array(
        [
            [[0.0, 0.0], [3.5, -1.25]],
            [[1.0, 0.5], [3.5, -1.25]],
            [[2.0, 1.0], [4.0, 0.0]],
        ]
    )
    teleported = None
    if with_teleports:
        teleported = np.zeros((3, 2), dtype=bool)
        teleported[2, 1] = True
    return MobilityTrace(times, positions, teleported)


def test_csv_roundtrip_exact():
    trace = _trace()
    restored = trace_from_csv(trace_to_csv(trace))
    assert np.array_equal(restored.times, trace.times)
    assert np.array_equal(restored.positions, trace.positions)
    assert restored.teleported is None


def test_csv_roundtrip_with_teleports():
    trace = _trace(with_teleports=True)
    restored = trace_from_csv(trace_to_csv(trace))
    assert np.array_equal(restored.teleported, trace.teleported)


def test_csv_rejects_wrong_header():
    with pytest.raises(ValueError, match="header"):
        trace_from_csv("a,b,c\n1,2,3\n")


def test_csv_rejects_missing_samples():
    trace = _trace()
    text = trace_to_csv(trace)
    lines = text.strip().splitlines()
    broken = "\n".join(lines[:-1]) + "\n"  # drop one (time, node) row
    with pytest.raises(ValueError, match="missing"):
        trace_from_csv(broken)


def test_csv_rejects_non_contiguous_nodes():
    text = (
        "time,node,x,y,teleported\n"
        "0.0,0,1.0,2.0,0\n"
        "0.0,2,3.0,4.0,0\n"
    )
    with pytest.raises(ValueError, match="contiguous"):
        trace_from_csv(text)


def test_csv_rejects_empty():
    with pytest.raises(ValueError, match="no samples"):
        trace_from_csv("time,node,x,y,teleported\n")


def test_json_roundtrip_exact():
    trace = _trace(with_teleports=True)
    restored = trace_from_json(trace_to_json(trace))
    assert np.array_equal(restored.times, trace.times)
    assert np.array_equal(restored.positions, trace.positions)
    assert np.array_equal(restored.teleported, trace.teleported)


def test_json_without_teleports():
    restored = trace_from_json(trace_to_json(_trace()))
    assert restored.teleported is None


def test_json_rejects_foreign_documents():
    with pytest.raises(ValueError, match="format"):
        trace_from_json('{"format": "something-else"}')


def test_json_indent_option():
    text = trace_to_json(_trace(), indent=2)
    assert "\n" in text
    restored = trace_from_json(text)
    assert restored.num_nodes == 2
