"""Crossing-roads (intersection) tests — the paper's crosspoint bottleneck."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ca.intersection import CrossingRoads


def test_initial_placement_avoids_crosspoint():
    roads = CrossingRoads(50, 10, 10)
    for road in (0, 1):
        assert roads.crosspoints[road] not in roads.positions(road)


def test_single_vehicle_per_road_flows_freely():
    roads = CrossingRoads(60, 1, 1, p=0.0)
    roads.run(100)
    # Both vehicles reach v_max: one crossing per lap each.
    assert roads.mean_velocity(0) == 5.0
    assert roads.crossings(0) > 5
    assert roads.crossings(1) > 5


def test_priority_road_never_yields_to_empty_crossing():
    roads = CrossingRoads(60, 8, 0, p=0.0)
    roads.run(200)
    # No road-B traffic: road A behaves like an isolated ring.
    assert roads.mean_velocity(0) == 5.0


def test_yielding_road_queues_behind_stuck_crossing():
    """A road-A vehicle stuck ON the crosspoint (blocked by its own
    leader) stops road-B traffic dead in front of the shared cell."""
    roads = CrossingRoads(30, 0, 0, p=0.0)
    cross_a, cross_b = roads.crosspoints
    road_a, road_b = roads._roads
    # Road A: one vehicle on the cross, its leader bumper-to-bumper ahead.
    road_a.positions = np.array([cross_a, cross_a + 1], dtype=np.int64)
    road_a.velocities = np.array([0, 0], dtype=np.int64)
    road_a.ids = np.array([98, 99], dtype=np.int64)
    road_a.wraps = np.array([0, 0], dtype=np.int64)
    # Road B: a fast vehicle one cell before the cross.
    road_b.positions = np.array([cross_b - 1], dtype=np.int64)
    road_b.velocities = np.array([5], dtype=np.int64)
    road_b.ids = np.array([1], dtype=np.int64)
    road_b.wraps = np.array([0], dtype=np.int64)
    roads.step()
    # The vehicle on the cross could not move (gap 0), so road B froze.
    assert cross_a in roads.positions(0)
    assert roads.positions(1)[0] == cross_b - 1
    assert roads.velocities(1)[0] == 0


def test_departing_priority_vehicle_hands_cell_over():
    """If the road-A vehicle *vacates* the crosspoint this step, road B
    may sweep through behind it — the standard CA cell handover."""
    roads = CrossingRoads(30, 0, 0, p=0.0)
    cross_a, cross_b = roads.crosspoints
    road_a, road_b = roads._roads
    road_a.positions = np.array([cross_a], dtype=np.int64)
    road_a.velocities = np.array([0], dtype=np.int64)
    road_a.ids = np.array([99], dtype=np.int64)
    road_a.wraps = np.array([0], dtype=np.int64)
    road_b.positions = np.array([cross_b - 1], dtype=np.int64)
    road_b.velocities = np.array([5], dtype=np.int64)
    road_b.ids = np.array([1], dtype=np.int64)
    road_b.wraps = np.array([0], dtype=np.int64)
    roads.step()
    assert roads.positions(0)[0] != cross_a  # A accelerated away
    assert roads.positions(1)[0] > cross_b  # B passed through behind it


def test_no_simultaneous_crosspoint_occupancy():
    rng = np.random.default_rng(7)
    roads = CrossingRoads(40, 12, 12, p=0.3, rng=rng)
    for _ in range(300):
        roads.step()
        both = roads.crosspoint_occupied_by(0) and roads.crosspoint_occupied_by(1)
        assert not both


def test_crosspoint_is_a_bottleneck():
    """The paper's claim: the crosspoint throttles the whole lane.  The
    yielding road's flow drops well below an isolated ring's at the same
    density."""
    from repro.ca.nasch import NagelSchreckenberg

    isolated = NagelSchreckenberg(60, 15, p=0.0)
    isolated.run(300)
    baseline = isolated.flow()

    roads = CrossingRoads(60, 15, 15, p=0.0, rng=np.random.default_rng(1))
    roads.run(300)
    flows = []
    for _ in range(100):
        roads.step()
        flows.append(roads.flow(1))
    yielding_flow = float(np.mean(flows))
    assert yielding_flow < 0.8 * baseline


def test_crossings_counted():
    roads = CrossingRoads(40, 3, 3, p=0.0)
    roads.run(200)
    assert roads.crossings(0) > 0
    assert roads.crossings(1) > 0
    # Priority road crosses at least as often as the yielding one.
    assert roads.crossings(0) >= roads.crossings(1)


@given(
    num_cells=st.integers(min_value=10, max_value=60),
    a=st.integers(min_value=0, max_value=12),
    b=st.integers(min_value=0, max_value=12),
    p=st.sampled_from([0.0, 0.3]),
    steps=st.integers(min_value=1, max_value=50),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=40, deadline=None)
def test_intersection_invariants(num_cells, a, b, p, steps, seed):
    a = min(a, num_cells - 1)
    b = min(b, num_cells - 1)
    roads = CrossingRoads(
        num_cells, a, b, p=p, rng=np.random.default_rng(seed)
    )
    roads.run(steps)
    for road, count in ((0, a), (1, b)):
        positions = roads.positions(road)
        assert len(positions) == count  # conservation
        assert len(np.unique(positions)) == count  # no collisions
        velocities = roads.velocities(road)
        assert np.all(velocities >= 0)
        assert np.all(velocities <= 5)
    # The shared site is never doubly occupied.
    assert not (
        roads.crosspoint_occupied_by(0) and roads.crosspoint_occupied_by(1)
    )


class TestValidation:
    def test_too_many_vehicles(self):
        with pytest.raises(ValueError):
            CrossingRoads(10, 10, 0)

    def test_bad_crosspoint(self):
        with pytest.raises(ValueError):
            CrossingRoads(10, 2, 2, cross_a=10)

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            CrossingRoads(10, 2, 2, p=-0.1)

    def test_negative_steps(self):
        roads = CrossingRoads(10, 2, 2)
        with pytest.raises(ValueError):
            roads.run(-1)
