"""DYMO behaviour tests, especially path accumulation."""

import pytest

from repro.routing.dymo import Dymo, DymoConfig

from helpers import TestNetwork, chain_coords


def _chain(n, **kwargs):
    network = TestNetwork(chain_coords(n), protocol="DYMO", **kwargs)
    network.start_routing()
    return network


def test_route_discovery_and_delivery():
    network = _chain(4)
    packet = network.nodes[0].originate_data(3, 512, flow_id=1, seq=1)
    network.run(until=5.0)
    assert packet.uid in network.delivered_uids()


def test_path_accumulation_installs_intermediate_routes():
    """The DYMO difference (paper III-B.3): after one discovery 0 -> 3,
    intermediate nodes know routes to ALL nodes on the path, and the
    originator knows every intermediate hop — AODV would only know the
    destination and the next hop."""
    network = _chain(4)
    network.nodes[0].originate_data(3, 512, flow_id=1, seq=1)
    network.run(until=5.0)
    now = network.sim.now
    dymo_2: Dymo = network.nodes[2].routing
    # Node 2 saw the RREQ with path [0, 1]: routes to both.
    assert dymo_2.table.lookup(0, now) is not None
    assert dymo_2.table.lookup(1, now) is not None
    # The originator learned intermediate hops from the RREP path.
    dymo_0: Dymo = network.nodes[0].routing
    assert dymo_0.table.lookup(3, now) is not None
    assert dymo_0.table.lookup(2, now) is not None


def test_hop_counts_from_path_position():
    network = _chain(4)
    network.nodes[0].originate_data(3, 512, flow_id=1, seq=1)
    network.run(until=5.0)
    now = network.sim.now
    dymo_3: Dymo = network.nodes[3].routing
    entry_0 = dymo_3.table.lookup(0, now)
    entry_2 = dymo_3.table.lookup(2, now)
    assert entry_0.hops == 3
    assert entry_2.hops == 1


def test_only_target_replies():
    """No intermediate RREPs in DYMO: one discovery yields RREPs only from
    the target side (forwarded hop by hop)."""
    network = _chain(4)
    network.nodes[0].originate_data(3, 512, flow_id=1, seq=1)
    network.run(until=5.0)
    rreps = [
        t
        for t in network.metrics.control_transmissions()
        if t.kind == "DYMO_RREP"
    ]
    # Exactly one RREP per hop of the reverse path: 3 transmissions.
    assert len(rreps) == 3
    assert {t.node for t in rreps} == {3, 2, 1}


def test_rerr_floods_on_break():
    network = _chain(4)
    network.nodes[0].originate_data(3, 512, flow_id=1, seq=1)
    network.run(until=3.0)
    network.positions.move(2, 8000.0, 8000.0)
    network.nodes[0].originate_data(3, 512, flow_id=1, seq=2)
    network.run(until=10.0)
    kinds = [t.kind for t in network.metrics.control_transmissions()]
    assert "DYMO_RERR" in kinds


def test_buffered_packets_flushed():
    network = _chain(4)
    packets = [
        network.nodes[0].originate_data(3, 512, flow_id=1, seq=i)
        for i in range(6)
    ]
    network.run(until=5.0)
    assert {p.uid for p in packets} <= network.delivered_uids()


def test_partitioned_target_drops_after_retries():
    coords = chain_coords(2) + [(9000.0, 0.0)]
    network = TestNetwork(coords, protocol="DYMO")
    network.start_routing()
    packet = network.nodes[0].originate_data(2, 512, flow_id=1, seq=1)
    network.run(until=30.0)
    assert packet.uid not in network.delivered_uids()
    assert network.metrics.drops.get("no_route", 0) >= 1


def test_seq_numbers_monotone_per_node():
    network = _chain(3)
    dymo: Dymo = network.nodes[0].routing
    before = dymo._seq
    network.nodes[0].originate_data(2, 512, flow_id=1, seq=1)
    network.run(until=5.0)
    assert dymo._seq > before


def test_duplicate_rreq_not_reprocessed():
    network = _chain(4)
    network.nodes[0].originate_data(3, 512, flow_id=1, seq=1)
    network.run(until=5.0)
    rreqs = [
        t
        for t in network.metrics.control_transmissions()
        if t.kind == "DYMO_RREQ"
    ]
    # Each of the 4 nodes transmits the flood at most once (the target
    # replies instead of forwarding).
    assert len(rreqs) <= 3


def test_hello_interval_per_table1():
    assert DymoConfig().hello_interval_s == 1.0


def test_neighbor_lifetime():
    config = DymoConfig(hello_interval_s=2.0, allowed_hello_loss=3)
    assert config.neighbor_lifetime_s == pytest.approx(6.0)
