"""Radio-connectivity analysis tests (paper Fig. 1 effects)."""

import numpy as np
import pytest

from repro.analysis.connectivity import (
    connectivity_graph,
    connectivity_series,
    largest_component_fraction,
    pair_connectivity_series,
    path_exists,
)
from repro.mobility.trace import MobilityTrace


def test_edges_within_range_only():
    positions = np.array([[0.0, 0.0], [200.0, 0.0], [600.0, 0.0]])
    graph = connectivity_graph(positions, 250.0)
    assert graph.has_edge(0, 1)
    assert not graph.has_edge(1, 2)
    assert not graph.has_edge(0, 2)


def test_range_boundary_inclusive():
    positions = np.array([[0.0, 0.0], [250.0, 0.0]])
    graph = connectivity_graph(positions, 250.0)
    assert graph.has_edge(0, 1)


def test_largest_component_fraction():
    positions = np.array(
        [[0.0, 0.0], [100.0, 0.0], [200.0, 0.0], [1000.0, 0.0]]
    )
    graph = connectivity_graph(positions, 250.0)
    assert largest_component_fraction(graph) == pytest.approx(0.75)


def test_path_exists_multi_hop():
    positions = np.array([[0.0, 0.0], [200.0, 0.0], [400.0, 0.0]])
    graph = connectivity_graph(positions, 250.0)
    assert path_exists(graph, 0, 2)


def test_relay_lane_fills_gap():
    """Paper Fig. 1-a: a relay on a parallel lane bridges a gap."""
    gap_only = np.array([[0.0, 0.0], [450.0, 0.0]])
    assert not path_exists(connectivity_graph(gap_only, 250.0), 0, 1)
    with_relay = np.array([[0.0, 0.0], [450.0, 0.0], [225.0, 3.75]])
    assert path_exists(connectivity_graph(with_relay, 250.0), 0, 1)


def test_connectivity_series_over_trace():
    times = np.array([0.0, 1.0])
    positions = np.array(
        [
            [[0.0, 0.0], [100.0, 0.0]],  # connected
            [[0.0, 0.0], [900.0, 0.0]],  # split
        ]
    )
    trace = MobilityTrace(times, positions)
    series = connectivity_series(trace, 250.0)
    assert series.tolist() == [1.0, 0.5]


def test_pair_connectivity_series():
    times = np.array([0.0, 1.0])
    positions = np.array(
        [
            [[0.0, 0.0], [100.0, 0.0]],
            [[0.0, 0.0], [900.0, 0.0]],
        ]
    )
    trace = MobilityTrace(times, positions)
    series = pair_connectivity_series(trace, 250.0, 0, 1)
    assert series.tolist() == [True, False]


def test_single_node_graph():
    graph = connectivity_graph(np.array([[5.0, 5.0]]), 100.0)
    assert graph.number_of_nodes() == 1
    assert largest_component_fraction(graph) == 1.0


def test_validates_inputs():
    with pytest.raises(ValueError):
        connectivity_graph(np.zeros((2, 3)), 100.0)
    with pytest.raises(ValueError):
        connectivity_graph(np.zeros((2, 2)), 0.0)
    with pytest.raises(ValueError):
        largest_component_fraction(connectivity_graph(np.zeros((0, 2)), 1.0))
