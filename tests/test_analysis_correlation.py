"""Autocorrelation and Hurst-estimator tests."""

import numpy as np
import pytest

from repro.analysis.correlation import (
    autocorrelation,
    hurst_aggregated_variance,
    hurst_rescaled_range,
)


def _fgn_like(hurst, n, seed):
    """Synthesise a long-memory series via spectral shaping (power-law
    spectrum f^(1-2H))."""
    rng = np.random.default_rng(seed)
    freqs = np.fft.rfftfreq(n)
    freqs[0] = 1.0
    amplitude = freqs ** ((1 - 2 * hurst) / 2)
    spectrum = amplitude * np.exp(1j * rng.uniform(0, 2 * np.pi, len(freqs)))
    return np.fft.irfft(spectrum)


def test_autocorrelation_lag_zero_is_one():
    series = np.random.default_rng(0).normal(size=500)
    assert autocorrelation(series, 10)[0] == 1.0


def test_white_noise_correlations_small():
    series = np.random.default_rng(1).normal(size=5000)
    r = autocorrelation(series, 20)
    assert np.all(np.abs(r[1:]) < 0.05)


def test_ar1_autocorrelation_decays_geometrically():
    rng = np.random.default_rng(2)
    phi = 0.8
    x = np.zeros(20000)
    for i in range(1, len(x)):
        x[i] = phi * x[i - 1] + rng.normal()
    r = autocorrelation(x, 5)
    for lag in range(1, 6):
        assert r[lag] == pytest.approx(phi**lag, abs=0.05)


def test_constant_series_autocorrelation():
    r = autocorrelation(np.ones(100), 5)
    assert r[0] == 1.0
    assert np.all(r[1:] == 0.0)


def test_autocorrelation_validates_args():
    with pytest.raises(ValueError):
        autocorrelation(np.ones(1), 0)
    with pytest.raises(ValueError):
        autocorrelation(np.ones(10), 10)


def test_hurst_white_noise_near_half():
    noise = np.random.default_rng(3).normal(size=16384)
    assert hurst_aggregated_variance(noise) == pytest.approx(0.5, abs=0.1)
    assert hurst_rescaled_range(noise) == pytest.approx(0.55, abs=0.12)


def test_hurst_long_memory_above_half():
    series = _fgn_like(0.85, 16384, seed=4)
    assert hurst_aggregated_variance(series) > 0.65
    assert hurst_rescaled_range(series) > 0.65


def test_hurst_estimators_rank_series_consistently():
    weak = _fgn_like(0.55, 8192, seed=5)
    strong = _fgn_like(0.9, 8192, seed=5)
    assert hurst_aggregated_variance(strong) > hurst_aggregated_variance(weak)
    assert hurst_rescaled_range(strong) > hurst_rescaled_range(weak)


def test_hurst_constant_series_degenerates_to_half():
    assert hurst_aggregated_variance(np.ones(1000)) == 0.5
    assert hurst_rescaled_range(np.ones(1000)) == 0.5


def test_hurst_rejects_short_series():
    with pytest.raises(ValueError):
        hurst_aggregated_variance(np.ones(10))
    with pytest.raises(ValueError):
        hurst_rescaled_range(np.ones(10))
