"""DSDV and flooding baseline tests."""

import pytest

from repro.routing.dsdv import Dsdv, DsdvConfig
from repro.routing.flooding import Flooding

from helpers import TestNetwork, chain_coords


class TestDsdv:
    def _chain(self, n, **kwargs):
        network = TestNetwork(chain_coords(n), protocol="DSDV", **kwargs)
        network.start_routing()
        return network

    def test_tables_converge_across_chain(self):
        network = self._chain(4)
        # Full-dump every 5 s; three dumps propagate three hops.
        network.run(until=16.0)
        dsdv: Dsdv = network.nodes[0].routing
        route = dsdv._valid_route(3)
        assert route is not None
        assert route.next_hop == 1
        assert route.hops == 3

    def test_delivery_after_convergence(self):
        network = self._chain(4)
        network.run(until=16.0)
        packet = network.nodes[0].originate_data(3, 512, flow_id=1, seq=1)
        network.run(until=18.0)
        assert packet.uid in network.delivered_uids()

    def test_no_route_before_convergence(self):
        network = self._chain(4)
        packet = network.nodes[0].originate_data(3, 512, flow_id=1, seq=1)
        network.run(until=0.5)
        assert network.metrics.drops.get("no_route", 0) == 1

    def test_broken_route_marked_infinite(self):
        network = self._chain(3)
        network.run(until=12.0)
        dsdv: Dsdv = network.nodes[0].routing
        assert dsdv._valid_route(2) is not None
        network.positions.move(2, 9000.0, 9000.0)
        network.run(until=30.0)  # neighbour hold at node 1 expires
        assert dsdv._valid_route(2) is None

    def test_periodic_updates_flow(self):
        network = self._chain(2)
        network.run(until=12.0)
        updates = [
            t
            for t in network.metrics.control_transmissions()
            if t.kind == "DSDV_UPDATE"
        ]
        assert len(updates) >= 4

    def test_own_seq_even(self):
        network = self._chain(2)
        network.run(until=12.0)
        dsdv: Dsdv = network.nodes[0].routing
        assert dsdv._seq % 2 == 0

    def test_config_defaults(self):
        config = DsdvConfig()
        assert config.update_interval_s == 5.0


class TestFlooding:
    def _chain(self, n):
        network = TestNetwork(chain_coords(n), protocol="FLOODING")
        network.start_routing()
        return network

    def test_delivery_without_any_control_traffic(self):
        network = self._chain(4)
        packet = network.nodes[0].originate_data(3, 512, flow_id=1, seq=1)
        network.run(until=2.0)
        assert packet.uid in network.delivered_uids()
        assert network.metrics.control_transmissions() == []

    def test_every_node_rebroadcasts_once(self):
        network = self._chain(4)
        network.nodes[0].originate_data(3, 512, flow_id=1, seq=1)
        network.run(until=2.0)
        data_tx = network.metrics.data_transmissions()
        # Origin + up to one rebroadcast per other node; destination also
        # rebroadcasts? No: delivery at destination does not forward.
        senders = [t.node for t in data_tx]
        assert senders.count(0) == 1
        assert senders.count(1) == 1
        assert senders.count(2) == 1

    def test_duplicates_not_redelivered(self):
        # Triangle: two paths to the destination; metrics dedupe by uid and
        # flooding dedupes rebroadcasts by uid.
        coords = [(0.0, 0.0), (200.0, 0.0), (100.0, 170.0)]
        network = TestNetwork(coords, protocol="FLOODING")
        network.start_routing()
        packet = network.nodes[0].originate_data(1, 512, flow_id=1, seq=1)
        network.run(until=2.0)
        assert len(network.metrics.delivered) == 1

    def test_ttl_caps_flood_depth(self):
        from repro.routing.flooding import FloodingConfig

        network = TestNetwork(
            chain_coords(6),
            protocol="FLOODING",
            protocol_options={"config": FloodingConfig(default_ttl=2)},
        )
        network.start_routing()
        packet = network.nodes[0].originate_data(5, 512, flow_id=1, seq=1)
        network.run(until=2.0)
        # TTL 2 reaches only two hops; node 5 is five hops away.
        assert packet.uid not in network.delivered_uids()


def test_make_protocol_unknown_name():
    from repro.routing import make_protocol

    with pytest.raises(ValueError, match="unknown routing protocol"):
        network = TestNetwork([(0.0, 0.0)])
        make_protocol("OSPF", network.nodes[0], None)
