"""Property-based tests of the NaS invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ca.nasch import NagelSchreckenberg


@st.composite
def nasch_models(draw):
    """A random closed-lane automaton with a valid initial placement."""
    num_cells = draw(st.integers(min_value=5, max_value=120))
    num_vehicles = draw(st.integers(min_value=1, max_value=num_cells))
    p = draw(st.sampled_from([0.0, 0.25, 0.5, 1.0]))
    v_max = draw(st.integers(min_value=1, max_value=7))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    positions = np.sort(
        rng.choice(num_cells, size=num_vehicles, replace=False)
    )
    return NagelSchreckenberg(
        num_cells,
        positions=positions,
        p=p,
        v_max=v_max,
        rng=np.random.default_rng(seed + 1),
    )


@given(nasch_models(), st.integers(min_value=1, max_value=30))
@settings(max_examples=60, deadline=None)
def test_no_two_vehicles_share_a_cell(model, steps):
    model.run(steps)
    positions = model.positions
    assert len(np.unique(positions)) == len(positions)


@given(nasch_models(), st.integers(min_value=1, max_value=30))
@settings(max_examples=60, deadline=None)
def test_velocities_bounded(model, steps):
    model.run(steps)
    assert np.all(model.velocities >= 0)
    assert np.all(model.velocities <= model.v_max)


@given(nasch_models(), st.integers(min_value=1, max_value=30))
@settings(max_examples=60, deadline=None)
def test_population_conserved(model, steps):
    before = model.num_vehicles
    model.run(steps)
    assert model.num_vehicles == before


@given(nasch_models(), st.integers(min_value=1, max_value=30))
@settings(max_examples=60, deadline=None)
def test_ring_order_preserved(model, steps):
    """Vehicles never overtake: cumulative positions keep their order."""
    model.run(steps)
    odometer = model.odometer_cells()
    # In ring order, each vehicle's cumulative position is strictly less
    # than its leader's (they started ordered and cannot pass).
    n = len(odometer)
    if n > 1:
        for i in range(n - 1):
            assert odometer[i] < odometer[i + 1]


@given(nasch_models(), st.integers(min_value=1, max_value=30))
@settings(max_examples=60, deadline=None)
def test_velocity_matches_displacement(model, steps):
    """Rule 3 bookkeeping: each step moves each vehicle by its velocity."""
    for _ in range(steps):
        before = model.odometer_cells()
        model.step()
        displacement = model.odometer_cells() - before
        assert np.array_equal(displacement, model.velocities)


@given(nasch_models())
@settings(max_examples=40, deadline=None)
def test_gaps_sum_to_free_cells(model):
    """On a ring, gaps + vehicles account for every cell exactly once."""
    total = int(model.gaps().sum()) + model.num_vehicles
    assert total == model.num_cells


@given(nasch_models(), st.integers(min_value=1, max_value=20))
@settings(max_examples=40, deadline=None)
def test_occupancy_vector_consistent(model, steps):
    model.run(steps)
    lane = model.occupancy_vector()
    assert (lane >= 0).sum() == model.num_vehicles
    occupied = np.nonzero(lane >= 0)[0]
    assert np.array_equal(occupied, np.sort(model.positions))
