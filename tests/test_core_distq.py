"""Shared-directory job queue: claims, fencing, quarantine, contention.

The protocol under test coordinates workers through nothing but a shared
directory, so the tests attack it the way reality does: concurrent
processes racing for claims, workers SIGKILLed between claim and
heartbeat, wall clocks skewed by ±30 s, filesystems whose fsync lies.
The invariants that must survive all of it: every trial commits exactly
once, a stale (fenced-out) worker can never overwrite a reclaimer's
result, and the dir-queue backend stays bit-identical to serial truth.
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.core import distq, registry
from repro.core.chaos import ChaosMonkey
from repro.core.distq import (
    CLAIM_IN_FLUX,
    DirQueue,
    DirQueueBackend,
    LeaseObserver,
    run_worker_loop,
    worker_identity,
)
from repro.core.journal import (
    campaign_fingerprint, open_journal, read_quarantine, trial_key_id,
)
from repro.core.runner import TrialRunner, TrialSpec
from repro.metrics.collector import CampaignTelemetry
from repro.util.errors import ConfigError, StaleLeaseError

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"trial {x} exploded")


def _slow_square(x, delay_s):
    time.sleep(delay_s)
    return x * x


def _specs(n=6):
    return [TrialSpec(key=i, fn=_square, args=(i,)) for i in range(n)]


def _values(outcomes):
    return [o.value for o in outcomes]


TRUTH = [i * i for i in range(6)]


def _make_queue(root, ttl_s=30.0, quarantine_after=3, max_attempts=2):
    queue = DirQueue(
        str(root),
        ttl_s=ttl_s,
        quarantine_after=quarantine_after,
        max_attempts=max_attempts,
    )
    queue.setup({"fingerprint": "test-fp", "ttl_s": ttl_s,
                 "quarantine_after": quarantine_after,
                 "max_attempts": max_attempts,
                 "heartbeat_s": max(0.01, ttl_s / 5.0),
                 "trial_timeout_s": None})
    return queue


def _task(key, fn=_square, args=None):
    return {
        "key": key,
        "fn": fn,
        "args": (key,) if args is None else args,
        "kwargs": {},
        "index": 0,
        "chaos_mode": None,
        "kill_all": False,
    }


# -- claim protocol -----------------------------------------------------------


def test_task_id_is_stable_and_filesystem_safe():
    tid = DirQueue.task_id(("rho", 3))
    assert tid == DirQueue.task_id(("rho", 3))
    assert tid != DirQueue.task_id(("rho", 4))
    assert len(tid) == 20 and tid.isalnum()


def test_fresh_claim_has_exactly_one_winner(tmp_path):
    queue = _make_queue(tmp_path / "q")
    tid = queue.enqueue(_task(1))
    first = queue.try_claim_fresh(tid, "host-a:1:1")
    second = queue.try_claim_fresh(tid, "host-b:2:1")
    assert first is not None and first.token == 1
    assert first.owner == "host-a:1:1"
    assert second is None  # O_EXCL: the loser gets nothing


def test_claim_roundtrip_carries_host_pid_token(tmp_path):
    queue = _make_queue(tmp_path / "q")
    tid = queue.enqueue(_task(1))
    queue.try_claim_fresh(tid, "nfs-host:4242:7")
    claim = queue.read_claim(tid)
    assert claim.host == "nfs-host"
    assert claim.pid == 4242
    assert claim.token == 1
    assert claim.attempt == 1
    assert not claim.released


def test_takeover_token_is_monotonic_and_exclusive(tmp_path):
    queue = _make_queue(tmp_path / "q")
    tid = queue.enqueue(_task(1))
    queue.try_claim_fresh(tid, "a:1:1")
    current = queue.read_claim(tid)
    won = queue.try_takeover(tid, "b:2:1", current)
    lost = queue.try_takeover(tid, "c:3:1", current)
    assert won is not None and won.token == 2 and won.owner == "b:2:1"
    assert lost is None  # same generation marker: exactly one winner


def test_orphaned_takeover_marker_does_not_wedge_the_trial(tmp_path):
    """A reclaimer that dies between winning the generation marker and
    rewriting the claim used to wedge the trial forever: every later
    takeover computed ``claim.token + 1``, collided with the orphan
    marker, and returned None.  The worker loop must skip past the
    orphaned generation (after a full TTL of frozen signature) and
    finish the trial."""
    root = str(tmp_path / "q")
    queue = _make_queue(root, ttl_s=0.2)
    tid = queue.enqueue(_task(4))
    queue.try_claim_fresh(tid, "corpse:1:1")
    # The half-finished takeover: marker g2 allocated, claim never rewritten.
    with open(os.path.join(root, "gen", f"{tid}.g2"), "wb") as handle:
        handle.write(b"half-dead:2:2")
    committed = run_worker_loop(root, poll_interval_s=0.02)
    assert committed == 1
    assert queue.read_result(tid)["value"] == 16
    assert queue.read_claim(tid).token == 3  # arbitrated past the orphan


def test_orphaned_takeover_of_released_claim_recovers(tmp_path):
    """The same mid-takeover death on the *released* path (clean failure,
    winner died before rewriting the claim) must also converge."""
    root = str(tmp_path / "q")
    queue = _make_queue(root, ttl_s=0.2, max_attempts=3)
    tid = queue.enqueue(_task(5))
    claim = queue.try_claim_fresh(tid, "a:1:1")
    queue.release(tid, claim, "ValueError: transient")
    with open(os.path.join(root, "gen", f"{tid}.g2"), "wb") as handle:
        handle.write(b"half-dead:2:2")
    committed = run_worker_loop(root, poll_interval_s=0.02)
    assert committed == 1
    assert queue.read_result(tid)["value"] == 25
    assert queue.read_claim(tid).token == 3


def test_fresh_marker_restarts_the_orphan_skip_window(tmp_path):
    """A marker's appearance is part of the claim signature: an in-flight
    takeover (marker won, claim about to be rewritten) must restart the
    observer's TTL instead of being raced for the generation after."""
    queue = _make_queue(tmp_path / "q", ttl_s=10.0)
    tid = queue.enqueue(_task(1))
    claim = queue.try_claim_fresh(tid, "a:1:1")
    before = queue.claim_signature(tid, claim)
    with open(os.path.join(str(tmp_path / "q"), "gen",
                           f"{tid}.g2"), "wb") as handle:
        handle.write(b"b:2:2")
    assert queue.claim_signature(tid, claim) != before


def test_release_bumps_attempt_and_keeps_token(tmp_path):
    queue = _make_queue(tmp_path / "q")
    tid = queue.enqueue(_task(1))
    claim = queue.try_claim_fresh(tid, "a:1:1")
    queue.release(tid, claim, "ValueError: nope")
    after = queue.read_claim(tid)
    assert after.released
    assert after.attempt == 2
    assert after.token == claim.token
    assert "ValueError" in queue.last_traceback(tid)


def test_unparseable_claim_reads_as_in_flux(tmp_path):
    queue = _make_queue(tmp_path / "q")
    tid = queue.enqueue(_task(1))
    with open(os.path.join(str(tmp_path / "q"), "claims",
                           f"{tid}.claim"), "wb") as handle:
        handle.write(b"{half a jso")
    assert queue.read_claim(tid) is CLAIM_IN_FLUX
    # In-flux means "present": a fresh claim must not steal it.
    assert queue.try_claim_fresh(tid, "b:2:1") is None


# -- fencing: the stale worker can never win ----------------------------------


def test_stale_commit_is_rejected_with_evidence(tmp_path):
    """The acceptance scenario: a resumed worker holding token 1 tries to
    commit after a reclaimer took token 2 — the fence must reject it."""
    queue = _make_queue(tmp_path / "q")
    tid = queue.enqueue(_task(3))
    stale = queue.try_claim_fresh(tid, "paused:1:1")
    queue.try_takeover(tid, "reclaimer:2:1", stale)  # token 2 issued

    with pytest.raises(StaleLeaseError) as info:
        queue.commit_result(
            tid, "paused:1:1", stale.token,
            {"status": "ok", "value": 9, "attempts": 1, "wall_clock_s": 0.1},
        )
    assert info.value.token == 1
    assert info.value.current == 2
    assert not queue.has_result(tid)  # the late value was dropped
    assert any(m.startswith(tid) for m in queue.stale_markers())

    # The rightful holder commits through the same fence unhindered.
    queue.commit_result(
        tid, "reclaimer:2:1", 2,
        {"status": "ok", "value": 9, "attempts": 1, "wall_clock_s": 0.1},
    )
    record = queue.read_result(tid)
    assert record["value"] == 9
    assert record["owner"] == "reclaimer:2:1"
    assert record["token"] == 2


def test_commit_requires_matching_owner_not_just_token(tmp_path):
    queue = _make_queue(tmp_path / "q")
    tid = queue.enqueue(_task(1))
    queue.try_claim_fresh(tid, "a:1:1")
    with pytest.raises(StaleLeaseError):
        queue.commit_result(
            tid, "imposter:9:9", 1,
            {"status": "ok", "value": 1, "attempts": 1, "wall_clock_s": 0.0},
        )


def test_manifest_fingerprint_mismatch_refuses_to_mix(tmp_path):
    root = tmp_path / "q"
    _make_queue(root)
    other = DirQueue(str(root))
    with pytest.raises(ConfigError, match="different campaign"):
        other.setup({"fingerprint": "other-fp"})


# -- lease expiry: local monotonic, immune to clock skew ----------------------


def test_observer_expires_only_frozen_signatures(tmp_path):
    observer = LeaseObserver(ttl_s=0.15)
    assert not observer.expired("t", ("a", 1, None))  # first sighting
    time.sleep(0.08)
    assert not observer.expired("t", ("a", 1, None))  # not frozen long enough
    time.sleep(0.1)
    assert observer.expired("t", ("a", 1, None))  # frozen a full TTL


def test_observer_restarts_on_any_signature_change(tmp_path):
    observer = LeaseObserver(ttl_s=0.1)
    observer.expired("t", ("a", 1, 1))
    time.sleep(0.12)
    # A new heartbeat seq arrives just in time: the window restarts.
    assert not observer.expired("t", ("a", 1, 2))
    time.sleep(0.06)
    assert not observer.expired("t", ("a", 1, 2))
    time.sleep(0.06)
    assert observer.expired("t", ("a", 1, 2))


@pytest.mark.parametrize("skew_s", [-30.0, 30.0])
def test_lease_expiry_unaffected_by_30s_clock_skew(tmp_path, monkeypatch,
                                                   skew_s):
    """A claimant whose wall clock is 30 s fast or slow writes a wildly
    wrong ``claimed_unix`` — and it must not matter: expiry watches the
    claim *signature* under the observer's own monotonic clock."""
    queue = _make_queue(tmp_path / "q", ttl_s=0.2)
    tid = queue.enqueue(_task(1))
    real_time = time.time
    monkeypatch.setattr(
        distq.time, "time", lambda: real_time() + skew_s
    )
    claim = queue.try_claim_fresh(tid, "skewed:1:1")
    monkeypatch.undo()
    # The advisory wall-clock field really is skewed...
    assert abs(claim.claimed_unix - (real_time() + skew_s)) < 5.0

    observer = LeaseObserver(ttl_s=0.2)
    signature = queue.claim_signature(tid, claim)
    # ...yet expiry takes one full *local* TTL: not sooner (a fast
    # remote clock must not cause premature reclaim of a live lease)...
    assert not observer.expired(tid, signature)
    time.sleep(0.08)
    assert not observer.expired(tid, queue.claim_signature(tid, claim))
    # ...and not later (a slow remote clock must not pin a dead lease).
    time.sleep(0.18)
    assert observer.expired(tid, queue.claim_signature(tid, claim))


# -- quarantine: the poison trial is parked, not retried forever --------------


def test_quarantine_after_distinct_worker_deaths(tmp_path):
    queue = _make_queue(tmp_path / "q", quarantine_after=3)
    tid = queue.enqueue(_task(5))
    claim = queue.try_claim_fresh(tid, "w:1:1")
    claim = queue.try_takeover(tid, "w:2:2", claim, dead_owner="w:1:1")
    assert claim is not None  # 1 death: keep going
    claim = queue.try_takeover(tid, "w:3:3", claim, dead_owner="w:2:2")
    assert claim is not None  # 2 deaths: keep going
    parked = queue.try_takeover(tid, "w:4:4", claim, dead_owner="w:3:3")
    assert parked is None  # 3 distinct deaths: parked, nothing to run
    record = queue.read_quarantine(tid)
    assert record["key_id"] == trial_key_id(5)
    assert sorted(record["owners"]) == ["w:1:1", "w:2:2", "w:3:3"]
    assert "traceback" in record


def test_same_owner_dying_twice_counts_once(tmp_path):
    queue = _make_queue(tmp_path / "q", quarantine_after=2)
    tid = queue.enqueue(_task(1))
    queue.record_death(tid, "w:1:1")
    queue.record_death(tid, "w:1:1")
    assert queue.distinct_deaths(tid) == ["w:1:1"]


def test_worker_identity_is_unique_per_incarnation():
    a, b = worker_identity(1), worker_identity(2)
    assert a != b
    host, pid, epoch = a.rsplit(":", 2)
    assert int(pid) == os.getpid()
    assert int(epoch) == 1


# -- worker loop: claims SIGKILLed mid-flight are reclaimed exactly once ------


def _claim_and_hang(root, key):
    """Child-process helper: win a claim, then die without a heartbeat."""
    queue = DirQueue(root, ttl_s=0.4)
    tid = queue.task_id(key)
    queue.try_claim_fresh(tid, worker_identity())
    time.sleep(3600)


def test_worker_killed_between_claim_and_heartbeat_is_reclaimed(tmp_path):
    root = str(tmp_path / "q")
    queue = _make_queue(root, ttl_s=0.4)
    for i in range(3):
        queue.enqueue(_task(i))
    context = multiprocessing.get_context("fork")
    victim = context.Process(target=_claim_and_hang, args=(root, 1))
    victim.start()
    tid = queue.task_id(1)
    deadline = time.monotonic() + 10.0
    while queue.read_claim(tid) is None:
        assert time.monotonic() < deadline, "victim never claimed"
        time.sleep(0.01)
    dead_owner = queue.read_claim(tid).owner
    os.kill(victim.pid, signal.SIGKILL)
    victim.join()

    committed = run_worker_loop(root, poll_interval_s=0.02)
    assert committed == 3
    assert queue.drained()
    for i in range(3):
        record = queue.read_result(queue.task_id(i))
        assert record["value"] == i * i
    reclaimed = queue.read_claim(tid)
    assert reclaimed.token == 2  # fenced past the corpse's generation
    assert queue.distinct_deaths(tid) == [dead_owner]


def _drain(root):
    run_worker_loop(root, poll_interval_s=0.01)


@pytest.fixture(params=["plain", "tmpfs", "fsync-lies"])
def contention_root(request, tmp_path, monkeypatch):
    """Queue roots across filesystems: the regular tmp dir, a tmpfs mount
    (RAM-backed, like the fastest shared scratch), and a filesystem whose
    fsync is a lie (acknowledges durability it never provides — the
    protocol's correctness must come from O_EXCL and rename alone)."""
    if request.param == "tmpfs":
        if not os.path.isdir("/dev/shm") or not os.access("/dev/shm", os.W_OK):
            pytest.skip("no writable tmpfs at /dev/shm")
        import tempfile

        root = tempfile.mkdtemp(prefix="repro-distq-", dir="/dev/shm")
        yield root
        import shutil

        shutil.rmtree(root, ignore_errors=True)
        return
    if request.param == "fsync-lies":
        # Forked workers inherit the monkeypatched module state, so the
        # lie reaches every process that touches the queue.
        monkeypatch.setattr(distq, "_fsync_file", lambda fd: None)
        monkeypatch.setattr(distq, "_fsync_dir", lambda path: None)
    yield str(tmp_path / "queue")


def test_contending_workers_commit_every_trial_exactly_once(contention_root):
    """N processes race one queue; every trial lands exactly one result,
    and the sum of per-worker commits equals the trial count (no trial is
    double-committed even when claims contend)."""
    queue = _make_queue(contention_root, ttl_s=5.0)
    n = 10
    for i in range(n):
        queue.enqueue(_task(i))
    context = multiprocessing.get_context("fork")
    workers = [
        context.Process(target=_drain, args=(contention_root,))
        for _ in range(4)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=60)
        assert worker.exitcode == 0
    assert queue.drained()
    for i in range(n):
        record = queue.read_result(queue.task_id(i))
        assert record["status"] == "ok"
        assert record["value"] == i * i
    # One fencing generation per trial: nothing was ever reclaimed, so
    # nothing can have run twice.
    gens = os.listdir(os.path.join(contention_root, "gen"))
    assert gens == []


# -- the dir-queue execution backend ------------------------------------------


def test_dir_queue_backend_registered():
    assert "dir-queue" in registry.known("backend")
    backend = registry.resolve("backend", "dir-queue")(TrialRunner())
    assert isinstance(backend, DirQueueBackend)
    assert backend.name == "dir-queue"


def test_dir_queue_matches_serial_truth(tmp_path):
    outcomes = TrialRunner(
        max_workers=2,
        backend="dir-queue",
        queue_dir=str(tmp_path / "q"),
        lease_ttl_s=5.0,
    ).run(_specs())
    assert _values(outcomes) == TRUTH


def test_dir_queue_bit_identical_under_chaos(tmp_path):
    """SIGKILL one trial's worker, mute another's heartbeats, contend a
    third's lease — the values must still equal the serial truth."""
    telemetry = CampaignTelemetry()
    chaos = ChaosMonkey(kill_on={1}, mute_on={2}, contend_on={3})
    outcomes = TrialRunner(
        max_workers=2,
        backend="dir-queue",
        queue_dir=str(tmp_path / "q"),
        lease_ttl_s=0.6,
        max_attempts=3,
        telemetry=telemetry,
        chaos=chaos,
    ).run(_specs())
    assert _values(outcomes) == TRUTH
    kinds = {e.kind for e in telemetry.events}
    assert "claim-won" in kinds
    assert "lease-reclaimed" in kinds
    assert "lease-contended" in kinds
    assert telemetry.claims_won >= 6


def test_duplicate_trial_keys_complete_and_match_serial(tmp_path):
    """Duplicate keys hash to one task id; the single execution must fan
    out to every spec index instead of stranding the earlier slots as
    None and spinning the scheduling loop forever."""
    specs = [
        TrialSpec(key=i % 2, fn=_square, args=(i % 2,)) for i in range(4)
    ]
    serial = TrialRunner().run(specs)
    outcomes = TrialRunner(
        max_workers=2,
        backend="dir-queue",
        queue_dir=str(tmp_path / "q"),
        lease_ttl_s=5.0,
    ).run(specs)
    assert _values(outcomes) == _values(serial) == [0, 1, 0, 1]
    assert [o.key for o in outcomes] == [0, 1, 0, 1]


def test_corrupt_result_drop_releases_claim_without_charging_deaths(tmp_path):
    """Dropping a corrupt result must not leave the committer's claim
    live-but-heartbeatless: peers would reclaim it through the dead-owner
    path and charge a healthy worker to the death ledger — a few corrupt
    cycles could spuriously quarantine the trial.  The released claim
    routes the reclaim down the no-death path instead."""
    root = str(tmp_path / "q")
    queue = _make_queue(root)
    tid = queue.enqueue(_task(2))
    claim = queue.try_claim_fresh(tid, "w:1:1")
    queue.commit_result(
        tid, "w:1:1", 1,
        {"status": "ok", "value": 4, "attempts": 1, "wall_clock_s": 0.1},
    )
    with open(os.path.join(root, "results", f"{tid}.result"), "wb") as handle:
        handle.write(b"\x80torn page")  # corrupt it on disk
    with pytest.raises(Exception):
        queue.read_result(tid)
    queue.drop_result(tid)
    after = queue.read_claim(tid)
    assert after.released
    assert after.token == claim.token
    assert after.attempt == claim.attempt  # infra fault: attempt not charged
    # The re-run takes the released path: no TTL wait, no death recorded.
    committed = run_worker_loop(root, poll_interval_s=0.02)
    assert committed == 1
    assert queue.read_result(tid)["value"] == 4
    assert queue.distinct_deaths(tid) == []


def test_clean_trial_errors_bounded_by_max_attempts(tmp_path):
    outcomes = TrialRunner(
        max_workers=2,
        backend="dir-queue",
        queue_dir=str(tmp_path / "q"),
        lease_ttl_s=5.0,
        max_attempts=2,
    ).run([TrialSpec(key=0, fn=_boom, args=(0,))])
    assert not outcomes[0].ok
    assert outcomes[0].attempts == 2
    assert "trial 0 exploded" in outcomes[0].error


def test_poison_trial_quarantined_and_skipped_on_resume(tmp_path):
    path = str(tmp_path / "campaign.jsonl")
    fingerprint = campaign_fingerprint(kind="distq-test", n=4)
    telemetry = CampaignTelemetry()
    chaos = ChaosMonkey(kill_all_attempts_on={1})
    journal = open_journal(path, fingerprint, resume=False)
    try:
        outcomes = TrialRunner(
            max_workers=2,
            backend="dir-queue",
            queue_dir=str(tmp_path / "q"),
            lease_ttl_s=0.5,
            quarantine_after=2,
            telemetry=telemetry,
            chaos=chaos,
        ).run(_specs(4), journal=journal)
    finally:
        journal.close()
    healthy = [o for o in outcomes if o.key != 1]
    assert _values(healthy) == [0, 4, 9]
    parked = next(o for o in outcomes if o.key == 1)
    assert not parked.ok
    assert parked.infrastructure
    assert parked.error.startswith("quarantined: killed 2 distinct")
    assert telemetry.quarantined == 1
    assert "quarantined" in telemetry.format_summary()

    # The journal carries the quarantine durably...
    parked_records = read_quarantine(path)
    assert trial_key_id(1) in parked_records
    assert len(parked_records[trial_key_id(1)].owners) == 2

    # ...and a resume does NOT re-run the poison trial (it would just
    # kill more workers): it surfaces as a terminal infra failure.
    journal = open_journal(path, fingerprint, resume=True)
    resumed_telemetry = CampaignTelemetry()
    try:
        second = TrialRunner(
            max_workers=2,
            backend="dir-queue",
            queue_dir=str(tmp_path / "q2"),
            lease_ttl_s=5.0,
            telemetry=resumed_telemetry,
        ).run(_specs(4), journal=journal)
    finally:
        journal.close()
    assert _values([o for o in second if o.key != 1]) == [0, 4, 9]
    assert not next(o for o in second if o.key == 1).ok
    assert resumed_telemetry.trials_resumed == 3
    assert not os.path.exists(
        os.path.join(str(tmp_path / "q2"), "tasks")
    ) or not any(
        name
        for name in os.listdir(os.path.join(str(tmp_path / "q2"), "tasks"))
    )  # nothing was enqueued for the second run at all


def test_journal_mirrors_lease_host_pid_and_fencing_token(tmp_path):
    path = str(tmp_path / "campaign.jsonl")
    fingerprint = campaign_fingerprint(kind="distq-test", n=3)
    journal = open_journal(path, fingerprint, resume=False)
    try:
        TrialRunner(
            max_workers=2,
            backend="dir-queue",
            queue_dir=str(tmp_path / "q"),
            lease_ttl_s=5.0,
        ).run(_specs(3), journal=journal)
    finally:
        journal.close()
    from repro.core.journal import read_lease_state

    # Completed trials supersede their leases; re-read the raw stream to
    # check what the scheduler transcribed while they ran.
    mirrored = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            record = json.loads(line)
            if record.get("kind") != "lease":
                continue
            mirrored += 1
            assert record["token"] >= 1
            assert record["pid"] > 0
            assert record["host"]
    assert mirrored >= 3
    assert read_lease_state(path) == {}  # all settled


# -- degradation: the shared directory stops cooperating ----------------------


def test_unwritable_queue_dir_degrades_to_supervised(tmp_path, monkeypatch):
    telemetry = CampaignTelemetry()
    monkeypatch.setattr(
        DirQueueBackend, "_probe_writable", staticmethod(lambda root: False)
    )
    outcomes = TrialRunner(
        max_workers=2,
        backend="dir-queue",
        queue_dir=str(tmp_path / "q"),
        lease_ttl_s=5.0,
        telemetry=telemetry,
    ).run(_specs())
    assert _values(outcomes) == TRUTH  # the campaign still completes
    degraded = [e for e in telemetry.events if e.kind == "degraded"]
    assert degraded and "no longer writable" in degraded[0].detail


def test_stat_latency_spikes_degrade_to_supervised(tmp_path, monkeypatch):
    telemetry = CampaignTelemetry()
    monkeypatch.setattr(distq, "STAT_LATENCY_BUDGET_S", 0.005)

    def slow_stat(path):
        time.sleep(0.02)
        return os.stat(path)

    monkeypatch.setattr(distq, "_stat", slow_stat)
    # Slow trials keep the scheduling loop alive long enough for the
    # probe to accumulate its strikes before the queue drains.
    specs = [
        TrialSpec(key=i, fn=_slow_square, args=(i, 0.8)) for i in range(6)
    ]
    outcomes = TrialRunner(
        max_workers=2,
        backend="dir-queue",
        queue_dir=str(tmp_path / "q"),
        lease_ttl_s=5.0,
        telemetry=telemetry,
    ).run(specs)
    assert _values(outcomes) == TRUTH
    degraded = [e for e in telemetry.events if e.kind == "degraded"]
    assert degraded and "stat latency" in degraded[0].detail


def test_unpicklable_specs_degrade_instead_of_dying(tmp_path):
    telemetry = CampaignTelemetry()
    captured = 3
    specs = [TrialSpec(key=0, fn=lambda: captured * captured)]
    outcomes = TrialRunner(
        max_workers=2,
        backend="dir-queue",
        queue_dir=str(tmp_path / "q"),
        telemetry=telemetry,
    ).run(specs)
    assert _values(outcomes) == [9]  # the fork-based ladder handles it
    assert any(e.kind == "degraded" for e in telemetry.events)


# -- streaming ----------------------------------------------------------------


def test_stream_yields_each_key_exactly_once_over_dir_queue(tmp_path):
    runner = TrialRunner(
        max_workers=2,
        backend="dir-queue",
        queue_dir=str(tmp_path / "q"),
        lease_ttl_s=5.0,
    )
    seen = [outcome.key for outcome in runner.stream(_specs())]
    assert sorted(seen) == list(range(6))


def test_worker_loop_returns_when_nothing_to_serve(tmp_path):
    assert run_worker_loop(str(tmp_path), follow=False) == 0


def test_discover_queues_finds_serve_job_layout(tmp_path):
    direct = tmp_path / "direct"
    _make_queue(direct)
    assert distq._discover_queues(str(direct)) == [str(direct)]
    spool = tmp_path / "spool"
    _make_queue(spool / "jobs" / "job-a" / "queue")
    _make_queue(spool / "jobs" / "job-b" / "queue")
    assert distq._discover_queues(str(spool)) == [
        str(spool / "jobs" / "job-a" / "queue"),
        str(spool / "jobs" / "job-b" / "queue"),
    ]


def test_resume_reuses_the_same_queue_dir(tmp_path):
    """A crashed scheduler resumes over the *same* queue directory: the
    dense spec list is shorter the second time, so the manifest must be
    named by the campaign fingerprint, not the spec-set hash."""
    path = str(tmp_path / "campaign.jsonl")
    fingerprint = campaign_fingerprint(kind="distq-resume", n=6)
    queue_dir = str(tmp_path / "q")
    journal = open_journal(path, fingerprint, resume=False)
    try:
        TrialRunner(
            max_workers=2, backend="dir-queue", queue_dir=queue_dir,
            lease_ttl_s=5.0,
        ).run(_specs()[:3], journal=journal)
    finally:
        journal.close()

    telemetry = CampaignTelemetry()
    journal = open_journal(path, fingerprint, resume=True)
    try:
        outcomes = TrialRunner(
            max_workers=2, backend="dir-queue", queue_dir=queue_dir,
            lease_ttl_s=5.0, telemetry=telemetry,
        ).run(_specs(), journal=journal)
    finally:
        journal.close()
    assert _values(outcomes) == TRUTH
    assert telemetry.trials_resumed == 3
    # Crucially, the shrunken grid did NOT degrade off the queue.
    assert not any(e.kind == "degraded" for e in telemetry.events)
