"""Freeway (IMPORTANT framework) mobility model tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility.freeway import Freeway


def test_speeds_stay_clamped():
    model = Freeway(20, 3000.0, v_min=5.0, v_max=30.0,
                    rng=np.random.default_rng(0))
    for _ in range(300):
        model.step()
        assert np.all(model.velocities() >= 5.0)
        assert np.all(model.velocities() <= 30.0)


def test_vehicles_never_stop():
    """Freeway's v_min > 0: no stop-and-go — the unrealistic trait the
    paper's comparison hinges on."""
    model = Freeway(40, 3000.0, rng=np.random.default_rng(1))
    for _ in range(200):
        model.step()
        assert model.velocities().min() > 0


def test_no_overtaking():
    model = Freeway(15, 1000.0, rng=np.random.default_rng(2))
    reference = None
    for _ in range(500):
        model.step()
        gaps = model.gaps_m()
        assert np.all(gaps >= 0)
        assert gaps.sum() == pytest.approx(1000.0)  # ring order intact


def test_safety_rule_caps_at_leader_speed():
    model = Freeway(
        2, 1000.0, v_min=1.0, v_max=30.0, accel_max=1e-9,
        safety_distance_m=100.0, rng=np.random.default_rng(3),
    )
    # Force a fast follower right behind a slow leader.
    model._pos = np.array([0.0, 20.0])
    model._vel = np.array([30.0, 5.0])
    model.step()
    assert model.velocities()[0] <= 5.0 + 1e-9


def test_positions_on_the_circle():
    model = Freeway(10, 2000.0, rng=np.random.default_rng(4))
    trace = model.sample(30.0)
    radii = np.linalg.norm(trace.positions, axis=2)
    assert np.allclose(radii, model.shape.radius)


def test_sample_timeline_continues():
    model = Freeway(5, 1000.0, rng=np.random.default_rng(5))
    first = model.sample(10.0)
    second = model.sample(10.0)
    assert second.times[0] == pytest.approx(first.times[-1])


def test_mean_velocity_in_bounds():
    model = Freeway(30, 3000.0, v_min=5.0, v_max=35.0,
                    rng=np.random.default_rng(6))
    model.sample(200.0)
    assert 5.0 <= model.mean_velocity() <= 35.0


@given(
    n=st.integers(min_value=1, max_value=25),
    seed=st.integers(min_value=0, max_value=500),
    steps=st.integers(min_value=1, max_value=60),
)
@settings(max_examples=30, deadline=None)
def test_invariants(n, seed, steps):
    model = Freeway(n, 2000.0, rng=np.random.default_rng(seed))
    for _ in range(steps):
        model.step()
    positions = model.positions_m()
    assert np.all(positions >= 0)
    assert np.all(positions < 2000.0)
    assert np.all(np.diff(positions) >= 0)  # kept sorted
    if n > 1:
        # Minimum standoff holds (1 m, up to float dust).
        assert model.gaps_m().min() >= 1.0 - 1e-6


class TestValidation:
    def test_bad_counts(self):
        with pytest.raises(ValueError):
            Freeway(0, 100.0)

    def test_bad_speeds(self):
        with pytest.raises(ValueError):
            Freeway(2, 100.0, v_min=10.0, v_max=5.0)
        with pytest.raises(ValueError):
            Freeway(2, 100.0, v_min=0.0)

    def test_overfull_lane(self):
        with pytest.raises(ValueError):
            Freeway(200, 100.0)

    def test_negative_duration(self):
        model = Freeway(2, 100.0)
        with pytest.raises(ValueError):
            model.sample(-1.0)
