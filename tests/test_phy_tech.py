"""Tech profiles: rate ladder, airtime identity, registry and end-to-end.

The default ``80211-dsss`` profile is the identity bridge over
``Mac80211Params`` (bit-identity is held by
``test_regression_defaults``); these tests pin the profile abstraction
itself — the inclusive SNR threshold lookup, the airtime expression,
noise floors, option overrides — and that swapping ``tech="80211p"``
changes per-link rates deterministically, independent of worker count.
"""


import pytest

from repro.core import registry
from repro.core.config import Scenario
from repro.core.simulation import CavenetSimulation
from repro.mac.frames import FrameType
from repro.mac.params import Mac80211Params
from repro.phy.energy import EnergyParams
from repro.phy.tech import (
    BOLTZMANN_J_PER_K,
    DSSS_FREQUENCY_HZ,
    REFERENCE_TEMPERATURE_K,
    TechProfile,
)
from repro.util.errors import ConfigError


def _scenario(**overrides):
    base = dict(
        num_nodes=14,
        road_length_m=1200.0,
        sim_time_s=12.0,
        traffic_start_s=2.0,
        traffic_stop_s=10.0,
        senders=(6, 7),
        receiver=0,
        dawdle_p=0.0,
        seed=3,
    )
    base.update(overrides)
    return Scenario(**base)


def _dsss():
    return TechProfile.from_mac_params(Mac80211Params())


def _80211p():
    return registry.resolve("tech", "80211p")(_scenario())


# -- airtime identity ---------------------------------------------------------


@pytest.mark.parametrize("size_bytes", [64, 512, 1024, 1500])
def test_frame_airtime_matches_mac_params_tx_time(size_bytes):
    """Same float expression as ``Mac80211Params.tx_time`` — IEEE-754
    equality, not approx, or event timestamps would drift."""
    params = Mac80211Params()
    profile = _dsss()
    assert profile.frame_airtime(
        size_bytes, params.data_rate_bps
    ) == params.tx_time(size_bytes, FrameType.DATA)
    assert profile.frame_airtime(
        size_bytes, params.basic_rate_bps
    ) == params.tx_time(size_bytes, FrameType.ACK)


# -- the rate ladder ----------------------------------------------------------


def test_rate_ladder_inclusive_thresholds_tie_toward_higher_rate():
    p = _80211p()
    assert p.rate_for_snr_db(4.9) == 3e6    # below lowest: lowest MCS
    assert p.rate_for_snr_db(-50.0) == 3e6
    assert p.rate_for_snr_db(5.0) == 3e6    # inclusive at the threshold
    assert p.rate_for_snr_db(6.0) == 4.5e6  # tie selects the higher rung
    assert p.rate_for_snr_db(14.999) == 9e6
    assert p.rate_for_snr_db(27.0) == 27e6
    assert p.rate_for_snr_db(100.0) == 27e6  # saturates at the top


def test_adaptive_flag():
    assert not _dsss().adaptive   # single MCS: no SNR lookups ever
    assert _80211p().adaptive


def test_noise_floor_is_ktb_times_noise_figure():
    profile = _dsss()
    thermal = BOLTZMANN_J_PER_K * REFERENCE_TEMPERATURE_K * 22e6
    assert profile.noise_floor_w == thermal * 10.0
    p = _80211p()
    assert p.noise_floor_w == pytest.approx(
        BOLTZMANN_J_PER_K * REFERENCE_TEMPERATURE_K * 10e6 * 10.0 ** 0.6
    )
    # The 10 MHz DSRC channel with its better front end is quieter.
    assert p.noise_floor_w < profile.noise_floor_w


def test_from_mac_params_copies_the_table_i_numbers():
    params = Mac80211Params()
    profile = _dsss()
    assert profile.name == "80211-dsss"
    assert profile.frequency_hz == DSSS_FREQUENCY_HZ
    assert profile.mcs == ((0.0, params.data_rate_bps),)
    assert profile.basic_rate_bps == params.basic_rate_bps
    assert profile.plcp_s == params.plcp_s
    assert profile.energy == EnergyParams()


# -- validation ---------------------------------------------------------------


def test_profile_validation_rejects_bad_tables():
    kwargs = dict(
        name="x", frequency_hz=1e9, bandwidth_hz=1e7, noise_figure_db=6.0,
        basic_rate_bps=1e6, plcp_s=1e-4, tx_power_min_w=1e-3,
        tx_power_max_w=1.0,
    )
    with pytest.raises(ConfigError, match="empty MCS"):
        TechProfile(mcs=(), **kwargs)
    with pytest.raises(ConfigError, match="strictly ascending"):
        TechProfile(mcs=((5.0, 2e6), (5.0, 3e6)), **kwargs)
    with pytest.raises(ConfigError, match="strictly ascending"):
        TechProfile(mcs=((5.0, 3e6), (8.0, 2e6)), **kwargs)
    with pytest.raises(ConfigError, match="tx_power_min_w"):
        TechProfile(
            mcs=((0.0, 1e6),),
            **{**kwargs, "tx_power_min_w": 2.0, "tx_power_max_w": 1.0},
        )


# -- registry -----------------------------------------------------------------


def test_tech_namespace_registers_the_builtins():
    names = registry.known("tech")
    assert "80211-dsss" in names
    assert "80211p" in names


def test_tech_names_normalize_case_insensitively():
    assert registry.normalize("tech", "80211P") == "80211p"
    assert registry.normalize("tech", "80211-DSSS") == "80211-dsss"
    assert _scenario(tech="80211P").tech == "80211p"
    with pytest.raises(ConfigError, match="unknown tech profile"):
        _scenario(tech="5g-nr")


def test_tech_options_override_profile_fields():
    scenario = _scenario(
        tech="80211-dsss", tech_options={"mcs": [[0.0, 1e6]]}
    )
    profile = CavenetSimulation(scenario).build_tech()
    assert profile.mcs == ((0.0, 1e6),)
    bad = _scenario(tech="80211-dsss", tech_options={"warp_factor": 9})
    with pytest.raises(ConfigError, match="bad"):
        CavenetSimulation(bad).build_tech()


# -- end to end ---------------------------------------------------------------


def test_80211p_changes_per_link_rates_and_timestamps():
    default = CavenetSimulation(_scenario()).run()
    dsrc = CavenetSimulation(_scenario(tech="80211p")).run()
    # Same mobility, same offered load — only airtimes/rates moved.
    assert (
        default.collector.num_originated == dsrc.collector.num_originated
    )
    # Faster OFDM rungs shorten every DATA airtime, so the delivered
    # event stream (timestamps, delays) cannot coincide.
    assert _event_streams(default) != _event_streams(dsrc)
    assert default.delay_stats().mean_s != dsrc.delay_stats().mean_s
    assert dsrc.collector.energy is not None


def _event_streams(result):
    """Event tuples modulo packet uid (a process-global counter)."""
    delivered = [
        (e.flow_id, e.time, e.size_bytes, e.delay_s, e.hops, e.node)
        for e in result.collector.delivered
    ]
    transmitted = [
        (e.kind, e.node, e.next_hop, e.time, e.size_bytes)
        for e in result.collector.transmissions
    ]
    return delivered, transmitted


def test_80211p_is_deterministic_for_a_fixed_seed():
    a = CavenetSimulation(_scenario(tech="80211p")).run()
    b = CavenetSimulation(_scenario(tech="80211p")).run()
    assert _event_streams(a) == _event_streams(b)
    assert a.frames_on_air == b.frames_on_air


def test_80211p_sweep_identical_across_worker_counts():
    from repro.core.sweep import sweep_scenario

    scenario = _scenario(tech="80211p")
    serial = sweep_scenario(scenario, "seed", [3, 5], max_workers=1)
    fanned = sweep_scenario(scenario, "seed", [3, 5], max_workers=4)
    assert [
        (p.value, p.pdr_mean, p.delay_mean_s) for p in serial.points
    ] == [(p.value, p.pdr_mean, p.delay_mean_s) for p in fanned.points]


def test_energy_telemetry_reflects_the_profile_draws():
    frugal = _scenario(
        tech_options={"energy": {"tx_power_w": 0.1, "rx_power_w": 0.05,
                                 "idle_power_w": 0.01}}
    )
    hungry = _scenario(
        tech_options={"energy": {"tx_power_w": 1.0, "rx_power_w": 0.8,
                                 "idle_power_w": 0.2}}
    )
    low = CavenetSimulation(frugal).run()
    high = CavenetSimulation(hungry).run()
    assert low.collector.energy is not None
    assert set(low.collector.energy.consumed_j) == set(range(14))
    assert 0.0 < low.collector.energy.total_j < high.collector.energy.total_j
    assert low.total_energy_j() == low.collector.energy.total_j


# -- the literal gate ---------------------------------------------------------


def test_no_rate_or_frequency_literals_outside_params_and_tech():
    """Rates and carrier frequencies live in exactly two places —
    ``Mac80211Params`` and the tech profiles.  A ``2e6`` or ``5.9e9``
    hard-coded anywhere else in ``mac/`` or ``phy/`` silently bypasses
    the profile abstraction.  Mirrors the CI grep gate."""
    import pathlib
    import re

    src = pathlib.Path(__file__).resolve().parent.parent / "src/repro"
    literal = re.compile(r"[0-9](\.[0-9]+)?e[69]\b")
    offenders = []
    for package in ("mac", "phy"):
        for path in sorted((src / package).glob("*.py")):
            if path.name in ("params.py", "tech.py"):
                continue
            for number, line in enumerate(
                path.read_text().splitlines(), 1
            ):
                if literal.search(line):
                    offenders.append(f"{package}/{path.name}:{number}")
    assert not offenders, (
        f"rate/frequency literals outside params.py/tech.py: {offenders}"
    )
