"""Protocol-comparison experiment tests."""

import numpy as np
import pytest

from repro.core.config import Scenario
from repro.core.experiment import compare_protocols, goodput_surface
from repro.core.simulation import CavenetSimulation


def _scenario(**kwargs):
    defaults = dict(
        num_nodes=12,
        road_length_m=1200.0,
        sim_time_s=20.0,
        senders=(1, 2),
        traffic_start_s=8.0,
        traffic_stop_s=18.0,
        initial_placement="uniform",
        dawdle_p=0.0,
        seed=3,
    )
    defaults.update(kwargs)
    return Scenario(**defaults)


@pytest.fixture(scope="module")
def comparison():
    return compare_protocols(_scenario(), ("AODV", "DYMO"))


def test_all_protocols_present(comparison):
    assert set(comparison.results) == {"AODV", "DYMO"}


def test_same_trace_shared(comparison):
    a = comparison.results["AODV"].trace
    b = comparison.results["DYMO"].trace
    assert a is b  # literally the same object: identical mobility


def test_pdr_table_covers_senders(comparison):
    table = comparison.pdr_table()
    for name in ("AODV", "DYMO"):
        assert set(table[name]) == {1, 2}
        for value in table[name].values():
            assert 0.0 <= value <= 1.0


def test_mean_tables(comparison):
    assert set(comparison.mean_pdr()) == {"AODV", "DYMO"}
    assert set(comparison.mean_delay()) == {"AODV", "DYMO"}
    assert set(comparison.overhead_table()) == {"AODV", "DYMO"}


def test_format_pdr_table(comparison):
    text = comparison.format_pdr_table()
    lines = text.splitlines()
    assert "AODV" in lines[0] and "DYMO" in lines[0]
    assert len(lines) == 3  # header + 2 senders


def test_goodput_surface_shape(comparison):
    centers, senders, surface = goodput_surface(comparison.results["AODV"])
    assert senders == [1, 2]
    assert surface.shape == (2, len(centers))
    assert surface.sum() > 0


def test_explicit_trace_reused():
    scenario = _scenario()
    trace = CavenetSimulation(scenario).generate_trace()
    comparison = compare_protocols(scenario, ("AODV",), trace=trace)
    assert comparison.results["AODV"].trace is trace


def test_parallel_identical_to_serial(comparison):
    parallel = compare_protocols(
        _scenario(), ("AODV", "DYMO"), max_workers=2
    )
    assert list(parallel.results) == ["AODV", "DYMO"]  # submission order
    assert parallel.mean_pdr() == comparison.mean_pdr()
    assert parallel.overhead_table() == comparison.overhead_table()
    delays_serial = comparison.mean_delay()
    delays_parallel = parallel.mean_delay()
    for name in ("AODV", "DYMO"):
        if np.isnan(delays_serial[name]):
            assert np.isnan(delays_parallel[name])
        else:
            assert delays_serial[name] == delays_parallel[name]


def test_failed_protocol_run_raises(monkeypatch):
    import repro.core.experiment as experiment_module

    def broken(scenario, trace):
        raise RuntimeError("protocol exploded")

    monkeypatch.setattr(experiment_module, "_run_protocol_trial", broken)
    with pytest.raises(RuntimeError, match="'AODV' failed"):
        compare_protocols(_scenario(), ("AODV",), max_workers=2)
