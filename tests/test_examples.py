"""Smoke tests that the shipped examples actually run.

Only the fast examples run here (the protocol comparison takes a minute);
each is imported as a module and its ``main()`` executed with stdout
captured, so a broken API surface fails the suite rather than the user.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart",
    "trace_interchange",
    "custom_components",
    "fault_injection",
    "tech_profiles",
]


def _load(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_quickstart_reports_pdr(capsys):
    _load("quickstart").main()
    out = capsys.readouterr().out
    assert "overall PDR" in out
    assert "routing control packets" in out


def test_trace_interchange_roundtrip_is_tight(capsys):
    _load("trace_interchange").main()
    out = capsys.readouterr().out
    assert "Round-trip worst-case position error" in out
    assert "exact=True" in out


def test_all_examples_have_docstrings_and_main():
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        source = path.read_text()
        assert source.lstrip().startswith('"""'), path.name
        assert "def main(" in source, path.name
        assert '__name__ == "__main__"' in source, path.name
