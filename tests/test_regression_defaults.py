"""Bit-identity regression: the default Table I scenario, all 3 protocols.

These numbers were captured *before* the component-registry refactor (the
if/elif dispatch era).  The registry factories reuse the same named RNG
streams and draw sequences, so every metric must match exactly — not
approximately.  If a change legitimately alters the default-seed
trajectory (a new draw, a reordered stream), recapture the goldens and say
so in the commit; silent drift here means seeded results are no longer
reproducible across versions.
"""

import pytest

from repro.core.config import Scenario
from repro.core.simulation import CavenetSimulation

# protocol -> (pdr, originated, delivered, frames_on_air, mean_delay_s,
#              control_packets) at Scenario() defaults (seed 4).
GOLDEN = {
    "AODV": (0.7171875, 3200, 2295, 39982, 0.2246270190827125, 7808),
    "OLSR": (0.35, 3200, 1120, 25061, 0.019753772191334888, 10989),
    "DYMO": (0.74, 3200, 2368, 41426, 0.37873132198232196, 9165),
}


@pytest.mark.parametrize("protocol", sorted(GOLDEN))
@pytest.mark.parametrize("kernels", ["python", "auto"])
def test_default_scenario_is_bit_identical(protocol, kernels):
    """Every kernel backend must land on the same goldens: ``python`` is
    the explicit-loop reference, ``auto`` is the best backend available
    on this machine (vector, cjit or numba) — the pre-kernel numbers
    must survive both."""
    scenario = Scenario(protocol=protocol, kernels=kernels)
    result = CavenetSimulation(scenario).run()
    observed = (
        result.pdr(),
        result.collector.num_originated,
        result.collector.num_delivered,
        result.frames_on_air,
        result.delay_stats().mean_s,
        result.control_overhead().packets,
    )
    assert observed == GOLDEN[protocol]


@pytest.mark.parametrize("protocol", sorted(GOLDEN))
@pytest.mark.parametrize("kernels", ["python", "auto"])
def test_explicit_default_tech_and_empty_effects_are_bit_identical(
    protocol, kernels
):
    """The PHY realism layer's identity contract: spelling out the
    default profile and an empty effect stack routes airtimes and rates
    through :class:`TechProfile` yet must reproduce the pre-profile
    goldens bit-for-bit on every kernel backend."""
    scenario = Scenario(
        protocol=protocol, kernels=kernels, tech="80211-dsss", effects=()
    )
    result = CavenetSimulation(scenario).run()
    observed = (
        result.pdr(),
        result.collector.num_originated,
        result.collector.num_delivered,
        result.frames_on_air,
        result.delay_stats().mean_s,
        result.control_overhead().packets,
    )
    assert observed == GOLDEN[protocol]
