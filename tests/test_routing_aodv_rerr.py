"""White-box AODV precursor and RERR propagation tests."""

import numpy as np
import pytest

from repro.net.packet import Packet
from repro.routing.aodv import RERR, Aodv, RerrHeader

from helpers import TestNetwork, chain_coords


def _network(n=4):
    network = TestNetwork(chain_coords(n), protocol="AODV")
    network.start_routing()
    return network


def test_forwarding_records_precursors():
    network = _network(4)
    network.nodes[0].originate_data(3, 512, flow_id=1, seq=1)
    network.run(until=3.0)
    aodv_1: Aodv = network.nodes[1].routing
    entry = aodv_1.table.get(3)
    assert entry is not None
    assert 0 in entry.precursors  # node 0 routes to 3 through us


def test_rerr_invalidates_only_routes_via_sender():
    network = _network(3)
    aodv: Aodv = network.nodes[0].routing
    now = network.sim.now
    aodv.table.update(5, next_hop=1, hops=2, seq=4, lifetime=100.0, now=now)
    aodv.table.update(6, next_hop=2, hops=2, seq=4, lifetime=100.0, now=now)
    rerr = Packet(
        RERR, 1, -1, 20, now, header=RerrHeader(unreachable=((5, 5), (6, 5)))
    )
    aodv._recv_rerr(rerr, prev_hop=1)
    assert aodv.table.lookup(5, now) is None  # via the RERR sender: dead
    assert aodv.table.lookup(6, now) is not None  # via node 2: untouched


def test_rerr_propagates_when_it_invalidates():
    network = _network(3)
    aodv: Aodv = network.nodes[0].routing
    now = network.sim.now
    aodv.table.update(5, next_hop=1, hops=2, seq=4, lifetime=100.0, now=now)
    before = len(network.metrics.transmissions)
    rerr = Packet(
        RERR, 1, -1, 20, now, header=RerrHeader(unreachable=((5, 5),))
    )
    aodv._recv_rerr(rerr, prev_hop=1)
    network.run(until=network.sim.now + 0.1)
    kinds = [
        t.kind for t in network.metrics.transmissions[before:] if t.node == 0
    ]
    assert RERR in kinds


def test_rerr_not_propagated_when_nothing_invalidated():
    network = _network(3)
    aodv: Aodv = network.nodes[0].routing
    now = network.sim.now
    before = len(network.metrics.transmissions)
    rerr = Packet(
        RERR, 1, -1, 20, now, header=RerrHeader(unreachable=((77, 5),))
    )
    aodv._recv_rerr(rerr, prev_hop=1)
    network.run(until=network.sim.now + 0.1)
    kinds = [
        t.kind for t in network.metrics.transmissions[before:] if t.node == 0
    ]
    assert RERR not in kinds


def test_rerr_bumps_sequence_number():
    network = _network(3)
    aodv: Aodv = network.nodes[0].routing
    now = network.sim.now
    aodv.table.update(5, next_hop=1, hops=2, seq=4, lifetime=100.0, now=now)
    rerr = Packet(
        RERR, 1, -1, 20, now, header=RerrHeader(unreachable=((5, 9),))
    )
    aodv._recv_rerr(rerr, prev_hop=1)
    entry = aodv.table.get(5)
    assert not entry.valid
    assert entry.seq >= 9  # freshness carried over from the RERR


def test_link_break_flushes_mac_queue():
    network = _network(2)
    node = network.nodes[0]
    aodv: Aodv = node.routing
    now = network.sim.now
    aodv.table.update(1, next_hop=1, hops=1, seq=2, lifetime=100.0, now=now)
    # Stuff the MAC queue with data to node 1.
    for seq in range(10):
        node.originate_data(1, 1500, flow_id=1, seq=seq)
    queued_before = len(node.mac.queue)
    assert queued_before > 0
    aodv._handle_link_break(1)
    assert len(node.mac.queue) == 0
