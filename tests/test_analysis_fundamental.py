"""Fundamental-diagram tests (paper Fig. 4 physics)."""

import numpy as np
import pytest

from repro.analysis.fundamental import fundamental_diagram
from repro.util.rng import RngStreams


def test_deterministic_peak_near_critical_density():
    """For p=0 the flow peaks at rho* = 1/(v_max+1) with J* = v_max/(v_max+1)."""
    densities = [0.05, 0.1, 1 / 6, 0.25, 0.4]
    fd = fundamental_diagram(
        densities, p=0.0, num_cells=300, trials=5, steps=300, warmup=200,
        rng=RngStreams(0),
    )
    rho_star, j_star = fd.peak()
    assert rho_star == pytest.approx(1 / 6)
    assert j_star == pytest.approx(5 / 6, abs=0.05)


def test_free_flow_branch_linear():
    """Below the critical density, J = v_max * rho."""
    densities = [0.02, 0.05, 0.1]
    fd = fundamental_diagram(
        densities, p=0.0, num_cells=400, trials=3, steps=200, warmup=400,
        rng=RngStreams(1),
    )
    assert np.allclose(fd.flows, 5 * np.asarray(densities), rtol=0.02)


def test_stochastic_flow_below_deterministic():
    """Paper Fig. 4: the p=0.5 curve lies strictly below the p=0 curve."""
    densities = [0.1, 1 / 6, 0.3]
    streams = RngStreams(2)
    det = fundamental_diagram(
        densities, p=0.0, num_cells=200, trials=5, steps=200, warmup=200,
        rng=streams,
    )
    sto = fundamental_diagram(
        densities, p=0.5, num_cells=200, trials=5, steps=200, warmup=200,
        rng=streams,
    )
    assert np.all(sto.flows < det.flows)


def test_congested_branch_decreases():
    densities = [0.3, 0.5, 0.7, 0.9]
    fd = fundamental_diagram(
        densities, p=0.0, num_cells=200, trials=3, steps=200, warmup=300,
        rng=RngStreams(3),
    )
    assert np.all(np.diff(fd.flows) < 0)


def test_flow_std_reported():
    fd = fundamental_diagram(
        [0.2], p=0.5, num_cells=100, trials=4, steps=100, rng=RngStreams(4)
    )
    assert fd.flow_std.shape == (1,)
    assert fd.flow_std[0] > 0  # stochastic trials differ


def test_single_trial_has_zero_std():
    fd = fundamental_diagram(
        [0.2], p=0.0, num_cells=100, trials=1, steps=50, rng=RngStreams(5)
    )
    assert fd.flow_std[0] == 0.0


def test_reproducible_with_same_streams():
    a = fundamental_diagram(
        [0.2], p=0.5, num_cells=100, trials=3, steps=100, rng=RngStreams(6)
    )
    b = fundamental_diagram(
        [0.2], p=0.5, num_cells=100, trials=3, steps=100, rng=RngStreams(6)
    )
    assert np.array_equal(a.flows, b.flows)


def test_rejects_zero_trials():
    with pytest.raises(ValueError):
        fundamental_diagram([0.2], p=0.0, trials=0)
