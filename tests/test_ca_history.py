"""CA history-recording tests."""

import numpy as np
import pytest

from repro.ca.boundary import Boundary
from repro.ca.history import CaHistory, evolve
from repro.ca.nasch import NagelSchreckenberg


def test_evolve_records_initial_state_plus_steps():
    model = NagelSchreckenberg(50, 5)
    history = evolve(model, 20)
    assert history.num_steps == 20
    assert history.positions.shape == (21, 5)
    assert history.num_vehicles == 5
    assert history.density == pytest.approx(0.1)


def test_first_row_is_initial_state():
    model = NagelSchreckenberg(50, 5)
    initial = model.positions
    history = evolve(model, 3)
    assert np.array_equal(history.positions[0], initial)


def test_warmup_discards_transient():
    model_a = NagelSchreckenberg(50, 5)
    history_a = evolve(model_a, 5, warmup=10)
    model_b = NagelSchreckenberg(50, 5)
    model_b.run(10)
    history_b = evolve(model_b, 5)
    assert np.array_equal(history_a.positions, history_b.positions)


def test_record_every_thins_history():
    model = NagelSchreckenberg(50, 5)
    history = evolve(model, 10, record_every=2)
    assert history.positions.shape[0] == 6  # t=0,2,4,6,8,10


def test_mean_velocity_series_matches_manual():
    model = NagelSchreckenberg(30, positions=[0, 10], v_max=3)
    history = evolve(model, 4)
    series = history.mean_velocity_series()
    # Both vehicles free: velocities 0,1,2,3,3 -> means equal.
    assert series.tolist() == [0.0, 1.0, 2.0, 3.0, 3.0]


def test_flow_series_is_density_times_velocity():
    model = NagelSchreckenberg(40, 4)
    history = evolve(model, 10)
    assert np.allclose(
        history.flow_series(), 0.1 * history.mean_velocity_series()
    )


def test_unwrapped_positions_monotone():
    model = NagelSchreckenberg(20, 4, p=0.3, rng=np.random.default_rng(0))
    history = evolve(model, 100)
    unwrapped = history.unwrapped_positions()
    assert np.all(np.diff(unwrapped, axis=0) >= 0)


def test_occupancy_matrix_shape_and_content():
    model = NagelSchreckenberg(25, 3)
    history = evolve(model, 7)
    matrix = history.occupancy_matrix()
    assert matrix.shape == (8, 25)
    assert np.all((matrix >= 0).sum(axis=1) == 3)


def test_evolve_rejects_open_boundary():
    model = NagelSchreckenberg(
        20, boundary=Boundary.OPEN, injection_rate=0.5
    )
    with pytest.raises(ValueError, match="OPEN"):
        evolve(model, 10)


def test_evolve_rejects_bad_arguments():
    model = NagelSchreckenberg(20, 2)
    with pytest.raises(ValueError):
        evolve(model, -1)
    with pytest.raises(ValueError):
        evolve(model, 5, record_every=0)
    with pytest.raises(ValueError):
        evolve(model, 5, warmup=-2)


def test_history_validates_shapes():
    with pytest.raises(ValueError):
        CaHistory(
            positions=np.zeros((3, 2), dtype=np.int64),
            velocities=np.zeros((3, 3), dtype=np.int64),
            wraps=np.zeros((3, 2), dtype=np.int64),
            num_cells=10,
            p=0.0,
            v_max=5,
        )
