"""Kernel backends: bit-identity, fallback, resolution, serialization.

The ``kernels`` namespace promises that every backend computes the
same thing — only the clock changes.  This suite holds the backends to
that promise at three levels: per-kernel (randomized array inputs
through each method, compared elementwise against the pure-Python
reference), per-model (full NaSch / multilane trajectories under a
shared seed), and per-ledger (DcfBook's scalar updates versus its
batched backend-routed sweeps).  Around the identity core sit the
plumbing tests: warn-once fallback when numba is missing (an import
blocker makes that deterministic on any machine), case-insensitive
registry resolution, singleton caching, the ``REPRO_KERNELS``
override, and pickling backends by name across a journal boundary.
"""

import pickle
import sys
import warnings

import numpy as np
import pytest

import repro.kernels as kernels_pkg
from repro.ca.multilane import MultiLaneRoad
from repro.ca.nasch import Boundary, NagelSchreckenberg
from repro.kernels import DcfBook, KernelBackend, resolve_backend
from repro.kernels.vector import VectorBackend


def _distinct_backends():
    """One instance per distinct backend importable on this machine.

    ``numba`` and ``cjit`` may silently resolve to their fallbacks
    (python / vector) where the toolchain is missing; deduplicating by
    resolved name keeps the identity sweep meaningful either way.
    """
    seen = {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        for name in ("python", "vector", "numba", "cjit", "auto"):
            backend = resolve_backend(name)
            seen[backend.name] = backend
    return sorted(seen.values(), key=lambda b: b.name)


BACKENDS = _distinct_backends()
REFERENCE = resolve_backend("python")


@pytest.fixture(params=BACKENDS, ids=lambda b: b.name)
def backend(request):
    return request.param


# -- per-kernel randomized equivalence ----------------------------------------


def _random_lane(rng, n, num_cells, v_max):
    pos = np.sort(rng.choice(num_cells, size=n, replace=False)).astype(
        np.int64
    )
    vel = rng.integers(0, v_max + 1, size=n).astype(np.int64)
    return pos, vel


@pytest.mark.parametrize("seed", range(5))
def test_nasch_step_matches_reference(backend, seed):
    rng = np.random.default_rng(seed)
    n, num_cells, v_max, p = 40, 200, 5, 0.3
    pos0, vel0 = _random_lane(rng, n, num_cells, v_max)
    draws = rng.random(n)

    states = []
    for impl in (REFERENCE, backend):
        pos, vel = pos0.copy(), vel0.copy()
        gaps = np.empty(n, dtype=np.int64)
        wrapped = np.empty(n, dtype=bool)
        bad = impl.nasch_step(
            pos, vel, gaps, wrapped, draws, True, p, v_max, num_cells
        )
        states.append((bad, pos, vel, gaps, wrapped))

    (bad_ref, *ref), (bad_obs, *obs) = states
    assert bad_obs == bad_ref == -1
    for ref_arr, obs_arr in zip(ref, obs):
        np.testing.assert_array_equal(obs_arr, ref_arr)


def test_nasch_step_single_vehicle_and_wrap(backend):
    """n=1 uses the full-ring gap, and wrap flags match the reference."""
    pos = np.array([198], dtype=np.int64)
    vel = np.array([3], dtype=np.int64)
    gaps = np.empty(1, dtype=np.int64)
    wrapped = np.empty(1, dtype=bool)
    draws = np.empty(0, dtype=np.float64)
    bad = backend.nasch_step(pos, vel, gaps, wrapped, draws, False, 0.0,
                             5, 200)
    assert bad == -1
    assert pos.tolist() == [2] and vel.tolist() == [4]
    assert gaps.tolist() == [199] and wrapped.tolist() == [True]


@pytest.mark.parametrize("n", [0, 1, 2, 17])
def test_cyclic_gaps_matches_reference(backend, n):
    rng = np.random.default_rng(n)
    num_cells = 60
    pos = np.sort(rng.choice(num_cells, size=n, replace=False)).astype(
        np.int64
    )
    np.testing.assert_array_equal(
        backend.cyclic_gaps(pos, num_cells),
        REFERENCE.cyclic_gaps(pos, num_cells),
    )


@pytest.mark.parametrize("seed", range(5))
def test_row_select_matches_reference(backend, seed):
    rng = np.random.default_rng(seed)
    num_positions = 50
    cand = rng.choice(num_positions, size=rng.integers(0, 30), replace=False)
    ids = rng.permutation(num_positions)[: rng.integers(1, num_positions)]
    got = backend.row_select(cand, ids, num_positions)
    want = REFERENCE.row_select(cand, ids, num_positions)
    for got_arr, want_arr in zip(got, want):
        np.testing.assert_array_equal(got_arr, want_arr)


@pytest.mark.parametrize("seed", range(5))
def test_row_distances_and_filter_match_reference(backend, seed):
    rng = np.random.default_rng(100 + seed)
    num_nodes = 30
    positions = rng.uniform(-500.0, 500.0, size=(num_nodes, 2))
    sel_ids = np.arange(num_nodes, dtype=np.int64)
    sender = int(rng.integers(num_nodes))

    dist_ref = REFERENCE.row_distances(positions, sel_ids, sender)
    dist_obs = backend.row_distances(positions, sel_ids, sender)
    # Bit-equal, not approximately equal: hypot stays on the numpy
    # ufunc on every backend (the no-transcendentals rule).
    np.testing.assert_array_equal(dist_obs, dist_ref)

    powers = rng.uniform(0.0, 2e-9, size=num_nodes)
    powers[rng.integers(num_nodes)] = np.nan  # NaN drops on every backend
    thresholds = np.full(num_nodes, 1e-9)
    np.testing.assert_array_equal(
        backend.row_filter(powers, thresholds, sel_ids, sender),
        REFERENCE.row_filter(powers, thresholds, sel_ids, sender),
    )


@pytest.mark.parametrize("seed", range(5))
def test_dcf_kernels_match_reference(backend, seed):
    rng = np.random.default_rng(200 + seed)
    n = 25
    slots0 = rng.integers(-1, 30, size=n).astype(np.int64)
    started = rng.uniform(0.0, 1.0, size=n)
    idx = rng.choice(n, size=rng.integers(0, n), replace=False)
    now, slot_s = 1.5, 20e-6

    slots_ref, slots_obs = slots0.copy(), slots0.copy()
    REFERENCE.dcf_consume_backoffs(slots_ref, started, idx, now, slot_s)
    backend.dcf_consume_backoffs(slots_obs, started, idx, now, slot_s)
    np.testing.assert_array_equal(slots_obs, slots_ref)

    nav = rng.uniform(-0.5, 2.0, size=n)
    nav[rng.random(n) < 0.3] = 0.0  # "never armed" entries
    np.testing.assert_array_equal(
        backend.dcf_expired_navs(nav, now),
        REFERENCE.dcf_expired_navs(nav, now),
    )


# -- full-model trajectory identity -------------------------------------------


def _nasch_trajectory(kernels, steps=60):
    model = NagelSchreckenberg(
        num_cells=120, num_vehicles=30, p=0.3, v_max=5,
        boundary=Boundary.PERIODIC, rng=np.random.default_rng(7),
        kernels=kernels,
    )
    frames = []
    for _ in range(steps):
        model.step()
        frames.append(
            (model.positions.tolist(), model.velocities.tolist())
        )
    return frames


def _multilane_trajectory(kernels, steps=60):
    road = MultiLaneRoad(
        num_cells=100, num_lanes=2, vehicles_per_lane=[20, 15],
        p=0.25, v_max=5, p_change=0.8,
        rng=np.random.default_rng(13), kernels=kernels,
    )
    frames = []
    for _ in range(steps):
        road.step()
        frames.append(
            [
                (road.lane_positions(k).tolist(),
                 road.lane_ids(k).tolist())
                for k in range(road.num_lanes)
            ]
        )
    return frames


def test_nasch_trajectory_identical_across_backends(backend):
    assert _nasch_trajectory(backend) == _nasch_trajectory("python")


def test_multilane_trajectory_identical_across_backends(backend):
    assert _multilane_trajectory(backend) == _multilane_trajectory("python")


# -- DcfBook ------------------------------------------------------------------


def test_dcf_book_registers_and_grows_past_initial_capacity():
    book = DcfBook(kernels="python")
    indices = [book.register(cw_min=31) for _ in range(40)]  # > _GROW
    assert indices == list(range(40))
    assert len(book) == 40
    assert book.cw[39] == 31
    assert book.backoff_slots[39] == -1  # no draw taken yet
    assert book.nav_until[39] == 0.0
    # Growth preserved earlier state (sentinel included).
    assert set(book.backoff_slots[:40].tolist()) == {-1}


def test_dcf_book_scalar_and_batched_sweeps_agree(backend):
    def populated():
        book = DcfBook(kernels=backend)
        rng = np.random.default_rng(31)
        for _ in range(20):
            book.register(cw_min=15)
        book.backoff_slots[:20] = rng.integers(-1, 25, size=20)
        book.backoff_started[:20] = rng.uniform(0.0, 1.0, size=20)
        return book

    now, slot_s = 1.25, 20e-6
    scalar, batched = populated(), populated()
    for i in range(20):
        scalar.consume_backoff(i, now, slot_s)
    batched.consume_backoffs(np.arange(20), now, slot_s)
    np.testing.assert_array_equal(
        batched.backoff_slots[:20], scalar.backoff_slots[:20]
    )


def test_dcf_book_cw_scalar_updates():
    book = DcfBook(kernels="python")
    i = book.register(cw_min=15)
    book.double_cw(i, cw_max=1023)
    assert book.cw[i] == 31
    book.reset(i, cw_min=15)
    assert book.cw[i] == 15
    assert book.backoff_slots[i] == -1
    assert bool(book.need_backoff[i])


# -- resolution, fallback, caching --------------------------------------------


class _NumbaImportBlocker:
    """Meta-path hook making ``import numba`` fail deterministically."""

    def find_module(self, name, path=None):
        return self if name == "numba" or name.startswith("numba.") else None

    def find_spec(self, name, path=None, target=None):
        if name == "numba" or name.startswith("numba."):
            raise ImportError(f"{name} blocked by test fixture")
        return None


@pytest.fixture
def no_numba(monkeypatch):
    """Hide numba (even if installed) and clear the backend caches, so
    the fallback path runs identically on every machine."""
    blocker = _NumbaImportBlocker()
    monkeypatch.setattr(sys, "meta_path", [blocker] + sys.meta_path)
    for module in [m for m in sys.modules if
                   m == "numba" or m.startswith("numba.")]:
        monkeypatch.delitem(sys.modules, module)
    monkeypatch.setattr(kernels_pkg, "_BACKENDS", {})
    monkeypatch.setattr(kernels_pkg, "_WARNED", set())
    yield


def test_missing_numba_warns_once_and_falls_back(no_numba):
    with pytest.warns(RuntimeWarning, match="falling back"):
        backend = resolve_backend("numba")
    assert backend.name == "python"
    assert not backend.compiled
    # Second resolution: cached, silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        again = resolve_backend("numba")
    assert again is backend


def test_missing_numba_fallback_is_bit_identical(no_numba):
    with pytest.warns(RuntimeWarning):
        fallen = resolve_backend("numba")
    assert _nasch_trajectory(fallen) == _nasch_trajectory("python")


def test_resolve_backend_normalizes_case_and_caches():
    assert resolve_backend("PYTHON") is resolve_backend("python")
    assert resolve_backend("Vector").name == "vector"


def test_resolve_backend_passes_instances_through():
    mine = VectorBackend()
    assert resolve_backend(mine) is mine


def test_auto_honors_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "vector")
    monkeypatch.setattr(kernels_pkg, "_BACKENDS", {})
    monkeypatch.setattr(kernels_pkg, "_WARNED", set())
    assert resolve_backend("auto").name == "vector"


def test_unknown_backend_name_rejected():
    from repro.util.errors import ConfigError

    with pytest.raises(ConfigError, match="unknown kernel backend"):
        resolve_backend("fortran")


# -- serialization ------------------------------------------------------------


def test_backends_pickle_by_name(backend):
    clone = pickle.loads(pickle.dumps(backend))
    assert isinstance(clone, KernelBackend)
    assert clone.name == backend.name
    assert clone is resolve_backend(backend.name)


def test_model_with_compiled_backend_pickles():
    """Journals pickle whole models; the backend must cross by name."""
    model = NagelSchreckenberg(
        num_cells=50, num_vehicles=10, p=0.2,
        rng=np.random.default_rng(3), kernels="auto",
    )
    model.step()
    clone = pickle.loads(pickle.dumps(model))
    assert clone.positions.tolist() == model.positions.tolist()
    clone.step()
    model.step()
    assert clone.positions.tolist() == model.positions.tolist()
