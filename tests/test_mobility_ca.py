"""CA-to-plane mobility adapter tests."""

import numpy as np
import pytest

from repro.ca.boundary import Boundary
from repro.ca.multilane import MultiLaneRoad
from repro.ca.nasch import NagelSchreckenberg
from repro.geometry.layout import RoadLayout
from repro.mobility.ca_mobility import CaMobility


def test_positions_lie_on_the_circle():
    model = NagelSchreckenberg(400, 30)
    layout = RoadLayout.single_circuit(3000.0)
    mobility = CaMobility(model, layout)
    trace = mobility.sample(10.0)
    radius = layout.lane(0).shape.radius
    distances = np.linalg.norm(trace.positions, axis=2)
    assert np.allclose(distances, radius)


def test_circle_trace_has_no_teleports():
    model = NagelSchreckenberg(100, 10)
    mobility = CaMobility(model, RoadLayout.single_circuit(750.0))
    trace = mobility.sample(30.0)
    assert trace.teleported is None


def test_line_trace_flags_wrap_as_teleport():
    model = NagelSchreckenberg(
        100, positions=[95], velocities=[5], boundary=Boundary.WRAP_SHIFT
    )
    mobility = CaMobility(model, RoadLayout.single_line(750.0))
    trace = mobility.sample(3.0)
    assert trace.teleported is not None
    assert trace.teleported.any()  # the wrap was flagged
    # The teleport jump spans most of the line.
    jump_row = int(np.nonzero(trace.teleported[:, 0])[0][0])
    jump = np.linalg.norm(
        trace.positions[jump_row, 0] - trace.positions[jump_row - 1, 0]
    )
    assert jump > 500.0


def test_plane_speed_matches_cell_speed():
    model = NagelSchreckenberg(400, positions=[0], v_max=5)
    mobility = CaMobility(model, RoadLayout.single_circuit(3000.0))
    trace = mobility.sample(30.0)
    speeds = trace.mean_speed_series()
    # After acceleration: 5 cells/s = 37.5 m/s (chord vs arc < 0.1%).
    assert speeds[-1] == pytest.approx(37.5, rel=1e-3)


def test_sample_continues_from_current_state():
    model = NagelSchreckenberg(100, 5)
    mobility = CaMobility(model, RoadLayout.single_circuit(750.0))
    first = mobility.sample(5.0)
    second = mobility.sample(5.0)
    assert second.times[0] == pytest.approx(first.times[-1])
    assert np.allclose(second.positions[0], first.positions[-1])


def test_interval_must_be_multiple_of_time_step():
    model = NagelSchreckenberg(100, 5)
    mobility = CaMobility(model, RoadLayout.single_circuit(750.0))
    with pytest.raises(ValueError):
        mobility.sample(10.0, interval_s=0.5)


def test_coarser_sampling():
    model = NagelSchreckenberg(100, 5)
    mobility = CaMobility(model, RoadLayout.single_circuit(750.0))
    trace = mobility.sample(10.0, interval_s=2.0)
    assert trace.num_samples == 6


def test_multilane_mobility():
    road = MultiLaneRoad(100, 2, [5, 5])
    layout = RoadLayout.multi_lane_circuit(750.0, 2)
    mobility = CaMobility(road, layout)
    trace = mobility.sample(10.0)
    assert trace.num_nodes == 10
    # Lane-0 vehicles on the inner radius, lane-1 on the outer (unless a
    # lane change happened — with uniform spacing none should).
    radii = np.linalg.norm(trace.positions[0], axis=1)
    inner = layout.lane(0).shape.radius
    outer = layout.lane(1).shape.radius
    assert np.allclose(np.sort(radii)[:5], inner)
    assert np.allclose(np.sort(radii)[5:], outer)


def test_rejects_open_boundary():
    model = NagelSchreckenberg(
        100, boundary=Boundary.OPEN, injection_rate=0.5
    )
    with pytest.raises(ValueError, match="OPEN"):
        CaMobility(model, RoadLayout.single_line(750.0))


def test_rejects_too_small_layout():
    model = NagelSchreckenberg(400, 5)
    with pytest.raises(ValueError):
        CaMobility(model, RoadLayout.single_circuit(750.0))  # only 100 cells


def test_rejects_layout_with_too_few_lanes():
    road = MultiLaneRoad(100, 2, [2, 2])
    with pytest.raises(ValueError):
        CaMobility(road, RoadLayout.single_circuit(750.0))


def test_num_nodes_matches_vehicles():
    model = NagelSchreckenberg(100, 7)
    mobility = CaMobility(model, RoadLayout.single_circuit(750.0))
    assert mobility.num_nodes == 7
