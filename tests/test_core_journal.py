"""Trial journal tests: durability, corruption handling, crash/resume.

The flagship scenarios here are the ones the journal exists for: a campaign
killed mid-flight resumes from its journal and produces results
bit-identical to an uninterrupted serial run; a torn final line (the
residue of a crash mid-write) is tolerated; a journal from a *different*
campaign is rejected, never merged.
"""

import json

import numpy as np
import pytest

from repro.analysis.fundamental import fundamental_diagram
from repro.analysis.montecarlo import monte_carlo
from repro.core.config import Scenario
from repro.core.journal import (
    SCHEMA_VERSION,
    TrialJournal,
    campaign_fingerprint,
    open_journal,
    read_completed,
    trial_key_id,
)
from repro.core.runner import TrialRunner, TrialSpec
from repro.core.sweep import sweep_scenario
from repro.metrics.collector import CampaignTelemetry
from repro.util.errors import ConfigError, JournalCorruptError
from repro.util.rng import RngStreams

FP = campaign_fingerprint(kind="test", n=3)


def _square(x):
    return x * x


def _specs(count):
    return [TrialSpec(key=(i, 0), fn=_square, args=(i,)) for i in range(count)]


# -- format basics ------------------------------------------------------------


def test_roundtrip(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with TrialJournal(path, FP) as journal:
        journal.record_success((0.5, 3), {"pdr": 0.9}, attempts=2,
                               wall_clock_s=1.5)
    completed = read_completed(path, FP)
    entry = completed[trial_key_id((0.5, 3))]
    assert entry.value == {"pdr": 0.9}
    assert entry.attempts == 2
    assert entry.wall_clock_s == 1.5


def test_key_identity_survives_json_roundtrip():
    # Tuples and lists collapse to the same identity — exactly what a key
    # that crossed a JSON serialisation needs.
    assert trial_key_id((0.5, 3)) == trial_key_id([0.5, 3])
    assert trial_key_id("AODV") != trial_key_id("OLSR")


def test_fingerprint_sensitivity():
    base = campaign_fingerprint(kind="sweep", values=[1, 2], trials=5)
    assert base == campaign_fingerprint(kind="sweep", values=[1, 2], trials=5)
    assert base != campaign_fingerprint(kind="sweep", values=[1, 3], trials=5)
    assert base != campaign_fingerprint(kind="sweep", values=[1, 2], trials=6)


def test_failures_are_recorded_but_not_resumed(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with TrialJournal(path, FP) as journal:
        journal.record_failure((1, 0), "boom", attempts=2)
        journal.record_success((2, 0), 42, attempts=1, wall_clock_s=0.1)
    completed = read_completed(path, FP)
    assert trial_key_id((1, 0)) not in completed
    assert completed[trial_key_id((2, 0))].value == 42


def test_torn_final_line_is_tolerated(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with TrialJournal(path, FP) as journal:
        journal.record_success((0, 0), 0, 1, 0.0)
        journal.record_success((1, 0), 1, 1, 0.0)
    data = open(path, "rb").read()
    open(path, "wb").write(data[:-15])  # tear the tail mid-record
    completed = read_completed(path, FP)
    assert set(completed) == {trial_key_id((0, 0))}


def test_midfile_corruption_raises(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with TrialJournal(path, FP) as journal:
        journal.record_success((0, 0), 0, 1, 0.0)
        journal.record_success((1, 0), 1, 1, 0.0)
    lines = open(path, "rb").read().splitlines(keepends=True)
    lines[1] = b'{"kind": "trial", garbage\n'
    open(path, "wb").write(b"".join(lines))
    with pytest.raises(JournalCorruptError, match="line 2"):
        read_completed(path, FP)


def test_fingerprint_mismatch_rejected(tmp_path):
    path = str(tmp_path / "j.jsonl")
    TrialJournal(path, FP).close()
    with pytest.raises(JournalCorruptError, match="different campaign"):
        read_completed(path, campaign_fingerprint(kind="other"))
    with pytest.raises(JournalCorruptError, match="different campaign"):
        TrialJournal(path, campaign_fingerprint(kind="other"), resume=True)


def test_unknown_schema_rejected(tmp_path):
    path = str(tmp_path / "j.jsonl")
    header = {"kind": "header", "schema": SCHEMA_VERSION + 1,
              "fingerprint": FP}
    open(path, "w").write(json.dumps(header) + "\n")
    with pytest.raises(JournalCorruptError, match="schema"):
        read_completed(path, FP)


def test_missing_header_rejected(tmp_path):
    path = str(tmp_path / "j.jsonl")
    open(path, "w").write('{"kind": "trial"}\n')
    with pytest.raises(JournalCorruptError, match="header"):
        read_completed(path, FP)


def test_resume_without_path_is_a_config_error():
    with pytest.raises(ConfigError, match="journal path"):
        open_journal(None, FP, resume=True)


def test_fresh_open_truncates_stale_journal(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with TrialJournal(path, FP) as journal:
        journal.record_success((0, 0), 0, 1, 0.0)
    # resume=False: a fresh campaign starts over even if a journal exists.
    TrialJournal(path, FP, resume=False).close()
    assert read_completed(path, FP) == {}


# -- runner integration -------------------------------------------------------


def _poisoned(x, die_at):
    if x >= die_at:
        raise KeyboardInterrupt  # simulated SIGINT/kill mid-campaign
    return x * x


def test_crash_then_resume_matches_uninterrupted_serial(tmp_path):
    path = str(tmp_path / "j.jsonl")
    poisoned = [
        TrialSpec(key=(i, 0), fn=_poisoned, args=(i, 3)) for i in range(6)
    ]
    journal = TrialJournal(path, FP)
    with pytest.raises(KeyboardInterrupt):
        TrialRunner().run(poisoned, journal=journal)
    journal.close()
    assert len(read_completed(path, FP)) == 3

    telemetry = CampaignTelemetry()
    journal = TrialJournal(path, FP, resume=True)
    resumed = TrialRunner(telemetry=telemetry).run(_specs(6), journal=journal)
    journal.close()
    truth = TrialRunner().run(_specs(6))
    assert [o.value for o in resumed] == [o.value for o in truth]
    assert [o.key for o in resumed] == [o.key for o in truth]
    assert [o.index for o in resumed] == [o.index for o in truth]
    assert telemetry.trials_resumed == 3
    assert telemetry.trials_completed == 3
    assert telemetry.trials_failed == 0


def test_resume_after_torn_line_reruns_the_torn_trial(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = TrialJournal(path, FP)
    TrialRunner().run(_specs(4), journal=journal)
    journal.close()
    data = open(path, "rb").read()
    open(path, "wb").write(data[:-10])  # crash tore the last record

    telemetry = CampaignTelemetry()
    journal = TrialJournal(path, FP, resume=True)
    resumed = TrialRunner(telemetry=telemetry).run(_specs(4), journal=journal)
    journal.close()
    assert [o.value for o in resumed] == [0, 1, 4, 9]
    assert telemetry.trials_resumed == 3  # the torn one re-ran
    assert telemetry.trials_completed == 1


def test_parallel_run_journals_and_resumes(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = TrialJournal(path, FP)
    parallel = TrialRunner(max_workers=3).run(_specs(6), journal=journal)
    journal.close()
    assert [o.value for o in parallel] == [0, 1, 4, 9, 16, 25]

    telemetry = CampaignTelemetry()
    journal = TrialJournal(path, FP, resume=True)
    resumed = TrialRunner(max_workers=3, telemetry=telemetry).run(
        _specs(6), journal=journal
    )
    journal.close()
    assert [o.value for o in resumed] == [0, 1, 4, 9, 16, 25]
    assert telemetry.trials_resumed == 6


# -- campaign entry points ----------------------------------------------------

SMALL = Scenario(
    num_nodes=10,
    road_length_m=900.0,
    sim_time_s=15.0,
    senders=(1, 2),
    traffic_start_s=2.0,
    traffic_stop_s=12.0,
    dawdle_p=0.0,
    seed=3,
)


def _sweep_kwargs():
    return dict(
        base=SMALL, field="num_nodes", values=[10, 12], trials=2
    )


def _point_tuples(result):
    return [
        (
            point.value,
            point.pdr_mean,
            point.pdr_std,
            point.delay_mean_s,
            point.control_packets_mean,
            [r.pdr() for r in point.results],
        )
        for point in result.points
    ]


def test_sweep_interrupted_and_resumed_is_bit_identical(
    tmp_path, monkeypatch
):
    import repro.core.sweep as sweep_mod

    truth = sweep_scenario(**_sweep_kwargs())

    path = str(tmp_path / "sweep.jsonl")
    real_trial = sweep_mod._run_scenario_trial
    calls = {"n": 0}

    def dying_trial(scenario):
        if calls["n"] >= 3:
            raise KeyboardInterrupt  # the simulated kill -9 at trial 4/4
        calls["n"] += 1
        return real_trial(scenario)

    monkeypatch.setattr(sweep_mod, "_run_scenario_trial", dying_trial)
    with pytest.raises(KeyboardInterrupt):
        sweep_scenario(**_sweep_kwargs(), journal_path=path)
    monkeypatch.setattr(sweep_mod, "_run_scenario_trial", real_trial)

    telemetry = CampaignTelemetry()
    resumed = sweep_scenario(
        **_sweep_kwargs(),
        journal_path=path,
        resume=True,
        telemetry=telemetry,
    )
    assert telemetry.trials_resumed == 3
    assert telemetry.trials_completed == 1
    # Bit-identical: every float of every point, including raw per-trial
    # results, matches the uninterrupted serial run.
    assert _point_tuples(resumed) == _point_tuples(truth)


def test_sweep_journal_rejects_changed_grid(tmp_path):
    path = str(tmp_path / "sweep.jsonl")
    sweep_scenario(**_sweep_kwargs(), journal_path=path)
    with pytest.raises(JournalCorruptError, match="different campaign"):
        sweep_scenario(
            base=SMALL,
            field="num_nodes",
            values=[10, 14],  # different grid -> different fingerprint
            trials=2,
            journal_path=path,
            resume=True,
        )


def test_sweep_resume_with_torn_tail(tmp_path):
    path = str(tmp_path / "sweep.jsonl")
    truth = sweep_scenario(**_sweep_kwargs(), journal_path=path)
    data = open(path, "rb").read()
    open(path, "wb").write(data[:-25])

    telemetry = CampaignTelemetry()
    resumed = sweep_scenario(
        **_sweep_kwargs(),
        journal_path=path,
        resume=True,
        telemetry=telemetry,
    )
    assert telemetry.trials_resumed == 3
    assert telemetry.trials_completed == 1
    assert _point_tuples(resumed) == _point_tuples(truth)


def test_fundamental_resume_matches_fresh(tmp_path):
    path = str(tmp_path / "fd.jsonl")
    kwargs = dict(
        densities=[0.1, 0.3],
        p=0.3,
        num_cells=60,
        trials=3,
        steps=40,
    )
    truth = fundamental_diagram(rng=RngStreams(7), **kwargs)
    fundamental_diagram(rng=RngStreams(7), journal_path=path, **kwargs)
    telemetry = CampaignTelemetry()
    resumed = fundamental_diagram(
        rng=RngStreams(7),
        journal_path=path,
        resume=True,
        telemetry=telemetry,
        **kwargs,
    )
    assert telemetry.trials_resumed == 6
    assert telemetry.trials_completed == 0
    np.testing.assert_array_equal(resumed.flows, truth.flows)
    np.testing.assert_array_equal(resumed.flow_std, truth.flow_std)
    assert resumed.total_failed == 0


def _mc_experiment(generator):
    return generator.normal(size=3)


def test_monte_carlo_resume_matches_fresh(tmp_path):
    path = str(tmp_path / "mc.jsonl")
    truth = monte_carlo(_mc_experiment, trials=5, rng=RngStreams(11))
    monte_carlo(
        _mc_experiment, trials=5, rng=RngStreams(11), journal_path=path
    )
    telemetry = CampaignTelemetry()
    resumed = monte_carlo(
        _mc_experiment,
        trials=5,
        rng=RngStreams(11),
        journal_path=path,
        resume=True,
        telemetry=telemetry,
    )
    assert telemetry.trials_resumed == 5
    np.testing.assert_array_equal(resumed.samples, truth.samples)
    np.testing.assert_array_equal(resumed.mean, truth.mean)


# -- supervision records: leases, heartbeats, events --------------------------


def test_lease_records_supersede_and_trials_release(tmp_path):
    from repro.core.journal import read_lease_state

    path = str(tmp_path / "lease.jsonl")
    with TrialJournal(path, FP) as journal:
        journal.record_lease((0, 0), "owner-a", 1, ttl_s=60.0)
        journal.record_lease((0, 0), "owner-b", 2, ttl_s=60.0)  # supersedes
        journal.record_lease((1, 0), "owner-a", 1, ttl_s=60.0)
        journal.record_success((1, 0), 1, attempts=1, wall_clock_s=0.1)
    leases = read_lease_state(path, FP)
    # Trial (1,0) completed, so its lease is released; (0,0) holds the
    # *latest* claim only.
    assert set(leases) == {trial_key_id((0, 0))}
    lease = leases[trial_key_id((0, 0))]
    assert lease.owner == "owner-b"
    assert lease.attempt == 2
    assert not lease.expired()


def test_lease_expiry_is_wall_clock(tmp_path):
    path = str(tmp_path / "lease.jsonl")
    with TrialJournal(path, FP) as journal:
        lease = journal.record_lease((0, 0), "o", 1, ttl_s=0.05)
    assert not lease.expired(now=lease.deadline_unix - 0.01)
    assert lease.expired(now=lease.deadline_unix)


def test_resume_loads_live_lease_state(tmp_path):
    path = str(tmp_path / "lease.jsonl")
    with TrialJournal(path, FP) as journal:
        journal.record_lease((0, 0), "prior-owner", 1, ttl_s=3600.0)
    with TrialJournal(path, FP, resume=True) as journal:
        assert trial_key_id((0, 0)) in journal.leases
        assert journal.leases[trial_key_id((0, 0))].owner == "prior-owner"


def test_supervision_records_are_invisible_to_read_completed(tmp_path):
    path = str(tmp_path / "mixed.jsonl")
    with TrialJournal(path, FP) as journal:
        journal.record_lease((0, 0), "o", 1, ttl_s=60.0)
        journal.record_heartbeat((0, 0), "o", seq=1)
        journal.record_campaign_event("degraded", "supervised->process")
        journal.record_success((0, 0), 42, attempts=1, wall_clock_s=0.1)
    completed = read_completed(path, FP)
    assert completed[trial_key_id((0, 0))].value == 42
    assert len(completed) == 1


# -- inspect / compact --------------------------------------------------------


def _write_busy_journal(path):
    """A journal with superseded records worth compacting."""
    with TrialJournal(path, FP) as journal:
        journal.record_lease((0, 0), "a", 1, ttl_s=60.0)
        journal.record_heartbeat((0, 0), "a", seq=1)
        journal.record_heartbeat((0, 0), "a", seq=2)
        journal.record_failure((0, 0), "first try died", attempts=1)
        journal.record_lease((0, 0), "a", 2, ttl_s=60.0)
        journal.record_success((0, 0), 7, attempts=2, wall_clock_s=0.2)
        journal.record_lease((1, 0), "a", 1, ttl_s=3600.0)
        journal.record_campaign_event("breaker-open", "3 consecutive")


def test_inspect_journal_counts_every_record_kind(tmp_path):
    from repro.core.journal import inspect_journal

    path = str(tmp_path / "busy.jsonl")
    _write_busy_journal(path)
    stats = inspect_journal(path)
    assert stats.fingerprint == FP
    assert stats.schema == SCHEMA_VERSION
    assert stats.trials_ok == 1
    assert stats.trials_failed == 1
    assert stats.distinct_completed == 1
    assert stats.leases == 3
    assert stats.live_leases == 1  # (1,0) was never completed
    assert stats.heartbeats == 2
    assert stats.events == 1
    assert not stats.torn_tail
    assert stats.size_bytes > 0
    assert stats.superseded > 0


def test_compact_preserves_resume_state_and_shrinks(tmp_path):
    from repro.core.journal import compact_journal, read_lease_state

    path = str(tmp_path / "busy.jsonl")
    _write_busy_journal(path)
    before_completed = read_completed(path, FP)
    before_leases = read_lease_state(path, FP)

    bytes_before, bytes_after = compact_journal(path)
    assert bytes_after < bytes_before

    # Resume-relevant state is byte-for-byte what it was: completed
    # values, live leases, and the fingerprint all survive.
    assert read_completed(path, FP) == before_completed
    assert read_lease_state(path, FP) == before_leases
    from repro.core.journal import inspect_journal

    stats = inspect_journal(path)
    assert stats.heartbeats == 0  # heartbeats are always superseded
    assert stats.superseded == 0  # nothing left to drop: idempotent
    again_before, again_after = compact_journal(path)
    assert again_before == again_after


def test_compact_to_separate_output_leaves_original(tmp_path):
    from repro.core.journal import compact_journal

    path = str(tmp_path / "busy.jsonl")
    out = str(tmp_path / "compacted.jsonl")
    _write_busy_journal(path)
    original = open(path, "rb").read()
    compact_journal(path, output=out)
    assert open(path, "rb").read() == original
    assert read_completed(out, FP) == read_completed(path, FP)


def test_compacted_journal_resumes_a_real_campaign(tmp_path):
    """The flagship round-trip: run half, compact, resume — identical."""
    from repro.core.journal import compact_journal

    path = str(tmp_path / "campaign.jsonl")
    specs = _specs(6)
    truth = [o.value for o in TrialRunner().run(specs)]

    journal = open_journal(path, FP, resume=False)
    try:
        TrialRunner(max_workers=2, backend="local-supervised").run(
            specs[:3], journal=journal
        )
    finally:
        journal.close()
    compact_journal(path)

    journal = open_journal(path, FP, resume=True)
    telemetry = CampaignTelemetry()
    try:
        outcomes = TrialRunner(
            max_workers=2, backend="local-supervised", telemetry=telemetry
        ).run(specs, journal=journal)
    finally:
        journal.close()
    assert [o.value for o in outcomes] == truth
    assert telemetry.trials_resumed == 3  # the compacted half was kept


# -- quarantine and fencing records -------------------------------------------


def test_quarantine_record_roundtrips_and_releases_lease(tmp_path):
    from repro.core.journal import read_quarantine

    path = str(tmp_path / "poison.jsonl")
    with TrialJournal(path, FP) as journal:
        journal.record_lease((3, 0), "vm-a:11:1", 1, ttl_s=60.0)
        record = journal.record_quarantine(
            (3, 0),
            owners=["vm-a:11:1", "vm-b:22:2", "vm-a:11:1"],
            attempts=2,
            traceback_text="Fatal Python error: Segmentation fault",
        )
        # Duplicate owners collapse; the in-memory lease is released.
        assert record.owners == ("vm-a:11:1", "vm-b:22:2")
        assert trial_key_id((3, 0)) not in journal.leases
        assert journal.quarantined == {trial_key_id((3, 0)): record}
    parked = read_quarantine(path, FP)
    assert parked == {trial_key_id((3, 0)): record}
    assert "Segmentation fault" in parked[trial_key_id((3, 0))].traceback


def test_ok_trial_record_lifts_a_quarantine(tmp_path):
    from repro.core.journal import read_quarantine

    path = str(tmp_path / "poison.jsonl")
    with TrialJournal(path, FP) as journal:
        journal.record_quarantine((3, 0), owners=["a:1:1"], attempts=2)
        # An operator fixed the environment and re-ran the trial.
        journal.record_success((3, 0), 9, attempts=3, wall_clock_s=0.1)
    assert read_quarantine(path, FP) == {}


def test_resume_loads_quarantine_state(tmp_path):
    path = str(tmp_path / "poison.jsonl")
    with TrialJournal(path, FP) as journal:
        journal.record_quarantine((5, 0), owners=["a:1:1"], attempts=2)
    with TrialJournal(path, FP, resume=True) as journal:
        assert trial_key_id((5, 0)) in journal.quarantined


def test_lease_records_carry_fencing_identity(tmp_path):
    from repro.core.journal import read_lease_state

    path = str(tmp_path / "fenced.jsonl")
    with TrialJournal(path, FP) as journal:
        journal.record_lease(
            (0, 0), "nfs-a:77:2", 2, ttl_s=60.0,
            host="nfs-a", pid=77, token=2,
        )
    lease = read_lease_state(path, FP)[trial_key_id((0, 0))]
    assert (lease.host, lease.pid, lease.token) == ("nfs-a", 77, 2)


def test_inspect_and_compact_preserve_quarantine(tmp_path):
    from repro.core.journal import (
        compact_journal,
        inspect_journal,
        read_quarantine,
    )

    path = str(tmp_path / "busy.jsonl")
    _write_busy_journal(path)
    with TrialJournal(path, FP, resume=True) as journal:
        journal.record_quarantine(
            (2, 0), owners=["a:1:1", "b:2:2"], attempts=2,
            traceback_text="boom",
        )
    assert inspect_journal(path).quarantined == 1
    before = read_quarantine(path, FP)
    compact_journal(path)
    assert read_quarantine(path, FP) == before
    assert inspect_journal(path).quarantined == 1


def test_journal_creation_fsyncs_parent_directory(tmp_path, monkeypatch):
    """Journal birth is durable: the parent dir is fsynced so the file's
    directory entry survives a power cut, not just its bytes."""
    import repro.core.journal as journal_mod

    synced = []
    monkeypatch.setattr(
        journal_mod, "fsync_directory", lambda p: synced.append(p)
    )
    path = str(tmp_path / "fresh.jsonl")
    TrialJournal(path, FP).close()
    assert synced == [str(tmp_path)]
