"""Periodic-timer tests."""

import numpy as np
import pytest

from repro.des.engine import Simulator
from repro.des.timer import PeriodicTimer


def test_fires_every_interval():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
    timer.start()
    sim.run(until=5.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_stop_halts_firing():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
    timer.start()
    sim.schedule(2.5, timer.stop)
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0]
    assert not timer.running


def test_start_twice_is_noop():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
    timer.start()
    timer.start()
    sim.run(until=1.5)
    assert ticks == [1.0]


def test_jitter_fires_early_but_not_late():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(
        sim,
        1.0,
        lambda: ticks.append(sim.now),
        jitter=0.2,
        rng=np.random.default_rng(3),
    )
    timer.start()
    sim.run(until=20.0)
    assert len(ticks) >= 20  # jitter shortens intervals, never lengthens
    gaps = np.diff([0.0] + ticks)
    assert np.all(gaps <= 1.0 + 1e-12)
    assert np.all(gaps >= 0.8 - 1e-12)


def test_explicit_start_delay():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(
        sim, 1.0, lambda: ticks.append(sim.now), start_delay=0.25
    )
    timer.start()
    sim.run(until=2.5)
    assert ticks == [0.25, 1.25, 2.25]


def test_invalid_interval_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        PeriodicTimer(sim, 0.0, lambda: None)


def test_invalid_jitter_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        PeriodicTimer(sim, 1.0, lambda: None, jitter=1.0)
    with pytest.raises(ValueError):
        PeriodicTimer(sim, 1.0, lambda: None, jitter=-0.1)


def test_restart_after_stop():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
    timer.start()
    sim.run(until=1.5)
    timer.stop()
    timer.start()
    sim.run(until=3.0)
    assert ticks == [1.0, 2.5]
