"""AODV expanding-ring search tests (RFC 3561 s6.4)."""

import pytest

from repro.routing.aodv import AodvConfig

from helpers import TestNetwork, chain_coords


def _chain(n, **config_kwargs):
    network = TestNetwork(
        chain_coords(n),
        protocol="AODV",
        protocol_options={"config": AodvConfig(**config_kwargs)},
    )
    network.start_routing()
    return network


class TestConfigSchedule:
    def test_disabled_always_full_diameter(self):
        config = AodvConfig()
        assert config.ring_attempts == 0
        assert config.rreq_ttl(0) == config.net_diameter
        assert config.rreq_ttl(5) == config.net_diameter
        assert config.max_discovery_attempts == 3  # 1 + 2 retries

    def test_ring_ttl_schedule(self):
        config = AodvConfig(expanding_ring=True)
        # TTLs 1, 3, 5, 7 then full diameter.
        assert [config.rreq_ttl(a) for a in range(6)] == [1, 3, 5, 7, 35, 35]
        assert config.ring_attempts == 4
        assert config.max_discovery_attempts == 7

    def test_ring_timeouts_grow_with_ttl(self):
        config = AodvConfig(expanding_ring=True)
        timeouts = [config.rreq_timeout_s(a) for a in range(6)]
        assert timeouts[0] < timeouts[1] < timeouts[2] < timeouts[3]
        # Full-diameter attempts use (doubling) net traversal time.
        assert timeouts[4] == pytest.approx(config.net_traversal_time_s)
        assert timeouts[5] == pytest.approx(2 * config.net_traversal_time_s)

    def test_ring_timeout_below_full_timeout(self):
        config = AodvConfig(expanding_ring=True)
        assert config.rreq_timeout_s(0) < config.net_traversal_time_s


class TestRingBehaviour:
    def test_near_destination_found_with_tiny_flood(self):
        """A 1-hop destination is discovered by the TTL-1 ring: the RREQ
        never reaches the far end of the chain."""
        network = _chain(6, expanding_ring=True)
        packet = network.nodes[0].originate_data(1, 512, flow_id=1, seq=1)
        network.run(until=3.0)
        assert packet.uid in network.delivered_uids()
        rreq_senders = {
            t.node
            for t in network.metrics.control_transmissions()
            if t.kind == "AODV_RREQ"
        }
        # Only the originator flooded; no rebroadcast beyond the ring.
        assert rreq_senders == {0}

    def test_far_destination_eventually_found(self):
        network = _chain(5, expanding_ring=True)
        packet = network.nodes[0].originate_data(4, 512, flow_id=1, seq=1)
        network.run(until=5.0)
        assert packet.uid in network.delivered_uids()

    def test_ring_reduces_rreq_load_for_near_targets(self):
        """On a plus-shaped topology (four 3-node arms around a hub) a
        full flood for an adjacent destination storms down every arm; the
        TTL-1 ring reaches the destination without any rebroadcast."""
        coords = [(0.0, 0.0)]
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            coords.extend(
                (dx * 200.0 * k, dy * 200.0 * k) for k in (1, 2, 3)
            )

        def rreq_count(expanding_ring):
            network = TestNetwork(
                coords,
                protocol="AODV",
                protocol_options={
                    "config": AodvConfig(expanding_ring=expanding_ring)
                },
            )
            network.start_routing()
            packet = network.nodes[0].originate_data(1, 512, flow_id=1, seq=1)
            network.run(until=3.0)
            assert packet.uid in network.delivered_uids()
            return sum(
                1
                for t in network.metrics.control_transmissions()
                if t.kind == "AODV_RREQ"
            )

        with_ring = rreq_count(True)
        without = rreq_count(False)
        assert with_ring == 1  # the TTL-1 probe found the neighbour
        assert without > 3 * with_ring  # the flood ran down the other arms

    def test_unreachable_exhausts_all_attempts(self):
        coords = chain_coords(2) + [(9000.0, 0.0)]
        network = TestNetwork(
            coords,
            protocol="AODV",
            protocol_options={"config": AodvConfig(expanding_ring=True)},
        )
        network.start_routing()
        packet = network.nodes[0].originate_data(2, 512, flow_id=1, seq=1)
        network.run(until=40.0)
        assert packet.uid not in network.delivered_uids()
        rreqs = sum(
            1
            for t in network.metrics.control_transmissions()
            if t.kind == "AODV_RREQ" and t.node == 0
        )
        assert rreqs == AodvConfig(expanding_ring=True).max_discovery_attempts
