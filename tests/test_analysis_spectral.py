"""Spectral SRD/LRD tests (paper Fig. 7)."""

import numpy as np
import pytest

from repro.analysis.spectral import periodogram, spectral_slope_at_origin
from repro.ca.history import evolve
from repro.ca.nasch import NagelSchreckenberg


def test_periodogram_finds_a_pure_tone():
    t = np.arange(4096)
    series = np.sin(2 * np.pi * 0.1 * t)
    freqs, power = periodogram(series)
    assert freqs[np.argmax(power)] == pytest.approx(0.1, abs=1e-3)


def test_periodogram_drops_zero_frequency():
    freqs, _ = periodogram(np.random.default_rng(0).normal(size=256))
    assert freqs[0] > 0


def test_white_noise_slope_near_zero():
    noise = np.random.default_rng(1).normal(size=8192)
    slope = spectral_slope_at_origin(noise)
    assert abs(slope) < 0.5


def test_deterministic_nasch_is_srd():
    """Fig. 7-a: for p=0 the spectrum does not diverge at the origin."""
    model = NagelSchreckenberg(400, 40, p=0.0)
    history = evolve(model, 4000, warmup=500)
    slope = spectral_slope_at_origin(history.mean_velocity_series())
    assert slope > -0.5


def test_stochastic_nasch_is_lrd():
    """Fig. 7-b: for p=0.5 the spectrum diverges like 1/f at the origin."""
    rng = np.random.default_rng(2)
    model = NagelSchreckenberg.from_density(
        400, 0.12, random_start=True, rng=rng, p=0.5
    )
    history = evolve(model, 4000, warmup=500)
    slope = spectral_slope_at_origin(history.mean_velocity_series())
    assert slope < -0.5


def test_lrd_process_slope_matches_synthetic_1_over_f():
    """Sanity on the estimator itself: synthesise 1/f noise and recover
    a clearly negative slope."""
    rng = np.random.default_rng(3)
    n = 8192
    freqs = np.fft.rfftfreq(n)
    freqs[0] = 1.0
    spectrum = (1.0 / np.sqrt(freqs)) * np.exp(
        1j * rng.uniform(0, 2 * np.pi, len(freqs))
    )
    series = np.fft.irfft(spectrum)
    slope = spectral_slope_at_origin(series)
    assert slope < -0.6


def test_rejects_short_series():
    with pytest.raises(ValueError):
        periodogram(np.ones(4))


def test_rejects_bad_low_fraction():
    with pytest.raises(ValueError):
        spectral_slope_at_origin(np.ones(100), low_fraction=0.0)


def test_constant_series_slope_zero():
    # All power bins are zero after detrending; the guard returns 0.
    assert spectral_slope_at_origin(np.ones(256)) == 0.0
