"""Run the doctests embedded in module docstrings."""

import doctest

import pytest

import repro
import repro.analysis.render
import repro.core.registry
import repro.des.engine
import repro.geometry.affine
import repro.util.rng

MODULES = [
    repro,
    repro.util.rng,
    repro.des.engine,
    repro.geometry.affine,
    repro.analysis.render,
    repro.core.registry,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module)
    assert result.attempted > 0, f"{module.__name__} lost its doctests"
    assert result.failed == 0
