"""Lane-shape tests: straight lanes, circuits, polylines."""

import math

import numpy as np
import pytest

from repro.geometry.affine import AffineTransform2D
from repro.geometry.shapes import (
    CircularShape,
    PolylineShape,
    StraightShape,
    regular_polygon_circuit,
)


class TestStraightShape:
    def test_identity_lane_runs_along_x(self):
        lane = StraightShape(100.0)
        assert lane.to_plane(30.0) == (30.0, 0.0)
        assert not lane.closed

    def test_transform_positions_lane(self):
        lane = StraightShape(
            100.0, AffineTransform2D.translation(0.0, 50.0)
        )
        assert lane.to_plane(10.0) == (10.0, 50.0)

    def test_out_of_range_rejected(self):
        lane = StraightShape(100.0)
        with pytest.raises(ValueError):
            lane.to_plane(100.1)
        with pytest.raises(ValueError):
            lane.to_plane(-0.1)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            StraightShape(0.0)


class TestCircularShape:
    def test_circumference_radius_relation(self):
        circle = CircularShape(3000.0)
        assert circle.radius == pytest.approx(3000.0 / (2 * math.pi))
        assert circle.closed

    def test_start_at_angle_zero(self):
        circle = CircularShape(100.0, center=(5.0, 5.0))
        x, y = circle.to_plane(0.0)
        assert x == pytest.approx(5.0 + circle.radius)
        assert y == pytest.approx(5.0)

    def test_wraps_continuously(self):
        circle = CircularShape(100.0)
        assert circle.to_plane(100.0) == pytest.approx(circle.to_plane(0.0))
        assert circle.to_plane(125.0) == pytest.approx(circle.to_plane(25.0))

    def test_quarter_way_is_ninety_degrees(self):
        circle = CircularShape(100.0)
        x, y = circle.to_plane(25.0)
        assert x == pytest.approx(0.0, abs=1e-9)
        assert y == pytest.approx(circle.radius)

    def test_chord_distance_close_to_arc_for_small_steps(self):
        # A vehicle moving 7.5 m along a 3000 m circuit moves almost
        # exactly 7.5 m in the plane (the circuit is locally flat).
        circle = CircularShape(3000.0)
        a = np.array(circle.to_plane(0.0))
        b = np.array(circle.to_plane(7.5))
        assert np.linalg.norm(b - a) == pytest.approx(7.5, rel=1e-4)

    def test_radius_offset_for_outer_lane(self):
        inner = CircularShape(3000.0)
        outer = CircularShape(3000.0, radius_offset=3.75)
        assert outer.radius - inner.radius == pytest.approx(3.75)
        # Same parametrisation: points at the same arc length are radially
        # aligned (equal angles).
        pi, po = inner.to_plane(700.0), outer.to_plane(700.0)
        angle_i = math.atan2(pi[1], pi[0])
        angle_o = math.atan2(po[1], po[0])
        assert angle_i == pytest.approx(angle_o)

    def test_degenerate_offset_rejected(self):
        with pytest.raises(ValueError):
            CircularShape(10.0, radius_offset=-10.0)


class TestPolylineShape:
    def test_length_is_sum_of_segments(self):
        poly = PolylineShape([(0, 0), (3, 0), (3, 4)])
        assert poly.length == pytest.approx(7.0)
        assert not poly.closed

    def test_interpolates_along_segments(self):
        poly = PolylineShape([(0, 0), (10, 0), (10, 10)])
        assert poly.to_plane(5.0) == pytest.approx((5.0, 0.0))
        assert poly.to_plane(15.0) == pytest.approx((10.0, 5.0))

    def test_vertex_positions_exact(self):
        poly = PolylineShape([(0, 0), (10, 0), (10, 10)])
        assert poly.to_plane(10.0) == pytest.approx((10.0, 0.0))
        assert poly.to_plane(20.0) == pytest.approx((10.0, 10.0))

    def test_closed_when_last_vertex_repeats_first(self):
        square = PolylineShape([(0, 0), (1, 0), (1, 1), (0, 1), (0, 0)])
        assert square.closed
        assert square.length == pytest.approx(4.0)
        assert square.to_plane(4.5) == pytest.approx(square.to_plane(0.5))

    def test_rejects_degenerate_input(self):
        with pytest.raises(ValueError):
            PolylineShape([(0, 0)])
        with pytest.raises(ValueError):
            PolylineShape([(0, 0), (0, 0)])


def test_regular_polygon_circuit_perimeter():
    circuit = regular_polygon_circuit(3000.0, sides=8)
    assert circuit.closed
    assert circuit.length == pytest.approx(3000.0)


def test_regular_polygon_min_sides():
    with pytest.raises(ValueError):
        regular_polygon_circuit(100.0, sides=2)


def test_to_plane_many_matches_scalar():
    circle = CircularShape(100.0)
    positions = [0.0, 10.0, 55.5]
    batch = circle.to_plane_many(positions)
    for s, row in zip(positions, batch):
        assert circle.to_plane(s) == pytest.approx(tuple(row))
