"""OLSR behaviour tests: link sensing, MPR selection, TC flooding, routes."""

import pytest

from repro.routing.olsr import Olsr, OlsrConfig

from helpers import TestNetwork, chain_coords


def _chain(n, **kwargs):
    network = TestNetwork(chain_coords(n), protocol="OLSR", **kwargs)
    network.start_routing()
    return network


def test_neighbors_become_symmetric():
    network = _chain(2)
    network.run(until=4.0)
    olsr: Olsr = network.nodes[0].routing
    assert olsr._links[1].sym_until > network.sim.now


def test_routes_converge_over_chain():
    network = _chain(5)
    network.run(until=10.0)
    olsr: Olsr = network.nodes[0].routing
    table = olsr.routing_table()
    assert table[1] == (1, 1)
    assert table[2] == (1, 2)
    assert table[4] == (1, 4)


def test_middle_node_selected_as_mpr():
    """On a 3-chain, the ends reach each other only through the middle."""
    network = _chain(3)
    network.run(until=6.0)
    assert 1 in network.nodes[0].routing.mprs
    assert 1 in network.nodes[2].routing.mprs


def test_tc_messages_flood_topology():
    network = _chain(5)
    network.run(until=10.0)
    tcs = [
        t
        for t in network.metrics.control_transmissions()
        if t.kind == "OLSR_TC"
    ]
    assert tcs  # MPRs exist on a chain, so TCs flow
    # Node 0 learned remote links it cannot see directly.
    olsr: Olsr = network.nodes[0].routing
    topology_nodes = {dst for (dst, _), _ in olsr._topology.items()}
    assert 3 in topology_nodes or 4 in topology_nodes


def test_data_delivery_multi_hop():
    network = _chain(5)
    network.run(until=10.0)  # convergence first: proactive protocol
    packet = network.nodes[0].originate_data(4, 512, flow_id=1, seq=1)
    network.run(until=12.0)
    assert packet.uid in network.delivered_uids()


def test_no_route_drops_immediately():
    """Proactive routing has no buffering: unreachable -> instant drop."""
    coords = chain_coords(2) + [(7000.0, 0.0)]
    network = TestNetwork(coords, protocol="OLSR")
    network.start_routing()
    network.run(until=8.0)
    packet = network.nodes[0].originate_data(2, 512, flow_id=1, seq=1)
    network.run(until=8.5)
    assert packet.uid not in network.delivered_uids()
    assert network.metrics.drops.get("no_route", 0) == 1


def test_link_loss_expires_route():
    network = _chain(3)
    network.run(until=8.0)
    assert 2 in network.nodes[0].routing.routing_table()
    network.positions.move(2, 9000.0, 9000.0)
    network.run(until=network.sim.now + 8.0)  # > neighbor hold time
    assert 2 not in network.nodes[0].routing.routing_table()


def test_star_center_is_everyones_mpr():
    # Four spokes around a hub; spokes only reach each other via the hub.
    coords = [(0.0, 0.0), (240.0, 0.0), (-240.0, 0.0), (0.0, 240.0), (0.0, -240.0)]
    network = TestNetwork(coords, protocol="OLSR")
    network.start_routing()
    network.run(until=8.0)
    for spoke in (1, 2, 3, 4):
        assert network.nodes[spoke].routing.mprs == {0}
    # The hub needs no MPR at all: it covers its 2-hop set itself (empty).
    assert network.nodes[0].routing.mprs == set()


def test_spoke_to_spoke_via_hub():
    coords = [(0.0, 0.0), (240.0, 0.0), (-240.0, 0.0)]
    network = TestNetwork(coords, protocol="OLSR")
    network.start_routing()
    network.run(until=8.0)
    packet = network.nodes[1].originate_data(2, 256, flow_id=9, seq=1)
    network.run(until=10.0)
    assert packet.uid in network.delivered_uids()
    assert network.metrics.delivered[0].hops == 2


def test_etx_mode_runs_and_converges():
    network = _chain(
        4, protocol_options={"config": OlsrConfig(metric="etx")}
    )
    network.run(until=12.0)
    olsr: Olsr = network.nodes[0].routing
    table = olsr.routing_table()
    assert table[3][0] == 1  # same first hop as hop-count on clean links
    # On loss-free links the measured ETX cost is ~1.
    assert olsr._link_cost(1) == pytest.approx(1.0, abs=0.35)


def test_etx_reception_ratio_tracks_hellos():
    network = _chain(
        2, protocol_options={"config": OlsrConfig(metric="etx")}
    )
    network.run(until=12.0)
    olsr: Olsr = network.nodes[0].routing
    assert olsr._reception_ratio(1) > 0.7


def test_hello_size_grows_with_neighbors():
    from repro.routing.olsr import HelloHeader, _hello_size

    small = _hello_size(HelloHeader(neighbors={1: "SYM"}, link_quality={}))
    large = _hello_size(
        HelloHeader(neighbors={1: "SYM", 2: "SYM", 3: "MPR"}, link_quality={})
    )
    assert large > small


def test_config_validation():
    with pytest.raises(ValueError):
        OlsrConfig(metric="hops-and-dreams")


def test_table1_intervals():
    config = OlsrConfig()
    assert config.hello_interval_s == 1.0  # Table I: HelloOLSR 1 s
    assert config.tc_interval_s == 2.0  # Table I: TCOLSR 2 s
