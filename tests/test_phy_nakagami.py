"""Nakagami-m fading model tests."""

import numpy as np
import pytest

from repro.phy.propagation import NakagamiFading, TwoRayGround


def test_mean_converges_to_large_scale_model():
    fading = NakagamiFading(m=3.0, rng=np.random.default_rng(0))
    mean_model = TwoRayGround()
    target = mean_model.rx_power(0.28183815, 200.0)
    draws = np.array(
        [fading.rx_power(0.28183815, 200.0) for _ in range(5000)]
    )
    assert draws.mean() == pytest.approx(target, rel=0.05)


def test_variance_decreases_with_m():
    def cv(m):
        fading = NakagamiFading(m=m, rng=np.random.default_rng(1))
        draws = np.array([fading.rx_power(1.0, 200.0) for _ in range(3000)])
        return draws.std() / draws.mean()

    # Gamma(m) power: coefficient of variation = 1/sqrt(m).
    assert cv(1.0) == pytest.approx(1.0, abs=0.1)
    assert cv(4.0) == pytest.approx(0.5, abs=0.1)
    assert cv(1.0) > cv(4.0)


def test_rayleigh_case_is_exponential_power():
    fading = NakagamiFading(m=1.0, rng=np.random.default_rng(2))
    draws = np.array([fading.rx_power(1.0, 150.0) for _ in range(5000)])
    # Exponential distribution: mean == std.
    assert draws.std() == pytest.approx(draws.mean(), rel=0.1)


def test_zero_distance_returns_mean():
    fading = NakagamiFading(m=2.0)
    assert fading.rx_power(0.4, 0.0) == 0.4


def test_custom_mean_model():
    from repro.phy.propagation import FreeSpace

    fading = NakagamiFading(
        m=5.0, mean_model=FreeSpace(), rng=np.random.default_rng(3)
    )
    assert fading.mean_rx_power(1.0, 100.0) == FreeSpace().rx_power(1.0, 100.0)


def test_shape_validation():
    with pytest.raises(ValueError):
        NakagamiFading(m=0.3)


def test_scenario_integration():
    from repro.core.config import Scenario
    from repro.core.simulation import CavenetSimulation

    scenario = Scenario(
        num_nodes=10,
        road_length_m=1000.0,
        sim_time_s=15.0,
        senders=(1,),
        traffic_start_s=5.0,
        traffic_stop_s=14.0,
        propagation="nakagami",
        nakagami_m=3.0,
        initial_placement="uniform",
        dawdle_p=0.0,
        seed=2,
    )
    assert "Nakagami" in scenario.table1()["Radio Propagation Models"]
    result = CavenetSimulation(scenario).run()
    # Fading costs some delivery but the network functions.
    assert result.pdr() > 0.3
