"""Typed error hierarchy: taxonomy, backward compatibility, the ban.

Every typed error doubles as the builtin it replaced (``ConfigError`` is a
``ValueError``, ``TrialError`` a ``RuntimeError`` ...), so pre-existing
``except ValueError`` call sites keep working while new code can catch
``ReproError`` to get everything this package raises on purpose.  The last
test enforces the repo rule that ``src/repro/core/`` raises the typed
errors, never bare builtins.
"""

import pathlib
import re

import pytest

from repro.util.errors import (
    ConfigError,
    InvariantViolation,
    JournalCorruptError,
    ReproError,
    TrialError,
)


def test_taxonomy():
    assert issubclass(ConfigError, ReproError)
    assert issubclass(TrialError, ReproError)
    assert issubclass(JournalCorruptError, ReproError)
    assert issubclass(InvariantViolation, ReproError)
    # Backward compatibility with the builtins they replaced:
    assert issubclass(ConfigError, ValueError)
    assert issubclass(TrialError, RuntimeError)
    assert issubclass(JournalCorruptError, RuntimeError)
    assert issubclass(InvariantViolation, AssertionError)


def test_catching_repro_error_catches_all():
    for exc_type in (
        ConfigError, TrialError, JournalCorruptError, InvariantViolation
    ):
        with pytest.raises(ReproError):
            raise exc_type("x")


def test_legacy_value_error_handlers_still_work():
    from repro.core.config import Scenario

    with pytest.raises(ValueError):
        Scenario(num_nodes=0)
    with pytest.raises(ConfigError):
        Scenario(num_nodes=0)


def test_trial_error_carries_key_and_attempts():
    error = TrialError("all trials failed", key=(0.2, 3), attempts=2)
    assert error.key == (0.2, 3)
    assert error.attempts == 2
    assert "all trials failed" in str(error)


def test_invariant_violation_formats_context():
    error = InvariantViolation("bad state", step=7, lane=1, gap=-2)
    assert error.context == {"step": 7, "lane": 1, "gap": -2}
    text = str(error)
    assert "bad state" in text
    assert "step=7" in text and "lane=1" in text and "gap=-2" in text


def test_invariant_violation_without_context():
    assert str(InvariantViolation("bare")) == "bare"


def test_core_never_raises_bare_builtins():
    """The repo rule satellite: no ``raise ValueError``/``RuntimeError`` in
    ``src/repro/core/`` — campaign code must raise the typed hierarchy so
    callers (and the CLI's exit-code mapping) can tell intentional errors
    from genuine bugs.  Mirrors the CI grep gate."""
    core = pathlib.Path(__file__).resolve().parent.parent / "src/repro/core"
    banned = re.compile(r"raise\s+(ValueError|RuntimeError|AssertionError)\b")
    offenders = [
        f"{path.name}:{number}"
        for path in sorted(core.glob("*.py"))
        for number, line in enumerate(path.read_text().splitlines(), 1)
        if banned.search(line)
    ]
    assert not offenders, f"bare builtin raises in core/: {offenders}"


def test_core_and_faults_never_swallow_exceptions():
    """Crash-safety and fault-injection code must never eat an exception
    whole (``except ...: pass`` or a bare ``except:``) — that hides
    exactly the failures the chaos harness exists to surface.  Mirrors
    the CI grep gate."""
    src = pathlib.Path(__file__).resolve().parent.parent / "src/repro"
    swallowed = re.compile(
        r"except[^:\n]*:\s*(?:pass\s*$|\n\s*pass\b)", re.MULTILINE
    )
    bare = re.compile(r"except\s*:")
    offenders = []
    for package in ("core", "faults"):
        for path in sorted((src / package).glob("*.py")):
            text = path.read_text()
            if swallowed.search(text):
                offenders.append(f"{path.name}: except-pass")
            if bare.search(text):
                offenders.append(f"{path.name}: bare except")
    assert not offenders, f"swallowed exceptions: {offenders}"
