"""Discrete-event kernel tests."""

import pytest

from repro.des.engine import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(1.5, fired.append, "middle")
    sim.run()
    assert fired == ["early", "middle", "late"]


def test_simultaneous_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for tag in range(5):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(3.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [3.5]
    assert sim.now == 3.5


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "in")
    sim.schedule(5.0, fired.append, "out")
    sim.run(until=2.0)
    assert fired == ["in"]
    assert sim.now == 2.0
    sim.run(until=10.0)
    assert fired == ["in", "out"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []
    assert not event.active


def test_cancel_twice_is_harmless():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain():
        fired.append(sim.now)
        if sim.now < 3.0:
            sim.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_schedule_in_past_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(4.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [4.0]


def test_stop_halts_processing():
    sim = Simulator()
    fired = []

    def first():
        fired.append(1)
        sim.stop()

    sim.schedule(1.0, first)
    sim.schedule(2.0, fired.append, 2)
    sim.run()
    assert fired == [1]


def test_step_processes_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step()
    assert fired == ["a"]
    assert sim.step()
    assert fired == ["a", "b"]
    assert not sim.step()


def test_pending_events_counts_active_only():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending_events == 1
    assert keep.active


def test_zero_delay_event_fires_now():
    sim = Simulator()
    sim.schedule(1.0, lambda: sim.schedule(0.0, marks.append, sim.now))
    marks = []
    sim.run()
    assert marks == [1.0]
