"""Discrete-event kernel tests."""

import pytest

from repro.des.engine import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(1.5, fired.append, "middle")
    sim.run()
    assert fired == ["early", "middle", "late"]


def test_simultaneous_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for tag in range(5):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(3.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [3.5]
    assert sim.now == 3.5


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "in")
    sim.schedule(5.0, fired.append, "out")
    sim.run(until=2.0)
    assert fired == ["in"]
    assert sim.now == 2.0
    sim.run(until=10.0)
    assert fired == ["in", "out"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []
    assert not event.active


def test_cancel_twice_is_harmless():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain():
        fired.append(sim.now)
        if sim.now < 3.0:
            sim.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_schedule_in_past_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(4.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [4.0]


def test_stop_halts_processing():
    sim = Simulator()
    fired = []

    def first():
        fired.append(1)
        sim.stop()

    sim.schedule(1.0, first)
    sim.schedule(2.0, fired.append, 2)
    sim.run()
    assert fired == [1]


def test_step_processes_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step()
    assert fired == ["a"]
    assert sim.step()
    assert fired == ["a", "b"]
    assert not sim.step()


def test_pending_events_counts_active_only():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending_events == 1
    assert keep.active


def test_zero_delay_event_fires_now():
    sim = Simulator()
    sim.schedule(1.0, lambda: sim.schedule(0.0, marks.append, sim.now))
    marks = []
    sim.run()
    assert marks == [1.0]


def test_pending_events_tracks_lifecycle_without_heap_scans():
    """The counter stays exact through schedule / cancel / fire / drain."""
    sim = Simulator()
    assert sim.pending_events == 0
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    assert sim.pending_events == 10
    events[3].cancel()
    events[3].cancel()  # double-cancel must not double-decrement
    events[7].cancel()
    assert sim.pending_events == 8
    sim.run(until=2.0)  # fires events at t=1 and t=2
    assert sim.pending_events == 6
    sim.run()
    assert sim.pending_events == 0


def test_pending_events_is_o1():
    """Polling the counter must not scan the heap (telemetry calls it a lot)."""
    import time

    sim = Simulator()
    for i in range(50_000):
        sim.schedule(float(i), lambda: None)
    start = time.perf_counter()
    for _ in range(10_000):
        assert sim.pending_events == 50_000
    elapsed = time.perf_counter() - start
    # 10k polls over a 50k heap: a scanning implementation needs ~500M
    # iterations (tens of seconds); the counter is microseconds per poll.
    assert elapsed < 1.0


def test_pending_events_with_step_and_cancel_after_pop_order():
    sim = Simulator()
    a = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    sim.step()
    assert sim.pending_events == 1
    a.cancel()  # cancelling an already-fired event is a no-op for the count
    assert sim.pending_events == 1


def test_events_processed_counts_fired_not_cancelled():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    dropped = sim.schedule(2.0, lambda: None)
    sim.schedule(3.0, lambda: None)
    dropped.cancel()
    sim.run()
    assert sim.events_processed == 2


def test_schedule_batch_matches_sequential_semantics():
    sim_a, sim_b = Simulator(), Simulator()
    fired_a, fired_b = [], []
    sim_a.schedule_batch(
        [
            (1.0, fired_a.append, ("x",)),
            (1.0, fired_a.append, ("y",)),
            (0.5, fired_a.append, ("z",)),
        ]
    )
    sim_b.schedule(1.0, fired_b.append, "x")
    sim_b.schedule(1.0, fired_b.append, "y")
    sim_b.schedule(0.5, fired_b.append, "z")
    sim_a.run()
    sim_b.run()
    assert fired_a == fired_b == ["z", "x", "y"]


def test_schedule_batch_returns_cancellable_events():
    sim = Simulator()
    fired = []
    events = sim.schedule_batch(
        (0.1 * k, fired.append, (k,)) for k in range(4)
    )
    assert sim.pending_events == 4
    events[2].cancel()
    sim.run()
    assert fired == [0, 1, 3]


def test_schedule_batch_rejects_past_delays():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_batch([(0.5, lambda: None, ()), (-0.1, lambda: None, ())])
