"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.util.rng import RngStreams


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def streams():
    """A fresh deterministic stream family per test."""
    return RngStreams(12345)
