"""Precise-timing DCF tests: DIFS, SIFS/ACK and NAV arithmetic."""

import numpy as np
import pytest

from repro.des.engine import Simulator
from repro.mac.dcf import Mac80211
from repro.mac.frames import FrameType
from repro.mac.params import Mac80211Params
from repro.net.packet import Packet
from repro.phy.channel import Channel
from repro.phy.params import PhyParams
from repro.phy.propagation import TwoRayGround
from repro.phy.radio import Radio

PROP_DELAY_150M = 150.0 / 299792458.0


class Upper:
    def __init__(self, sim):
        self.sim = sim
        self.rx_times = []

    def on_receive(self, packet, prev_hop):
        self.rx_times.append(self.sim.now)

    def on_failure(self, packet, next_hop):
        pass


def _pair():
    sim = Simulator()
    coords = np.array([(0.0, 0.0), (150.0, 0.0)])
    channel = Channel(sim, TwoRayGround(), lambda: coords)
    phy = PhyParams.for_ranges(TwoRayGround(), 250.0, 550.0)
    params = Mac80211Params()
    macs, uppers = [], []
    for node_id in (0, 1):
        radio = Radio(sim, node_id, phy, channel)
        mac = Mac80211(sim, radio, params, rng=np.random.default_rng(node_id))
        upper = Upper(sim)
        mac.attach_upper(upper.on_receive, upper.on_failure)
        macs.append(mac)
        uppers.append(upper)
    return sim, macs, uppers, params


def test_first_transmission_waits_exactly_difs():
    """Idle medium, fresh MAC: the frame airs after exactly DIFS (no
    backoff on the very first access), so delivery lands at
    DIFS + airtime + propagation."""
    sim, macs, uppers, params = _pair()
    packet = Packet("DATA", 0, 1, 512, 0.0)
    macs[0].enqueue(packet, 1)
    sim.run(until=0.1)
    airtime = params.tx_time(
        params.frame_size(FrameType.DATA, 512), FrameType.DATA
    )
    expected = params.difs_s + airtime + PROP_DELAY_150M
    assert uppers[1].rx_times[0] == pytest.approx(expected, rel=1e-9)


def test_ack_arrives_sifs_after_data():
    """The receiver's ACK starts exactly SIFS after the data frame ends."""
    sim, macs, uppers, params = _pair()
    packet = Packet("DATA", 0, 1, 512, 0.0)
    macs[0].enqueue(packet, 1)
    sim.run(until=0.1)
    data_arrival = uppers[1].rx_times[0]
    # The sender completed without retransmission: the ACK made it in
    # time.  Reconstruct the ACK end instant from the stats and timing.
    assert macs[0].stats.retransmissions == 0
    assert macs[1].stats.ack_tx == 1
    # The whole exchange must have finished before the ACK timeout.
    assert (
        params.sifs_s + params.ack_tx_time() + 2 * PROP_DELAY_150M
        < params.ack_timeout()
    )


def test_second_packet_spaced_by_post_backoff():
    """Consecutive frames from one sender are separated by at least
    SIFS + ACK + DIFS (post-transmission backoff adds random slots)."""
    sim, macs, uppers, params = _pair()
    macs[0].enqueue(Packet("DATA", 0, 1, 512, 0.0), 1)
    macs[0].enqueue(Packet("DATA", 0, 1, 512, 0.0), 1)
    sim.run(until=0.5)
    assert len(uppers[1].rx_times) == 2
    gap = uppers[1].rx_times[1] - uppers[1].rx_times[0]
    airtime = params.tx_time(
        params.frame_size(FrameType.DATA, 512), FrameType.DATA
    )
    minimum_gap = params.sifs_s + params.ack_tx_time() + params.difs_s + airtime
    assert gap >= minimum_gap - 1e-9


def test_third_party_defers_for_nav():
    """A bystander hearing a unicast DATA frame holds its own frame until
    the Duration-field reservation (SIFS + ACK) has passed."""
    sim = Simulator()
    coords = np.array([(0.0, 0.0), (150.0, 0.0), (75.0, 100.0)])
    channel = Channel(sim, TwoRayGround(), lambda: coords)
    phy = PhyParams.for_ranges(TwoRayGround(), 250.0, 550.0)
    params = Mac80211Params()
    macs, uppers = [], []
    for node_id in range(3):
        radio = Radio(sim, node_id, phy, channel)
        mac = Mac80211(sim, radio, params, rng=np.random.default_rng(node_id))
        upper = Upper(sim)
        mac.attach_upper(upper.on_receive, upper.on_failure)
        macs.append(mac)
        uppers.append(upper)
    # Node 0 talks to node 1; node 2 wants to broadcast just after the
    # data frame starts.
    macs[0].enqueue(Packet("DATA", 0, 1, 1000, 0.0), 1)
    airtime = params.tx_time(
        params.frame_size(FrameType.DATA, 1000), FrameType.DATA
    )
    inject_at = params.difs_s + airtime * 0.5  # mid-flight
    sim.schedule(
        inject_at, macs[2].enqueue, Packet("DATA", 2, -1, 100, 0.0), -1
    )
    sim.run(until=0.5)
    # Node 2's broadcast reached node 0 strictly after the DATA + SIFS +
    # ACK exchange completed: its earliest possible start is bounded by
    # the NAV the data frame advertised.
    exchange_end = (
        params.difs_s + airtime + params.sifs_s + params.ack_tx_time()
    )
    broadcast_arrivals = [t for t in uppers[0].rx_times]
    assert broadcast_arrivals  # it did get through eventually
    assert broadcast_arrivals[0] > exchange_end
