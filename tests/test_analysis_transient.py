"""Transient-time estimation tests (paper Section IV-B)."""

import numpy as np
import pytest

from repro.analysis.transient import transient_time
from repro.ca.history import evolve
from repro.ca.nasch import NagelSchreckenberg


def test_step_function_transient():
    series = np.concatenate([np.zeros(30), np.ones(170)])
    assert transient_time(series) == 30


def test_already_stationary_is_zero():
    assert transient_time(np.ones(100)) == 0


def test_exponential_approach():
    t = np.arange(500)
    series = 5.0 * (1 - np.exp(-t / 50.0))
    tau = transient_time(series, tolerance=0.02)
    # 2% band around 5.0 is reached at t = 50*ln(50) ~ 196.
    assert 150 < tau < 250


def test_never_settles_returns_length():
    series = np.linspace(0.0, 10.0, 200)  # drifts forever
    assert transient_time(series, tolerance=0.001) == 200


def test_deterministic_nasch_free_flow_transient():
    """Paper IV-B: for p=0 at low density the transient is short — every
    vehicle reaches v_max quickly and v(t) pins there."""
    model = NagelSchreckenberg(400, 30)
    history = evolve(model, 400)
    tau = transient_time(history.mean_velocity_series(), tolerance=0.01)
    assert tau < 30


def test_deterministic_transient_peaks_near_critical_density():
    """Paper IV-B: "the transient state depends on the density of the
    vehicles."  For p=0 the slow settling happens near the critical
    density rho* = 1/(v_max+1), where jams take longest to sort out
    (critical slowing down); deep free flow settles almost immediately."""
    def tau_at(rho):
        rng = np.random.default_rng(0)
        model = NagelSchreckenberg.from_density(
            400, rho, random_start=True, rng=rng
        )
        return transient_time(
            evolve(model, 800).mean_velocity_series(), tolerance=0.02
        )

    assert tau_at(0.05) < tau_at(0.15)


def test_validates_arguments():
    with pytest.raises(ValueError):
        transient_time(np.ones(3))
    with pytest.raises(ValueError):
        transient_time(np.ones(100), tolerance=0.0)
    with pytest.raises(ValueError):
        transient_time(np.ones(100), tail_fraction=0.0)
