"""Unit-conversion tests: the paper's cell/velocity arithmetic."""

import math

import pytest

from repro.util.units import (
    CELL_LENGTH_M,
    cells_per_step_to_kmh,
    cells_per_step_to_mps,
    cells_to_meters,
    dbm_to_watts,
    kmh_to_cells_per_step,
    meters_to_cells,
    watts_to_dbm,
)


def test_paper_cell_length_constant():
    # Section III-A: v_max = 135 km/h and dt = 1 s give s = 7.5 m.
    assert CELL_LENGTH_M == 7.5


def test_vmax_135_kmh_is_5_cells_per_step():
    assert kmh_to_cells_per_step(135.0) == 5


def test_5_cells_per_step_is_135_kmh():
    assert cells_per_step_to_kmh(5) == pytest.approx(135.0)


def test_cells_to_meters_roundtrip():
    assert cells_to_meters(meters_to_cells(300.0)) == pytest.approx(300.0)


def test_meters_to_cells_rounds_to_nearest():
    assert meters_to_cells(7.4) == 1
    assert meters_to_cells(3.7) == 0
    assert meters_to_cells(11.3) == 2


def test_meters_to_cells_rejects_negative():
    with pytest.raises(ValueError):
        meters_to_cells(-1.0)


def test_cells_per_step_to_mps():
    assert cells_per_step_to_mps(2) == pytest.approx(15.0)


def test_dbm_watts_roundtrip():
    for dbm in (-90.0, 0.0, 24.5):
        assert watts_to_dbm(dbm_to_watts(dbm)) == pytest.approx(dbm)


def test_zero_dbm_is_one_milliwatt():
    assert dbm_to_watts(0.0) == pytest.approx(1e-3)


def test_watts_to_dbm_rejects_nonpositive():
    with pytest.raises(ValueError):
        watts_to_dbm(0.0)
    with pytest.raises(ValueError):
        watts_to_dbm(-1.0)


def test_custom_cell_length():
    assert cells_to_meters(4, cell_length=5.0) == pytest.approx(20.0)
    assert meters_to_cells(20.0, cell_length=5.0) == 4
