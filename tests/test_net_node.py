"""Node composition tests."""

import pytest

from repro.net.packet import Packet

from helpers import TestNetwork, chain_coords


def test_originate_without_routing_raises():
    network = TestNetwork(chain_coords(2))  # no protocol attached
    with pytest.raises(RuntimeError, match="no routing agent"):
        network.nodes[0].originate_data(1, 100)


def test_set_routing_twice_rejected():
    network = TestNetwork(chain_coords(2), protocol="AODV")
    from repro.routing.aodv import Aodv

    with pytest.raises(RuntimeError, match="already"):
        network.nodes[0].set_routing(Aodv(network.nodes[0]))


def test_sink_callback_invoked_on_delivery():
    network = TestNetwork(chain_coords(2), protocol="AODV")
    network.start_routing()
    seen = []
    network.nodes[1].add_sink(lambda packet, prev: seen.append(packet.uid))
    packet = network.nodes[0].originate_data(1, 100, flow_id=1, seq=1)
    network.run(until=2.0)
    assert seen == [packet.uid]


def test_deliver_local_counts_once_per_uid():
    network = TestNetwork(chain_coords(2))
    packet = Packet("DATA", 0, 99, 100, 0.0, flow_id=1)
    network.nodes[0].deliver_local(packet)
    network.nodes[0].deliver_local(packet)
    assert network.metrics.num_delivered == 1


def test_drop_recorded_with_reason():
    network = TestNetwork(chain_coords(2))
    packet = Packet("DATA", 0, 1, 100, 0.0)
    network.nodes[0].drop(packet, "test_reason")
    assert network.metrics.drops["test_reason"] == 1


def test_data_ttl_default_applied():
    network = TestNetwork(chain_coords(2), protocol="AODV")
    network.start_routing()
    packet = network.nodes[0].originate_data(1, 100)
    from repro.net.node import DATA_TTL

    assert packet.ttl == DATA_TTL


def test_send_via_counts_ifq_overflow():
    network = TestNetwork(chain_coords(2), protocol="AODV")
    network.start_routing()
    packet = Packet("DATA", 0, 1, 100, 0.0)
    for _ in range(60):  # IFQ capacity 50 + 1 in service
        network.nodes[0].send_via(packet, 1)
    assert network.metrics.drops.get("ifq_full", 0) >= 9


def test_repr_mentions_protocol():
    network = TestNetwork(chain_coords(2), protocol="DYMO")
    assert "Dymo" in repr(network.nodes[0])
