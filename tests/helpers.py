"""Test harness utilities: static-topology networks for protocol tests.

Routing and MAC behaviour is easiest to verify on hand-placed, motionless
topologies (a chain, a star, a partitioned pair).  ``build_network`` wires
the full stack — DES, channel, radios, MACs, nodes, routing — over fixed
positions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.des.engine import Simulator
from repro.mac.params import Mac80211Params
from repro.metrics.collector import MetricsCollector
from repro.net.node import Node
from repro.phy.channel import Channel
from repro.phy.params import PhyParams
from repro.phy.propagation import TwoRayGround
from repro.routing import make_protocol
from repro.util.rng import RngStreams


class StaticPositions:
    """A position provider over fixed coordinates."""

    def __init__(self, coords: Sequence[Tuple[float, float]]) -> None:
        self._coords = np.asarray(coords, dtype=float)

    def positions(self) -> np.ndarray:
        return self._coords

    def move(self, node: int, x: float, y: float) -> None:
        """Teleport a node (for link-break tests).

        Copy-on-move: the channel's link cache detects changed positions by
        array identity, so mutation must produce a fresh array object.
        """
        self._coords = self._coords.copy()
        self._coords[node] = (x, y)


class TestNetwork:
    """A fully wired static network plus its bookkeeping."""

    __test__ = False  # not a pytest collection target

    def __init__(
        self,
        coords: Sequence[Tuple[float, float]],
        protocol: Optional[str] = None,
        seed: int = 7,
        mac_params: Optional[Mac80211Params] = None,
        protocol_options: Optional[dict] = None,
    ) -> None:
        self.sim = Simulator()
        self.positions = StaticPositions(coords)
        self.streams = RngStreams(seed)
        propagation = TwoRayGround()
        self.phy_params = PhyParams.for_ranges(propagation, 250.0, 550.0)
        self.channel = Channel(self.sim, propagation, self.positions.positions)
        self.metrics = MetricsCollector(self.sim)
        self.mac_params = mac_params if mac_params is not None else Mac80211Params()
        self.nodes: List[Node] = []
        for node_id in range(len(coords)):
            node = Node(
                self.sim,
                node_id,
                self.channel,
                self.phy_params,
                self.mac_params,
                self.metrics,
                rng=self.streams.stream(f"mac-{node_id}"),
            )
            if protocol is not None:
                agent = make_protocol(
                    protocol,
                    node,
                    self.streams.stream(f"routing-{node_id}"),
                    **(protocol_options or {}),
                )
                node.set_routing(agent)
            self.nodes.append(node)

    def start_routing(self) -> None:
        for node in self.nodes:
            if node.routing is not None:
                node.routing.start()

    def run(self, until: float) -> None:
        self.sim.run(until=until)

    def delivered_uids(self) -> set:
        return {e.uid for e in self.metrics.delivered}


def chain_coords(n: int, spacing: float = 200.0) -> List[Tuple[float, float]]:
    """``n`` nodes in a line, ``spacing`` metres apart (multi-hop at 250 m)."""
    return [(i * spacing, 0.0) for i in range(n)]
