"""Random Waypoint baseline tests, including the velocity-decay effect."""

import numpy as np
import pytest

from repro.mobility.random_waypoint import RandomWaypoint


def test_positions_stay_in_area():
    model = RandomWaypoint(
        10, (500.0, 300.0), rng=np.random.default_rng(0)
    )
    trace = model.sample(200.0)
    assert np.all(trace.positions[..., 0] >= 0)
    assert np.all(trace.positions[..., 0] <= 500.0)
    assert np.all(trace.positions[..., 1] >= 0)
    assert np.all(trace.positions[..., 1] <= 300.0)


def test_speeds_bounded_by_vmax():
    model = RandomWaypoint(
        5, (1000.0, 1000.0), v_min=1.0, v_max=10.0,
        rng=np.random.default_rng(1),
    )
    trace = model.sample(100.0)
    speeds = trace.speeds()
    # Sampled speed can be below v_min (waypoint turn mid-interval) but
    # never above v_max.
    assert np.nanmax(speeds) <= 10.0 + 1e-9


def test_velocity_decay_with_small_vmin():
    """The classic RW pathology the paper cites: with v_min ~ 0, mean speed
    decays over time instead of stabilising."""
    model = RandomWaypoint(
        80,
        (1500.0, 1500.0),
        v_min=0.01,
        v_max=20.0,
        rng=np.random.default_rng(42),
    )
    trace = model.sample(4000.0, interval_s=10.0)
    speeds = trace.mean_speed_series()
    early = np.nanmean(speeds[:40])
    late = np.nanmean(speeds[-40:])
    assert late < early * 0.75  # clearly decayed


def test_stationary_fix_removes_decay():
    model = RandomWaypoint(
        80,
        (1500.0, 1500.0),
        v_min=0.01,
        v_max=20.0,
        stationary_fix=True,
        rng=np.random.default_rng(42),
    )
    trace = model.sample(4000.0, interval_s=10.0)
    speeds = trace.mean_speed_series()
    early = np.nanmean(speeds[:40])
    late = np.nanmean(speeds[-40:])
    assert late > early * 0.75  # no strong drift


def test_pause_keeps_nodes_still():
    model = RandomWaypoint(
        1,
        (10.0, 10.0),
        v_min=100.0,
        v_max=100.0,
        pause_s=1000.0,
        rng=np.random.default_rng(3),
    )
    # After at most ~0.14 s of travel the node pauses for 1000 s.
    trace = model.sample(50.0)
    later = trace.positions[10:]
    assert np.allclose(later, later[0])


def test_sample_continues_in_time():
    model = RandomWaypoint(3, (100.0, 100.0), rng=np.random.default_rng(5))
    first = model.sample(10.0)
    second = model.sample(10.0)
    assert second.times[0] == pytest.approx(first.times[-1])


def test_current_speeds_zero_while_paused():
    model = RandomWaypoint(
        2,
        (10.0, 10.0),
        v_min=50.0,
        v_max=50.0,
        pause_s=1e6,
        rng=np.random.default_rng(7),
    )
    model.sample(100.0)
    assert np.all(model.current_speeds() == 0.0)


class TestValidation:
    def test_zero_vmin_rejected(self):
        with pytest.raises(ValueError):
            RandomWaypoint(2, (10.0, 10.0), v_min=0.0)

    def test_vmax_below_vmin_rejected(self):
        with pytest.raises(ValueError):
            RandomWaypoint(2, (10.0, 10.0), v_min=5.0, v_max=1.0)

    def test_bad_area_rejected(self):
        with pytest.raises(ValueError):
            RandomWaypoint(2, (0.0, 10.0))

    def test_bad_node_count_rejected(self):
        with pytest.raises(ValueError):
            RandomWaypoint(0, (10.0, 10.0))

    def test_negative_pause_rejected(self):
        with pytest.raises(ValueError):
            RandomWaypoint(2, (10.0, 10.0), pause_s=-1.0)
