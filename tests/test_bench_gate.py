"""The CI perf gate's exit-code contract (scripts/bench_gate.py).

CI tells three outcomes apart by exit code alone, so each is pinned
here: 0 for a healthy artifact, 1 for a real perf regression (ratio
floor or an absolute ``--floor``), and 2 — the CLI's ConfigError
convention — for every way the gate itself can be mis-wired: a missing
or unreadable baseline, JSON that isn't an object, a metric path the
schema no longer contains, a non-numeric metric, a malformed
``--floor`` spec.  The exit-2 paths also must say *which* file or flag
is wrong on stderr, because that line is all a broken CI job shows.
"""

import importlib.util
import json
import os

import pytest

_GATE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "scripts",
    "bench_gate.py",
)
_spec = importlib.util.spec_from_file_location("bench_gate", _GATE_PATH)
bench_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_gate)


def _artifact(tmp_path, name, document):
    path = tmp_path / name
    path.write_text(json.dumps(document))
    return str(path)


def _run(tmp_path, baseline, current, extra=()):
    argv = [
        "--baseline", _artifact(tmp_path, "baseline.json", baseline),
        "--current", _artifact(tmp_path, "current.json", current),
        "--metric", "fast.frames_per_s",
    ]
    return bench_gate.main(argv + list(extra))


# -- exit 0: healthy ----------------------------------------------------------


def test_gate_passes_when_current_matches_baseline(tmp_path, capsys):
    doc = {"fast": {"frames_per_s": 1000.0}}
    assert _run(tmp_path, doc, doc) == 0
    assert "perf gate OK" in capsys.readouterr().out


def test_gate_warns_but_passes_in_the_drift_band(tmp_path, capsys):
    baseline = {"fast": {"frames_per_s": 1000.0}}
    current = {"fast": {"frames_per_s": 850.0}}  # 85%: warn, don't fail
    assert _run(tmp_path, baseline, current) == 0
    assert "::warning::perf drift" in capsys.readouterr().out


def test_gate_passes_with_floor_met(tmp_path, capsys):
    doc = {
        "fast": {"frames_per_s": 1000.0},
        "end_to_end": {"n3000": {"speedup": 6.5}},
    }
    assert _run(
        tmp_path, doc, doc, ["--floor", "end_to_end.n3000.speedup=5.0"]
    ) == 0
    assert "perf floor OK" in capsys.readouterr().out


# -- exit 1: real regressions -------------------------------------------------


def test_gate_fails_below_the_ratio_floor(tmp_path, capsys):
    baseline = {"fast": {"frames_per_s": 1000.0}}
    current = {"fast": {"frames_per_s": 700.0}}  # 70% < the 80% floor
    assert _run(tmp_path, baseline, current) == 1
    assert "::error::perf regression" in capsys.readouterr().out


def test_gate_fails_when_absolute_floor_is_broken(tmp_path, capsys):
    doc = {
        "fast": {"frames_per_s": 1000.0},
        "end_to_end": {"n3000": {"speedup": 3.2}},
    }
    assert _run(
        tmp_path, doc, doc, ["--floor", "end_to_end.n3000.speedup=5.0"]
    ) == 1
    assert "::error::perf floor broken" in capsys.readouterr().out


# -- exit 2: gate misconfiguration --------------------------------------------


def _expect_config_error(capsys, fragment):
    captured = capsys.readouterr()
    assert "error (ConfigError):" in captured.err
    assert fragment in captured.err
    assert "::error::" in captured.out  # the CI annotation twin


def test_missing_baseline_exits_2(tmp_path, capsys):
    current = _artifact(
        tmp_path, "current.json", {"fast": {"frames_per_s": 1.0}}
    )
    missing = str(tmp_path / "nope.json")
    assert bench_gate.main(
        ["--baseline", missing, "--current", current]
    ) == bench_gate.EXIT_CONFIG
    _expect_config_error(capsys, "cannot read baseline")


def test_invalid_json_exits_2(tmp_path, capsys):
    bad = tmp_path / "baseline.json"
    bad.write_text("{not json")
    current = _artifact(
        tmp_path, "current.json", {"fast": {"frames_per_s": 1.0}}
    )
    assert bench_gate.main(
        ["--baseline", str(bad), "--current", current]
    ) == bench_gate.EXIT_CONFIG
    _expect_config_error(capsys, "not valid JSON")


def test_non_object_json_exits_2(tmp_path, capsys):
    doc = {"fast": {"frames_per_s": 1.0}}
    assert _run(tmp_path, [1, 2, 3], doc) == bench_gate.EXIT_CONFIG
    _expect_config_error(capsys, "expected a JSON object")


def test_missing_metric_path_exits_2(tmp_path, capsys):
    baseline = {"fast": {"frames_per_s": 1000.0}}
    current = {"renamed": {"frames_per_s": 1000.0}}  # schema drifted
    assert _run(tmp_path, baseline, current) == bench_gate.EXIT_CONFIG
    _expect_config_error(capsys, "out of sync")


def test_non_numeric_metric_exits_2(tmp_path, capsys):
    doc = {"fast": {"frames_per_s": "quick"}}
    assert _run(tmp_path, doc, doc) == bench_gate.EXIT_CONFIG
    _expect_config_error(capsys, "expected a number")


def test_boolean_metric_is_not_a_number(tmp_path, capsys):
    # bool is an int subclass; the gate must still reject it.
    doc = {"fast": {"frames_per_s": True}}
    assert _run(tmp_path, doc, doc) == bench_gate.EXIT_CONFIG
    _expect_config_error(capsys, "expected a number")


def test_nonpositive_baseline_exits_2(tmp_path, capsys):
    baseline = {"fast": {"frames_per_s": 0.0}}
    current = {"fast": {"frames_per_s": 1000.0}}
    assert _run(tmp_path, baseline, current) == bench_gate.EXIT_CONFIG
    _expect_config_error(capsys, "positive baseline")


@pytest.mark.parametrize("spec", ["no-equals", "=5.0", "metric=fast"])
def test_malformed_floor_spec_exits_2(tmp_path, capsys, spec):
    doc = {"fast": {"frames_per_s": 1000.0}}
    assert _run(tmp_path, doc, doc, ["--floor", spec]) == \
        bench_gate.EXIT_CONFIG
    _expect_config_error(capsys, "--floor")


def test_floor_metric_missing_from_current_exits_2(tmp_path, capsys):
    doc = {"fast": {"frames_per_s": 1000.0}}
    assert _run(
        tmp_path, doc, doc, ["--floor", "end_to_end.n3000.speedup=5.0"]
    ) == bench_gate.EXIT_CONFIG
    _expect_config_error(capsys, "out of sync")
