"""Monte-Carlo ensemble runner tests."""

import numpy as np
import pytest

from repro.analysis.montecarlo import monte_carlo
from repro.util.rng import RngStreams


def test_scalar_experiment_aggregates():
    result = monte_carlo(lambda rng: rng.normal(), trials=100, rng=RngStreams(0))
    assert result.num_trials == 100
    assert result.samples.shape == (100,)
    assert abs(result.mean) < 0.3
    assert result.std == pytest.approx(1.0, abs=0.3)


def test_array_experiment_aggregates_elementwise():
    result = monte_carlo(
        lambda rng: rng.normal(size=5), trials=50, rng=RngStreams(1)
    )
    assert result.samples.shape == (50, 5)
    assert result.mean.shape == (5,)
    assert result.std.shape == (5,)


def test_reproducible():
    a = monte_carlo(lambda rng: rng.random(), trials=10, rng=RngStreams(2))
    b = monte_carlo(lambda rng: rng.random(), trials=10, rng=RngStreams(2))
    assert np.array_equal(a.samples, b.samples)


def test_trials_use_independent_streams():
    result = monte_carlo(lambda rng: rng.random(), trials=10, rng=RngStreams(3))
    assert len(np.unique(result.samples)) == 10


def test_single_trial_zero_std():
    result = monte_carlo(lambda rng: rng.random(), trials=1, rng=RngStreams(4))
    assert result.std == 0.0


def test_deterministic_experiment():
    result = monte_carlo(lambda rng: 7.0, trials=5)
    assert np.all(result.samples == 7.0)
    assert result.std == 0.0


def test_rejects_zero_trials():
    with pytest.raises(ValueError):
        monte_carlo(lambda rng: 1.0, trials=0)


# -- ddof=1 regression --------------------------------------------------------


def test_single_trial_std_is_zero_not_nan():
    """ddof=1 over one sample is 0/0; the result must be zeros, not NaN."""
    result = monte_carlo(lambda rng: rng.random(), trials=1, rng=RngStreams(9))
    assert result.std == 0.0
    assert not np.isnan(result.std)


def test_single_trial_array_std_is_zeros_not_nan():
    result = monte_carlo(
        lambda rng: rng.random(size=4), trials=1, rng=RngStreams(9)
    )
    assert result.std.shape == (4,)
    assert np.array_equal(result.std, np.zeros(4))
    assert not np.any(np.isnan(result.std))


def test_two_trials_std_uses_ddof_1():
    result = monte_carlo(
        lambda rng: rng.random(), trials=2, rng=RngStreams(10)
    )
    expected = np.std(result.samples, ddof=1)
    assert result.std == pytest.approx(expected)


# -- parallel execution -------------------------------------------------------


def _normal_triplet(rng):
    return rng.normal(size=3)


def test_parallel_samples_identical_to_serial():
    serial = monte_carlo(
        _normal_triplet, trials=12, rng=RngStreams(5), max_workers=1
    )
    parallel = monte_carlo(
        _normal_triplet, trials=12, rng=RngStreams(5), max_workers=4
    )
    assert np.array_equal(serial.samples, parallel.samples)
    assert np.array_equal(serial.mean, parallel.mean)
    assert np.array_equal(serial.std, parallel.std)


def test_parallel_single_trial_std_zero():
    result = monte_carlo(
        _normal_triplet, trials=1, rng=RngStreams(5), max_workers=2
    )
    assert np.array_equal(result.std, np.zeros(3))


def test_failed_trials_are_dropped():
    calls = {"n": 0}

    def flaky(rng):
        calls["n"] += 1
        if calls["n"] == 2:
            raise RuntimeError("trial 2 fails on both attempts")
        return rng.random()

    result = monte_carlo(flaky, trials=4, rng=RngStreams(3), max_attempts=1)
    assert result.num_failed == 1
    assert result.num_trials == 3


def test_all_failed_raises():
    def always_fails(rng):
        raise RuntimeError("nope")

    with pytest.raises(RuntimeError, match="all 3 Monte-Carlo trials"):
        monte_carlo(always_fails, trials=3, max_attempts=1)
