"""Monte-Carlo ensemble runner tests."""

import numpy as np
import pytest

from repro.analysis.montecarlo import monte_carlo
from repro.util.rng import RngStreams


def test_scalar_experiment_aggregates():
    result = monte_carlo(lambda rng: rng.normal(), trials=100, rng=RngStreams(0))
    assert result.num_trials == 100
    assert result.samples.shape == (100,)
    assert abs(result.mean) < 0.3
    assert result.std == pytest.approx(1.0, abs=0.3)


def test_array_experiment_aggregates_elementwise():
    result = monte_carlo(
        lambda rng: rng.normal(size=5), trials=50, rng=RngStreams(1)
    )
    assert result.samples.shape == (50, 5)
    assert result.mean.shape == (5,)
    assert result.std.shape == (5,)


def test_reproducible():
    a = monte_carlo(lambda rng: rng.random(), trials=10, rng=RngStreams(2))
    b = monte_carlo(lambda rng: rng.random(), trials=10, rng=RngStreams(2))
    assert np.array_equal(a.samples, b.samples)


def test_trials_use_independent_streams():
    result = monte_carlo(lambda rng: rng.random(), trials=10, rng=RngStreams(3))
    assert len(np.unique(result.samples)) == 10


def test_single_trial_zero_std():
    result = monte_carlo(lambda rng: rng.random(), trials=1, rng=RngStreams(4))
    assert result.std == 0.0


def test_deterministic_experiment():
    result = monte_carlo(lambda rng: 7.0, trials=5)
    assert np.all(result.samples == 7.0)
    assert result.std == 0.0


def test_rejects_zero_trials():
    with pytest.raises(ValueError):
        monte_carlo(lambda rng: 1.0, trials=0)
