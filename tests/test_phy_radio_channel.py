"""Radio + channel tests: delivery, carrier sense, collisions, capture."""

import numpy as np
import pytest

from repro.des.engine import Simulator
from repro.mac.frames import Frame, FrameType
from repro.net.address import BROADCAST
from repro.net.packet import Packet
from repro.phy.channel import CachedPositionProvider, Channel
from repro.phy.params import PhyParams
from repro.phy.propagation import TwoRayGround
from repro.phy.radio import Radio, RadioState
from repro.mobility.trace import MobilityTrace, TracePlayer


class RecordingMac:
    """Captures every radio callback for assertions."""

    def __init__(self) -> None:
        self.received = []
        self.busy_events = 0
        self.idle_events = 0
        self.tx_done = 0

    def on_medium_busy(self) -> None:
        self.busy_events += 1

    def on_medium_idle(self) -> None:
        self.idle_events += 1

    def on_frame_received(self, frame, rx_power_w) -> None:
        self.received.append((frame, rx_power_w))

    def on_tx_done(self) -> None:
        self.tx_done += 1


def _network(coords):
    sim = Simulator()
    positions = np.asarray(coords, dtype=float)
    channel = Channel(sim, TwoRayGround(), lambda: positions)
    params = PhyParams.for_ranges(TwoRayGround(), 250.0, 550.0)
    radios, macs = [], []
    for node_id in range(len(coords)):
        radio = Radio(sim, node_id, params, channel)
        mac = RecordingMac()
        radio.attach_mac(mac)
        radios.append(radio)
        macs.append(mac)
    return sim, channel, radios, macs


def _frame(tx, rx=BROADCAST):
    packet = Packet("DATA", tx, rx, 100, 0.0)
    return Frame(FrameType.DATA, tx, rx, 128, packet=packet, seq=1)


def test_frame_delivered_within_tx_range():
    sim, _, radios, macs = _network([(0, 0), (200, 0)])
    radios[0].transmit(_frame(0), 0.001)
    sim.run()
    assert len(macs[1].received) == 1
    assert macs[0].received == []  # sender does not hear itself


def test_frame_not_decoded_between_tx_and_cs_range():
    """At 400 m (inside 550 m CS, outside 250 m TX): detected, not decoded."""
    sim, _, radios, macs = _network([(0, 0), (400, 0)])
    radios[0].transmit(_frame(0), 0.001)
    sim.run()
    assert macs[1].received == []
    assert macs[1].busy_events == 1  # it did defer
    assert macs[1].idle_events == 1


def test_frame_invisible_beyond_cs_range():
    sim, _, radios, macs = _network([(0, 0), (600, 0)])
    radios[0].transmit(_frame(0), 0.001)
    sim.run()
    assert macs[1].received == []
    assert macs[1].busy_events == 0


def test_radio_state_transitions():
    sim, _, radios, macs = _network([(0, 0), (200, 0)])
    assert radios[0].state is RadioState.IDLE
    radios[0].transmit(_frame(0), 0.001)
    assert radios[0].state is RadioState.TX
    sim.run()
    assert radios[0].state is RadioState.IDLE
    assert macs[0].tx_done == 1


def test_cannot_transmit_twice_concurrently():
    sim, _, radios, _ = _network([(0, 0), (200, 0)])
    radios[0].transmit(_frame(0), 0.001)
    with pytest.raises(RuntimeError):
        radios[0].transmit(_frame(0), 0.001)


def test_equal_power_collision_destroys_both():
    """Two equidistant simultaneous senders collide at the middle node."""
    sim, _, radios, macs = _network([(0, 0), (200, 0), (400, 0)])
    radios[0].transmit(_frame(0), 0.001)
    radios[2].transmit(_frame(2), 0.001)
    sim.run()
    assert macs[1].received == []


def test_capture_strong_frame_survives_weak_interferer():
    """A 10 dB-stronger frame captures the receiver (ns-2 CPThresh)."""
    # Node 1 at 100 m from sender 0 and 510 m from sender 2: two-ray gives
    # >> 10x power difference.
    sim, _, radios, macs = _network([(0, 0), (100, 0), (610, 0)])
    radios[0].transmit(_frame(0), 0.001)
    radios[2].transmit(_frame(2), 0.001)
    sim.run()
    received_from = [frame.tx_addr for frame, _ in macs[1].received]
    assert received_from == [0]


def test_half_duplex_tx_corrupts_reception():
    sim, _, radios, macs = _network([(0, 0), (200, 0)])
    radios[0].transmit(_frame(0), 0.001)
    # Node 1 starts its own transmission mid-reception.
    sim.schedule(0.0005, radios[1].transmit, _frame(1), 0.001)
    sim.run()
    assert macs[1].received == []
    # ... but node 0 hears node 1's (later-finishing) frame? No: node 0's
    # own TX overlapped the start of node 1's frame.
    assert macs[0].received == []


def test_late_arriving_frame_during_own_tx_lost():
    sim, _, radios, macs = _network([(0, 0), (200, 0)])
    radios[1].transmit(_frame(1), 0.002)  # long transmission
    sim.schedule(0.0005, radios[0].transmit, _frame(0), 0.0005)
    sim.run()
    assert macs[1].received == []  # arrived while node 1 was talking


def test_busy_idle_callbacks_pair_up():
    sim, _, radios, macs = _network([(0, 0), (200, 0)])
    radios[0].transmit(_frame(0), 0.001)
    sim.run()
    assert macs[1].busy_events == macs[1].idle_events == 1


def test_propagation_delay_orders_reception():
    sim, channel, radios, macs = _network([(0, 0), (200, 0)])
    start = sim.now
    received_at = []
    original = macs[1].on_frame_received
    macs[1].on_frame_received = lambda f, p: received_at.append(sim.now)
    radios[0].transmit(_frame(0), 0.001)
    sim.run()
    # Frame ends at 0.001 + 200m/c.
    assert received_at[0] == pytest.approx(0.001 + 200 / 299792458.0)


def test_channel_counts_transmissions():
    sim, channel, radios, _ = _network([(0, 0), (200, 0)])
    radios[0].transmit(_frame(0), 0.001)
    sim.run()
    radios[1].transmit(_frame(1), 0.001)
    sim.run()
    assert channel.frames_transmitted == 2


def test_duplicate_radio_registration_rejected():
    sim = Simulator()
    positions = np.zeros((1, 2))
    channel = Channel(sim, TwoRayGround(), lambda: positions)
    params = PhyParams.for_ranges(TwoRayGround(), 250.0, 550.0)
    Radio(sim, 0, params, channel)
    with pytest.raises(ValueError):
        Radio(sim, 0, params, channel)


class TestCachedPositionProvider:
    def _player(self):
        times = np.array([0.0, 10.0])
        positions = np.array([[[0.0, 0.0]], [[100.0, 0.0]]])
        return TracePlayer(MobilityTrace(times, positions))

    def test_caches_within_slot(self):
        sim = Simulator()
        provider = CachedPositionProvider(self._player(), sim, cache_dt=1.0)
        first = provider.positions()
        sim.schedule(0.5, lambda: None)
        sim.run()
        assert provider.positions() is first  # same cached array

    def test_refreshes_after_slot(self):
        sim = Simulator()
        provider = CachedPositionProvider(self._player(), sim, cache_dt=1.0)
        at_zero = provider.positions()[0, 0]
        sim.schedule(5.0, lambda: None)
        sim.run()
        at_five = provider.positions()[0, 0]
        assert at_five > at_zero

    def test_zero_cache_dt_always_exact(self):
        sim = Simulator()
        provider = CachedPositionProvider(self._player(), sim, cache_dt=0.0)
        sim.schedule(2.5, lambda: None)
        sim.run()
        assert provider.positions()[0, 0] == pytest.approx(25.0)

    def test_negative_cache_dt_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CachedPositionProvider(self._player(), sim, cache_dt=-1.0)
