"""PHY parameter-set tests."""

import pytest

from repro.phy.params import PhyParams, default_phy
from repro.phy.propagation import FreeSpace, TwoRayGround


def test_default_phy_matches_ns2_thresholds():
    params = default_phy()
    assert params.rx_threshold_w == pytest.approx(3.652e-10, rel=1e-3)
    assert params.cs_threshold_w == pytest.approx(1.559e-11, rel=1e-3)


def test_for_ranges_roundtrip():
    model = TwoRayGround()
    params = PhyParams.for_ranges(model, 250.0, 550.0)
    assert model.range_for_threshold(
        params.tx_power_w, params.rx_threshold_w
    ) == pytest.approx(250.0, rel=1e-3)
    assert model.range_for_threshold(
        params.tx_power_w, params.cs_threshold_w
    ) == pytest.approx(550.0, rel=1e-3)


def test_for_ranges_other_models():
    params = PhyParams.for_ranges(FreeSpace(), 250.0, 550.0)
    assert params.cs_threshold_w < params.rx_threshold_w


def test_cs_more_sensitive_than_rx_enforced():
    with pytest.raises(ValueError):
        PhyParams(rx_threshold_w=1e-11, cs_threshold_w=1e-10)


def test_cs_range_shorter_than_tx_rejected():
    with pytest.raises(ValueError):
        PhyParams.for_ranges(TwoRayGround(), 550.0, 250.0)


def test_capture_ratio_below_one_rejected():
    with pytest.raises(ValueError):
        PhyParams(capture_ratio=0.5)


def test_tx_power_positive():
    with pytest.raises(ValueError):
        PhyParams(tx_power_w=0.0)
