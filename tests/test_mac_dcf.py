"""802.11 DCF behaviour tests over the real radio/channel substrate."""

import numpy as np
import pytest

from repro.des.engine import Simulator
from repro.mac.dcf import Mac80211
from repro.mac.frames import Frame, FrameType
from repro.mac.params import Mac80211Params
from repro.net.address import BROADCAST
from repro.net.packet import Packet
from repro.phy.channel import Channel
from repro.phy.params import PhyParams
from repro.phy.propagation import TwoRayGround
from repro.phy.radio import Radio


class Upper:
    """Records network-layer callbacks of one MAC."""

    def __init__(self) -> None:
        self.received = []
        self.failures = []

    def on_receive(self, packet, prev_hop):
        self.received.append((packet, prev_hop))

    def on_failure(self, packet, next_hop):
        self.failures.append((packet, next_hop))


def _network(coords, mac_params=None, seed=3):
    sim = Simulator()
    positions = np.asarray(coords, dtype=float)
    channel = Channel(sim, TwoRayGround(), lambda: positions)
    phy = PhyParams.for_ranges(TwoRayGround(), 250.0, 550.0)
    params = mac_params if mac_params is not None else Mac80211Params()
    macs, uppers = [], []
    rng_root = np.random.default_rng(seed)
    for node_id in range(len(coords)):
        radio = Radio(sim, node_id, phy, channel)
        mac = Mac80211(
            sim,
            radio,
            params,
            rng=np.random.default_rng(rng_root.integers(2**31)),
        )
        upper = Upper()
        mac.attach_upper(upper.on_receive, upper.on_failure)
        macs.append(mac)
        uppers.append(upper)
    return sim, macs, uppers


def _packet(src, dst, size=512):
    return Packet("DATA", src, dst, size, 0.0)


def test_unicast_delivered_and_acked():
    sim, macs, uppers = _network([(0, 0), (150, 0)])
    packet = _packet(0, 1)
    macs[0].enqueue(packet, 1)
    sim.run(until=0.1)
    assert [p.uid for p, _ in uppers[1].received] == [packet.uid]
    assert macs[1].stats.ack_tx == 1
    assert macs[0].stats.data_tx == 1
    assert macs[0].stats.retransmissions == 0
    assert uppers[0].failures == []


def test_broadcast_reaches_all_in_range_without_ack():
    sim, macs, uppers = _network([(0, 0), (150, 0), (0, 150), (600, 600)])
    macs[0].enqueue(_packet(0, BROADCAST), BROADCAST)
    sim.run(until=0.1)
    assert len(uppers[1].received) == 1
    assert len(uppers[2].received) == 1
    assert uppers[3].received == []  # out of range
    assert macs[1].stats.ack_tx == 0
    assert macs[0].stats.data_tx == 1  # no retries for broadcast


def test_unreachable_unicast_retries_then_fails():
    sim, macs, uppers = _network([(0, 0), (800, 0)])
    packet = _packet(0, 1)
    macs[0].enqueue(packet, 1)
    sim.run(until=1.0)
    params = Mac80211Params()
    assert macs[0].stats.retransmissions == params.short_retry_limit - 1
    assert macs[0].stats.retry_drops == 1
    assert uppers[0].failures == [(packet, 1)]
    assert uppers[1].received == []


def test_queue_served_in_order():
    sim, macs, uppers = _network([(0, 0), (150, 0)])
    packets = [_packet(0, 1) for _ in range(5)]
    for packet in packets:
        macs[0].enqueue(packet, 1)
    sim.run(until=1.0)
    received_uids = [p.uid for p, _ in uppers[1].received]
    assert received_uids == [p.uid for p in packets]


def test_ifq_overflow_rejected():
    sim, macs, _ = _network([(0, 0), (150, 0)])
    accepted = [macs[0].enqueue(_packet(0, 1), 1) for _ in range(60)]
    # Capacity 50 + 1 being served.
    assert sum(accepted) == 51
    assert macs[0].queue.drops == 9


def test_two_contenders_both_deliver():
    """CSMA/CA resolves contention between two senders to one receiver."""
    sim, macs, uppers = _network([(0, 0), (150, 0), (300, 0)])
    for _ in range(10):
        macs[0].enqueue(_packet(0, 1), 1)
        macs[2].enqueue(_packet(2, 1), 1)
    sim.run(until=2.0)
    from_0 = sum(1 for _, h in uppers[1].received if h == 0)
    from_2 = sum(1 for _, h in uppers[1].received if h == 2)
    assert from_0 == 10
    assert from_2 == 10


def test_hidden_terminals_still_mostly_deliver():
    """Senders 0 and 2 are 460 m apart — within each other's carrier-sense
    range here, but collisions at the shared receiver still occur through
    timing races; retransmissions recover them."""
    sim, macs, uppers = _network([(0, 0), (230, 0), (460, 0)])
    for _ in range(5):
        macs[0].enqueue(_packet(0, 1), 1)
        macs[2].enqueue(_packet(2, 1), 1)
    sim.run(until=5.0)
    total = len(uppers[1].received)
    assert total >= 8  # retries recover nearly everything


def test_rts_cts_exchange_used_when_enabled():
    params = Mac80211Params(rts_threshold_bytes=0)
    sim, macs, uppers = _network([(0, 0), (150, 0)], mac_params=params)
    packet = _packet(0, 1)
    macs[0].enqueue(packet, 1)
    sim.run(until=0.5)
    assert macs[0].stats.rts_tx >= 1
    assert macs[1].stats.cts_tx >= 1
    assert [p.uid for p, _ in uppers[1].received] == [packet.uid]


def test_rts_cts_failure_uses_long_retry_limit():
    params = Mac80211Params(rts_threshold_bytes=0)
    sim, macs, uppers = _network([(0, 0), (800, 0)], mac_params=params)
    macs[0].enqueue(_packet(0, 1), 1)
    sim.run(until=1.0)
    assert macs[0].stats.rts_tx == params.long_retry_limit
    assert uppers[0].failures != []


def test_duplicate_data_suppressed_but_acked():
    sim, macs, uppers = _network([(0, 0), (150, 0)])
    packet = _packet(0, 1)
    frame = Frame(
        FrameType.DATA, 0, 1, 540, duration_s=0.0, packet=packet, seq=42
    )
    macs[1].on_frame_received(frame, 1e-9)
    macs[1].on_frame_received(frame, 1e-9)  # retransmission
    assert len(uppers[1].received) == 1
    assert macs[1].stats.duplicates_suppressed == 1


def test_flush_next_hop_drops_queued():
    sim, macs, _ = _network([(0, 0), (150, 0), (150, 150)])
    for _ in range(5):
        macs[0].enqueue(_packet(0, 1), 1)
        macs[0].enqueue(_packet(0, 2), 2)
    flushed = macs[0].flush_next_hop(2)
    assert flushed >= 4  # the head packet may already be in service
    sim.run(until=1.0)


def test_saturation_throughput_below_channel_rate():
    """Offered load beyond 2 Mbps: goodput saturates below the PHY rate
    (DCF overhead), and nothing is delivered out of thin air."""
    sim, macs, uppers = _network([(0, 0), (150, 0)])
    for _ in range(51):
        macs[0].enqueue(_packet(0, 1, size=1500), 1)
    sim.run(until=0.25)
    delivered_bits = sum(p.size_bytes * 8 for p, _ in uppers[1].received)
    throughput = delivered_bits / 0.25
    assert 0.5e6 < throughput < 2e6
