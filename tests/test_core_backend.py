"""Execution backends: registry wiring, supervision, and bit-identity.

The contract under test is the tentpole one: every backend returns the
exact values of an undisturbed serial run — supervision (leases,
heartbeats, retries, circuit breaking) changes *failure handling*, never
results.  Chaos sabotage (SIGKILL, hang, corrupt, heartbeat mute, lease
contention) is the adversary; serial execution is the ground truth.
"""

import time

import pytest

from repro.core import registry
from repro.core.backend import (
    LocalProcessBackend,
    LocalSerialBackend,
    SupervisedBackend,
    retry_backoff_schedule,
)
from repro.core.chaos import ChaosMonkey
from repro.core.journal import campaign_fingerprint, open_journal
from repro.core.runner import TrialRunner, TrialSpec
from repro.metrics.collector import CampaignTelemetry
from repro.util.errors import ConfigError


def _square(x):
    return x * x


def _slow_square(x, delay_s):
    time.sleep(delay_s)
    return x * x


def _specs(n=6):
    return [TrialSpec(key=i, fn=_square, args=(i,)) for i in range(n)]


def _values(outcomes):
    return [o.value for o in outcomes]


TRUTH = [i * i for i in range(6)]


# -- registry wiring ----------------------------------------------------------


def test_backend_namespace_registered():
    names = set(registry.known("backend"))
    assert {"auto", "local-serial", "local-process", "local-supervised"} <= (
        names
    )


def test_auto_picks_serial_for_one_worker_and_pool_otherwise():
    factory = registry.resolve("backend", "auto")
    assert isinstance(factory(TrialRunner(max_workers=1)), LocalSerialBackend)
    assert isinstance(factory(TrialRunner(max_workers=3)), LocalProcessBackend)


def test_named_backends_resolve_to_their_classes():
    for name, cls in (
        ("local-serial", LocalSerialBackend),
        ("local-process", LocalProcessBackend),
        ("local-supervised", SupervisedBackend),
    ):
        backend = registry.resolve("backend", name)(TrialRunner())
        assert isinstance(backend, cls)
        assert backend.name == name


def test_unknown_backend_rejected_at_construction():
    with pytest.raises(ConfigError, match="unknown execution backend"):
        TrialRunner(backend="teleport")


def test_supervision_parameters_validated():
    with pytest.raises(ConfigError, match="lease_ttl_s"):
        TrialRunner(lease_ttl_s=0)
    with pytest.raises(ConfigError, match="heartbeat_interval_s"):
        TrialRunner(heartbeat_interval_s=-1)
    with pytest.raises(ConfigError, match="max_lease_extensions"):
        TrialRunner(max_lease_extensions=-1)
    with pytest.raises(ConfigError, match="breaker_threshold"):
        TrialRunner(breaker_threshold=0)
    with pytest.raises(ConfigError, match="campaign_retry_budget"):
        TrialRunner(campaign_retry_budget=-1)


# -- bit-identity across backends ---------------------------------------------


@pytest.mark.parametrize(
    "backend", ["local-serial", "local-process", "local-supervised"]
)
def test_every_backend_matches_serial_truth(backend):
    outcomes = TrialRunner(
        max_workers=2, backend=backend, trial_timeout_s=30.0
    ).run(_specs())
    assert _values(outcomes) == TRUTH


def test_supervised_grants_one_lease_per_trial():
    telemetry = CampaignTelemetry()
    TrialRunner(
        max_workers=2, backend="local-supervised", telemetry=telemetry
    ).run(_specs())
    assert telemetry.leases_granted == 6
    assert telemetry.leases_reclaimed == 0


# -- chaos: every sabotage mode recovers bit-identically ----------------------


def test_supervised_survives_sigkill_corrupt_and_hang():
    telemetry = CampaignTelemetry()
    chaos = ChaosMonkey(kill_on={0}, corrupt_on={1}, hang_on={2})
    outcomes = TrialRunner(
        max_workers=2,
        backend="local-supervised",
        trial_timeout_s=1.0,
        lease_ttl_s=5.0,
        max_attempts=3,
        telemetry=telemetry,
        chaos=chaos,
    ).run(_specs())
    assert _values(outcomes) == TRUTH
    assert telemetry.leases_reclaimed >= 3  # one per sabotaged trial
    assert telemetry.retries == 3


def test_supervised_kills_muted_worker_as_hung():
    """Heartbeat suppression: the monitor must SIGKILL, not wait out TTL."""
    telemetry = CampaignTelemetry()
    chaos = ChaosMonkey(mute_on={1})
    started = time.monotonic()
    outcomes = TrialRunner(
        max_workers=2,
        backend="local-supervised",
        lease_ttl_s=60.0,  # the lease alone would stall for a minute
        heartbeat_interval_s=0.05,
        max_attempts=2,
        telemetry=telemetry,
        chaos=chaos,
    ).run(_specs())
    elapsed = time.monotonic() - started
    assert _values(outcomes) == TRUTH
    assert telemetry.heartbeats_missed >= 1
    assert telemetry.leases_reclaimed >= 1
    assert elapsed < 30.0  # caught by missed heartbeats, not the lease TTL


def test_supervised_extends_lease_for_slow_but_alive_worker():
    """Healthy heartbeats past the lease deadline mean *slow*, not hung."""
    telemetry = CampaignTelemetry()
    specs = [TrialSpec(key=0, fn=_slow_square, args=(3, 0.6))]
    outcomes = TrialRunner(
        max_workers=2,
        backend="local-supervised",
        lease_ttl_s=0.15,
        heartbeat_interval_s=0.03,
        max_lease_extensions=10,
        telemetry=telemetry,
    ).run(specs)
    assert _values(outcomes) == [9]
    assert outcomes[0].attempts == 1  # never killed, only extended
    assert telemetry.leases_extended >= 1


def test_supervised_waits_out_and_reclaims_contended_lease():
    telemetry = CampaignTelemetry()
    chaos = ChaosMonkey(contend_on={2})
    outcomes = TrialRunner(
        max_workers=2,
        backend="local-supervised",
        lease_ttl_s=5.0,
        telemetry=telemetry,
        chaos=chaos,
    ).run(_specs())
    assert _values(outcomes) == TRUTH
    kinds = [e.kind for e in telemetry.events]
    assert "lease-contended" in kinds
    assert "lease-reclaimed" in kinds
    # Exactly one result for the contended trial: no double-count.
    assert sum(1 for o in outcomes if o.key == 2) == 1


# -- deterministic retry schedule ---------------------------------------------


def test_retry_backoff_schedule_is_pure_and_bounded():
    a = retry_backoff_schedule(7, ("rho", 3), 5, base_s=0.05, cap_s=2.0)
    b = retry_backoff_schedule(7, ("rho", 3), 5, base_s=0.05, cap_s=2.0)
    assert a == b
    assert len(a) == 4
    for k, delay in enumerate(a):
        ceiling = min(2.0, 0.05 * 2**k)
        assert 0.5 * ceiling <= delay < ceiling
    # Different trials and different seeds get different jitter.
    assert a != retry_backoff_schedule(7, ("rho", 4), 5)
    assert a != retry_backoff_schedule(8, ("rho", 3), 5)


def _retry_events(workers):
    telemetry = CampaignTelemetry()
    chaos = ChaosMonkey(kill_on={1, 3})
    TrialRunner(
        max_workers=workers,
        backend="local-supervised",
        lease_ttl_s=5.0,
        max_attempts=3,
        retry_seed=11,
        retry_backoff_base_s=0.001,  # keep the test fast
        telemetry=telemetry,
        chaos=chaos,
    ).run(_specs())
    return sorted(
        (e.key, e.detail)
        for e in telemetry.events
        if e.kind == "retry-backoff"
    )


def test_retry_schedule_identical_across_worker_counts():
    serial_like = _retry_events(workers=1)
    parallel = _retry_events(workers=4)
    assert serial_like == parallel
    assert len(serial_like) == 2  # one backoff per killed trial


# -- circuit breaker and degradation ladder -----------------------------------


def test_breaker_trip_completes_campaign_via_degradation():
    telemetry = CampaignTelemetry()
    chaos = ChaosMonkey(kill_all_attempts_on={0, 1, 2})
    outcomes = TrialRunner(
        max_workers=2,
        backend="local-supervised",
        lease_ttl_s=5.0,
        max_attempts=2,
        breaker_threshold=3,
        retry_backoff_base_s=0.001,
        telemetry=telemetry,
        chaos=chaos,
    ).run(_specs())
    # Sabotage killed every attempt of three trials, yet degradation
    # (chaos-free pool, then serial rescue) still completes everything.
    assert _values(outcomes) == TRUTH
    assert telemetry.breaker_trips == 1
    assert telemetry.degradations >= 1


def test_campaign_retry_budget_caps_total_retries():
    telemetry = CampaignTelemetry()
    chaos = ChaosMonkey(kill_on={0, 1, 2, 3})
    outcomes = TrialRunner(
        max_workers=2,
        backend="local-supervised",
        lease_ttl_s=5.0,
        max_attempts=3,
        campaign_retry_budget=2,
        breaker_threshold=100,  # keep the breaker out of this test
        retry_backoff_base_s=0.001,
        telemetry=telemetry,
        chaos=chaos,
    ).run(_specs())
    # Budget allowed only two retries; the serial rescue still recovers
    # the trials whose retries were denied (they failed as infra).
    assert _values(outcomes) == TRUTH
    assert telemetry.retries == 2
    kinds = [e.kind for e in telemetry.events]
    assert "retry-budget-exhausted" in kinds


# -- journal integration ------------------------------------------------------


def test_supervised_journals_leases_and_resumes_bit_identically(tmp_path):
    path = str(tmp_path / "sup.jsonl")
    fingerprint = campaign_fingerprint(kind="backend-test", n=6)
    chaos = ChaosMonkey(kill_on={1}, kill_all_attempts_on={4})
    journal = open_journal(path, fingerprint, resume=False)
    try:
        first = TrialRunner(
            max_workers=2,
            backend="local-supervised",
            lease_ttl_s=5.0,
            max_attempts=2,
            retry_backoff_base_s=0.001,
            chaos=chaos,
        ).run(_specs(), journal=journal)
    finally:
        journal.close()
    assert _values(first) == TRUTH  # serial rescue saved trial 4

    journal = open_journal(path, fingerprint, resume=True)
    telemetry = CampaignTelemetry()
    try:
        second = TrialRunner(
            max_workers=2, backend="local-supervised", telemetry=telemetry
        ).run(_specs(), journal=journal)
    finally:
        journal.close()
    assert _values(second) == TRUTH
    assert telemetry.trials_resumed == 6  # nothing re-ran


def test_expired_foreign_lease_is_reclaimed_not_double_run(tmp_path):
    """A lease left by a dead owner delays the trial but never duplicates
    it: exactly one fresh result, counted once."""
    path = str(tmp_path / "lease.jsonl")
    fingerprint = campaign_fingerprint(kind="backend-test", n=6)
    journal = open_journal(path, fingerprint, resume=False)
    journal.record_lease(2, "dead-owner", 1, ttl_s=0.2)
    journal.close()

    time.sleep(0.25)  # let the foreign lease expire
    journal = open_journal(path, fingerprint, resume=True)
    telemetry = CampaignTelemetry()
    try:
        outcomes = TrialRunner(
            max_workers=2,
            backend="local-supervised",
            lease_ttl_s=5.0,
            telemetry=telemetry,
        ).run(_specs(), journal=journal)
    finally:
        journal.close()
    assert _values(outcomes) == TRUTH
    assert sum(1 for o in outcomes if o.key == 2) == 1
    assert any(
        e.kind == "lease-reclaimed" and e.key == 2 for e in telemetry.events
    )
