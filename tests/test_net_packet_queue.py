"""Packet and interface-queue tests."""

import pytest

from repro.net.packet import Packet
from repro.net.queue import DropTailQueue


class TestPacket:
    def test_uids_unique(self):
        a = Packet("DATA", 0, 1, 100, 0.0)
        b = Packet("DATA", 0, 1, 100, 0.0)
        assert a.uid != b.uid

    def test_copy_for_forwarding_keeps_uid(self):
        packet = Packet("DATA", 0, 5, 100, 1.0, ttl=10, hops=2)
        forwarded = packet.copy_for_forwarding()
        assert forwarded.uid == packet.uid
        assert forwarded.ttl == 9
        assert forwarded.hops == 3
        assert forwarded.src == packet.src

    def test_is_data(self):
        assert Packet("DATA", 0, 1, 10, 0.0).is_data
        assert not Packet("AODV_RREQ", 0, 1, 10, 0.0).is_data

    def test_validation(self):
        with pytest.raises(ValueError):
            Packet("DATA", 0, 1, -5, 0.0)
        with pytest.raises(ValueError):
            Packet("DATA", 0, 1, 5, 0.0, ttl=-1)


class TestDropTailQueue:
    def test_fifo_order(self):
        queue = DropTailQueue(10)
        packets = [Packet("DATA", 0, 1, 10, 0.0) for _ in range(3)]
        for packet in packets:
            assert queue.enqueue(packet, 1)
        out = [queue.dequeue()[0].uid for _ in range(3)]
        assert out == [p.uid for p in packets]

    def test_drop_when_full(self):
        queue = DropTailQueue(2)
        assert queue.enqueue(Packet("DATA", 0, 1, 10, 0.0), 1)
        assert queue.enqueue(Packet("DATA", 0, 1, 10, 0.0), 1)
        assert not queue.enqueue(Packet("DATA", 0, 1, 10, 0.0), 1)
        assert queue.drops == 1
        assert queue.full

    def test_dequeue_empty_returns_none(self):
        assert DropTailQueue(2).dequeue() is None

    def test_remove_for_next_hop(self):
        queue = DropTailQueue(10)
        for hop in (1, 2, 1, 3, 1):
            queue.enqueue(Packet("DATA", 0, hop, 10, 0.0), hop)
        removed = queue.remove_for_next_hop(1)
        assert removed == 3
        assert len(queue) == 2
        assert queue.drops == 3
        remaining_hops = [queue.dequeue()[1] for _ in range(2)]
        assert remaining_hops == [2, 3]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)
