"""Scenario (Table I) configuration tests."""

import dataclasses

import pytest

from repro.core.config import Scenario
from repro.mac.params import Mac80211Params


def test_defaults_are_table1():
    scenario = Scenario()
    assert scenario.num_nodes == 30
    assert scenario.road_length_m == 3000.0
    assert scenario.boundary == "circuit"
    assert scenario.sim_time_s == 100.0
    assert scenario.senders == (1, 2, 3, 4, 5, 6, 7, 8)
    assert scenario.receiver == 0
    assert scenario.cbr_rate_pps == 5.0
    assert scenario.cbr_size_bytes == 512
    assert scenario.traffic_start_s == 10.0
    assert scenario.traffic_stop_s == 90.0
    assert scenario.mac_params.data_rate_bps == 2e6
    assert scenario.mac_params.rts_threshold_bytes is None
    assert scenario.tx_range_m == 250.0
    assert scenario.propagation == "two_ray"


def test_table1_rendering():
    table = Scenario().table1()
    assert table["Simulation Time"] == "100 s"
    assert table["Simulation Area"] == "3000 m Circuit"
    assert table["Number of Nodes"] == "30"
    assert table["Packets Generation Rate"] == "5 packets/s"
    assert table["Packet Size"] == "512 bytes"
    assert table["MAC Protocol"] == "IEEE802.11 DCF"
    assert table["MAC Rate"] == "2 Mbps"
    assert table["RTS/CTS"] == "None"
    assert table["Transmission Range"] == "250 m"
    assert table["Radio Propagation Models"] == "Two-ray Ground"
    assert table["DATA TYPE"] == "CBR"


def test_num_cells_and_density():
    scenario = Scenario()
    assert scenario.num_cells == 400
    assert scenario.density == pytest.approx(0.075)


def test_with_protocol_copies():
    scenario = Scenario()
    olsr = scenario.with_protocol("OLSR")
    assert olsr.protocol == "OLSR"
    assert scenario.protocol == "AODV"
    assert olsr.num_nodes == scenario.num_nodes


def test_line_boundary_table_rendering():
    table = Scenario(boundary="line").table1()
    assert table["Simulation Area"] == "3000 m Line"


def test_rts_rendering():
    scenario = Scenario(mac_params=Mac80211Params(rts_threshold_bytes=256))
    assert scenario.table1()["RTS/CTS"] == ">=256 B"


class TestValidation:
    def test_receiver_cannot_send(self):
        with pytest.raises(ValueError):
            Scenario(receiver=1)

    def test_nodes_in_range(self):
        with pytest.raises(ValueError):
            Scenario(num_nodes=5, senders=(1, 7))

    def test_boundary_name(self):
        with pytest.raises(ValueError):
            Scenario(boundary="moebius")

    def test_propagation_name(self):
        with pytest.raises(ValueError):
            Scenario(propagation="magic")

    def test_placement_name(self):
        with pytest.raises(ValueError):
            Scenario(initial_placement="clustered")

    def test_traffic_window(self):
        with pytest.raises(ValueError):
            Scenario(traffic_start_s=95.0, traffic_stop_s=90.0)
        with pytest.raises(ValueError):
            Scenario(traffic_stop_s=150.0)

    def test_too_many_vehicles(self):
        with pytest.raises(ValueError):
            Scenario(num_nodes=500, senders=(1,), road_length_m=750.0)

    def test_dawdle_probability(self):
        with pytest.raises(ValueError):
            Scenario(dawdle_p=1.5)

    def test_minimum_nodes(self):
        with pytest.raises(ValueError):
            Scenario(num_nodes=1, senders=())
