"""Propagation-model tests against the known ns-2 constants."""

import math

import numpy as np
import pytest

from repro.phy.propagation import (
    FreeSpace,
    LogNormalShadowing,
    TwoRayGround,
)

NS2_TX_POWER = 0.28183815


def test_free_space_inverse_square():
    model = FreeSpace()
    p100 = model.rx_power(1.0, 100.0)
    p200 = model.rx_power(1.0, 200.0)
    assert p100 / p200 == pytest.approx(4.0)


def test_free_space_zero_distance_returns_tx_power():
    assert FreeSpace().rx_power(0.5, 0.0) == 0.5


def test_two_ray_crossover_distance():
    model = TwoRayGround()
    # dc = 4 pi ht hr / lambda with ht = hr = 1.5 m at 914 MHz: ~86.2 m.
    wavelength = 299_792_458.0 / 914e6
    expected = 4 * math.pi * 1.5 * 1.5 / wavelength
    assert model.crossover_distance_m == pytest.approx(expected)
    assert 80 < model.crossover_distance_m < 95


def test_two_ray_matches_ns2_rx_threshold_at_250m():
    """The classic ns-2 number: Pr(250 m) = 3.652e-10 W."""
    model = TwoRayGround()
    assert model.rx_power(NS2_TX_POWER, 250.0) == pytest.approx(
        3.652e-10, rel=1e-3
    )


def test_two_ray_matches_ns2_cs_threshold_at_550m():
    """ns-2 CSThresh: Pr(550 m) = 1.559e-11 W."""
    model = TwoRayGround()
    assert model.rx_power(NS2_TX_POWER, 550.0) == pytest.approx(
        1.559e-11, rel=1e-3
    )


def test_two_ray_uses_friis_below_crossover():
    model = TwoRayGround()
    friis = FreeSpace()
    assert model.rx_power(1.0, 50.0) == pytest.approx(
        friis.rx_power(1.0, 50.0)
    )


def test_two_ray_fourth_power_beyond_crossover():
    model = TwoRayGround()
    p200 = model.rx_power(1.0, 200.0)
    p400 = model.rx_power(1.0, 400.0)
    assert p200 / p400 == pytest.approx(16.0)


def test_two_ray_continuous_at_crossover():
    model = TwoRayGround()
    dc = model.crossover_distance_m
    below = model.rx_power(1.0, dc * 0.999)
    above = model.rx_power(1.0, dc * 1.001)
    assert below == pytest.approx(above, rel=0.02)


def test_range_for_threshold_inverts_rx_power():
    model = TwoRayGround()
    threshold = model.rx_power(NS2_TX_POWER, 250.0)
    assert model.range_for_threshold(NS2_TX_POWER, threshold) == pytest.approx(
        250.0, rel=1e-3
    )


def test_shadowing_zero_sigma_is_deterministic_power_law():
    model = LogNormalShadowing(
        path_loss_exponent=2.0, sigma_db=0.0, reference_distance_m=1.0
    )
    friis = FreeSpace()
    # beta = 2 reproduces free space beyond d0.
    assert model.rx_power(1.0, 100.0) == pytest.approx(
        friis.rx_power(1.0, 100.0), rel=1e-6
    )


def test_shadowing_higher_exponent_attenuates_more():
    gentle = LogNormalShadowing(2.0, 0.0)
    harsh = LogNormalShadowing(4.0, 0.0)
    assert harsh.rx_power(1.0, 300.0) < gentle.rx_power(1.0, 300.0)


def test_shadowing_randomness_spreads_around_median():
    model = LogNormalShadowing(
        2.7, sigma_db=6.0, rng=np.random.default_rng(0)
    )
    baseline = LogNormalShadowing(2.7, sigma_db=0.0)
    median = baseline.rx_power(1.0, 200.0)
    draws = np.array([model.rx_power(1.0, 200.0) for _ in range(2000)])
    assert draws.std() > 0
    # Median of log-normal draws equals the deterministic value.
    assert np.median(draws) == pytest.approx(median, rel=0.15)


def test_validation():
    with pytest.raises(ValueError):
        FreeSpace(frequency_hz=0.0)
    with pytest.raises(ValueError):
        FreeSpace(system_loss=0.5)
    with pytest.raises(ValueError):
        TwoRayGround(height_tx_m=0.0)
    with pytest.raises(ValueError):
        LogNormalShadowing(path_loss_exponent=0.0)
    with pytest.raises(ValueError):
        LogNormalShadowing(sigma_db=-1.0)
