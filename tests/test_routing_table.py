"""Route-table semantics tests."""

import pytest

from repro.routing.table import RouteTable


def test_lookup_missing_returns_none():
    assert RouteTable().lookup(5, now=0.0) is None


def test_install_and_lookup():
    table = RouteTable()
    table.update(5, next_hop=2, hops=3, seq=1, lifetime=10.0, now=0.0)
    entry = table.lookup(5, now=5.0)
    assert entry is not None
    assert entry.next_hop == 2
    assert entry.hops == 3


def test_expired_route_not_returned():
    table = RouteTable()
    table.update(5, 2, 3, 1, lifetime=10.0, now=0.0)
    assert table.lookup(5, now=10.5) is None
    assert table.get(5) is not None  # raw entry survives for its seq


def test_fresher_seq_replaces_route():
    table = RouteTable()
    table.update(5, 2, 3, seq=1, lifetime=10.0, now=0.0)
    table.update(5, 7, 9, seq=2, lifetime=10.0, now=0.0)
    assert table.lookup(5, 0.0).next_hop == 7


def test_stale_seq_does_not_replace():
    table = RouteTable()
    table.update(5, 2, 3, seq=5, lifetime=10.0, now=0.0)
    table.update(5, 7, 1, seq=4, lifetime=10.0, now=0.0)
    entry = table.lookup(5, 0.0)
    assert entry.next_hop == 2
    assert entry.seq == 5  # freshness never decreases


def test_equal_seq_shorter_path_wins():
    table = RouteTable()
    table.update(5, 2, 4, seq=1, lifetime=10.0, now=0.0)
    table.update(5, 7, 2, seq=1, lifetime=10.0, now=0.0)
    assert table.lookup(5, 0.0).next_hop == 7


def test_equal_seq_longer_path_ignored():
    table = RouteTable()
    table.update(5, 2, 2, seq=1, lifetime=10.0, now=0.0)
    table.update(5, 7, 4, seq=1, lifetime=10.0, now=0.0)
    assert table.lookup(5, 0.0).next_hop == 2


def test_refresh_extends_lifetime():
    table = RouteTable()
    table.update(5, 2, 3, 1, lifetime=5.0, now=0.0)
    table.refresh(5, lifetime=5.0, now=4.0)
    assert table.lookup(5, now=8.0) is not None


def test_invalidate_bumps_seq():
    table = RouteTable()
    table.update(5, 2, 3, seq=4, lifetime=10.0, now=0.0)
    broken = table.invalidate(5)
    assert broken.seq == 5
    assert table.lookup(5, 0.0) is None


def test_invalidate_missing_returns_none():
    assert RouteTable().invalidate(9) is None


def test_invalidate_via_next_hop():
    table = RouteTable()
    table.update(5, 2, 3, 1, 10.0, 0.0)
    table.update(6, 2, 4, 1, 10.0, 0.0)
    table.update(7, 3, 2, 1, 10.0, 0.0)
    broken = table.invalidate_via(2)
    assert sorted(e.dst for e in broken) == [5, 6]
    assert table.lookup(7, 0.0) is not None


def test_reinstall_after_invalidation():
    table = RouteTable()
    table.update(5, 2, 3, seq=4, lifetime=10.0, now=0.0)
    table.invalidate(5)  # seq becomes 5
    # New information with an equal-or-newer seq restores the route.
    table.update(5, 9, 2, seq=5, lifetime=10.0, now=1.0)
    assert table.lookup(5, 1.0).next_hop == 9


def test_valid_destinations():
    table = RouteTable()
    table.update(5, 2, 3, 1, 10.0, 0.0)
    table.update(6, 2, 3, 1, 1.0, 0.0)
    table.invalidate(5)
    table.update(7, 3, 1, 1, 10.0, 0.0)
    assert sorted(table.valid_destinations(now=5.0)) == [7]


def test_len_and_contains():
    table = RouteTable()
    table.update(5, 2, 3, 1, 10.0, 0.0)
    assert len(table) == 1
    assert 5 in table
    assert 6 not in table
