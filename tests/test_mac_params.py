"""802.11 parameter and timing tests."""

import pytest

from repro.mac.frames import FRAME_OVERHEAD_BYTES, Frame, FrameType
from repro.mac.params import Mac80211Params
from repro.net.packet import Packet


def test_table1_defaults():
    params = Mac80211Params()
    assert params.data_rate_bps == 2e6  # Table I: MAC rate 2 Mbps
    assert params.rts_threshold_bytes is None  # Table I: RTS/CTS none


def test_data_tx_time():
    params = Mac80211Params()
    # 512 B payload + 28 B MAC overhead at 2 Mbps + 192 us PLCP.
    expected = 192e-6 + (512 + 28) * 8 / 2e6
    assert params.tx_time(
        params.frame_size(FrameType.DATA, 512), FrameType.DATA
    ) == pytest.approx(expected)


def test_control_frames_at_basic_rate():
    params = Mac80211Params()
    ack_time = params.ack_tx_time()
    assert ack_time == pytest.approx(192e-6 + 14 * 8 / 1e6)


def test_ack_timeout_exceeds_sifs_plus_ack():
    params = Mac80211Params()
    assert params.ack_timeout() > params.sifs_s + params.ack_tx_time()


def test_uses_rts_thresholding():
    no_rts = Mac80211Params()
    assert not no_rts.uses_rts(5000)
    with_rts = Mac80211Params(rts_threshold_bytes=500)
    assert with_rts.uses_rts(512)
    assert not with_rts.uses_rts(100)


def test_frame_overhead_sizes():
    assert FRAME_OVERHEAD_BYTES[FrameType.ACK] < FRAME_OVERHEAD_BYTES[FrameType.DATA]


def test_validation():
    with pytest.raises(ValueError):
        Mac80211Params(cw_min=0)
    with pytest.raises(ValueError):
        Mac80211Params(cw_min=100, cw_max=50)
    with pytest.raises(ValueError):
        Mac80211Params(slot_s=0.0)
    with pytest.raises(ValueError):
        Mac80211Params(short_retry_limit=0)


def test_frame_requires_packet_for_data():
    with pytest.raises(ValueError):
        Frame(FrameType.DATA, 0, 1, 100)


def test_frame_validation():
    with pytest.raises(ValueError):
        Frame(FrameType.ACK, 0, 1, 0)
    with pytest.raises(ValueError):
        Frame(FrameType.ACK, 0, 1, 14, duration_s=-1.0)
    packet = Packet("DATA", 0, 1, 10, 0.0)
    frame = Frame(FrameType.DATA, 0, 1, 38, packet=packet)
    assert frame.size_bytes == 38
