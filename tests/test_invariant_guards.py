"""Runtime invariant guards.

Each guard watches for a state that correct code can never reach, so the
tests here *inject* the corruption — monkeypatching a gap computation,
corrupting the DES clock, handing a protocol a hop-ceiling packet — and
assert that the guard converts the silent corruption into an
:class:`InvariantViolation` carrying enough context to reproduce it.
A final block asserts the guards stay silent on healthy runs.
"""

import numpy as np
import pytest

from repro.ca.multilane import MultiLaneRoad
from repro.ca.nasch import Boundary, NagelSchreckenberg
from repro.des.engine import Simulator
from repro.routing.base import MAX_HOPS
from repro.routing.flooding import Flooding
from repro.net.packet import DATA, Packet
from repro.util.errors import InvariantViolation


# -- DES engine ---------------------------------------------------------------


def test_des_clock_monotonicity_guard():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim._now = 5.0  # corrupt the clock, as a buggy component might
    with pytest.raises(InvariantViolation, match="backwards") as excinfo:
        sim.run()
    assert excinfo.value.context["event_time"] == 1.0
    assert excinfo.value.context["now"] == 5.0


def test_des_clock_monotonicity_guard_in_step():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim._now = 5.0
    with pytest.raises(InvariantViolation, match="backwards"):
        sim.step()


def test_des_same_instant_starvation_guard():
    sim = Simulator(max_same_time_events=50)

    def respawn():
        sim.schedule(0.0, respawn)

    sim.schedule(0.0, respawn)
    with pytest.raises(InvariantViolation, match="starvation") as excinfo:
        sim.run()
    assert excinfo.value.context["limit"] == 50
    # The run died at the cap, not after an unbounded livelock.
    assert sim.events_processed <= 52


def test_des_starvation_guard_tolerates_long_legit_bursts():
    # Well under the cap: many same-instant events are normal (a broadcast
    # fan-out), and the counter resets once time advances.
    sim = Simulator(max_same_time_events=50)
    for _ in range(40):
        sim.schedule(1.0, lambda: None)
    for _ in range(40):
        sim.schedule(2.0, lambda: None)
    sim.run()
    assert sim.events_processed == 80


# -- cellular automata --------------------------------------------------------


class _CorruptGapKernels:
    """A kernel backend whose gap computation is broken (always -1).

    The update loops live behind the kernel-backend seam now, so gap
    corruption is injected there: velocities still accelerate, gaps come
    out impossible, and the kernel reports the first vehicle as the
    violator — the model must convert that into an InvariantViolation.
    """

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def nasch_step(self, pos, vel, gaps_out, wrapped_out, draws,
                   use_draws, p, v_max, num_cells):
        gaps_out[:] = -1
        vel[:] = np.minimum(vel + 1, v_max)
        return 0


def test_nasch_gap_positivity_guard():
    model = NagelSchreckenberg(num_cells=30, num_vehicles=5, p=0.0)
    # A corrupted gap computation (here: an impossible negative gap) must
    # trip the guard instead of letting two vehicles share a cell.
    model._kernels = _CorruptGapKernels(model._kernels)
    with pytest.raises(InvariantViolation, match="outrun its gap") as excinfo:
        model.step()
    context = excinfo.value.context
    assert context["step"] == 0
    assert context["gap"] == -1
    assert "vehicle_id" in context and "cell" in context


def test_multilane_gap_positivity_guard():
    road = MultiLaneRoad(30, 1, [4], p=0.0)
    road._kernels = _CorruptGapKernels(road._kernels)
    with pytest.raises(InvariantViolation, match="outrun its gap") as excinfo:
        road.step()
    assert excinfo.value.context["lane"] == 0


def test_multilane_conservation_guard():
    road = MultiLaneRoad(30, 2, [4, 4], p=0.0)

    def movement_that_loses_a_vehicle():
        lane = road._lanes[0]
        lane.positions = lane.positions[:-1]
        lane.velocities = lane.velocities[:-1]
        lane.ids = lane.ids[:-1]
        lane.wraps = lane.wraps[:-1]
        lane.shifted = lane.shifted[:-1]

    road._movement_stage = movement_that_loses_a_vehicle
    with pytest.raises(InvariantViolation, match="count changed") as excinfo:
        road.step()
    context = excinfo.value.context
    assert context["before"] == 8
    assert context["after"] == 7
    assert context["per_lane"] == [3, 4]


# -- routing loop guard -------------------------------------------------------


class _StubSim:
    now = 12.5


class _StubNode:
    node_id = 3
    sim = _StubSim()

    def __init__(self):
        self.drops = []

    def drop(self, packet, reason):
        self.drops.append((packet, reason))


def _looping_packet(hops):
    return Packet(
        kind=DATA, src=0, dst=9, size_bytes=100, created_at=0.0,
        ttl=64, hops=hops,
    )


def test_ttl_guard_trips_at_hop_ceiling():
    protocol = Flooding(_StubNode())
    with pytest.raises(InvariantViolation, match="hop ceiling") as excinfo:
        protocol.check_ttl_guard(_looping_packet(MAX_HOPS))
    context = excinfo.value.context
    assert context["node"] == 3
    assert context["hops"] == MAX_HOPS
    assert context["time"] == 12.5


def test_ttl_guard_silent_below_ceiling():
    protocol = Flooding(_StubNode())
    protocol.check_ttl_guard(_looping_packet(MAX_HOPS - 1))  # no raise


# -- healthy runs stay silent -------------------------------------------------


def test_guards_silent_on_healthy_nasch_run():
    model = NagelSchreckenberg(
        num_cells=100, num_vehicles=30, p=0.3,
        rng=np.random.default_rng(5),
    )
    model.run(200)
    assert len(model.positions) == 30


def test_guards_silent_on_healthy_open_boundary_run():
    model = NagelSchreckenberg(
        num_cells=80, num_vehicles=10, p=0.2,
        boundary=Boundary.OPEN, injection_rate=0.3,
        rng=np.random.default_rng(5),
    )
    model.run(200)  # open lanes may change count; guard must not fire


def test_guards_silent_on_healthy_multilane_run():
    road = MultiLaneRoad(
        60, 2, [10, 12], p=0.25, rng=np.random.default_rng(5)
    )
    road.run(200)
    assert road.num_vehicles == 22
