"""The campaign spool: envelopes, scheduling, crash recovery, attach.

The scheduler's contract is that the spool directory *is* the state: any
scheduler process pointed at it continues exactly where a killed one
stopped, served results are bit-identical to a local serial sweep, and a
tail of ``results.jsonl`` sees every trial exactly once no matter how
many times the job was interrupted and resumed.
"""

import asyncio
import json
import os
import threading
import time

import pytest

from repro.core import serve
from repro.core.config import Scenario
from repro.core.runner import TrialRunner, TrialSpec
from repro.core.serve import (
    CampaignServer,
    astream_trials,
    build_specs,
    decode_result_value,
    parse_envelope,
    serve_spool,
    submit_job,
    tail_results,
)
from repro.core.sweep import sweep_scenario
from repro.metrics.collector import CampaignTelemetry
from repro.util.errors import ConfigError


def _tiny_scenario(**overrides):
    base = dict(
        num_nodes=6,
        sim_time_s=5.0,
        senders=(1, 2),
        mobility_warmup_steps=5,
        traffic_start_s=1.0,
        traffic_stop_s=4.0,
    )
    base.update(overrides)
    return Scenario(**base)


def _envelope(**overrides):
    data = {
        "scenario": _tiny_scenario().to_dict(),
        "field": "num_nodes",
        "values": [6, 8],
        "trials": 1,
        "max_workers": 2,
    }
    data.update(overrides)
    return data


# -- envelope validation ------------------------------------------------------


def test_parse_envelope_roundtrip():
    parsed = parse_envelope(_envelope(trials=2))
    assert parsed.field == "num_nodes"
    assert parsed.values == (6, 8)
    assert parsed.trials == 2
    assert len(parsed.job_id) == 16
    # Identity: an identical envelope parses to the identical job id.
    assert parse_envelope(_envelope(trials=2)).job_id == parsed.job_id
    # Any grid change is a different campaign.
    assert parse_envelope(_envelope(trials=3)).job_id != parsed.job_id


def test_parse_envelope_rejects_garbage():
    with pytest.raises(ConfigError, match="missing keys"):
        parse_envelope({"scenario": {}})
    with pytest.raises(ConfigError, match="unknown keys"):
        parse_envelope(_envelope(frobnicate=True))
    with pytest.raises(ConfigError, match="not a Scenario field"):
        parse_envelope(_envelope(field="warp_factor"))
    with pytest.raises(ConfigError, match="non-empty"):
        parse_envelope(_envelope(values=[]))
    with pytest.raises(ConfigError, match="trials"):
        parse_envelope(_envelope(trials=0))
    with pytest.raises(ConfigError, match="JSON object"):
        parse_envelope([1, 2, 3])


def test_parse_envelope_accepts_a_saved_scenario_file(tmp_path):
    """A Scenario.save() file pasted whole into the envelope must work:
    its format/schema header is stripped like Scenario.load does."""
    path = str(tmp_path / "scenario.json")
    _tiny_scenario().save(path)
    with open(path) as handle:
        saved = json.load(handle)
    assert "format" in saved and "schema" in saved
    parsed = parse_envelope(_envelope(scenario=saved))
    assert parsed.job_id == parse_envelope(_envelope()).job_id
    with pytest.raises(ConfigError, match="format"):
        parse_envelope(_envelope(scenario={**saved, "format": "nope"}))
    with pytest.raises(ConfigError, match="schema"):
        parse_envelope(_envelope(scenario={**saved, "schema": 99}))


def test_build_specs_matches_sweep_grid():
    parsed = parse_envelope(_envelope(trials=2))
    specs = build_specs(parsed)
    assert [spec.key for spec in specs] == [
        (6, 0), (6, 1), (8, 0), (8, 1),
    ]
    # Seeds derive exactly like sweep_scenario's: base + 1000 * trial.
    assert specs[1].args[0].seed == _tiny_scenario().seed + 1000
    assert specs[2].args[0].num_nodes == 8


def test_submit_job_validates_before_spooling(tmp_path):
    spool = str(tmp_path / "spool")
    with pytest.raises(ConfigError):
        submit_job(spool, _envelope(field="nope"))
    # Validation happens before anything touches the spool.
    assert not os.path.exists(os.path.join(spool, "incoming"))
    name = submit_job(spool, _envelope())
    assert os.path.exists(
        os.path.join(spool, "incoming", f"{name}.json")
    )
    with pytest.raises(ConfigError, match="invalid job name"):
        submit_job(spool, _envelope(), name="../escape")


# -- scheduling ---------------------------------------------------------------


def test_serve_once_runs_job_bit_identical_to_local_sweep(tmp_path):
    spool = str(tmp_path / "spool")
    name = submit_job(spool, _envelope(trials=2))
    telemetry = CampaignTelemetry()
    assert serve_spool(spool, once=True, telemetry=telemetry) == 1

    job_dir = os.path.join(spool, "jobs", name)
    with open(os.path.join(job_dir, "done")) as handle:
        summary = json.load(handle)
    assert summary == {
        "job_id": name, "trials": 4, "ok": 4, "failed": 0, "quarantined": 0,
    }
    assert os.path.exists(os.path.join(spool, "done", f"{name}.json"))

    records = list(tail_results(job_dir, follow=False))
    served = {
        tuple(r["key"]): decode_result_value(r).pdr() for r in records
    }
    local = sweep_scenario(
        _tiny_scenario(), "num_nodes", [6, 8], trials=2
    )
    truth = {
        (point.value, trial): result.pdr()
        for point in local.points
        for trial, result in enumerate(point.results)
    }
    assert served == truth  # bit-identical to the serial ground truth


def test_resubmitting_identical_envelope_resumes_not_reruns(tmp_path):
    spool = str(tmp_path / "spool")
    name = submit_job(spool, _envelope())
    serve_spool(spool, once=True)
    submit_job(spool, _envelope())
    telemetry = CampaignTelemetry()
    serve_spool(spool, once=True, telemetry=telemetry)
    assert telemetry.trials_resumed == 2  # the journal had everything
    records = list(
        tail_results(os.path.join(spool, "jobs", name), follow=False)
    )
    keys = [tuple(r["key"]) for r in records]
    assert sorted(keys) == [(6, 0), (8, 0)]  # rebuilt, duplicate-free


def test_crashed_scheduler_recovers_from_active_and_journal(tmp_path):
    """The crash-recovery contract: an envelope stranded in active/ plus
    a partial journal — exactly what a SIGKILLed scheduler leaves — must
    finish with only the missing trials run, and a duplicate-free tail."""
    spool = str(tmp_path / "spool")
    server = CampaignServer(spool)
    envelope = parse_envelope(_envelope(trials=2))

    # Simulate the dead scheduler: envelope claimed into active/...
    with open(
        os.path.join(spool, "active", f"{envelope.job_id}.json"), "w"
    ) as handle:
        json.dump(_envelope(trials=2), handle)
    # ...and a journal holding the first two of four trials.
    job_dir = server.job_dir(envelope.job_id)
    os.makedirs(job_dir, exist_ok=True)
    from repro.core.journal import open_journal

    journal = open_journal(
        os.path.join(job_dir, "journal.jsonl"),
        envelope.fingerprint,
        resume=False,
    )
    specs = build_specs(envelope)
    for spec in specs[:2]:
        journal.record_success(
            spec.key, spec.fn(*spec.args), 1, 0.1
        )
    journal.close()
    # A half-written results.jsonl (torn mid-append) must not survive.
    with open(os.path.join(job_dir, "results.jsonl"), "w") as handle:
        handle.write('{"key": [6, 0], "ok": true')  # no newline: torn

    telemetry = CampaignTelemetry()
    assert server.run_once() == 1
    records = list(tail_results(job_dir, follow=False))
    keys = sorted(tuple(r["key"]) for r in records)
    assert keys == [(6, 0), (6, 1), (8, 0), (8, 1)]
    assert len(keys) == len(set(keys))  # rebuilt tail: no duplicates
    assert os.path.exists(
        os.path.join(spool, "done", f"{envelope.job_id}.json")
    )


def test_unusable_envelope_lands_in_failed_with_diagnosis(tmp_path):
    spool = str(tmp_path / "spool")
    server = CampaignServer(spool)
    with open(os.path.join(spool, "incoming", "bad.json"), "w") as handle:
        handle.write('{"scenario": {"warp_factor": 9}}')
    assert server.run_once() == 1
    assert os.path.exists(os.path.join(spool, "failed", "bad.json"))
    with open(
        os.path.join(spool, "failed", "bad.json.error.txt")
    ) as handle:
        assert "unusable job envelope" in handle.read()


@pytest.mark.parametrize("mutate", [
    {"values": 5},                      # tuple(5) raises TypeError
    {"scenario": "not-a-mapping"},      # nested non-mapping field
    {"trials": None},                   # int(None) raises TypeError
])
def test_malformed_envelope_fields_park_in_failed_not_crash(tmp_path, mutate):
    """A hand-dropped envelope whose fields raise TypeError (not just
    ConfigError/ValueError) must land in failed/, not escape run_once —
    active/ is rescanned first on restart, so an escape would crash-loop
    the scheduler on the same envelope forever."""
    spool = str(tmp_path / "spool")
    server = CampaignServer(spool)
    with open(os.path.join(spool, "active", "bad.json"), "w") as handle:
        json.dump(_envelope(**mutate), handle)
    assert server.run_once() == 1
    assert os.path.exists(os.path.join(spool, "failed", "bad.json"))
    with open(
        os.path.join(spool, "failed", "bad.json.error.txt")
    ) as handle:
        assert "unusable job envelope" in handle.read()
    assert not os.path.exists(os.path.join(spool, "active", "bad.json"))


def test_envelope_with_repeated_sweep_values_completes(tmp_path):
    """Repeated sweep values produce duplicate trial keys, which hash to
    one dir-queue task — the job must still reach done/ (the duplicate
    used to strand a results[] slot and hang the scheduler forever)."""
    spool = str(tmp_path / "spool")
    name = submit_job(spool, _envelope(values=[6, 6]))
    assert serve_spool(spool, once=True) == 1
    job_dir = os.path.join(spool, "jobs", name)
    with open(os.path.join(job_dir, "done")) as handle:
        summary = json.load(handle)
    assert summary["trials"] == 2 and summary["ok"] == 2
    records = list(tail_results(job_dir, follow=False))
    assert [tuple(r["key"]) for r in records] == [(6, 0)]


def test_job_dir_refuses_a_different_campaign(tmp_path):
    spool = str(tmp_path / "spool")
    server = CampaignServer(spool)
    envelope = parse_envelope(_envelope())
    os.makedirs(server.job_dir("fixed-id"))
    server._write_job_json(server.job_dir("fixed-id"), envelope)
    other = parse_envelope(_envelope(trials=3))
    with pytest.raises(ConfigError, match="different fingerprint"):
        server._write_job_json(server.job_dir("fixed-id"), other)


def test_serve_forever_stops_on_event(tmp_path):
    spool = str(tmp_path / "spool")
    stop = threading.Event()
    done = {}

    def run():
        done["jobs"] = serve_spool(
            spool, once=False, poll_interval_s=0.02, stop=stop
        )

    thread = threading.Thread(target=run)
    thread.start()
    name = submit_job(spool, _envelope())
    deadline = time.monotonic() + 60
    while not os.path.exists(
        os.path.join(spool, "done", f"{name}.json")
    ):
        assert time.monotonic() < deadline
        time.sleep(0.05)
    stop.set()
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert done["jobs"] == 1


# -- attach -------------------------------------------------------------------


def test_tail_results_follows_until_done_marker(tmp_path):
    job_dir = str(tmp_path / "job")
    os.makedirs(job_dir)
    path = os.path.join(job_dir, "results.jsonl")

    def writer():
        with open(path, "w") as handle:
            for i in range(4):
                handle.write(json.dumps({"key": i, "ok": True}) + "\n")
                handle.flush()
                time.sleep(0.03)
            # Torn final append: completed only after the done marker —
            # the tail must still pick the record up before finishing.
            handle.write('{"key": 4,')
            handle.flush()
            time.sleep(0.05)
            handle.write(' "ok": true}\n')
            handle.flush()
        with open(os.path.join(job_dir, "done"), "w") as marker:
            marker.write("{}\n")

    thread = threading.Thread(target=writer)
    thread.start()
    records = list(
        tail_results(job_dir, follow=True, poll_interval_s=0.02,
                     timeout_s=30.0)
    )
    thread.join()
    assert [r["key"] for r in records] == [0, 1, 2, 3, 4]


def test_tail_survives_a_stream_rebuild_without_missing_trials(tmp_path):
    """A resumed scheduler renames a journal-rebuilt results.jsonl over
    the old one.  A tail holding a byte offset into the old file must
    detect the shrink, restart from zero, and dedupe by key — yielding
    the trials it had not seen rather than silently skipping them."""
    job_dir = str(tmp_path / "job")
    os.makedirs(job_dir)
    path = os.path.join(job_dir, "results.jsonl")

    def record(key, pad=""):
        return json.dumps({"key": key, "ok": True, "pad": pad}) + "\n"

    # The crashed run's stream: A plus a long B (so the rebuilt file
    # below is strictly shorter than the tail's offset).
    with open(path, "w") as handle:
        handle.write(record([6, 0]) + record([6, 1], pad="x" * 256))
    tail = tail_results(job_dir, follow=True, poll_interval_s=0.01,
                        timeout_s=30.0)
    assert [r["key"] for r in (next(tail), next(tail))] == [[6, 0], [6, 1]]

    # The resume: a rebuilt stream (journal only held A) renamed over the
    # old file, then the fresh trial C appended and the job finished.
    rebuilt = path + ".rebuild"
    with open(rebuilt, "w") as handle:
        handle.write(record([6, 0]))
    os.replace(rebuilt, path)
    with open(path, "a") as handle:
        handle.write(record([8, 0]))
    with open(os.path.join(job_dir, "done"), "w") as marker:
        marker.write("{}\n")
    assert [r["key"] for r in tail] == [[8, 0]]  # C seen, A deduped


def test_tail_results_timeout_raises_instead_of_hanging(tmp_path):
    job_dir = str(tmp_path / "job")
    os.makedirs(job_dir)
    with pytest.raises(ConfigError, match="timed out"):
        list(
            tail_results(job_dir, follow=True, poll_interval_s=0.01,
                         timeout_s=0.1)
        )


def test_tail_results_without_follow_returns_what_exists(tmp_path):
    job_dir = str(tmp_path / "job")
    os.makedirs(job_dir)
    assert list(tail_results(job_dir, follow=False)) == []


# -- async streaming ----------------------------------------------------------


def _square(x):
    return x * x


def test_astream_trials_yields_each_key_once(tmp_path):
    async def main():
        runner = TrialRunner(
            max_workers=2,
            backend="dir-queue",
            queue_dir=str(tmp_path / "q"),
            lease_ttl_s=5.0,
        )
        specs = [TrialSpec(key=i, fn=_square, args=(i,)) for i in range(6)]
        seen = []
        async for outcome in astream_trials(runner, specs):
            seen.append((outcome.key, outcome.value))
        return seen

    seen = asyncio.run(main())
    assert sorted(seen) == [(i, i * i) for i in range(6)]


def test_astream_trials_propagates_run_errors():
    async def main():
        runner = TrialRunner(max_workers=1)
        bad_specs = None  # run() raising must surface on the async side
        async for _ in astream_trials(runner, bad_specs):
            raise AssertionError("nothing should be yielded")

    with pytest.raises(TypeError):
        asyncio.run(main())


# -- wire format --------------------------------------------------------------


def test_outcome_record_roundtrips_values():
    from repro.core.runner import TrialOutcome

    outcome = TrialOutcome(key=(6, 0), index=0, value={"pdr": 0.5},
                           attempts=2, wall_clock_s=1.5)
    record = serve.outcome_record(outcome)
    assert record["key"] == [6, 0]
    assert record["ok"] is True
    assert record["attempts"] == 2
    assert decode_result_value(record) == {"pdr": 0.5}
    failed = TrialOutcome(key=1, index=1, error="boom")
    failed_record = serve.outcome_record(failed)
    assert failed_record["ok"] is False
    assert failed_record["value"] is None
    assert decode_result_value(failed_record) is None
