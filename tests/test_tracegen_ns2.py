"""ns-2 movement-file writer/parser tests (paper Fig. 3-b format)."""

import numpy as np
import pytest

from repro.ca.nasch import NagelSchreckenberg
from repro.geometry.layout import RoadLayout
from repro.mobility.ca_mobility import CaMobility
from repro.mobility.trace import MobilityTrace
from repro.tracegen.ns2 import Ns2TraceWriter, parse_ns2_trace, trace_from_ns2


def _two_node_trace():
    times = np.array([0.0, 1.0, 2.0])
    positions = np.array(
        [
            [[0.0, 0.0], [100.0, 50.0]],
            [[10.0, 0.0], [100.0, 50.0]],
            [[20.0, 0.0], [100.0, 40.0]],
        ]
    )
    return MobilityTrace(times=times, positions=positions)


def test_initial_positions_written_with_delta():
    text = Ns2TraceWriter(delta=0.5).render(_two_node_trace())
    assert "$node_(0) set X_ 0.500000" in text
    assert "$node_(1) set Y_ 50.500000" in text
    assert "$node_(0) set Z_ 0.000000" in text


def test_setdest_lines_have_correct_speed():
    text = Ns2TraceWriter(delta=0.0).render(_two_node_trace())
    assert '$ns_ at 0.000000 "$node_(0) setdest 10.000000 0.000000 10.000000"' in text


def test_stationary_segments_are_omitted():
    text = Ns2TraceWriter().render(_two_node_trace())
    # Node 1 does not move in the first segment: no setdest at t=0 for it.
    assert 'at 0.000000 "$node_(1) setdest' not in text


def test_paper_delta_avoids_zero_coordinates():
    # Paper footnote 3: ns-2 misbehaves at absolute position 0; delta
    # keeps every coordinate strictly positive.
    text = Ns2TraceWriter(delta=0.5).render(_two_node_trace())
    _, events = parse_ns2_trace(text)
    initial, _ = parse_ns2_trace(text)
    for x, y in initial.values():
        assert x > 0 and y > 0


def test_parse_roundtrip_counts():
    text = Ns2TraceWriter().render(_two_node_trace())
    initial, events = parse_ns2_trace(text)
    assert set(initial) == {0, 1}
    kinds = {e.kind for e in events}
    assert kinds == {"setdest"}


def test_replay_matches_original_positions():
    trace = _two_node_trace()
    text = Ns2TraceWriter(delta=0.0).render(trace)
    replayed = trace_from_ns2(text, 2.0)
    assert np.allclose(replayed.positions, trace.positions, atol=1e-4)


def test_replay_with_delta_offsets_everything():
    trace = _two_node_trace()
    text = Ns2TraceWriter(delta=2.0).render(trace)
    replayed = trace_from_ns2(text, 2.0)
    assert np.allclose(replayed.positions, trace.positions + 2.0, atol=1e-4)


def test_teleport_written_as_instant_set():
    times = np.array([0.0, 1.0])
    positions = np.array([[[5.0, 0.0]], [[700.0, 0.0]]])
    teleported = np.array([[False], [True]])
    trace = MobilityTrace(times, positions, teleported)
    text = Ns2TraceWriter(delta=0.0).render(trace)
    assert 'setdest' not in text
    assert '$ns_ at 1.000000 "$node_(0) set X_ 700.000000"' in text


def test_teleport_replay():
    times = np.array([0.0, 1.0, 2.0])
    positions = np.array([[[5.0, 0.0]], [[700.0, 0.0]], [[710.0, 0.0]]])
    teleported = np.array([[False], [True], [False]])
    trace = MobilityTrace(times, positions, teleported)
    text = Ns2TraceWriter(delta=0.0).render(trace)
    replayed = trace_from_ns2(text, 2.0)
    assert replayed.positions[1, 0, 0] == pytest.approx(700.0)
    assert replayed.positions[2, 0, 0] == pytest.approx(710.0, abs=1e-3)


def test_full_ca_pipeline_roundtrip():
    """BA -> ns-2 text -> replay: the CAVENET interchange loop."""
    model = NagelSchreckenberg(200, 15, p=0.3, rng=np.random.default_rng(4))
    mobility = CaMobility(model, RoadLayout.single_circuit(1500.0))
    trace = mobility.sample(20.0)
    writer = Ns2TraceWriter(delta=1.0)
    replayed = trace_from_ns2(writer.render(trace), 20.0)
    assert np.allclose(
        replayed.positions, trace.positions + 1.0, atol=1e-3
    )


def test_parser_ignores_comments_and_junk():
    text = """
# comment line
$node_(0) set X_ 5.0
$node_(0) set Y_ 6.0
$node_(0) set Z_ 0.0
nonsense that should be skipped
$ns_ at 1.0 "$node_(0) setdest 10.0 6.0 5.0"
"""
    initial, events = parse_ns2_trace(text)
    assert initial[0] == (5.0, 6.0)
    assert len(events) == 1


def test_empty_trace_rejected_by_replay():
    with pytest.raises(ValueError):
        trace_from_ns2("# nothing here", 10.0)


def test_write_to_file(tmp_path):
    path = tmp_path / "movement.tcl"
    Ns2TraceWriter().write(_two_node_trace(), str(path))
    initial, _ = parse_ns2_trace(path.read_text())
    assert len(initial) == 2


def test_negative_delta_rejected():
    with pytest.raises(ValueError):
        Ns2TraceWriter(delta=-1.0)
