"""Multi-lane road and lane-change tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ca.multilane import MultiLaneRoad


def test_single_lane_road_matches_no_change_dynamics():
    road = MultiLaneRoad(50, 1, [5])
    road.run(20)
    assert road.num_vehicles == 5
    assert road.num_lanes == 1


def test_blocked_vehicle_changes_lane():
    # Lane 0: follower behind a parked leader; lane 1 empty.  The follower
    # should sidestep to lane 1 instead of queuing.
    road = MultiLaneRoad(30, 2, [0, 0], v_max=3)
    lane0 = road._lanes[0]
    lane0.positions = np.array([5, 7], dtype=np.int64)
    lane0.velocities = np.array([3, 0], dtype=np.int64)
    lane0.ids = np.array([0, 1], dtype=np.int64)
    lane0.wraps = np.zeros(2, dtype=np.int64)
    lane0.shifted = np.zeros(2, dtype=bool)
    road.step()
    lanes = {v.vehicle_id: v.lane for v in road.vehicles()}
    assert lanes[0] == 1  # the blocked follower moved over
    assert lanes[1] == 0


def test_no_change_without_incentive():
    # Free-flowing vehicles stay in their lane.
    road = MultiLaneRoad(100, 2, [3, 3], v_max=5)
    initial = {v.vehicle_id: v.lane for v in road.vehicles()}
    road.run(30)
    final = {v.vehicle_id: v.lane for v in road.vehicles()}
    assert initial == final


def test_change_blocked_by_occupied_target_cell():
    road = MultiLaneRoad(30, 2, [0, 0], v_max=3, safety_gap_back=0)
    lane0, lane1 = road._lanes
    lane0.positions = np.array([5, 6], dtype=np.int64)
    lane0.velocities = np.array([3, 0], dtype=np.int64)
    lane0.ids = np.array([0, 1], dtype=np.int64)
    lane0.wraps = np.zeros(2, dtype=np.int64)
    lane0.shifted = np.zeros(2, dtype=bool)
    lane1.positions = np.array([5], dtype=np.int64)
    lane1.velocities = np.array([0], dtype=np.int64)
    lane1.ids = np.array([2], dtype=np.int64)
    lane1.wraps = np.zeros(1, dtype=np.int64)
    lane1.shifted = np.zeros(1, dtype=bool)
    road.step()
    lanes = {v.vehicle_id: v.lane for v in road.vehicles()}
    assert lanes[0] == 0  # cell 5 on lane 1 was taken


def test_safety_gap_blocks_cut_in():
    # A fast vehicle right behind the target cell on the other lane
    # prevents the change.
    road = MultiLaneRoad(40, 2, [0, 0], v_max=5)
    lane0, lane1 = road._lanes
    lane0.positions = np.array([10, 12], dtype=np.int64)
    lane0.velocities = np.array([5, 0], dtype=np.int64)
    lane0.ids = np.array([0, 1], dtype=np.int64)
    lane0.wraps = np.zeros(2, dtype=np.int64)
    lane0.shifted = np.zeros(2, dtype=bool)
    lane1.positions = np.array([8], dtype=np.int64)  # 1 cell behind target
    lane1.velocities = np.array([5], dtype=np.int64)
    lane1.ids = np.array([2], dtype=np.int64)
    lane1.wraps = np.zeros(1, dtype=np.int64)
    lane1.shifted = np.zeros(1, dtype=bool)
    road.step()
    lanes = {v.vehicle_id: v.lane for v in road.vehicles()}
    assert lanes[0] == 0  # unsafe: follower on lane 1 too close


def test_occupancy_matrix_shape():
    road = MultiLaneRoad(60, 3, [4, 5, 6])
    matrix = road.occupancy_matrix()
    assert matrix.shape == (3, 60)
    assert (matrix >= 0).sum() == 15


def test_density_across_lanes():
    road = MultiLaneRoad(100, 2, [10, 30])
    assert road.density == pytest.approx(40 / 200)


def test_mean_velocity_empty_road_is_nan():
    road = MultiLaneRoad(50, 2, [0, 0])
    assert np.isnan(road.mean_velocity())


@given(
    num_cells=st.integers(min_value=20, max_value=60),
    counts=st.lists(
        st.integers(min_value=0, max_value=15), min_size=2, max_size=3
    ),
    p=st.sampled_from([0.0, 0.3]),
    steps=st.integers(min_value=1, max_value=25),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40, deadline=None)
def test_multilane_invariants(num_cells, counts, p, steps, seed):
    """No collisions, population conserved, ids unique — under any mix of
    lane changes and movement."""
    road = MultiLaneRoad(
        num_cells,
        len(counts),
        counts,
        p=p,
        rng=np.random.default_rng(seed),
    )
    total = sum(counts)
    road.run(steps)
    assert road.num_vehicles == total
    vehicles = road.vehicles()
    cells = {(v.lane, v.cell) for v in vehicles}
    assert len(cells) == total  # no two vehicles share a (lane, cell)
    ids = [v.vehicle_id for v in vehicles]
    assert len(set(ids)) == total
    for lane_idx in range(road.num_lanes):
        pos = road.lane_positions(lane_idx)
        assert np.all(np.diff(pos) > 0)  # per-lane arrays stay sorted


class TestValidation:
    def test_wrong_counts_length(self):
        with pytest.raises(ValueError):
            MultiLaneRoad(10, 2, [1])

    def test_too_many_vehicles(self):
        with pytest.raises(ValueError):
            MultiLaneRoad(10, 1, [11])

    def test_bad_lane_count(self):
        with pytest.raises(ValueError):
            MultiLaneRoad(10, 0, [])

    def test_negative_steps(self):
        road = MultiLaneRoad(10, 1, [2])
        with pytest.raises(ValueError):
            road.run(-5)
