"""CI smoke: the declarative-scenario surface, end to end.

Exercises the paths a scenario file travels in real use:

1. ``repro components`` lists every registry namespace;
2. ``Scenario.save()`` -> ``Scenario.load()`` round-trips exactly;
3. ``repro run --scenario file.json --set seed=7 --set protocol=OLSR``
   runs the loaded scenario with dotted overrides applied;
4. the overridden run differs from the base run the way the overrides say
   it must (protocol label changes; results come from the OLSR stack).

Run:  PYTHONPATH=src python scripts/scenario_smoke.py
"""

import contextlib
import io
import sys
import tempfile
from pathlib import Path

from repro.cli import main
from repro.core.config import Scenario


def _cli(*argv: str) -> str:
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(list(argv))
    if code != 0:
        raise SystemExit(
            f"repro {' '.join(argv)} exited {code}\n{buffer.getvalue()}"
        )
    return buffer.getvalue()


def main_smoke() -> None:
    # 1. The components listing covers all five namespaces.
    listing = _cli("components")
    for kind in ("propagation", "routing", "mobility", "traffic", "boundary"):
        assert kind in listing, f"`repro components` misses {kind}"
    for name in ("two_ray", "AODV", "cbr", "circuit", "random"):
        assert name in listing, f"`repro components` misses builtin {name}"
    print("components listing OK")

    scenario = Scenario(
        num_nodes=12,
        road_length_m=1200.0,
        sim_time_s=20.0,
        senders=(1, 2),
        traffic_start_s=5.0,
        traffic_stop_s=18.0,
        initial_placement="uniform",
        dawdle_p=0.0,
        protocol="AODV",
        seed=3,
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "scenario.json")

        # 2. save -> load is exact.
        scenario.save(path)
        loaded = Scenario.load(path)
        assert loaded == scenario, "save/load round-trip not exact"
        print("save/load round-trip OK")

        # 3. Run from the file, with dotted --set overrides on top.
        out = _cli(
            "run", "--scenario", path, "--set", "seed=7",
            "--set", "protocol=OLSR",
        )
        assert "protocol          : OLSR" in out, out
        assert "PDR" in out

        # 4. The file itself is untouched and still runs as AODV.
        assert Scenario.load(path).protocol == "AODV"
        base = _cli("run", "--scenario", path)
        assert "protocol          : AODV" in base, base
        print("scenario-file run with --set overrides OK")

    print("scenario smoke: all checks passed")


if __name__ == "__main__":
    sys.exit(main_smoke())
