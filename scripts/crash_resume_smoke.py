#!/usr/bin/env python
"""Crash-resume smoke: kill a journalled sweep mid-flight, resume, compare.

CI runs this end-to-end check on every push (it also runs fine locally):

1. run a small sweep serially — the ground truth;
2. run the same sweep with a journal and a trial function poisoned to
   die partway through (a simulated ``kill -9``);
3. tear the journal's final line, as a real crash mid-write would;
4. resume, and require the merged results to be *bit-identical* to the
   uninterrupted run — plus a nonzero resumed-trial count in telemetry.

Exits 0 on success, 1 with a diagnostic on any mismatch.
"""

import sys
import tempfile
from pathlib import Path

import repro.core.sweep as sweep_mod
from repro.core.config import Scenario
from repro.core.sweep import sweep_scenario
from repro.metrics.collector import CampaignTelemetry

BASE = Scenario(
    num_nodes=10,
    road_length_m=900.0,
    sim_time_s=15.0,
    senders=(1, 2),
    traffic_start_s=2.0,
    traffic_stop_s=12.0,
    dawdle_p=0.0,
    seed=3,
)
KWARGS = dict(base=BASE, field="num_nodes", values=[10, 12], trials=2)
DIE_AFTER = 2  # trials completed before the simulated crash


def fingerprint_of(result):
    return [
        (
            point.value,
            point.pdr_mean,
            point.pdr_std,
            point.delay_mean_s,
            point.control_packets_mean,
            [r.pdr() for r in point.results],
        )
        for point in result.points
    ]


def main() -> int:
    journal = str(Path(tempfile.mkdtemp(prefix="smoke-")) / "sweep.jsonl")

    print("[1/4] ground truth: uninterrupted serial sweep", flush=True)
    truth = fingerprint_of(sweep_scenario(**KWARGS))

    print(f"[2/4] journalled sweep, killed after {DIE_AFTER} trials")
    real_trial = sweep_mod._run_scenario_trial
    completed = {"n": 0}

    def dying_trial(scenario):
        if completed["n"] >= DIE_AFTER:
            raise KeyboardInterrupt("simulated kill")
        completed["n"] += 1
        return real_trial(scenario)

    sweep_mod._run_scenario_trial = dying_trial
    try:
        sweep_scenario(**KWARGS, journal_path=journal)
    except KeyboardInterrupt:
        pass
    else:
        print("FAIL: the poisoned sweep was expected to die")
        return 1
    finally:
        sweep_mod._run_scenario_trial = real_trial

    print("[3/4] tearing the journal's final line (crash mid-write)")
    data = Path(journal).read_bytes()
    Path(journal).write_bytes(data[:-20])

    print("[4/4] resume and compare")
    telemetry = CampaignTelemetry()
    resumed = sweep_scenario(
        **KWARGS, journal_path=journal, resume=True, telemetry=telemetry
    )
    if telemetry.trials_resumed == 0:
        print("FAIL: nothing was resumed from the journal")
        return 1
    if fingerprint_of(resumed) != truth:
        print("FAIL: resumed sweep differs from the uninterrupted run")
        print(f"  truth:   {truth}")
        print(f"  resumed: {fingerprint_of(resumed)}")
        return 1
    print(
        f"OK: {telemetry.trials_resumed} resumed + "
        f"{telemetry.trials_completed} fresh trials, bit-identical to the "
        "uninterrupted run"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
