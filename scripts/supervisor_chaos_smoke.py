#!/usr/bin/env python
"""Supervisor chaos smoke: supervision must never change campaign results.

CI runs this end-to-end check on every push (it also runs fine locally):

1. ground truth — run a small fault-injected campaign serially;
2. supervised chaos — re-run under ``local-supervised`` while a
   :class:`~repro.core.chaos.ChaosMonkey` SIGKILLs one worker, mutes
   another's heartbeats (the monitor must classify it *hung* and reclaim
   its lease well before the long TTL), corrupts a third's payload and
   plants a foreign lease on a fourth (contention: wait out, reclaim,
   run exactly once) — results must be *bit-identical* to the ground
   truth and telemetry must show the supervision (reclaims, missed
   heartbeats, backoffs);
3. breaker trip — kill *every* attempt of enough trials to open the
   circuit breaker; the campaign must still complete bit-identically via
   the degradation ladder (supervised → chaos-free pool → serial);
4. journalled kill + lease expiry + resume — a journalled supervised
   campaign is killed leaving a stale lease behind; the resume must
   reclaim the expired lease, finish, and match the truth — then the
   journal is compacted and must still resume with identical state.

Exits 0 on success, 1 with a diagnostic on any mismatch.
"""

import dataclasses
import sys
import tempfile
import time
from pathlib import Path

from repro.core.chaos import ChaosMonkey
from repro.core.config import Scenario
from repro.core.journal import (
    campaign_fingerprint,
    compact_journal,
    inspect_journal,
    open_journal,
    read_completed,
    read_lease_state,
)
from repro.core.runner import TrialRunner, TrialSpec
from repro.core.sweep import _run_scenario_trial
from repro.metrics.collector import CampaignTelemetry

BASE = Scenario(
    num_nodes=10,
    road_length_m=900.0,
    sim_time_s=15.0,
    senders=(1, 2),
    traffic_start_s=2.0,
    traffic_stop_s=12.0,
    dawdle_p=0.0,
    seed=3,
    backend="local-supervised",
    faults=[{"kind": "node-crash", "nodes": [3], "at_s": 5.0, "down_s": 4.0}],
)
TRIALS = 5


def make_specs():
    return [
        TrialSpec(
            key=("supervised", trial),
            fn=_run_scenario_trial,
            args=(dataclasses.replace(BASE, seed=BASE.seed + 1000 * trial),),
        )
        for trial in range(TRIALS)
    ]


def fingerprint_of(results):
    return [
        (
            r.pdr(),
            r.collector.num_originated,
            r.collector.num_delivered,
            r.frames_on_air,
            r.delay_stats().mean_s,
            r.channel_telemetry.events_processed,
            len(r.fault_events),
        )
        for r in results
    ]


def values_in_order(outcomes):
    ordered = sorted(outcomes, key=lambda o: o.index)
    return [o.value for o in ordered]


def main() -> int:
    print("[1/4] ground truth: serial campaign", flush=True)
    telemetry = CampaignTelemetry()
    outcomes = TrialRunner(max_workers=1, telemetry=telemetry).run(make_specs())
    if any(not o.ok for o in outcomes):
        print("FAIL: ground-truth campaign had failures")
        return 1
    truth = fingerprint_of(values_in_order(outcomes))

    print("[2/4] supervised chaos: SIGKILL + mute + corrupt + contention")
    chaos = ChaosMonkey(kill_on={0}, mute_on={1}, corrupt_on={2},
                        contend_on={3})
    telemetry = CampaignTelemetry()
    started = time.monotonic()
    outcomes = TrialRunner(
        max_workers=4,
        backend="local-supervised",
        lease_ttl_s=120.0,  # only heartbeat monitoring can catch the mute
        heartbeat_interval_s=0.1,
        max_attempts=3,
        retry_backoff_base_s=0.01,
        telemetry=telemetry,
        chaos=chaos,
    ).run(make_specs())
    elapsed = time.monotonic() - started
    if any(not o.ok for o in outcomes):
        print("FAIL: supervised chaos campaign did not recover every trial")
        return 1
    if telemetry.heartbeats_missed < 1:
        print("FAIL: the muted worker was not caught by heartbeat monitoring")
        return 1
    if telemetry.leases_reclaimed < 2:
        print(
            "FAIL: expected lease reclaims for the killed/muted workers, "
            f"got {telemetry.leases_reclaimed}"
        )
        return 1
    if not any(e.kind == "lease-contended" for e in telemetry.events):
        print("FAIL: lease contention was never planted")
        return 1
    if elapsed > 90.0:
        print(
            f"FAIL: supervised recovery took {elapsed:.0f}s — the muted "
            "worker was waited out via the lease TTL instead of being "
            "killed as hung"
        )
        return 1
    chaotic = fingerprint_of(values_in_order(outcomes))
    if chaotic != truth:
        print("FAIL: supervised chaos campaign differs from the truth")
        print(f"  truth: {truth}")
        print(f"  chaos: {chaotic}")
        return 1

    print("[3/4] breaker trip: kill-all until the breaker degrades the run")
    chaos = ChaosMonkey(kill_all_attempts_on={0, 1, 2})
    telemetry = CampaignTelemetry()
    outcomes = TrialRunner(
        max_workers=2,
        backend="local-supervised",
        lease_ttl_s=30.0,
        max_attempts=2,
        breaker_threshold=3,
        retry_backoff_base_s=0.01,
        telemetry=telemetry,
        chaos=chaos,
    ).run(make_specs())
    if any(not o.ok for o in outcomes):
        print("FAIL: breaker-tripped campaign did not complete")
        return 1
    if telemetry.breaker_trips != 1 or telemetry.degradations < 1:
        print(
            "FAIL: breaker telemetry missing "
            f"(trips={telemetry.breaker_trips}, "
            f"degradations={telemetry.degradations})"
        )
        return 1
    degraded = fingerprint_of(values_in_order(outcomes))
    if degraded != truth:
        print("FAIL: degraded campaign differs from the truth")
        return 1

    print("[4/4] journalled kill + stale lease, resume, then compact")
    journal_path = str(Path(tempfile.mkdtemp(prefix="sup-chaos-")) / "j.jsonl")
    fingerprint = campaign_fingerprint(
        kind="supervisor-chaos-smoke", scenario=BASE.to_dict(), trials=TRIALS
    )
    journal = open_journal(journal_path, fingerprint, resume=False)
    chaos = ChaosMonkey(kill_all_attempts_on={1})
    try:
        outcomes = TrialRunner(
            max_workers=4,
            backend="local-supervised",
            lease_ttl_s=30.0,
            max_attempts=2,
            breaker_threshold=100,  # keep the breaker out of this leg
            retry_backoff_base_s=0.01,
            chaos=chaos,
        ).run(make_specs()[:4], journal=journal)
        # Leave a stale foreign lease behind, as if another runner died
        # holding trial 4: the resume must wait it out (it is already
        # expired) and reclaim without double-running.
        journal.record_lease(
            ("supervised", 4), "dead-runner", 1, ttl_s=0.001
        )
    finally:
        journal.close()
    time.sleep(0.05)  # let the planted lease expire

    telemetry = CampaignTelemetry()
    journal = open_journal(journal_path, fingerprint, resume=True)
    try:
        outcomes = TrialRunner(
            max_workers=4, backend="local-supervised", telemetry=telemetry
        ).run(make_specs(), journal=journal)
    finally:
        journal.close()
    if any(not o.ok for o in outcomes):
        print("FAIL: resumed supervised campaign still has failures")
        return 1
    if telemetry.trials_resumed == 0:
        print("FAIL: nothing was resumed from the journal")
        return 1
    if not any(
        e.kind == "lease-reclaimed" and e.key == ("supervised", 4)
        for e in telemetry.events
    ):
        print("FAIL: the stale lease on trial 4 was never reclaimed")
        return 1
    resumed = fingerprint_of(values_in_order(outcomes))
    if resumed != truth:
        print("FAIL: resumed campaign differs from the truth")
        return 1

    # Compaction round-trip: resume-relevant state must be untouched.
    completed_before = sorted(read_completed(journal_path, fingerprint))
    leases_before = read_lease_state(journal_path, fingerprint)
    bytes_before, bytes_after = compact_journal(journal_path)
    if bytes_after > bytes_before:
        print("FAIL: compaction grew the journal "
              f"({bytes_before} -> {bytes_after})")
        return 1
    if sorted(read_completed(journal_path, fingerprint)) != completed_before:
        print("FAIL: compaction changed the journal's completed trials")
        return 1
    if read_lease_state(journal_path, fingerprint) != leases_before:
        print("FAIL: compaction changed the journal's live leases")
        return 1
    stats = inspect_journal(journal_path)
    if stats.superseded != 0 or stats.heartbeats != 0:
        print("FAIL: compaction left superseded records behind")
        return 1
    # The behavioral proof: a resume from the compacted journal replays
    # every trial from disk and still matches the serial truth.
    telemetry = CampaignTelemetry()
    journal = open_journal(journal_path, fingerprint, resume=True)
    try:
        outcomes = TrialRunner(
            max_workers=4, backend="local-supervised", telemetry=telemetry
        ).run(make_specs(), journal=journal)
    finally:
        journal.close()
    if telemetry.trials_resumed != TRIALS:
        print(
            "FAIL: compacted journal resumed "
            f"{telemetry.trials_resumed}/{TRIALS} trials"
        )
        return 1
    if fingerprint_of(values_in_order(outcomes)) != truth:
        print("FAIL: compacted-journal resume differs from the truth")
        return 1

    print(
        "OK: supervised chaos, breaker degradation and lease-expiry resume "
        f"all bit-identical; compaction saved {bytes_before - bytes_after} "
        f"bytes and kept resume state"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
