"""CI smoke: grid culling is exact on a mid-scale end-to-end scenario.

Runs the full simulation stack (mobility, PHY, MAC, routing, traffic)
twice on one seeded 300-node scenario — once with the dense O(N^2)
link cache, once with uniform-grid spatial culling — and requires the
two runs to be bit-identical: same PDR, same packet counts, same frames
on air, same mean delay, same control overhead.

This is the contract the scale benchmark's speedup rests on: with
deterministic propagation and a cull radius covering the maximum link
range, culling changes *work*, never *results*.  The node count is
large enough that the grid genuinely culls (300 nodes spread over
30 km of road, ~100 m spacing) yet the sim stays a sub-minute smoke.

Run:  PYTHONPATH=src python scripts/scale_smoke.py
"""

import dataclasses
import sys
import time

from repro.core.config import Scenario
from repro.core.simulation import CavenetSimulation

BASE = Scenario(
    num_nodes=300,
    road_length_m=30_000.0,
    sim_time_s=6.0,
    traffic_start_s=1.0,
    traffic_stop_s=5.0,
    senders=(1, 2, 3),
    seed=11,
)


def _metrics(scenario):
    start = time.perf_counter()
    result = CavenetSimulation(scenario).run()
    wall = time.perf_counter() - start
    return wall, (
        result.pdr(),
        result.collector.num_originated,
        result.collector.num_delivered,
        result.frames_on_air,
        result.delay_stats().mean_s,
        result.control_overhead().packets,
    )


def main_smoke():
    dense = dataclasses.replace(BASE, spatial="dense")
    grid = dataclasses.replace(BASE, spatial="grid")

    wall_d, metrics_d = _metrics(dense)
    print(f"dense: {wall_d:.2f} s  metrics={metrics_d}")
    wall_g, metrics_g = _metrics(grid)
    print(f"grid:  {wall_g:.2f} s  metrics={metrics_g}")

    if metrics_g != metrics_d:
        print("::error::grid run diverged from dense run on the seeded "
              "N=300 scenario")
        for name, d, g in zip(
            ("pdr", "originated", "delivered", "frames_on_air",
             "mean_delay_s", "control_packets"),
            metrics_d, metrics_g,
        ):
            marker = "  <-- differs" if d != g else ""
            print(f"  {name}: dense={d!r} grid={g!r}{marker}")
        raise SystemExit(1)

    print("scale smoke OK — grid bit-identical to dense at N=300 "
          f"(dense {wall_d:.2f} s, grid {wall_g:.2f} s)")


if __name__ == "__main__":
    sys.exit(main_smoke())
