"""CI perf-regression gate over the committed benchmark baseline.

Compares a metric from the current benchmark artifact against the
committed baseline (``benchmarks/baseline/BENCH_channel.json``) and
fails the job when throughput regresses past the hard floor:

* current < 80% of baseline  ->  ``::error::`` + exit 1 (gate fails)
* current < 90% of baseline  ->  ``::warning::`` (gate passes, flagged)
* otherwise                  ->  OK (improvements update the printed
  headroom; refresh the baseline file when they stick)

The metric is a dotted path into the benchmark JSON, default
``fast.frames_per_s`` — the vectorized channel path whose regression
history this gate exists to protect.  CI timing noise on shared
runners is real, which is why the hard floor sits at -20% with a
-10% early-warning band rather than a tight threshold.

``--floor METRIC=VALUE`` (repeatable) additionally enforces *absolute*
floors on the current artifact — e.g.
``--floor end_to_end.n3000.speedup=5.0`` holds the compiled-kernel
end-to-end speedup promise regardless of what the baseline file says.

Exit codes follow the CLI's convention: a perf regression exits 1; a
*configuration* problem — unreadable or schema-mismatched JSON, an
unknown metric path, a non-numeric value, a malformed ``--floor`` —
prints an ``error (ConfigError):`` line to stderr and exits 2, so CI
can tell "the code got slower" from "the gate itself is mis-wired".

Run:  python scripts/bench_gate.py \
          --baseline benchmarks/baseline/BENCH_channel.json \
          --current benchmarks/out/BENCH_channel.json
"""

import argparse
import json
import sys

FAIL_RATIO = 0.80
WARN_RATIO = 0.90

#: Exit code for gate misconfiguration (matches the CLI's ReproError
#: convention: bad input exits 2, a real perf regression exits 1).
EXIT_CONFIG = 2


class GateConfigError(Exception):
    """The gate cannot run: bad file, bad schema, or bad flag."""


def lookup(document, dotted, source):
    """Resolve a dotted path (``fast.frames_per_s``) into a number."""
    value = document
    for key in dotted.split("."):
        if not isinstance(value, dict) or key not in value:
            raise GateConfigError(
                f"metric path {dotted!r} not found in {source} "
                f"(missing key {key!r}); the benchmark JSON schema and "
                "the gate invocation are out of sync"
            )
        value = value[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise GateConfigError(
            f"metric {dotted!r} in {source} is {type(value).__name__}, "
            "expected a number"
        )
    return float(value)


def load_json(path, role):
    try:
        with open(path) as handle:
            document = json.load(handle)
    except OSError as exc:
        raise GateConfigError(f"cannot read {role} {path}: {exc}")
    except ValueError as exc:
        raise GateConfigError(f"{role} {path} is not valid JSON: {exc}")
    if not isinstance(document, dict):
        raise GateConfigError(
            f"{role} {path} holds {type(document).__name__}, "
            "expected a JSON object of metrics"
        )
    return document


def parse_floor(spec):
    metric, sep, raw = spec.partition("=")
    if not sep or not metric:
        raise GateConfigError(
            f"--floor expects METRIC=VALUE (dotted metric path), got {spec!r}"
        )
    try:
        value = float(raw)
    except ValueError:
        raise GateConfigError(
            f"--floor {metric}: floor value {raw!r} is not a number"
        )
    return metric, value


def run_gate(args):
    baseline_doc = load_json(args.baseline, "baseline")
    current_doc = load_json(args.current, "current benchmark")

    failures = 0

    baseline = lookup(baseline_doc, args.metric, f"baseline {args.baseline}")
    current = lookup(current_doc, args.metric, f"current {args.current}")
    if baseline <= 0:
        raise GateConfigError(
            f"baseline {args.metric} is {baseline:g}; the gate needs a "
            f"positive baseline — refresh {args.baseline} from a healthy run"
        )

    ratio = current / baseline
    summary = (
        f"{args.metric}: current {current:,.2f} vs baseline "
        f"{baseline:,.2f} ({ratio:.1%} of baseline)"
    )
    if ratio < FAIL_RATIO:
        print(
            f"::error::perf regression — {summary}; the floor is "
            f"{FAIL_RATIO:.0%}"
        )
        failures += 1
    elif ratio < WARN_RATIO:
        print(
            f"::warning::perf drift — {summary}; the failure floor is "
            f"{FAIL_RATIO:.0%}"
        )
    else:
        print(f"perf gate OK — {summary}")

    for spec in args.floor or []:
        metric, floor = parse_floor(spec)
        value = lookup(current_doc, metric, f"current {args.current}")
        if value < floor:
            print(
                f"::error::perf floor broken — {metric} is {value:,.2f}, "
                f"the hard floor is {floor:,.2f}"
            )
            failures += 1
        else:
            print(
                f"perf floor OK — {metric} is {value:,.2f} "
                f"(floor {floor:,.2f})"
            )

    return 1 if failures else 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default="benchmarks/baseline/BENCH_channel.json",
        help="committed baseline JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--current", default="benchmarks/out/BENCH_channel.json",
        help="freshly produced benchmark JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--metric", default="fast.frames_per_s",
        help="dotted path of the gated metric (default: %(default)s)",
    )
    parser.add_argument(
        "--floor", action="append", metavar="METRIC=VALUE",
        help="absolute floor on a current-artifact metric (repeatable); "
        "fails the gate when the metric is below VALUE",
    )
    args = parser.parse_args(argv)
    try:
        return run_gate(args)
    except GateConfigError as exc:
        print(f"::error::{exc}")
        print(f"error (ConfigError): {exc}", file=sys.stderr)
        return EXIT_CONFIG


if __name__ == "__main__":
    sys.exit(main())
