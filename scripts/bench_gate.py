"""CI perf-regression gate over the committed benchmark baseline.

Compares a metric from the current benchmark artifact against the
committed baseline (``benchmarks/baseline/BENCH_channel.json``) and
fails the job when throughput regresses past the hard floor:

* current < 80% of baseline  ->  ``::error::`` + exit 1 (gate fails)
* current < 90% of baseline  ->  ``::warning::`` (gate passes, flagged)
* otherwise                  ->  OK (improvements update the printed
  headroom; refresh the baseline file when they stick)

The metric is a dotted path into the benchmark JSON, default
``fast.frames_per_s`` — the vectorized channel path whose regression
history this gate exists to protect.  CI timing noise on shared
runners is real, which is why the hard floor sits at -20% with a
-10% early-warning band rather than a tight threshold.

Run:  python scripts/bench_gate.py \
          --baseline benchmarks/baseline/BENCH_channel.json \
          --current benchmarks/out/BENCH_channel.json
"""

import argparse
import json
import sys

FAIL_RATIO = 0.80
WARN_RATIO = 0.90


def lookup(document, dotted):
    """Resolve a dotted path (``fast.frames_per_s``) into a number."""
    value = document
    for key in dotted.split("."):
        if not isinstance(value, dict) or key not in value:
            raise SystemExit(
                f"::error::metric path {dotted!r} not found in benchmark "
                f"JSON (missing key {key!r})"
            )
        value = value[key]
    if not isinstance(value, (int, float)):
        raise SystemExit(
            f"::error::metric {dotted!r} is {type(value).__name__}, "
            "expected a number"
        )
    return float(value)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default="benchmarks/baseline/BENCH_channel.json",
        help="committed baseline JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--current", default="benchmarks/out/BENCH_channel.json",
        help="freshly produced benchmark JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--metric", default="fast.frames_per_s",
        help="dotted path of the gated metric (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.baseline) as handle:
            baseline_doc = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SystemExit(
            f"::error::cannot read baseline {args.baseline}: {exc}"
        )
    try:
        with open(args.current) as handle:
            current_doc = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SystemExit(
            f"::error::cannot read current benchmark {args.current}: {exc}"
        )

    baseline = lookup(baseline_doc, args.metric)
    current = lookup(current_doc, args.metric)
    if baseline <= 0:
        raise SystemExit(
            f"::error::baseline {args.metric} is {baseline:g}; the gate "
            "needs a positive baseline — refresh "
            f"{args.baseline} from a healthy run"
        )

    ratio = current / baseline
    summary = (
        f"{args.metric}: current {current:,.1f} vs baseline "
        f"{baseline:,.1f} ({ratio:.1%} of baseline)"
    )
    if ratio < FAIL_RATIO:
        print(
            f"::error::perf regression — {summary}; the floor is "
            f"{FAIL_RATIO:.0%}"
        )
        return 1
    if ratio < WARN_RATIO:
        print(
            f"::warning::perf drift — {summary}; the failure floor is "
            f"{FAIL_RATIO:.0%}"
        )
        return 0
    print(f"perf gate OK — {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
