#!/usr/bin/env python
"""Dir-queue chaos smoke: multi-host execution must never change results.

CI runs this end-to-end check on every push (it also runs fine locally):

1. ground truth — run a small fault-injected campaign serially, then
   re-run it through the ``dir-queue`` backend with four workers while a
   :class:`~repro.core.chaos.ChaosMonkey` SIGKILLs one trial's worker,
   mutes another's heartbeats (the lease observer must see the frozen
   claim and reclaim with a higher fencing token) and plants a foreign
   claim on a third (contention: wait it out, take over, run exactly
   once) — results must be *bit-identical* to the serial truth;
2. stale fence — a paused worker holding fencing token 1 tries to
   commit after a reclaimer was issued token 2; the commit must be
   provably rejected (:class:`StaleLeaseError` with both tokens, a
   stale marker on disk, no result file) and the reclaimer's commit
   must pass through the same fence untouched;
3. kill the scheduler — a ``repro serve`` spool job is SIGKILLed
   mid-campaign (after at least one trial has been journalled); a
   fresh scheduler pointed at the same spool must finish the job from
   the journal alone, duplicate-free and bit-identical to a local
   serial sweep of the same envelope;
4. read-only degrade — the queue directory stops being writable
   mid-campaign; the backend must degrade down the ladder (dir-queue →
   local-supervised) and still complete bit-identically.

Exits 0 on success, 1 with a diagnostic on any mismatch.
"""

import dataclasses
import json
import multiprocessing
import os
import signal
import sys
import tempfile
import time
from pathlib import Path

from repro.core.chaos import ChaosMonkey
from repro.core.config import Scenario
from repro.core.distq import DirQueue, DirQueueBackend
from repro.core.runner import TrialRunner, TrialSpec
from repro.core.serve import (
    decode_result_value,
    serve_spool,
    submit_job,
    tail_results,
)
from repro.core.sweep import _run_scenario_trial, sweep_scenario
from repro.metrics.collector import CampaignTelemetry
from repro.util.errors import StaleLeaseError

BASE = Scenario(
    num_nodes=10,
    road_length_m=900.0,
    sim_time_s=15.0,
    senders=(1, 2),
    traffic_start_s=2.0,
    traffic_stop_s=12.0,
    dawdle_p=0.0,
    seed=3,
    faults=[{"kind": "node-crash", "nodes": [3], "at_s": 5.0, "down_s": 4.0}],
)
TRIALS = 5


def make_specs():
    return [
        TrialSpec(
            key=("distq", trial),
            fn=_run_scenario_trial,
            args=(dataclasses.replace(BASE, seed=BASE.seed + 1000 * trial),),
        )
        for trial in range(TRIALS)
    ]


def fingerprint_of(results):
    return [
        (
            r.pdr(),
            r.collector.num_originated,
            r.collector.num_delivered,
            r.frames_on_air,
            r.delay_stats().mean_s,
            r.channel_telemetry.events_processed,
            len(r.fault_events),
        )
        for r in results
    ]


def values_in_order(outcomes):
    ordered = sorted(outcomes, key=lambda o: o.index)
    return [o.value for o in ordered]


def _leg_1_chaos(truth, workdir) -> bool:
    print("[1/4] dir-queue chaos: 4 workers, SIGKILL + mute + contention")
    chaos = ChaosMonkey(kill_on={0}, mute_on={1}, contend_on={2})
    telemetry = CampaignTelemetry()
    outcomes = TrialRunner(
        max_workers=4,
        backend="dir-queue",
        queue_dir=str(workdir / "chaos-queue"),
        lease_ttl_s=1.5,
        max_attempts=3,
        telemetry=telemetry,
        chaos=chaos,
    ).run(make_specs())
    if any(not o.ok for o in outcomes):
        print("FAIL: dir-queue chaos campaign did not recover every trial")
        return False
    if telemetry.claims_won < TRIALS:
        print(f"FAIL: expected >= {TRIALS} claims, "
              f"got {telemetry.claims_won}")
        return False
    if telemetry.leases_reclaimed < 1:
        print("FAIL: the SIGKILLed/muted workers were never reclaimed")
        return False
    if not any(e.kind == "lease-contended" for e in telemetry.events):
        print("FAIL: lease contention was never planted")
        return False
    chaotic = fingerprint_of(values_in_order(outcomes))
    if chaotic != truth:
        print("FAIL: dir-queue chaos campaign differs from the truth")
        print(f"  truth: {truth}")
        print(f"  chaos: {chaotic}")
        return False
    return True


def _leg_2_stale_fence(workdir) -> bool:
    print("[2/4] stale fence: a fenced-out worker's late commit is rejected")
    queue = DirQueue(str(workdir / "fence-queue"), ttl_s=30.0)
    queue.setup({"fingerprint": "fence-smoke", "ttl_s": 30.0,
                 "quarantine_after": 3, "max_attempts": 2,
                 "heartbeat_s": 1.0, "trial_timeout_s": None})
    tid = queue.enqueue({"key": 0, "fn": None, "args": (), "kwargs": {},
                         "index": 0, "chaos_mode": None, "kill_all": False})
    stale = queue.try_claim_fresh(tid, "paused-host:111:1")
    reclaim = queue.try_takeover(tid, "reclaimer-host:222:1", stale)
    if stale is None or reclaim is None or reclaim.token != stale.token + 1:
        print("FAIL: claim/takeover protocol did not issue fencing tokens")
        return False
    record = {"status": "ok", "value": 41, "attempts": 1, "wall_clock_s": 0.1}
    try:
        queue.commit_result(tid, stale.owner, stale.token, record)
    except StaleLeaseError as error:
        if (error.token, error.current) != (stale.token, reclaim.token):
            print(f"FAIL: stale rejection lacked evidence: {error}")
            return False
    else:
        print("FAIL: the fenced-out commit was accepted")
        return False
    if queue.has_result(tid):
        print("FAIL: the rejected commit still left a result behind")
        return False
    if not any(m.startswith(tid) for m in queue.stale_markers()):
        print("FAIL: no stale marker was written for the audit trail")
        return False
    queue.commit_result(
        tid, reclaim.owner, reclaim.token,
        {"status": "ok", "value": 42, "attempts": 2, "wall_clock_s": 0.1},
    )
    committed = queue.read_result(tid)
    if committed["value"] != 42 or committed["token"] != reclaim.token:
        print("FAIL: the rightful holder's commit did not land")
        return False
    return True


def _is_trial_record(line: str) -> bool:
    try:
        return json.loads(line).get("kind") == "trial"
    except ValueError:
        return False  # torn tail mid-poll


def _leg_3_kill_scheduler(workdir) -> bool:
    print("[3/4] kill the scheduler mid-job, restart, resume from spool")
    spool = str(workdir / "spool")
    envelope = {
        "scenario": BASE.to_dict(),
        "field": "num_nodes",
        "values": [10, 12],
        "trials": 2,
        "max_workers": 2,
    }
    name = submit_job(spool, dict(envelope))
    job_dir = os.path.join(spool, "jobs", name)
    journal_path = os.path.join(job_dir, "journal.jsonl")
    done_marker = os.path.join(job_dir, "done")

    context = multiprocessing.get_context("fork")
    scheduler = context.Process(
        target=serve_spool, args=(spool,), kwargs={"once": True}
    )
    scheduler.start()
    # Wait until at least one trial has been journalled, then SIGKILL the
    # scheduler with the job still unfinished — the exact crash window a
    # resume must cover.
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        if os.path.exists(done_marker):
            break
        try:
            with open(journal_path, "r", encoding="utf-8") as handle:
                if any(_is_trial_record(line) for line in handle):
                    break
        except OSError:
            pass
        time.sleep(0.05)
    else:
        print("FAIL: the scheduler never journalled a trial")
        return False
    killed_midway = not os.path.exists(done_marker)
    os.kill(scheduler.pid, signal.SIGKILL)
    scheduler.join(timeout=30)
    if not killed_midway:
        # The job outran the kill window; resubmitting still proves the
        # restart path — everything must come back from the journal.
        submit_job(spool, dict(envelope))

    telemetry = CampaignTelemetry()
    if serve_spool(spool, once=True, telemetry=telemetry) != 1:
        print("FAIL: the restarted scheduler did not pick up the dead job")
        return False
    if killed_midway and telemetry.trials_resumed < 1:
        print("FAIL: the restarted scheduler re-ran journalled trials")
        return False
    if not os.path.exists(done_marker):
        print("FAIL: the resumed job never finished")
        return False
    with open(done_marker, "r", encoding="utf-8") as handle:
        summary = json.load(handle)
    if summary["ok"] != 4 or summary["failed"] != 0:
        print(f"FAIL: resumed job summary wrong: {summary}")
        return False

    records = list(tail_results(job_dir, follow=False))
    keys = [tuple(r["key"]) for r in records]
    if len(keys) != len(set(keys)) or len(keys) != 4:
        print(f"FAIL: results stream not duplicate-free: {sorted(keys)}")
        return False
    served = {
        tuple(r["key"]): fingerprint_of([decode_result_value(r)])[0]
        for r in records
    }
    local = sweep_scenario(BASE, "num_nodes", [10, 12], trials=2)
    serial = {
        (point.value, trial): fingerprint_of([result])[0]
        for point in local.points
        for trial, result in enumerate(point.results)
    }
    if served != serial:
        print("FAIL: served campaign differs from the local serial sweep")
        print(f"  serial: {serial}")
        print(f"  served: {served}")
        return False
    return True


def _leg_4_read_only_degrade(truth, workdir) -> bool:
    print("[4/4] read-only queue dir: degrade down the ladder, identical")
    original = DirQueueBackend._probe_writable
    DirQueueBackend._probe_writable = staticmethod(lambda root: False)
    try:
        telemetry = CampaignTelemetry()
        outcomes = TrialRunner(
            max_workers=2,
            backend="dir-queue",
            queue_dir=str(workdir / "ro-queue"),
            lease_ttl_s=5.0,
            telemetry=telemetry,
        ).run(make_specs())
    finally:
        DirQueueBackend._probe_writable = original
    if any(not o.ok for o in outcomes):
        print("FAIL: read-only degradation lost trials")
        return False
    degraded = [e for e in telemetry.events if e.kind == "degraded"]
    if not degraded or "writable" not in degraded[0].detail:
        print(f"FAIL: no read-only degradation event (got {degraded})")
        return False
    if fingerprint_of(values_in_order(outcomes)) != truth:
        print("FAIL: degraded campaign differs from the truth")
        return False
    return True


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="distq-chaos-"))
    print("[0/4] ground truth: serial campaign", flush=True)
    outcomes = TrialRunner(max_workers=1).run(make_specs())
    if any(not o.ok for o in outcomes):
        print("FAIL: ground-truth campaign had failures")
        return 1
    truth = fingerprint_of(values_in_order(outcomes))

    if not _leg_1_chaos(truth, workdir):
        return 1
    if not _leg_2_stale_fence(workdir):
        return 1
    if not _leg_3_kill_scheduler(workdir):
        return 1
    if not _leg_4_read_only_degrade(truth, workdir):
        return 1
    print(
        "OK: dir-queue chaos, stale-fence rejection, scheduler kill/resume "
        "and read-only degradation all bit-identical to serial truth"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
