#!/usr/bin/env python
"""Chaos smoke: real worker failures must not change campaign results.

CI runs this end-to-end check on every push (it also runs fine locally):

1. ground truth — run a small fault-injected campaign serially;
2. parallel chaos — re-run with workers while a
   :class:`~repro.core.chaos.ChaosMonkey` SIGKILLs one worker mid-trial,
   hangs another past its timeout and corrupts a third's result payload;
   the retried campaign must be *bit-identical* to the ground truth and
   telemetry must show the carnage (retries, a timeout);
3. journalled kill + resume — a journalled campaign where one trial is
   SIGKILLed on every attempt (a journalled failure), then resumed
   without chaos; the merged results must again be bit-identical and
   telemetry must show resumed trials.

Exits 0 on success, 1 with a diagnostic on any mismatch.
"""

import dataclasses
import sys
import tempfile
from pathlib import Path

from repro.core.chaos import ChaosMonkey
from repro.core.config import Scenario
from repro.core.journal import campaign_fingerprint, open_journal
from repro.core.runner import TrialRunner, TrialSpec
from repro.core.sweep import _run_scenario_trial
from repro.metrics.collector import CampaignTelemetry

BASE = Scenario(
    num_nodes=10,
    road_length_m=900.0,
    sim_time_s=15.0,
    senders=(1, 2),
    traffic_start_s=2.0,
    traffic_stop_s=12.0,
    dawdle_p=0.0,
    seed=3,
    # Fault injection rides along so chaos also exercises the
    # fault-model code path through worker processes.
    faults=[{"kind": "node-crash", "nodes": [3], "at_s": 5.0, "down_s": 4.0}],
)
TRIALS = 4


def make_specs():
    return [
        TrialSpec(
            key=("chaos", trial),
            fn=_run_scenario_trial,
            args=(dataclasses.replace(BASE, seed=BASE.seed + 1000 * trial),),
        )
        for trial in range(TRIALS)
    ]


def fingerprint_of(results):
    return [
        (
            r.pdr(),
            r.collector.num_originated,
            r.collector.num_delivered,
            r.frames_on_air,
            r.delay_stats().mean_s,
            r.channel_telemetry.events_processed,
            len(r.fault_events),
        )
        for r in results
    ]


def values_in_order(outcomes):
    ordered = sorted(outcomes, key=lambda o: o.index)
    return [o.value for o in ordered]


def main() -> int:
    print("[1/3] ground truth: serial campaign", flush=True)
    telemetry = CampaignTelemetry()
    outcomes = TrialRunner(max_workers=1, telemetry=telemetry).run(make_specs())
    if any(not o.ok for o in outcomes):
        print("FAIL: ground-truth campaign had failures")
        return 1
    truth = fingerprint_of(values_in_order(outcomes))
    timeout = max(15.0, 5.0 * max(telemetry.wall_clock_per_trial()))

    print("[2/3] parallel chaos: SIGKILL + hang + corrupt, then compare")
    chaos = ChaosMonkey(kill_on={0}, hang_on={1}, corrupt_on={2})
    telemetry = CampaignTelemetry()
    outcomes = TrialRunner(
        max_workers=4,
        trial_timeout_s=timeout,
        max_attempts=3,
        telemetry=telemetry,
        chaos=chaos,
    ).run(make_specs())
    if any(not o.ok for o in outcomes):
        print("FAIL: chaos campaign did not recover every trial")
        return 1
    if telemetry.retries < 3 or telemetry.timeouts < 1:
        print(
            "FAIL: chaos left no trace in telemetry "
            f"(retries={telemetry.retries}, timeouts={telemetry.timeouts})"
        )
        return 1
    chaotic = fingerprint_of(values_in_order(outcomes))
    if chaotic != truth:
        print("FAIL: chaos campaign differs from the uninterrupted run")
        print(f"  truth: {truth}")
        print(f"  chaos: {chaotic}")
        return 1

    print("[3/3] journalled kill-every-attempt, then resume without chaos")
    journal_path = str(Path(tempfile.mkdtemp(prefix="chaos-")) / "j.jsonl")
    fingerprint = campaign_fingerprint(
        kind="chaos-smoke", scenario=BASE.to_dict(), trials=TRIALS
    )
    journal = open_journal(journal_path, fingerprint, resume=False)
    chaos = ChaosMonkey(kill_all_attempts_on={1})
    try:
        outcomes = TrialRunner(
            max_workers=4, max_attempts=2, chaos=chaos
        ).run(make_specs(), journal=journal)
    finally:
        journal.close()
    failed = [o for o in outcomes if not o.ok]
    if len(failed) != 1:
        print(f"FAIL: expected exactly 1 journalled failure, got {len(failed)}")
        return 1

    telemetry = CampaignTelemetry()
    journal = open_journal(journal_path, fingerprint, resume=True)
    try:
        outcomes = TrialRunner(max_workers=4, telemetry=telemetry).run(
            make_specs(), journal=journal
        )
    finally:
        journal.close()
    if any(not o.ok for o in outcomes):
        print("FAIL: resumed campaign still has failures")
        return 1
    if telemetry.trials_resumed == 0:
        print("FAIL: nothing was resumed from the journal")
        return 1
    resumed = fingerprint_of(values_in_order(outcomes))
    if resumed != truth:
        print("FAIL: resumed campaign differs from the uninterrupted run")
        print(f"  truth:   {truth}")
        print(f"  resumed: {resumed}")
        return 1
    print(
        f"OK: chaos recovered bit-identically; resume restored "
        f"{telemetry.trials_resumed} trials and re-ran the killed one"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
