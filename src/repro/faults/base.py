"""The fault-model contract: what a registered ``fault`` factory returns.

A fault factory is called once per spec entry in ``Scenario.faults`` as
``factory(context, **options) -> FaultModel`` where ``options`` is the
spec dict minus its ``"kind"`` key.  The returned model's :meth:`arm` is
called once, after nodes/traffic are built but before the event loop
starts; it schedules whatever DES events the fault needs (via
``context.sim.schedule_at``) and must not mutate simulation state
directly at arm time.

Determinism rules every fault model must follow:

- Randomness only through ``context.rng`` (a per-fault named stream of
  the run's root seed).  Draw the full schedule at arm time when
  feasible — draws inside event callbacks interleave with other events'
  ordering and are harder to reason about.
- No wall-clock, no OS state: a fault schedule is a pure function of
  (scenario, seed).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # imported only for annotations; avoids runtime cycles
    from repro.core.config import Scenario
    from repro.des.engine import Simulator
    from repro.metrics.collector import MetricsCollector
    from repro.phy.channel import Channel


@dataclasses.dataclass
class FaultContext:
    """Everything a fault model may touch, handed to its factory.

    Attributes:
        sim: the event loop; schedule fault transitions through it.
        scenario: the immutable scenario being run (for ``sim_time_s``,
            node counts, flow endpoints).
        nodes: ``{node_id: Node}`` for the run.
        channel: the shared channel (mute/attenuation hooks).
        metrics: the run's collector; fault transitions are recorded
            here so resilience metrics can correlate traffic with
            fault timelines.
        rng: this fault's own named random stream.
    """

    sim: "Simulator"
    scenario: "Scenario"
    nodes: Dict[int, Any]
    channel: "Channel"
    metrics: "MetricsCollector"
    rng: Any


class FaultModel:
    """Base class for fault models (subclassing is optional but handy).

    The registry contract only requires ``arm()``; this base stores the
    context and offers :meth:`record` for fault-event bookkeeping.
    """

    def __init__(self, context: FaultContext) -> None:
        self.context = context

    def arm(self) -> None:
        """Schedule this fault's events on ``self.context.sim``."""
        raise NotImplementedError

    # -- helpers -------------------------------------------------------------

    def record(
        self, kind: str, node: int = -1, detail: Optional[str] = None
    ) -> None:
        """Log a fault transition into the run's metrics collector."""
        self.context.metrics.record_fault(kind, node, detail)

    def _resolve_nodes(self, nodes: Optional[Any]) -> List[Any]:
        """Map a spec's ``nodes`` option onto live Node objects.

        ``None`` means every node; otherwise an iterable of node ids.
        Unknown ids raise ConfigError at arm time, naming the id.
        """
        from repro.util.errors import ConfigError

        if nodes is None:
            return list(self.context.nodes.values())
        resolved = []
        for node_id in nodes:
            if node_id not in self.context.nodes:
                raise ConfigError(
                    f"fault spec names node {node_id!r}, but the scenario "
                    f"only has nodes {sorted(self.context.nodes)}"
                )
            resolved.append(self.context.nodes[node_id])
        return resolved
