"""Deterministic, seeded fault injection for scenario runs.

The paper's central lesson is that a single silent robustness artifact —
the open-lane teleport wrap — invalidated every protocol comparison run
on top of it.  This package makes disturbance conditions first-class and
*declarative*: a scenario lists fault specs in ``Scenario.faults``, each
naming a registered ``fault`` component, and the simulation arms them as
ordinary DES events before traffic starts.  Every random draw a fault
model makes comes from its own named stream of the run's root seed
(``fault-0``, ``fault-1``, ...), so fault schedules are bit-reproducible
across runs and across worker counts, and an empty ``faults`` list is
bit-identical to a scenario predating this package.

Built-in fault models (all times in seconds of simulation time):

``node-crash``
    Take nodes down and bring them back, either on a fixed schedule
    (``at_s``/``down_s``) or as seeded exponential churn
    (``mtbf_s``/``mttr_s``).  A down node drops rx/tx and wipes its
    volatile routing state, so AODV/OLSR/DYMO must re-converge.
``radio-silence``
    Transmit-blackout windows at the channel layer, per-node (``nodes``)
    or global (``nodes`` omitted), optionally repeating.
``channel-degradation``
    Timed extra path-loss bursts (``extra_loss_db``) applied through the
    channel fast path, preserving scalar/vector bit-identity.
``packet-blackhole``
    Nodes that keep forwarding control traffic but drop transit DATA —
    the classic routing stressor.

Third-party faults register like any other component::

    from repro.core.registry import register
    from repro.faults import FaultModel

    @register("fault", "gps-jammer")
    class GpsJammer(FaultModel):
        def __init__(self, context, at_s=0.0):
            super().__init__(context)
            self.at_s = float(at_s)
        def arm(self):
            self.context.sim.schedule_at(self.at_s, self._jam)

After that, ``Scenario(faults=[{"kind": "gps-jammer", "at_s": 5.0}])``
round-trips through JSON and runs end to end.
"""

from repro.faults.base import FaultContext, FaultModel
from repro.faults.models import (
    ChannelDegradation,
    NodeCrash,
    PacketBlackhole,
    RadioSilence,
)

__all__ = [
    "FaultContext",
    "FaultModel",
    "NodeCrash",
    "RadioSilence",
    "ChannelDegradation",
    "PacketBlackhole",
]
