"""The four built-in fault models.

Every model draws its full schedule at :meth:`arm` time from its own
named RNG stream and plants plain DES events; nothing here touches
simulation state outside the event loop.  Options arrive straight from
the scenario's fault spec dict, so they are validated here with
:class:`~repro.util.errors.ConfigError` — a typo in a scenario file
fails before the run starts, not minutes into a campaign.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.registry import register
from repro.faults.base import FaultContext, FaultModel
from repro.util.errors import ConfigError


def _require_positive(name: str, value: float) -> float:
    value = float(value)
    if value <= 0.0:
        raise ConfigError(f"fault option {name} must be > 0, got {value}")
    return value


def _require_nonnegative(name: str, value: float) -> float:
    value = float(value)
    if value < 0.0:
        raise ConfigError(f"fault option {name} must be >= 0, got {value}")
    return value


@register("fault", "node-crash")
class NodeCrash(FaultModel):
    """Crash nodes and bring them back: fixed schedule or seeded churn.

    Two mutually exclusive modes:

    - Deterministic: ``at_s`` (crash time) and ``down_s`` (outage
      length) apply to every node in ``nodes``.
    - Churn: ``mtbf_s``/``mttr_s`` are the means of exponential
      up-time and down-time draws; each node alternates up/down for the
      whole run on its own pre-drawn timeline.

    A crashing node's radio goes deaf, its MAC flushes its queue (the
    flushed packets count as drops), and its routing protocol wipes all
    volatile state — on recovery the protocol must re-converge from
    nothing, which is exactly the re-convergence time the resilience
    metrics measure.
    """

    def __init__(
        self,
        context: FaultContext,
        nodes: Optional[Sequence[int]] = None,
        at_s: Optional[float] = None,
        down_s: float = 5.0,
        mtbf_s: Optional[float] = None,
        mttr_s: Optional[float] = None,
    ) -> None:
        super().__init__(context)
        churn = mtbf_s is not None or mttr_s is not None
        if at_s is None and not churn:
            raise ConfigError(
                "node-crash needs either at_s (fixed schedule) or "
                "mtbf_s/mttr_s (churn)"
            )
        if at_s is not None and churn:
            raise ConfigError(
                "node-crash takes at_s/down_s OR mtbf_s/mttr_s, not both"
            )
        if churn and (mtbf_s is None or mttr_s is None):
            raise ConfigError("churn mode needs both mtbf_s and mttr_s")
        self.nodes = nodes
        self.at_s = None if at_s is None else _require_nonnegative("at_s", at_s)
        self.down_s = _require_positive("down_s", down_s)
        self.mtbf_s = None if mtbf_s is None else _require_positive(
            "mtbf_s", mtbf_s
        )
        self.mttr_s = None if mttr_s is None else _require_positive(
            "mttr_s", mttr_s
        )

    def arm(self) -> None:
        sim = self.context.sim
        horizon = self.context.scenario.sim_time_s
        targets = self._resolve_nodes(self.nodes)
        if self.at_s is not None:
            for node in targets:
                if self.at_s < horizon:
                    sim.schedule_at(self.at_s, node.fail)
                recover_at = self.at_s + self.down_s
                if recover_at < horizon:
                    sim.schedule_at(recover_at, node.recover)
            return
        # Churn: pre-draw each node's whole up/down timeline now, in node
        # order, so the schedule is a pure function of the fault's stream
        # regardless of how events later interleave.
        rng = self.context.rng
        for node in targets:
            t = float(rng.exponential(self.mtbf_s))
            while t < horizon:
                sim.schedule_at(t, node.fail)
                up_at = t + float(rng.exponential(self.mttr_s))
                if up_at >= horizon:
                    break
                sim.schedule_at(up_at, node.recover)
                t = up_at + float(rng.exponential(self.mtbf_s))


@register("fault", "radio-silence")
class RadioSilence(FaultModel):
    """Transmit-blackout windows at the channel layer.

    During a window the channel suppresses every frame the affected
    senders offer (``nodes``; omitted means *all* senders go silent).
    Reception hardware stays on and routing state survives — this is an
    RF outage, not a crash — so protocols see pure link loss.  With
    ``repeat_every_s`` the window recurs until the end of the run.
    """

    def __init__(
        self,
        context: FaultContext,
        nodes: Optional[Sequence[int]] = None,
        at_s: float = 0.0,
        duration_s: float = 5.0,
        repeat_every_s: Optional[float] = None,
    ) -> None:
        super().__init__(context)
        self.nodes = nodes
        self.at_s = _require_nonnegative("at_s", at_s)
        self.duration_s = _require_positive("duration_s", duration_s)
        self.repeat_every_s = (
            None
            if repeat_every_s is None
            else _require_positive("repeat_every_s", repeat_every_s)
        )
        if (
            self.repeat_every_s is not None
            and self.repeat_every_s <= self.duration_s
        ):
            raise ConfigError(
                "radio-silence repeat_every_s must exceed duration_s "
                f"({self.repeat_every_s} <= {self.duration_s})"
            )

    def arm(self) -> None:
        sim = self.context.sim
        horizon = self.context.scenario.sim_time_s
        # Validate node ids eagerly even though muting is by id.
        targets = self._resolve_nodes(self.nodes)
        ids: Sequence[Optional[int]]
        if self.nodes is None:
            ids = (None,)  # global mute sentinel
        else:
            ids = tuple(node.node_id for node in targets)
        start = self.at_s
        while start < horizon:
            sim.schedule_at(start, self._silence, ids, True)
            stop = start + self.duration_s
            if stop < horizon:
                sim.schedule_at(stop, self._silence, ids, False)
            if self.repeat_every_s is None:
                break
            start += self.repeat_every_s

    def _silence(self, ids: Sequence[Optional[int]], on: bool) -> None:
        channel = self.context.channel
        for node_id in ids:
            if on:
                channel.mute(node_id)
            else:
                channel.unmute(node_id)
            self.record(
                "radio_silence_on" if on else "radio_silence_off",
                -1 if node_id is None else node_id,
            )


@register("fault", "channel-degradation")
class ChannelDegradation(FaultModel):
    """Timed extra path-loss bursts applied through the channel fast path.

    During a burst every received power is scaled by
    ``10 ** (-extra_loss_db / 10)`` — links near the decode threshold
    drop out, shrinking the connectivity graph without touching any
    node.  Since the PHY realism layer landed, this model is a thin
    adapter over the channel's internal fault offset: ``set_attenuation``
    drives a dedicated :class:`~repro.phy.effects.DbOffset` that the
    channel applies *after* the static effect stack and *before* any
    per-frame effects, identically on the vectorized and scalar receive
    paths — so PR 2's bit-identity contract holds during bursts too, and
    a degradation burst composes deterministically with configured
    ``Scenario.effects``.  Bursts set the attenuation absolutely (no
    stacking); overlapping degradation faults are a configuration error
    in spirit, and the later event wins.

    Invalidation is cell-precise: ``Channel.set_attenuation`` drops only
    the cached per-sender rows whose powers baked the old factor
    (deterministic propagation); the spatial index's grid cells and the
    attenuation-free distance state survive every burst edge, so a
    degradation fault on a city-scale grid run never re-buckets a single
    node — only the touched senders' rows are rebuilt on their next
    frame.
    """

    def __init__(
        self,
        context: FaultContext,
        extra_loss_db: float = 10.0,
        at_s: float = 0.0,
        duration_s: float = 5.0,
        repeat_every_s: Optional[float] = None,
    ) -> None:
        super().__init__(context)
        self.extra_loss_db = _require_positive("extra_loss_db", extra_loss_db)
        self.at_s = _require_nonnegative("at_s", at_s)
        self.duration_s = _require_positive("duration_s", duration_s)
        self.repeat_every_s = (
            None
            if repeat_every_s is None
            else _require_positive("repeat_every_s", repeat_every_s)
        )
        if (
            self.repeat_every_s is not None
            and self.repeat_every_s <= self.duration_s
        ):
            raise ConfigError(
                "channel-degradation repeat_every_s must exceed duration_s "
                f"({self.repeat_every_s} <= {self.duration_s})"
            )
        self.factor = 10.0 ** (-self.extra_loss_db / 10.0)

    def arm(self) -> None:
        sim = self.context.sim
        horizon = self.context.scenario.sim_time_s
        start = self.at_s
        while start < horizon:
            sim.schedule_at(start, self._degrade, True)
            stop = start + self.duration_s
            if stop < horizon:
                sim.schedule_at(stop, self._degrade, False)
            if self.repeat_every_s is None:
                break
            start += self.repeat_every_s

    def _degrade(self, on: bool) -> None:
        self.context.channel.set_attenuation(self.factor if on else 1.0)
        self.record(
            "channel_degraded" if on else "channel_restored",
            detail=f"{self.extra_loss_db:g} dB" if on else None,
        )


@register("fault", "packet-blackhole")
class PacketBlackhole(FaultModel):
    """Nodes that forward control traffic but drop transit DATA.

    The classic routing stressor: the node keeps answering hellos,
    RREQs and TC messages, so protocols happily route *through* it —
    and every data packet that does is silently eaten.  Locally
    originated and locally delivered DATA are unaffected.  With
    ``duration_s`` omitted the node misbehaves for the rest of the run.
    """

    def __init__(
        self,
        context: FaultContext,
        nodes: Sequence[int],
        at_s: float = 0.0,
        duration_s: Optional[float] = None,
    ) -> None:
        super().__init__(context)
        if nodes is None or not list(nodes):
            raise ConfigError("packet-blackhole needs an explicit nodes list")
        self.nodes = nodes
        self.at_s = _require_nonnegative("at_s", at_s)
        self.duration_s = (
            None
            if duration_s is None
            else _require_positive("duration_s", duration_s)
        )

    def arm(self) -> None:
        sim = self.context.sim
        horizon = self.context.scenario.sim_time_s
        targets = self._resolve_nodes(self.nodes)
        for node in targets:
            if self.at_s < horizon:
                sim.schedule_at(self.at_s, self._set, node, True)
            if self.duration_s is not None:
                stop = self.at_s + self.duration_s
                if stop < horizon:
                    sim.schedule_at(stop, self._set, node, False)

    def _set(self, node, on: bool) -> None:
        node.blackhole = on
        self.record("blackhole_on" if on else "blackhole_off", node.node_id)
