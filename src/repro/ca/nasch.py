"""The single-lane Nagel-Schreckenberg (NaS) automaton.

Paper Section III-A.  Time advances in steps of ``dt`` (1 s); the lane is a
vector of ``L`` sites of ``s`` metres (7.5 m); each vehicle ``i`` has a
velocity ``v_i`` in ``{0 .. v_max}`` cells/step.  Each step applies, in
parallel to every vehicle:

1. acceleration:  ``v_i <- min(v_i + 1, v_max)``
2. braking:       ``v_i <- min(v_i, gap_i)`` where ``gap_i`` is the number
   of free cells to the vehicle ahead
2'. dawdling (stochastic version): with probability ``p``,
   ``v_i <- max(v_i - 1, 0)``
3. movement:      ``x_i <- x_i + v_i``

With ``p = 0`` the model is deterministic and the average velocity is a
short-range-dependent (SRD) process; with ``0 < p < 1`` the average velocity
exhibits the long-range-dependent (LRD) 1/f behaviour studied in paper
Fig. 7.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.ca.boundary import Boundary
from repro.ca.vehicle import VehicleState
from repro.kernels import resolve_backend
from repro.util.errors import InvariantViolation
from repro.util.validate import check_positive, check_probability

#: Paper default: v_max = 135 km/h at 7.5 m cells and 1 s steps = 5 cells/step.
DEFAULT_V_MAX = 5

#: Shared empty draw array for deterministic (p = 0) steps.
_NO_DRAWS = np.empty(0, dtype=np.float64)


class NagelSchreckenberg:
    """One lane of NaS traffic.

    Vehicles are stored in ring order: the leader of vehicle index ``i`` is
    index ``(i + 1) % N``.  Since vehicles cannot overtake on a single lane,
    this order is invariant, which lets every rule be applied as a vectorised
    numpy operation.

    Args:
        num_cells: lane length ``L`` in cells.
        num_vehicles: how many vehicles to place (ignored when ``positions``
            is given).  Vehicles start evenly spaced with velocity 0 unless
            overridden.
        p: dawdling probability (rule 2'); ``0`` gives the deterministic
            model.
        v_max: maximum velocity in cells/step.
        boundary: cell-space boundary condition; see :class:`Boundary`.
        positions: explicit initial cells, strictly increasing, in
            ``[0, num_cells)``.
        velocities: explicit initial velocities aligned with ``positions``.
        rng: generator for the dawdling (and injection) draws; defaults to a
            fresh seeded generator so runs are reproducible by default.
        injection_rate: for :attr:`Boundary.OPEN` only — probability per step
            that a new vehicle enters at cell 0 when it is free.
        kernels: kernel backend (name or instance) executing the cyclic
            update loop; see :mod:`repro.kernels`.  Every backend is
            bit-identical — dawdle draws are pre-drawn from ``rng`` in
            ring order regardless of backend.
    """

    def __init__(
        self,
        num_cells: int,
        num_vehicles: Optional[int] = None,
        *,
        p: float = 0.0,
        v_max: int = DEFAULT_V_MAX,
        boundary: Boundary = Boundary.PERIODIC,
        positions: Optional[Sequence[int]] = None,
        velocities: Optional[Sequence[int]] = None,
        rng: Optional[np.random.Generator] = None,
        injection_rate: float = 0.0,
        lane: int = 0,
        kernels="auto",
    ) -> None:
        check_positive("num_cells", num_cells)
        check_probability("p", p)
        check_probability("injection_rate", injection_rate)
        if v_max < 1:
            raise ValueError(f"v_max must be >= 1, got {v_max}")
        self._num_cells = int(num_cells)
        self._p = float(p)
        self._v_max = int(v_max)
        self._boundary = boundary
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._injection_rate = float(injection_rate)
        self._lane = int(lane)
        self._kernels = resolve_backend(kernels)
        self._time = 0
        self._next_id = 0

        if positions is not None:
            pos = np.asarray(positions, dtype=np.int64)
        elif num_vehicles is not None:
            if not 0 <= num_vehicles <= self._num_cells:
                raise ValueError(
                    f"num_vehicles must be in [0, {self._num_cells}], "
                    f"got {num_vehicles}"
                )
            pos = np.floor(
                np.arange(num_vehicles) * self._num_cells / max(num_vehicles, 1)
            ).astype(np.int64)
        elif boundary is Boundary.OPEN:
            pos = np.empty(0, dtype=np.int64)
        else:
            raise ValueError(
                "closed-boundary lanes need num_vehicles or positions"
            )
        self._validate_positions(pos)

        if velocities is not None:
            vel = np.asarray(velocities, dtype=np.int64)
            if vel.shape != pos.shape:
                raise ValueError(
                    f"velocities shape {vel.shape} != positions shape {pos.shape}"
                )
            if np.any(vel < 0) or np.any(vel > self._v_max):
                raise ValueError(f"velocities must be in [0, {self._v_max}]")
        else:
            vel = np.zeros_like(pos)

        self._positions = pos
        self._velocities = vel
        self._ids = np.arange(len(pos), dtype=np.int64)
        self._next_id = len(pos)
        self._wraps = np.zeros(len(pos), dtype=np.int64)
        self._shifted = np.zeros(len(pos), dtype=bool)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_density(
        cls,
        num_cells: int,
        density: float,
        *,
        random_start: bool = False,
        rng: Optional[np.random.Generator] = None,
        **kwargs,
    ) -> "NagelSchreckenberg":
        """Place ``round(density * num_cells)`` vehicles on the lane.

        With ``random_start`` the cells are drawn uniformly without
        replacement (using ``rng``); otherwise vehicles start evenly spaced.
        """
        check_probability("density", density)
        n = int(round(density * num_cells))
        if random_start:
            rng = rng if rng is not None else np.random.default_rng(0)
            cells = np.sort(rng.choice(num_cells, size=n, replace=False))
            return cls(num_cells, positions=cells, rng=rng, **kwargs)
        return cls(num_cells, n, rng=rng, **kwargs)

    # -- read-only state ---------------------------------------------------

    @property
    def num_cells(self) -> int:
        """Lane length L in cells."""
        return self._num_cells

    @property
    def num_vehicles(self) -> int:
        """Current number of vehicles (constant unless boundary is OPEN)."""
        return len(self._positions)

    @property
    def v_max(self) -> int:
        """Maximum velocity in cells/step."""
        return self._v_max

    @property
    def p(self) -> float:
        """Dawdling probability."""
        return self._p

    @property
    def boundary(self) -> Boundary:
        """The lane's boundary condition."""
        return self._boundary

    @property
    def time(self) -> int:
        """Number of steps executed so far."""
        return self._time

    @property
    def lane(self) -> int:
        """The lane index this automaton models."""
        return self._lane

    @property
    def kernels(self):
        """The kernel backend executing the cyclic update loop."""
        return self._kernels

    @property
    def density(self) -> float:
        """Vehicle density rho = N / L."""
        return self.num_vehicles / self._num_cells

    @property
    def positions(self) -> np.ndarray:
        """Current cell of each vehicle, in ring order (copy)."""
        return self._positions.copy()

    @property
    def velocities(self) -> np.ndarray:
        """Current velocity of each vehicle, aligned with positions (copy)."""
        return self._velocities.copy()

    @property
    def vehicle_ids(self) -> np.ndarray:
        """Stable vehicle ids aligned with :attr:`positions` (copy)."""
        return self._ids.copy()

    @property
    def wraps(self) -> np.ndarray:
        """Cumulative wrap count per vehicle (copy)."""
        return self._wraps.copy()

    @property
    def shifted(self) -> np.ndarray:
        """Per-vehicle flag: wrapped during the most recent step (copy)."""
        return self._shifted.copy()

    def mean_velocity(self) -> float:
        """Average velocity v(t) = (1/N) sum_i v_i — the paper's main
        simulation variable.  NaN when the lane is empty."""
        if len(self._velocities) == 0:
            return float("nan")
        return float(self._velocities.mean())

    def flow(self) -> float:
        """Traffic flow J = rho * v (paper Fig. 4's y axis)."""
        if len(self._velocities) == 0:
            return 0.0
        return self.density * self.mean_velocity()

    def gaps(self) -> np.ndarray:
        """Free cells ahead of each vehicle.

        On cyclic lanes the gap wraps around; a single vehicle sees
        ``L - 1`` free cells.  On OPEN lanes the front-most vehicle sees an
        unobstructed road, represented as ``v_max`` (the largest gap the
        dynamics can use).
        """
        pos = self._positions
        n = len(pos)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if self._boundary.cyclic_cells:
            if n == 1:
                return np.array([self._num_cells - 1], dtype=np.int64)
            leader = np.roll(pos, -1)
            return (leader - pos - 1) % self._num_cells
        gaps = np.empty(n, dtype=np.int64)
        gaps[:-1] = pos[1:] - pos[:-1] - 1
        gaps[-1] = self._v_max
        return gaps

    def occupancy_vector(self) -> np.ndarray:
        """The paper's site representation: a length-L vector with the
        vehicle's velocity at occupied sites and -1 at empty sites."""
        lane = np.full(self._num_cells, -1, dtype=np.int64)
        lane[self._positions] = self._velocities
        return lane

    def odometer_cells(self) -> np.ndarray:
        """Total distance travelled per vehicle, in cells, across wraps."""
        return self._positions + self._wraps * self._num_cells

    def vehicles(self) -> List[VehicleState]:
        """Current per-vehicle records (paper's ``VE_i`` structures)."""
        gaps = self.gaps()
        return [
            VehicleState(
                vehicle_id=int(self._ids[i]),
                cell=int(self._positions[i]),
                velocity=int(self._velocities[i]),
                gap=int(gaps[i]),
                lane=self._lane,
                wraps=int(self._wraps[i]),
                shifted=bool(self._shifted[i]),
            )
            for i in range(len(self._positions))
        ]

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """A JSON-serialisable snapshot of the automaton's full state.

        The dawdling generator's state is included, so a restored model
        continues the *exact* trajectory — checkpointing long Monte-Carlo
        studies without replaying the prefix.
        """
        return {
            "num_cells": self._num_cells,
            "p": self._p,
            "v_max": self._v_max,
            "boundary": self._boundary.value,
            "injection_rate": self._injection_rate,
            "lane": self._lane,
            "time": self._time,
            "next_id": self._next_id,
            "positions": self._positions.tolist(),
            "velocities": self._velocities.tolist(),
            "ids": self._ids.tolist(),
            "wraps": self._wraps.tolist(),
            "shifted": self._shifted.tolist(),
            "kernels": self._kernels.name,
            "rng_state": self._rng.bit_generator.state,
        }

    @classmethod
    def from_state(cls, state: dict) -> "NagelSchreckenberg":
        """Rebuild an automaton from :meth:`state_dict` output."""
        model = cls.__new__(cls)
        model._num_cells = int(state["num_cells"])
        model._p = float(state["p"])
        model._v_max = int(state["v_max"])
        model._boundary = Boundary(state["boundary"])
        model._injection_rate = float(state["injection_rate"])
        model._lane = int(state["lane"])
        model._time = int(state["time"])
        model._next_id = int(state["next_id"])
        model._positions = np.asarray(state["positions"], dtype=np.int64)
        model._velocities = np.asarray(state["velocities"], dtype=np.int64)
        model._ids = np.asarray(state["ids"], dtype=np.int64)
        model._wraps = np.asarray(state["wraps"], dtype=np.int64)
        model._shifted = np.asarray(state["shifted"], dtype=bool)
        model._kernels = resolve_backend(state.get("kernels", "auto"))
        model._rng = np.random.default_rng()
        model._rng.bit_generator.state = state["rng_state"]
        # Positions of a running model are in *ring order* (rotated, not
        # sorted): validate bounds, uniqueness and at most one wrap point.
        pos = model._positions
        if len(pos) > 0:
            if pos.min() < 0 or pos.max() >= model._num_cells:
                raise ValueError(f"positions out of range: {pos}")
            if len(np.unique(pos)) != len(pos):
                raise ValueError(f"duplicate positions: {pos}")
            wrap_points = int((np.diff(pos) < 0).sum())
            if wrap_points > 1 or (
                wrap_points == 1 and pos[-1] >= pos[0]
            ):
                raise ValueError(f"positions not in ring order: {pos}")
        return model

    # -- dynamics ----------------------------------------------------------

    def step(self) -> None:
        """Advance the automaton by one time step (parallel update).

        Two always-on invariant guards run each step (O(N), pure numpy, a
        tiny fraction of the step's own cost): after braking/dawdling no
        vehicle may outrun its gap (a violation here is the precursor of a
        two-vehicles-one-cell collision), and on closed boundaries the
        vehicle count must be conserved.  Violations raise
        :class:`~repro.util.errors.InvariantViolation` with the step, lane
        and offending vehicle so the state is reproducible.
        """
        n = len(self._positions)
        if n == 0:
            self._inject_if_open()
            self._time += 1
            return
        if self._boundary.cyclic_cells:
            self._step_cyclic(n)
        else:
            self._step_open(n)
        self._time += 1

    def _step_cyclic(self, n: int) -> None:
        """Cyclic-lane update: rules 1-3 as one kernel-backend call.

        Dawdle variates are pre-drawn (``rng.random(n)``, exactly when
        ``p > 0``) so the RNG stream is identical on every backend; the
        kernel leaves positions untouched on an invariant violation, so
        the raised state is the pre-step configuration.
        """
        pos = self._positions.copy()
        vel = self._velocities.copy()
        gaps = np.empty(n, dtype=np.int64)
        wrapped = np.empty(n, dtype=bool)
        use_draws = self._p > 0.0
        draws = self._rng.random(n) if use_draws else _NO_DRAWS
        bad = self._kernels.nasch_step(
            pos, vel, gaps, wrapped, draws, use_draws,
            self._p, self._v_max, self._num_cells,
        )
        # Guard: gap positivity — moving farther than the gap ahead means
        # two vehicles would share a cell next step.
        if bad >= 0:
            raise InvariantViolation(
                "vehicle would outrun its gap",
                step=self._time,
                lane=self._lane,
                vehicle_id=int(self._ids[bad]),
                cell=int(self._positions[bad]),
                velocity=int(vel[bad]),
                gap=int(gaps[bad]),
            )
        self._positions = pos
        self._velocities = vel
        self._wraps = self._wraps + wrapped
        self._shifted = wrapped
        # Guard: closed lanes conserve vehicles.
        if len(self._positions) != n:
            raise InvariantViolation(
                "vehicle count changed on a closed lane",
                step=self._time,
                lane=self._lane,
                before=n,
                after=len(self._positions),
            )

    def _step_open(self, n: int) -> None:
        """OPEN-boundary update (vehicle exit/injection): numpy path.

        Open lanes change population mid-step, which the fixed-shape
        kernels do not model; the cost profile that motivated them is
        cyclic campaigns, so this path keeps the original expressions.
        """
        pos, vel = self._positions, self._velocities
        gaps = self.gaps()
        # Rule 1: accelerate towards v_max.
        vel = np.minimum(vel + 1, self._v_max)
        # Rule 2: brake to the gap.
        vel = np.minimum(vel, gaps)
        # Rule 2': dawdle with probability p.
        if self._p > 0.0:
            dawdle = self._rng.random(n) < self._p
            vel = np.where(dawdle, np.maximum(vel - 1, 0), vel)
        if np.any(vel > gaps) or np.any(vel < 0):
            bad = int(np.argmax((vel > gaps) | (vel < 0)))
            raise InvariantViolation(
                "vehicle would outrun its gap",
                step=self._time,
                lane=self._lane,
                vehicle_id=int(self._ids[bad]),
                cell=int(pos[bad]),
                velocity=int(vel[bad]),
                gap=int(gaps[bad]),
            )
        # Rule 3: move; vehicles running off the end leave the lane.
        new_pos = pos + vel
        keep = new_pos < self._num_cells
        self._positions = new_pos[keep]
        self._velocities = vel[keep]
        self._ids = self._ids[keep]
        self._wraps = self._wraps[keep]
        self._shifted = np.zeros(keep.sum(), dtype=bool)
        self._inject_if_open()

    def run(self, steps: int) -> None:
        """Advance the automaton by ``steps`` steps."""
        if steps < 0:
            raise ValueError(f"steps must be >= 0, got {steps}")
        for _ in range(steps):
            self.step()

    # -- internals ---------------------------------------------------------

    def _inject_if_open(self) -> None:
        if self._boundary is not Boundary.OPEN or self._injection_rate <= 0:
            return
        if self._rng.random() >= self._injection_rate:
            return
        pos = self._positions
        if len(pos) > 0 and pos[0] == 0:
            return  # entry cell occupied
        entry_gap = int(pos[0]) - 1 if len(pos) > 0 else self._v_max
        velocity = min(self._v_max, max(entry_gap, 0))
        self._positions = np.concatenate([[0], pos])
        self._velocities = np.concatenate([[velocity], self._velocities])
        self._ids = np.concatenate([[self._next_id], self._ids])
        self._next_id += 1
        self._wraps = np.concatenate([[0], self._wraps])
        self._shifted = np.concatenate([[False], self._shifted])

    def _validate_positions(self, pos: np.ndarray) -> None:
        if pos.ndim != 1:
            raise ValueError(f"positions must be 1-D, got shape {pos.shape}")
        if len(pos) > self._num_cells:
            raise ValueError(
                f"{len(pos)} vehicles do not fit on {self._num_cells} cells"
            )
        if len(pos) == 0:
            return
        if np.any(pos < 0) or np.any(pos >= self._num_cells):
            raise ValueError(
                f"positions must be in [0, {self._num_cells}), got {pos}"
            )
        if np.any(np.diff(pos) <= 0):
            raise ValueError(f"positions must be strictly increasing, got {pos}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"NagelSchreckenberg(L={self._num_cells}, N={self.num_vehicles}, "
            f"p={self._p}, v_max={self._v_max}, t={self._time}, "
            f"boundary={self._boundary.value})"
        )
