"""Multi-lane Nagel-Schreckenberg road with lane changing.

Paper Section III lists the number of lanes as the mobility parameter CAVENET
takes into account: relay vehicles on a parallel lane can bridge connectivity
gaps (Fig. 1-a) while opposite-lane traffic adds interference (Fig. 1-b).

Lane changes follow the symmetric two-stage scheme of Rickert, Nagel,
Schreckenberg and Latour (1996): in the first sub-step every vehicle that is
blocked on its own lane and sees both a safe and a more attractive adjacent
lane sideslips; in the second sub-step each lane advances with the ordinary
single-lane NaS rules.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.ca.vehicle import VehicleState
from repro.kernels import resolve_backend
from repro.util.errors import InvariantViolation
from repro.util.validate import check_positive, check_probability

#: Shared empty draw array for deterministic (p = 0) steps.
_NO_DRAWS = np.empty(0, dtype=np.float64)


class _LaneArrays:
    """Mutable per-lane vehicle arrays kept sorted by cell."""

    __slots__ = ("positions", "velocities", "ids", "wraps", "shifted")

    def __init__(self) -> None:
        self.positions = np.empty(0, dtype=np.int64)
        self.velocities = np.empty(0, dtype=np.int64)
        self.ids = np.empty(0, dtype=np.int64)
        self.wraps = np.empty(0, dtype=np.int64)
        self.shifted = np.empty(0, dtype=bool)


class MultiLaneRoad:
    """``num_lanes`` parallel cyclic lanes of ``num_cells`` cells each.

    Args:
        num_cells: length of every lane, in cells.
        num_lanes: number of parallel lanes (>= 1).
        vehicles_per_lane: initial vehicle count on each lane (evenly
            spaced).  Must have exactly ``num_lanes`` entries.
        p: NaS dawdling probability, shared by all lanes.
        v_max: maximum velocity, cells/step.
        p_change: probability that an advantageous, safe lane change is
            actually executed (1.0 = always change when allowed).
        safety_gap_back: free cells required behind the target cell on the
            destination lane; defaults to ``v_max`` (conservative — a
            follower at top speed cannot hit the merger).
        rng: generator for dawdling and lane-change draws.
        kernels: kernel backend (name or instance) executing the per-lane
            update loops; see :mod:`repro.kernels`.  Bit-identical across
            backends — dawdle draws are pre-drawn per lane in lane order.
    """

    def __init__(
        self,
        num_cells: int,
        num_lanes: int,
        vehicles_per_lane: Sequence[int],
        *,
        p: float = 0.0,
        v_max: int = 5,
        p_change: float = 1.0,
        safety_gap_back: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        kernels="auto",
    ) -> None:
        check_positive("num_cells", num_cells)
        check_probability("p", p)
        check_probability("p_change", p_change)
        if num_lanes < 1:
            raise ValueError(f"num_lanes must be >= 1, got {num_lanes}")
        if v_max < 1:
            raise ValueError(f"v_max must be >= 1, got {v_max}")
        if len(vehicles_per_lane) != num_lanes:
            raise ValueError(
                f"vehicles_per_lane has {len(vehicles_per_lane)} entries "
                f"for {num_lanes} lanes"
            )
        self._num_cells = int(num_cells)
        self._num_lanes = int(num_lanes)
        self._p = float(p)
        self._v_max = int(v_max)
        self._p_change = float(p_change)
        self._safety_gap_back = (
            int(safety_gap_back) if safety_gap_back is not None else int(v_max)
        )
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._kernels = resolve_backend(kernels)
        self._time = 0

        self._lanes: List[_LaneArrays] = [_LaneArrays() for _ in range(num_lanes)]
        next_id = 0
        for k, count in enumerate(vehicles_per_lane):
            if not 0 <= count <= num_cells:
                raise ValueError(
                    f"lane {k}: {count} vehicles do not fit on {num_cells} cells"
                )
            lane = self._lanes[k]
            lane.positions = np.floor(
                np.arange(count) * num_cells / max(count, 1)
            ).astype(np.int64)
            lane.velocities = np.zeros(count, dtype=np.int64)
            lane.ids = np.arange(next_id, next_id + count, dtype=np.int64)
            lane.wraps = np.zeros(count, dtype=np.int64)
            lane.shifted = np.zeros(count, dtype=bool)
            next_id += count

    # -- read-only state ---------------------------------------------------

    @property
    def num_cells(self) -> int:
        """Lane length L in cells."""
        return self._num_cells

    @property
    def num_lanes(self) -> int:
        """Number of parallel lanes."""
        return self._num_lanes

    @property
    def time(self) -> int:
        """Number of steps executed so far."""
        return self._time

    @property
    def num_vehicles(self) -> int:
        """Total vehicles across all lanes."""
        return sum(len(lane.positions) for lane in self._lanes)

    @property
    def density(self) -> float:
        """Overall density: vehicles per cell across all lanes."""
        return self.num_vehicles / (self._num_cells * self._num_lanes)

    def lane_positions(self, lane: int) -> np.ndarray:
        """Sorted cells occupied on ``lane`` (copy)."""
        return self._lanes[lane].positions.copy()

    def lane_velocities(self, lane: int) -> np.ndarray:
        """Velocities aligned with :meth:`lane_positions` (copy)."""
        return self._lanes[lane].velocities.copy()

    def lane_ids(self, lane: int) -> np.ndarray:
        """Stable vehicle ids aligned with :meth:`lane_positions` (copy)."""
        return self._lanes[lane].ids.copy()

    def lane_shifted(self, lane: int) -> np.ndarray:
        """Per-vehicle wrapped-last-step flags for ``lane`` (copy)."""
        return self._lanes[lane].shifted.copy()

    @property
    def kernels(self):
        """The kernel backend executing the per-lane update loops."""
        return self._kernels

    def mean_velocity(self) -> float:
        """Average velocity over every vehicle on the road."""
        velocities = np.concatenate([l.velocities for l in self._lanes])
        if len(velocities) == 0:
            return float("nan")
        return float(velocities.mean())

    def occupancy_matrix(self) -> np.ndarray:
        """A ``(num_lanes, L)`` matrix: velocity at occupied sites, -1 else."""
        matrix = np.full((self._num_lanes, self._num_cells), -1, dtype=np.int64)
        for k, lane in enumerate(self._lanes):
            matrix[k, lane.positions] = lane.velocities
        return matrix

    def vehicles(self) -> List[VehicleState]:
        """Flat list of per-vehicle records across all lanes."""
        result: List[VehicleState] = []
        for k, lane in enumerate(self._lanes):
            gaps = _cyclic_gaps(lane.positions, self._num_cells)
            for i in range(len(lane.positions)):
                result.append(
                    VehicleState(
                        vehicle_id=int(lane.ids[i]),
                        cell=int(lane.positions[i]),
                        velocity=int(lane.velocities[i]),
                        gap=int(gaps[i]),
                        lane=k,
                        wraps=int(lane.wraps[i]),
                        shifted=bool(lane.shifted[i]),
                    )
                )
        return result

    # -- dynamics ----------------------------------------------------------

    def step(self) -> None:
        """One time step: lane-change sub-step, then NaS movement per lane.

        An always-on conservation guard brackets the step: every lane is
        cyclic, so lane changes and movement may shuffle vehicles between
        lanes but never create or destroy one.  A violation raises
        :class:`~repro.util.errors.InvariantViolation` with the step and
        per-lane counts — the signature of a lane-change commit bug.
        """
        before = self.num_vehicles
        if self._num_lanes > 1:
            self._lane_change_stage()
        self._movement_stage()
        after = self.num_vehicles
        if after != before:
            raise InvariantViolation(
                "vehicle count changed on a closed multi-lane road",
                step=self._time,
                before=before,
                after=after,
                per_lane=[len(lane.positions) for lane in self._lanes],
            )
        self._time += 1

    def run(self, steps: int) -> None:
        """Advance the road by ``steps`` steps."""
        if steps < 0:
            raise ValueError(f"steps must be >= 0, got {steps}")
        for _ in range(steps):
            self.step()

    # -- internals ---------------------------------------------------------

    def _lane_change_stage(self) -> None:
        # Decide every change against the *pre-step* configuration (parallel
        # update), then commit, resolving target-cell conflicts in lane order.
        moves = []  # (from_lane, index_in_lane, to_lane)
        claimed = set()  # (to_lane, cell) already granted this sub-step
        for k, lane in enumerate(self._lanes):
            if len(lane.positions) == 0:
                continue
            gaps_same = self._kernels.cyclic_gaps(
                lane.positions, self._num_cells
            )
            want = np.minimum(lane.velocities + 1, self._v_max)
            blocked = gaps_same < want
            if not blocked.any():
                continue
            candidates = np.nonzero(blocked)[0]
            draws = self._rng.random(len(candidates))
            for draw, i in zip(draws, candidates):
                if draw >= self._p_change:
                    continue
                cell = int(lane.positions[i])
                for to_lane in self._adjacent_lanes(k):
                    if (to_lane, cell) in claimed:
                        continue
                    if not self._change_allowed(
                        cell, int(gaps_same[i]), to_lane
                    ):
                        continue
                    moves.append((k, int(i), to_lane))
                    claimed.add((to_lane, cell))
                    break
        if moves:
            self._commit_moves(moves)

    def _adjacent_lanes(self, lane: int) -> List[int]:
        adjacent = []
        if lane + 1 < self._num_lanes:
            adjacent.append(lane + 1)
        if lane - 1 >= 0:
            adjacent.append(lane - 1)
        return adjacent

    def _change_allowed(self, cell: int, gap_same: int, to_lane: int) -> bool:
        target = self._lanes[to_lane]
        pos = target.positions
        if len(pos) == 0:
            return True
        idx = int(np.searchsorted(pos, cell))
        if idx < len(pos) and pos[idx] == cell:
            return False  # target cell occupied
        ahead = pos[idx % len(pos)]
        gap_other = (int(ahead) - cell - 1) % self._num_cells
        if gap_other <= gap_same:
            return False  # no incentive
        behind = pos[(idx - 1) % len(pos)]
        gap_back = (cell - int(behind) - 1) % self._num_cells
        return gap_back >= self._safety_gap_back

    def _commit_moves(self, moves: List) -> None:
        incoming = {k: [] for k in range(self._num_lanes)}
        outgoing = {k: [] for k in range(self._num_lanes)}
        for from_lane, index, to_lane in moves:
            outgoing[from_lane].append(index)
            lane = self._lanes[from_lane]
            incoming[to_lane].append(
                (
                    int(lane.positions[index]),
                    int(lane.velocities[index]),
                    int(lane.ids[index]),
                    int(lane.wraps[index]),
                    bool(lane.shifted[index]),
                )
            )
        for k in range(self._num_lanes):
            lane = self._lanes[k]
            if outgoing[k]:
                keep = np.ones(len(lane.positions), dtype=bool)
                keep[outgoing[k]] = False
                lane.positions = lane.positions[keep]
                lane.velocities = lane.velocities[keep]
                lane.ids = lane.ids[keep]
                lane.wraps = lane.wraps[keep]
                lane.shifted = lane.shifted[keep]
            if incoming[k]:
                add = np.array([m[0] for m in incoming[k]], dtype=np.int64)
                order = np.argsort(
                    np.concatenate([lane.positions, add]), kind="stable"
                )
                lane.positions = np.concatenate([lane.positions, add])[order]
                lane.velocities = np.concatenate(
                    [lane.velocities, [m[1] for m in incoming[k]]]
                )[order]
                lane.ids = np.concatenate(
                    [lane.ids, [m[2] for m in incoming[k]]]
                )[order]
                lane.wraps = np.concatenate(
                    [lane.wraps, [m[3] for m in incoming[k]]]
                )[order]
                lane.shifted = np.concatenate(
                    [lane.shifted, [m[4] for m in incoming[k]]]
                )[order]

    def _movement_stage(self) -> None:
        # Per-lane NaS update as one kernel call; sorted cyclic positions
        # are ring order, so the single-lane kernel applies unchanged.
        # Dawdle draws are pre-drawn per lane in lane order — the identical
        # RNG stream on every backend.
        for k, lane in enumerate(self._lanes):
            n = len(lane.positions)
            if n == 0:
                continue
            pos = lane.positions.copy()
            vel = lane.velocities.copy()
            gaps = np.empty(n, dtype=np.int64)
            wrapped = np.empty(n, dtype=bool)
            use_draws = self._p > 0.0
            draws = self._rng.random(n) if use_draws else _NO_DRAWS
            bad = self._kernels.nasch_step(
                pos, vel, gaps, wrapped, draws, use_draws,
                self._p, self._v_max, self._num_cells,
            )
            # Guard: gap positivity per lane (same check as the single-lane
            # model) — a stale gap after a bad lane-change commit would
            # surface here, before vehicles can collide.
            if bad >= 0:
                raise InvariantViolation(
                    "vehicle would outrun its gap",
                    step=self._time,
                    lane=k,
                    vehicle_id=int(lane.ids[bad]),
                    cell=int(lane.positions[bad]),
                    velocity=int(vel[bad]),
                    gap=int(gaps[bad]),
                )
            lane.positions = pos
            lane.velocities = vel
            lane.wraps = lane.wraps + wrapped
            lane.shifted = wrapped
            if wrapped.any():
                # Keep the per-lane arrays sorted by cell: wrapping vehicles
                # (one contiguous tail block) rotate to the front.
                order = np.argsort(lane.positions, kind="stable")
                lane.positions = lane.positions[order]
                lane.velocities = lane.velocities[order]
                lane.ids = lane.ids[order]
                lane.wraps = lane.wraps[order]
                lane.shifted = lane.shifted[order]


def _cyclic_gaps(positions: np.ndarray, num_cells: int) -> np.ndarray:
    """Gap to the vehicle ahead on a cyclic lane with sorted positions."""
    n = len(positions)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n == 1:
        return np.array([num_cells - 1], dtype=np.int64)
    leader = np.roll(positions, -1)
    return (leader - positions - 1) % num_cells
