"""Per-vehicle state record.

Paper Section III-C: every vehicle is a data structure ``VE_i`` storing the
gap, the velocity and the current lane position; additionally, for closed
boundaries, a flag recording whether a wrap ("shift") has taken place during
the last step, which the trace generator needs in order to emit a correct
ns-2 movement segment instead of a spurious high-speed jump.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class VehicleState:
    """Snapshot of one vehicle on a lane.

    Attributes:
        vehicle_id: stable identifier, assigned at construction in order of
            initial position (vehicles never overtake within a lane, but may
            change lanes on multi-lane roads).
        cell: current cell index on the lane, in ``[0, num_cells)``.
        velocity: current velocity in cells per step.
        gap: free cells to the vehicle ahead (after the last update).
        lane: lane index the vehicle is on.
        wraps: how many times the vehicle has wrapped past the end of the
            lane since the start of the simulation.
        shifted: True if the vehicle wrapped during the most recent step —
            the paper's "shift has taken place" flag.
    """

    vehicle_id: int
    cell: int
    velocity: int
    gap: int
    lane: int = 0
    wraps: int = 0
    shifted: bool = False
