"""Two crossing roads sharing one cell — the paper's unimplemented
second mobility parameter.

Paper Section III: "The intersection of lanes ... affect[s] the traffic
behaviour on the whole lane, because the crosspoint is the bottleneck for
the lane.  Here, we take into account only the first parameter [lane
count]."  This module supplies the missing piece: two cyclic NaS lanes
crossing at a single shared site, with a fixed priority rule.

Model (a standard CA intersection scheme):

* Road A has priority: its vehicles treat the crosspoint as blocked only
  while a road-B vehicle physically occupies it.
* Road B yields: its vehicles treat the crosspoint as blocked while a
  road-A vehicle occupies it *or swept over it during the current step*
  (A moves first within a step).
* A blocked crosspoint acts exactly like a parked vehicle: the NaS gap
  rule makes approaching vehicles brake and queue behind it — the
  bottleneck the paper describes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.ca.vehicle import VehicleState
from repro.util.validate import check_positive, check_probability


class _Road:
    """One cyclic lane's mutable vehicle arrays (ring order)."""

    __slots__ = ("positions", "velocities", "ids", "wraps", "crossings")

    def __init__(self, positions: np.ndarray, ids: np.ndarray) -> None:
        self.positions = positions
        self.velocities = np.zeros_like(positions)
        self.ids = ids
        self.wraps = np.zeros_like(positions)
        self.crossings = 0  # vehicles that traversed the crosspoint


class CrossingRoads:
    """Two cyclic NaS lanes sharing one cell.

    Args:
        num_cells: length of each road, in cells.
        vehicles_a / vehicles_b: vehicle counts (evenly spaced, avoiding
            the crosspoint initially).
        cross_a / cross_b: cell index of the shared site on each road.
        p: dawdling probability (both roads).
        v_max: maximum velocity.
        rng: generator for the dawdling draws.
    """

    def __init__(
        self,
        num_cells: int,
        vehicles_a: int,
        vehicles_b: int,
        cross_a: Optional[int] = None,
        cross_b: Optional[int] = None,
        *,
        p: float = 0.0,
        v_max: int = 5,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        check_positive("num_cells", num_cells)
        check_probability("p", p)
        if v_max < 1:
            raise ValueError(f"v_max must be >= 1, got {v_max}")
        self._num_cells = int(num_cells)
        self._p = float(p)
        self._v_max = int(v_max)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._cross = (
            int(cross_a) if cross_a is not None else num_cells // 2,
            int(cross_b) if cross_b is not None else num_cells // 2,
        )
        for index, cross in enumerate(self._cross):
            if not 0 <= cross < num_cells:
                raise ValueError(
                    f"crosspoint {cross} outside [0, {num_cells}) on road "
                    f"{'AB'[index]}"
                )
        self._time = 0
        self._roads = (
            self._build_road(vehicles_a, self._cross[0], id_base=0),
            self._build_road(
                vehicles_b, self._cross[1], id_base=vehicles_a
            ),
        )

    def _build_road(self, count: int, cross: int, id_base: int) -> _Road:
        if not 0 <= count < self._num_cells:
            raise ValueError(
                f"{count} vehicles do not fit on {self._num_cells} cells "
                "(one cell is the crosspoint)"
            )
        free = [c for c in range(self._num_cells) if c != cross]
        step = len(free) / max(count, 1)
        cells = np.array(
            sorted(free[int(i * step)] for i in range(count)), dtype=np.int64
        )
        ids = np.arange(id_base, id_base + count, dtype=np.int64)
        return _Road(cells, ids)

    # -- read-only state ---------------------------------------------------

    @property
    def num_cells(self) -> int:
        """Length of each road in cells."""
        return self._num_cells

    @property
    def time(self) -> int:
        """Steps executed."""
        return self._time

    @property
    def crosspoints(self) -> Tuple[int, int]:
        """The shared cell's index on road A and road B."""
        return self._cross

    def positions(self, road: int) -> np.ndarray:
        """Sorted cells of one road's vehicles (copy)."""
        return self._roads[road].positions.copy()

    def velocities(self, road: int) -> np.ndarray:
        """Velocities of one road's vehicles (copy)."""
        return self._roads[road].velocities.copy()

    def crossings(self, road: int) -> int:
        """How many times vehicles of this road traversed the crosspoint."""
        return self._roads[road].crossings

    def mean_velocity(self, road: int) -> float:
        """Average velocity on one road (NaN when empty)."""
        velocities = self._roads[road].velocities
        if len(velocities) == 0:
            return float("nan")
        return float(velocities.mean())

    def flow(self, road: int) -> float:
        """rho * v of one road."""
        road_state = self._roads[road]
        if len(road_state.velocities) == 0:
            return 0.0
        return len(road_state.positions) / self._num_cells * self.mean_velocity(road)

    def crosspoint_occupied_by(self, road: int) -> bool:
        """Is this road's vehicle physically on the crosspoint now?"""
        return bool(
            (self._roads[road].positions == self._cross[road]).any()
        )

    def vehicles(self) -> List[VehicleState]:
        """Per-vehicle records; ``lane`` is the road index (0 = priority)."""
        result = []
        for index, road in enumerate(self._roads):
            gaps = self._gaps(road.positions)
            for i in range(len(road.positions)):
                result.append(
                    VehicleState(
                        vehicle_id=int(road.ids[i]),
                        cell=int(road.positions[i]),
                        velocity=int(road.velocities[i]),
                        gap=int(gaps[i]),
                        lane=index,
                        wraps=int(road.wraps[i]),
                    )
                )
        return result

    # -- dynamics ----------------------------------------------------------

    def step(self) -> None:
        """One parallel-within-road step; road A moves before road B."""
        road_a, road_b = self._roads
        cross_a, cross_b = self._cross
        # Road A yields only to a B vehicle sitting on the shared site.
        blocked_a = (road_b.positions == cross_b).any()
        swept_a = self._move(road_a, cross_a, blocked_a)
        # Road B yields to A occupancy or an A sweep this step.
        blocked_b = (road_a.positions == cross_a).any() or swept_a
        self._move(road_b, cross_b, blocked_b)
        self._time += 1

    def run(self, steps: int) -> None:
        """Advance both roads by ``steps`` steps."""
        if steps < 0:
            raise ValueError(f"steps must be >= 0, got {steps}")
        for _ in range(steps):
            self.step()

    # -- internals ---------------------------------------------------------

    def _gaps(self, positions: np.ndarray) -> np.ndarray:
        n = len(positions)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if n == 1:
            return np.array([self._num_cells - 1], dtype=np.int64)
        leader = np.roll(positions, -1)
        return (leader - positions - 1) % self._num_cells

    def _move(self, road: _Road, cross: int, cross_blocked: bool) -> bool:
        """Apply the NaS rules to one road; returns True if any vehicle
        swept over (or onto) the crosspoint."""
        n = len(road.positions)
        if n == 0:
            return False
        gaps = self._gaps(road.positions)
        if cross_blocked:
            # The crosspoint acts as a parked vehicle: cap each gap by the
            # distance to it (when it lies within that gap).
            to_cross = (cross - road.positions - 1) % self._num_cells
            gaps = np.where(to_cross < gaps, to_cross, gaps)
        velocities = np.minimum(road.velocities + 1, self._v_max)
        velocities = np.minimum(velocities, gaps)
        if self._p > 0.0:
            dawdle = self._rng.random(n) < self._p
            velocities = np.where(
                dawdle, np.maximum(velocities - 1, 0), velocities
            )
        new_positions = road.positions + velocities
        # Sweep detection: the movement covered cells pos+1 .. pos+v; the
        # crosspoint was entered iff its forward offset falls in there.
        offset = (cross - road.positions) % self._num_cells
        swept = (offset >= 1) & (offset <= velocities)
        road.crossings += int(swept.sum())
        wrapped = new_positions >= self._num_cells
        road.positions = new_positions % self._num_cells
        road.velocities = velocities
        road.wraps = road.wraps + wrapped
        if wrapped.any():
            order = np.argsort(road.positions, kind="stable")
            road.positions = road.positions[order]
            road.velocities = road.velocities[order]
            road.ids = road.ids[order]
            road.wraps = road.wraps[order]
        return bool(swept.any())
