"""Boundary conditions for the 1-D lane.

The paper's "improvement" of CAVENET is exactly a boundary-condition change:
the first version moved vehicles on a straight line and *shifted* a vehicle
back to the start when it reached the end, which teleports it across the
plane and breaks radio connectivity between the head and tail of the column.
The improved version closes the lane into a circle, so the same periodic cell
dynamics correspond to continuous movement in the plane.
"""

from __future__ import annotations

import enum


class Boundary(enum.Enum):
    """How the ends of the lane are treated.

    PERIODIC
        Closed circuit (improved CAVENET): cell ``L-1`` is adjacent to cell
        ``0`` and the plane geometry is continuous.  Density is conserved.

    WRAP_SHIFT
        The original CAVENET straight line: the cell dynamics are the same
        periodic dynamics, but geometrically a wrapping vehicle teleports
        from the end of the line back to the start.  The CA evolution is
        identical to PERIODIC — only the mobility mapping (and therefore
        connectivity) differs.

    OPEN
        True open road (extension): vehicles leave the lane at the end and
        new vehicles are injected at cell 0 with a configurable rate.
        Density is *not* conserved.
    """

    PERIODIC = "periodic"
    WRAP_SHIFT = "wrap_shift"
    OPEN = "open"

    @property
    def cyclic_cells(self) -> bool:
        """True when the cell dynamics wrap around (gap computed mod L)."""
        return self in (Boundary.PERIODIC, Boundary.WRAP_SHIFT)

    @property
    def geometrically_closed(self) -> bool:
        """True when a wrap is continuous in the plane (no teleport)."""
        return self is Boundary.PERIODIC
