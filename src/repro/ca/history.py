"""Recording CA evolutions for later analysis.

The analysis tools of paper Section IV-A/B (fundamental diagram, space-time
plots, periodograms, transient detection) all operate on a recorded history
of the automaton rather than on its live state.
"""

from __future__ import annotations

import dataclasses
import numpy as np

from repro.ca.boundary import Boundary
from repro.ca.nasch import NagelSchreckenberg


@dataclasses.dataclass(frozen=True)
class CaHistory:
    """The trajectory of a fixed-population NaS run.

    Arrays are indexed ``[step, vehicle]`` with step 0 the initial state, so
    a run of ``T`` steps yields ``T + 1`` rows.

    Attributes:
        positions: cell index per step and vehicle.
        velocities: velocity per step and vehicle.
        wraps: cumulative wrap count per step and vehicle.
        num_cells: lane length L.
        p: dawdling probability of the generating model.
        v_max: maximum velocity of the generating model.
    """

    positions: np.ndarray
    velocities: np.ndarray
    wraps: np.ndarray
    num_cells: int
    p: float
    v_max: int

    def __post_init__(self) -> None:
        if self.positions.shape != self.velocities.shape:
            raise ValueError("positions and velocities shapes differ")
        if self.positions.shape != self.wraps.shape:
            raise ValueError("positions and wraps shapes differ")

    @property
    def num_steps(self) -> int:
        """Number of steps recorded (rows minus the initial state)."""
        return self.positions.shape[0] - 1

    @property
    def num_vehicles(self) -> int:
        """Vehicle count N."""
        return self.positions.shape[1]

    @property
    def density(self) -> float:
        """Vehicle density rho = N / L."""
        return self.num_vehicles / self.num_cells

    def mean_velocity_series(self) -> np.ndarray:
        """The paper's simulation variable v(t): per-step average velocity."""
        return self.velocities.mean(axis=1)

    def flow_series(self) -> np.ndarray:
        """Per-step traffic flow J(t) = rho * v(t)."""
        return self.density * self.mean_velocity_series()

    def unwrapped_positions(self) -> np.ndarray:
        """Positions accumulated across wraps (monotone per vehicle)."""
        return self.positions + self.wraps * self.num_cells

    def occupancy_matrix(self) -> np.ndarray:
        """A ``(steps+1, L)`` site matrix: velocity at occupied sites, -1
        elsewhere — the raw material of the paper's Fig. 5 space-time plots."""
        steps = self.positions.shape[0]
        matrix = np.full((steps, self.num_cells), -1, dtype=np.int64)
        rows = np.repeat(np.arange(steps), self.num_vehicles)
        matrix[rows, self.positions.ravel()] = self.velocities.ravel()
        return matrix


def evolve(
    model: NagelSchreckenberg,
    steps: int,
    record_every: int = 1,
    warmup: int = 0,
) -> CaHistory:
    """Run ``model`` for ``warmup + steps`` steps, recording the last part.

    ``warmup`` steps are executed but not recorded (used to discard the
    transient, paper Section IV-B).  ``record_every`` thins the recording.
    Only fixed-population boundaries are supported; OPEN lanes change their
    vehicle count and cannot be stored in rectangular arrays.
    """
    if model.boundary is Boundary.OPEN:
        raise ValueError("evolve() requires a fixed vehicle population; "
                         "OPEN-boundary lanes vary N over time")
    if steps < 0 or warmup < 0:
        raise ValueError("steps and warmup must be >= 0")
    if record_every < 1:
        raise ValueError(f"record_every must be >= 1, got {record_every}")

    model.run(warmup)
    num_records = steps // record_every + 1
    positions = np.empty((num_records, model.num_vehicles), dtype=np.int64)
    velocities = np.empty_like(positions)
    wraps = np.empty_like(positions)
    row = 0
    positions[row] = model.positions
    velocities[row] = model.velocities
    wraps[row] = model.wraps
    for step in range(1, steps + 1):
        model.step()
        if step % record_every == 0:
            row += 1
            positions[row] = model.positions
            velocities[row] = model.velocities
            wraps[row] = model.wraps
    return CaHistory(
        positions=positions[: row + 1],
        velocities=velocities[: row + 1],
        wraps=wraps[: row + 1],
        num_cells=model.num_cells,
        p=model.p,
        v_max=model.v_max,
    )
