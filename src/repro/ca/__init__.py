"""The Nagel-Schreckenberg cellular-automaton traffic model.

This is the microscopic mobility core of CAVENET (paper Section III-A): a
1-dimensional CA whose three rules (accelerate, brake to the gap, move — plus
the stochastic dawdling rule 2') reproduce the laminar and jammed regimes of
real highway traffic.
"""

from repro.ca.boundary import Boundary
from repro.ca.history import CaHistory, evolve
from repro.ca.intersection import CrossingRoads
from repro.ca.nasch import NagelSchreckenberg
from repro.ca.multilane import MultiLaneRoad
from repro.ca.vehicle import VehicleState

__all__ = [
    "Boundary",
    "NagelSchreckenberg",
    "MultiLaneRoad",
    "CrossingRoads",
    "VehicleState",
    "CaHistory",
    "evolve",
]
