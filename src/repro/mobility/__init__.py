"""Mobility models and movement traces.

This package adapts the cell-space cellular automaton (:mod:`repro.ca`) into
plane-space movement traces consumable by the network simulator and the
trace exporters, and provides the Random Waypoint baseline whose velocity
decay problem motivates the paper's Section IV-B discussion.
"""

from repro.mobility.base import MobilityModel
from repro.mobility.ca_mobility import CaMobility
from repro.mobility.freeway import Freeway
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.trace import MobilityTrace, TracePlayer

__all__ = [
    "MobilityModel",
    "CaMobility",
    "Freeway",
    "RandomWaypoint",
    "MobilityTrace",
    "TracePlayer",
]
