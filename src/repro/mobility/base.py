"""Abstract mobility-model interface."""

from __future__ import annotations

import abc

from repro.mobility.trace import MobilityTrace


class MobilityModel(abc.ABC):
    """Anything that can produce a sampled movement trace.

    Concrete models: :class:`repro.mobility.CaMobility` (the CAVENET
    cellular-automaton model) and :class:`repro.mobility.RandomWaypoint`
    (the MANET baseline the paper contrasts against).
    """

    @property
    @abc.abstractmethod
    def num_nodes(self) -> int:
        """Number of mobile nodes the model simulates."""

    @abc.abstractmethod
    def sample(self, duration_s: float, interval_s: float = 1.0) -> MobilityTrace:
        """Simulate ``duration_s`` seconds and return the sampled trace.

        The trace includes the state at time 0, so it has
        ``floor(duration_s / interval_s) + 1`` samples.  Calling ``sample``
        again continues from the model's current state.
        """
