"""Adapter from cell-space CA dynamics to plane-space mobility traces.

This is the glue between the microscopic model (Section III-A), the vehicle
structures (III-C) and the lane construction (III-D): each CA step advances
every vehicle by whole cells; the lane shape's arc-length parametrisation
maps the (possibly fractional) cell index to plane coordinates.

The boundary condition decides what a wrap means geometrically:

* ``Boundary.PERIODIC`` on a closed shape (circle): the wrap is continuous —
  the improved CAVENET.
* ``Boundary.WRAP_SHIFT`` on an open shape (straight line): the wrap is a
  teleport, flagged in the trace so that consumers do not interpolate a
  physically impossible dash across the plane — the original CAVENET whose
  broken head/tail connectivity motivated the improvement.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.ca.boundary import Boundary
from repro.ca.multilane import MultiLaneRoad
from repro.ca.nasch import NagelSchreckenberg
from repro.geometry.layout import RoadLayout
from repro.mobility.base import MobilityModel
from repro.mobility.trace import MobilityTrace
from repro.util.units import TIME_STEP_S


class CaMobility(MobilityModel):
    """Drive a single- or multi-lane NaS automaton and emit plane traces.

    Args:
        model: the automaton to advance.  For a :class:`MultiLaneRoad`, the
            layout must have at least as many lanes as the road.
        layout: lane geometry.  Lane ``k`` of the automaton maps through
            ``layout.lane(k)``.
        time_step_s: seconds of real time per CA step (paper: 1 s).
    """

    def __init__(
        self,
        model: Union[NagelSchreckenberg, MultiLaneRoad],
        layout: RoadLayout,
        time_step_s: float = TIME_STEP_S,
    ) -> None:
        if time_step_s <= 0:
            raise ValueError(f"time_step_s must be > 0, got {time_step_s}")
        self._model = model
        self._layout = layout
        self._dt = float(time_step_s)
        num_lanes = (
            model.num_lanes if isinstance(model, MultiLaneRoad) else 1
        )
        if layout.num_lanes < num_lanes:
            raise ValueError(
                f"layout has {layout.num_lanes} lanes but the automaton "
                f"needs {num_lanes}"
            )
        for lane_id in layout.lane_ids[:num_lanes]:
            lane = layout.lane(lane_id)
            if lane.num_cells < model.num_cells:
                raise ValueError(
                    f"lane {lane_id} fits only {lane.num_cells} cells; the "
                    f"automaton has {model.num_cells}"
                )
        # Node index <-> vehicle id: vehicles are numbered 0..N-1 at
        # construction, and the population is fixed for the boundaries this
        # adapter supports, so ids are stable node indices.
        if isinstance(model, NagelSchreckenberg) and model.boundary is Boundary.OPEN:
            raise ValueError(
                "OPEN boundaries change the vehicle population; network "
                "nodes need a fixed population — use PERIODIC or WRAP_SHIFT"
            )
        self._num_nodes = model.num_vehicles

    @property
    def num_nodes(self) -> int:
        """Number of vehicles (= network nodes)."""
        return self._num_nodes

    @property
    def model(self) -> Union[NagelSchreckenberg, MultiLaneRoad]:
        """The underlying automaton (advanced in place by :meth:`sample`)."""
        return self._model

    @property
    def layout(self) -> RoadLayout:
        """The lane geometry."""
        return self._layout

    def _lane_arrays(self):
        """Yield ``(lane_index, cells, vehicle_ids)`` per lane.

        Reads the automaton's arrays directly instead of materialising
        :class:`VehicleState` records (which costs a ``gaps()``
        recomputation plus one object per vehicle per call — measurable
        on the per-step sampling path).
        """
        model = self._model
        if isinstance(model, MultiLaneRoad):
            for k in range(model.num_lanes):
                yield k, model.lane_positions(k), model.lane_ids(k)
        else:
            yield model.lane, model.positions, model.vehicle_ids

    def current_positions(self) -> np.ndarray:
        """Plane positions of all nodes right now, shape ``(N, 2)``.

        ``cell_to_plane`` stays a per-vehicle scalar call: the arc-length
        parametrisation must evaluate with exactly the same float
        operations as always so recorded traces are bit-stable.
        """
        positions = np.empty((self._num_nodes, 2))
        for lane_idx, cells, ids in self._lane_arrays():
            lane = self._layout.lane(lane_idx)
            for cell, vehicle_id in zip(cells.tolist(), ids.tolist()):
                positions[vehicle_id] = lane.cell_to_plane(cell)
        return positions

    def sample(self, duration_s: float, interval_s: float = 1.0) -> MobilityTrace:
        """Advance the automaton and record plane positions.

        ``interval_s`` must be a whole multiple of the CA time step: the
        automaton is inherently discrete and cannot be sampled mid-step.
        """
        if duration_s < 0:
            raise ValueError(f"duration_s must be >= 0, got {duration_s}")
        steps_per_sample = interval_s / self._dt
        if abs(steps_per_sample - round(steps_per_sample)) > 1e-9:
            raise ValueError(
                f"interval_s ({interval_s}) must be a multiple of the CA "
                f"time step ({self._dt})"
            )
        steps_per_sample = int(round(steps_per_sample))
        if steps_per_sample < 1:
            raise ValueError("interval_s must be at least one CA time step")
        num_samples = int(duration_s // interval_s) + 1
        start_time = self._model.time * self._dt

        times = start_time + interval_s * np.arange(num_samples)
        positions = np.empty((num_samples, self._num_nodes, 2))
        teleported = np.zeros((num_samples, self._num_nodes), dtype=bool)
        positions[0] = self.current_positions()
        teleports_possible = self._any_open_lane()
        for row in range(1, num_samples):
            shifted_since_last = np.zeros(self._num_nodes, dtype=bool)
            for _ in range(steps_per_sample):
                self._model.step()
                # Only open lanes can teleport; when every lane is
                # closed the scan would never set a flag, so skip it.
                if teleports_possible:
                    self._accumulate_shifts(shifted_since_last)
            positions[row] = self.current_positions()
            teleported[row] = shifted_since_last
        return MobilityTrace(
            times=times,
            positions=positions,
            teleported=teleported if teleports_possible else None,
        )

    def _accumulate_shifts(self, shifted_since_last: np.ndarray) -> None:
        """OR this step's wrap flags (open lanes only) into the row."""
        model = self._model
        if isinstance(model, MultiLaneRoad):
            for k in range(model.num_lanes):
                if self._lane_closed(k):
                    continue
                shifted = model.lane_shifted(k)
                if shifted.any():
                    shifted_since_last[model.lane_ids(k)[shifted]] = True
        elif not self._lane_closed(model.lane):
            shifted = model.shifted
            if shifted.any():
                shifted_since_last[model.vehicle_ids[shifted]] = True

    def _lane_closed(self, lane_id: int) -> bool:
        return self._layout.lane(lane_id).shape.closed

    def _any_open_lane(self) -> bool:
        return any(not lane.shape.closed for lane in self._layout)
