"""Registry entries for lane topology and initial vehicle placement.

These factories are the pluggable half of the Behavioural Analyzer:
``boundary`` entries build the lane geometry (plus the matching CA
boundary condition) and ``mobility`` entries place the vehicles and build
the Nagel-Schreckenberg model.  ``CavenetSimulation.build_mobility``
resolves both through :mod:`repro.core.registry`, so a new road shape or
placement strategy plugs in with a decorator instead of an if/elif edit.

Contracts:

* ``boundary`` — ``factory(scenario) -> (RoadLayout, Boundary)``;
* ``mobility`` — ``factory(scenario, boundary, rng) ->
  NagelSchreckenberg`` (``rng`` is the run's ``"mobility"`` stream; draw
  from it exactly as documented so same-seed runs stay reproducible).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ca.boundary import Boundary
from repro.ca.nasch import NagelSchreckenberg
from repro.core.registry import register
from repro.geometry.layout import RoadLayout


@register("boundary", "circuit")
def _make_circuit(scenario) -> Tuple[RoadLayout, Boundary]:
    """Improved CAVENET: the lane closed into a circle (paper Fig. 1b)."""
    layout = RoadLayout.single_circuit(
        scenario.road_length_m, scenario.cell_length_m
    )
    return layout, Boundary.PERIODIC


@register("boundary", "line")
def _make_line(scenario) -> Tuple[RoadLayout, Boundary]:
    """Original CAVENET: a straight lane with the wrap-shift teleport."""
    layout = RoadLayout.single_line(
        scenario.road_length_m, scenario.cell_length_m
    )
    return layout, Boundary.WRAP_SHIFT


@register("mobility", "random")
def _place_random(
    scenario, boundary: Boundary, rng: np.random.Generator
) -> NagelSchreckenberg:
    """Uniform-random scatter over the lane (heterogeneous gaps, the
    intermittent-connectivity regime of the paper's evaluation).

    Draws one ``rng.choice`` of ``num_nodes`` distinct cells, sorted —
    the exact draw the pre-registry dispatch made, so seeded traces are
    unchanged.
    """
    positions = np.sort(
        rng.choice(scenario.num_cells, size=scenario.num_nodes, replace=False)
    )
    return NagelSchreckenberg(
        scenario.num_cells,
        positions=positions,
        p=scenario.dawdle_p,
        v_max=scenario.v_max,
        boundary=boundary,
        rng=rng,
        kernels=scenario.kernels,
    )


@register("mobility", "uniform")
def _place_uniform(
    scenario, boundary: Boundary, rng: np.random.Generator
) -> NagelSchreckenberg:
    """Evenly spaced vehicles (a fully connected static ring; no draws)."""
    return NagelSchreckenberg(
        scenario.num_cells,
        scenario.num_nodes,
        p=scenario.dawdle_p,
        v_max=scenario.v_max,
        boundary=boundary,
        rng=rng,
        kernels=scenario.kernels,
    )
