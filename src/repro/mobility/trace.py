"""Movement traces: sampled node positions over time.

A :class:`MobilityTrace` is the interchange format between CAVENET's two
blocks (paper Fig. 2): the Behavioural Analyzer produces one, and both the
ns-2 exporter (:mod:`repro.tracegen`) and our own Communication Protocol
Simulator (via :class:`TracePlayer`) consume it.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np


@dataclasses.dataclass(frozen=True)
class MobilityTrace:
    """Node positions sampled at regular instants.

    Attributes:
        times: sample instants in seconds, shape ``(T,)``, strictly
            increasing, uniformly spaced.
        positions: plane coordinates in metres, shape ``(T, N, 2)``.
        teleported: optional boolean array of shape ``(T, N)``;
            ``teleported[t, i]`` marks that node ``i``'s movement *into*
            sample ``t`` was discontinuous (the original CAVENET's
            end-of-line shift).  ``None`` means no teleports anywhere.
    """

    times: np.ndarray
    positions: np.ndarray
    teleported: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.times.ndim != 1:
            raise ValueError(f"times must be 1-D, got shape {self.times.shape}")
        if self.positions.ndim != 3 or self.positions.shape[2] != 2:
            raise ValueError(
                f"positions must have shape (T, N, 2), got {self.positions.shape}"
            )
        if len(self.times) != self.positions.shape[0]:
            raise ValueError(
                f"{len(self.times)} sample times but "
                f"{self.positions.shape[0]} position rows"
            )
        if len(self.times) < 1:
            raise ValueError("a trace needs at least one sample")
        if len(self.times) > 1 and np.any(np.diff(self.times) <= 0):
            raise ValueError("times must be strictly increasing")
        if self.teleported is not None and self.teleported.shape != (
            self.positions.shape[0],
            self.positions.shape[1],
        ):
            raise ValueError(
                f"teleported must have shape (T, N), got {self.teleported.shape}"
            )

    @property
    def num_samples(self) -> int:
        """Number of samples T."""
        return len(self.times)

    @property
    def num_nodes(self) -> int:
        """Number of nodes N."""
        return self.positions.shape[1]

    @property
    def duration(self) -> float:
        """Seconds between first and last sample."""
        return float(self.times[-1] - self.times[0])

    def node_path(self, node: int) -> np.ndarray:
        """The ``(T, 2)`` path of one node (copy)."""
        return self.positions[:, node, :].copy()

    def bounds(self) -> Tuple[Tuple[float, float], Tuple[float, float]]:
        """Axis-aligned extent ``((x_min, y_min), (x_max, y_max))``.

        The spatial-indexing diagnostics and the scale benchmark use
        this to report the simulated area (and thus vehicle density)
        a trace covers; the grid index itself needs no bounds — its
        cell hash is unbounded by construction.
        """
        low = self.positions.reshape(-1, 2).min(axis=0)
        high = self.positions.reshape(-1, 2).max(axis=0)
        return (float(low[0]), float(low[1])), (float(high[0]), float(high[1]))

    def speeds(self) -> np.ndarray:
        """Per-segment speeds, shape ``(T-1, N)``, in m/s.

        Teleport segments (flagged in :attr:`teleported`) are reported as
        NaN: the jump is an artefact of the open boundary, not a physical
        speed.
        """
        if self.num_samples < 2:
            return np.empty((0, self.num_nodes))
        deltas = np.diff(self.positions, axis=0)
        dt = np.diff(self.times)[:, None]
        speeds = np.linalg.norm(deltas, axis=2) / dt
        if self.teleported is not None:
            speeds = np.where(self.teleported[1:], np.nan, speeds)
        return speeds

    def mean_speed_series(self) -> np.ndarray:
        """Average over nodes of per-segment speed — the plane-space analogue
        of the CA's v(t), used for the Random-Waypoint decay study."""
        speeds = self.speeds()
        if speeds.size == 0:
            return np.empty(0)
        return np.nanmean(speeds, axis=1)


class TracePlayer:
    """Continuous-time position lookup over a sampled trace.

    Mirrors what ns-2 does with ``setdest`` lines: between samples a node
    moves in a straight line at constant speed.  Teleport segments hold the
    node at its old position and jump at the end of the segment, which is
    how the pre-improvement CAVENET's shift manifested.  Queries outside the
    trace clamp to the first/last sample.
    """

    def __init__(self, trace: MobilityTrace) -> None:
        self._trace = trace

    @property
    def trace(self) -> MobilityTrace:
        """The underlying trace."""
        return self._trace

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the trace."""
        return self._trace.num_nodes

    def position(self, node: int, t: float) -> Tuple[float, float]:
        """Interpolated position of ``node`` at time ``t``."""
        trace = self._trace
        times = trace.times
        if t <= times[0]:
            x, y = trace.positions[0, node]
            return float(x), float(y)
        if t >= times[-1]:
            x, y = trace.positions[-1, node]
            return float(x), float(y)
        idx = int(np.searchsorted(times, t, side="right")) - 1
        t0, t1 = times[idx], times[idx + 1]
        p0 = trace.positions[idx, node]
        p1 = trace.positions[idx + 1, node]
        if trace.teleported is not None and trace.teleported[idx + 1, node]:
            return float(p0[0]), float(p0[1])
        frac = (t - t0) / (t1 - t0)
        x = p0[0] + frac * (p1[0] - p0[0])
        y = p0[1] + frac * (p1[1] - p0[1])
        return float(x), float(y)

    def positions_at(self, t: float) -> np.ndarray:
        """Positions of every node at time ``t``, shape ``(N, 2)``.

        Vectorized over nodes (the segment index is shared, since all nodes
        are sampled at the same instants); bit-identical to a per-node loop
        of :meth:`position` because ``p0 + frac * (p1 - p0)`` rounds the
        same elementwise as it does per scalar.  Always returns a fresh
        array — the channel's link cache invalidates on object identity.
        """
        trace = self._trace
        times = trace.times
        if t <= times[0]:
            return trace.positions[0].astype(float)
        if t >= times[-1]:
            return trace.positions[-1].astype(float)
        idx = int(np.searchsorted(times, t, side="right")) - 1
        t0, t1 = times[idx], times[idx + 1]
        p0 = trace.positions[idx]
        p1 = trace.positions[idx + 1]
        frac = (t - t0) / (t1 - t0)
        out = p0 + frac * (p1 - p0)
        if trace.teleported is not None:
            out = np.where(trace.teleported[idx + 1][:, None], p0, out)
        return out.astype(float)
