"""The Freeway mobility model of the IMPORTANT framework.

Paper Section II discusses the IMPORTANT framework (Bai, Sadagopan &
Helmy, INFOCOM 2003) and remarks that "their Freeway model is not as
realistic as the model we study here".  Implementing it makes that claim
testable: Freeway vehicles move in continuous space with random
accelerations, clamped speeds and a no-overtaking safety rule — but the
model has no stop-and-go dynamics, so it produces neither jam waves nor
the long-range-dependent velocity process of the NaS automaton
(see ``benchmarks/test_ext_freeway_comparison.py``).

Model rules, per 1 s step (following the IMPORTANT description, on a
circular lane for comparability with the NaS circuit):

1. ``v_i += uniform(-a, a)``, clamped to ``[v_min, v_max]``;
2. if the gap to the leader is below the safety distance, the follower's
   speed is capped at the leader's;
3. positions advance by ``v_i``; a follower may never pass its leader.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.shapes import CircularShape
from repro.mobility.base import MobilityModel
from repro.mobility.trace import MobilityTrace
from repro.util.validate import check_positive


class Freeway(MobilityModel):
    """Single circular freeway lane of randomly accelerating vehicles.

    Args:
        num_vehicles: vehicles on the lane.
        lane_length_m: circumference of the circuit.
        v_min / v_max: speed clamp, m/s.  ``v_min > 0``: Freeway vehicles
            never stop — one of the model's unrealistic traits.
        accel_max: maximum acceleration magnitude per step, m/s^2.
        safety_distance_m: below this gap the follower matches the leader.
        rng: generator for placements and accelerations.
        time_step_s: seconds per movement step.
    """

    def __init__(
        self,
        num_vehicles: int,
        lane_length_m: float,
        v_min: float = 5.0,
        v_max: float = 37.5,
        accel_max: float = 2.0,
        safety_distance_m: float = 50.0,
        rng: Optional[np.random.Generator] = None,
        time_step_s: float = 1.0,
    ) -> None:
        if num_vehicles < 1:
            raise ValueError(f"num_vehicles must be >= 1, got {num_vehicles}")
        check_positive("lane_length_m", lane_length_m)
        check_positive("v_min", v_min)
        check_positive("accel_max", accel_max)
        check_positive("safety_distance_m", safety_distance_m)
        check_positive("time_step_s", time_step_s)
        if v_max < v_min:
            raise ValueError(f"v_max ({v_max}) < v_min ({v_min})")
        if num_vehicles * 1.0 > lane_length_m:
            raise ValueError("vehicles do not fit on the lane")
        self._n = int(num_vehicles)
        self._length = float(lane_length_m)
        self._v_min = float(v_min)
        self._v_max = float(v_max)
        self._accel = float(accel_max)
        self._sd = float(safety_distance_m)
        self._dt = float(time_step_s)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._shape = CircularShape(self._length)
        self._time = 0.0
        # Ring-ordered positions (ascending); order is invariant (rule 3).
        self._pos = np.sort(
            self._rng.uniform(0.0, self._length, self._n)
        )
        self._vel = self._rng.uniform(self._v_min, self._v_max, self._n)

    # -- read-only state ---------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of vehicles (= network nodes)."""
        return self._n

    @property
    def time(self) -> float:
        """Simulated seconds elapsed."""
        return self._time

    @property
    def shape(self) -> CircularShape:
        """The circuit the lane is bent into."""
        return self._shape

    def positions_m(self) -> np.ndarray:
        """Arc-length positions along the lane (copy)."""
        return self._pos.copy()

    def velocities(self) -> np.ndarray:
        """Current speeds, m/s (copy)."""
        return self._vel.copy()

    def mean_velocity(self) -> float:
        """Average speed over all vehicles."""
        return float(self._vel.mean())

    def gaps_m(self) -> np.ndarray:
        """Distance to the leader per vehicle (cyclic)."""
        if self._n == 1:
            return np.array([self._length])
        leader = np.roll(self._pos, -1)
        return (leader - self._pos) % self._length

    # -- dynamics ----------------------------------------------------------

    def step(self) -> None:
        """One movement step (the three Freeway rules)."""
        dt = self._dt
        # Rule 1: random acceleration, clamped speed.
        self._vel = np.clip(
            self._vel + self._rng.uniform(-self._accel, self._accel, self._n) * dt,
            self._v_min,
            self._v_max,
        )
        # Rule 2: inside the safety distance, never faster than the leader.
        if self._n > 1:
            gaps = self.gaps_m()
            leader_vel = np.roll(self._vel, -1)
            close = gaps < self._sd
            self._vel = np.where(
                close, np.minimum(self._vel, leader_vel), self._vel
            )
        # Rule 3: advance, never passing the leader.  Headroom is the
        # current gap minus a 1 m standoff — conservatively ignoring the
        # leader's own (possibly clamped) movement, so a parallel update
        # can never interleave a pile-up into an overtake.
        advance = self._vel * dt
        if self._n > 1:
            gaps = self.gaps_m()
            headroom = np.maximum(gaps - 1.0, 0.0)
            advance = np.minimum(advance, headroom)
        self._pos = (self._pos + advance) % self._length
        order = np.argsort(self._pos, kind="stable")
        self._pos = self._pos[order]
        self._vel = self._vel[order]
        self._time += dt

    def sample(self, duration_s: float, interval_s: float = 1.0) -> MobilityTrace:
        """Advance the model, recording plane positions on the circuit."""
        if duration_s < 0:
            raise ValueError(f"duration_s must be >= 0, got {duration_s}")
        check_positive("interval_s", interval_s)
        steps_per_sample = max(int(round(interval_s / self._dt)), 1)
        num_samples = int(duration_s // interval_s) + 1
        times = self._time + interval_s * np.arange(num_samples)
        positions = np.empty((num_samples, self._n, 2))
        positions[0] = self._shape.to_plane_many(self._pos)
        for row in range(1, num_samples):
            for _ in range(steps_per_sample):
                self.step()
            positions[row] = self._shape.to_plane_many(self._pos)
        return MobilityTrace(times=times, positions=positions)
