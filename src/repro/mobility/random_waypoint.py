"""The Random Waypoint (RW) baseline mobility model.

The paper's introduction contrasts CAVENET's CA model with the RW model that
dominates MANET simulation: in RW every node independently picks a random
destination and speed at each waypoint.  Sampling speeds uniformly from
``[v_min, v_max]`` with ``v_min`` near zero produces the well-known
*velocity decay*: long trips get assigned slow speeds, so over time slow
trips dominate and the average instantaneous speed drifts downward instead
of stabilising (Le Boudec & Vojnovic 2006; Yoon, Liu & Noble 2006).

This implementation exposes the decay deliberately (for the comparison bench)
and offers the standard fix — speed sampled so the *stationary* distribution
is uniform — as ``stationary_fix=True``.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.mobility.base import MobilityModel
from repro.mobility.trace import MobilityTrace
from repro.util.validate import check_positive


class RandomWaypoint(MobilityModel):
    """Nodes bouncing between uniform random waypoints in a rectangle.

    Args:
        num_nodes: number of mobile nodes.
        area: ``(width, height)`` of the simulation rectangle in metres.
        v_min: minimum trip speed, m/s.  Must be > 0 (a zero minimum makes
            the model degenerate: mean speed decays to zero).
        v_max: maximum trip speed, m/s.
        pause_s: pause duration at each waypoint, seconds.
        stationary_fix: start the process in its stationary regime by
            sampling the *initial* trip speed of every node from the
            time-stationary distribution (density proportional to 1/v on
            ``[v_min, v_max]``); later waypoint speeds stay uniform.  This
            is the "perfect simulation" initialisation of Le Boudec &
            Vojnovic / Yoon, Liu & Noble that the paper cites as the
            solution to the decay problem.
        rng: random generator.
    """

    def __init__(
        self,
        num_nodes: int,
        area: Tuple[float, float],
        v_min: float = 0.1,
        v_max: float = 20.0,
        pause_s: float = 0.0,
        stationary_fix: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        check_positive("area width", area[0])
        check_positive("area height", area[1])
        check_positive("v_min", v_min)
        if v_max < v_min:
            raise ValueError(f"v_max ({v_max}) < v_min ({v_min})")
        if pause_s < 0:
            raise ValueError(f"pause_s must be >= 0, got {pause_s}")
        self._num_nodes = int(num_nodes)
        self._area = (float(area[0]), float(area[1]))
        self._v_min = float(v_min)
        self._v_max = float(v_max)
        self._pause = float(pause_s)
        self._stationary_fix = bool(stationary_fix)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._time = 0.0

        self._pos = np.column_stack(
            [
                self._rng.uniform(0, self._area[0], num_nodes),
                self._rng.uniform(0, self._area[1], num_nodes),
            ]
        )
        self._dest = np.empty_like(self._pos)
        self._speed = np.empty(num_nodes)
        self._pause_left = np.zeros(num_nodes)
        for node in range(num_nodes):
            self._pick_waypoint(node, initial=True)

    @property
    def num_nodes(self) -> int:
        """Number of mobile nodes."""
        return self._num_nodes

    @property
    def time(self) -> float:
        """Simulated seconds elapsed."""
        return self._time

    def current_positions(self) -> np.ndarray:
        """Current ``(N, 2)`` positions (copy)."""
        return self._pos.copy()

    def current_speeds(self) -> np.ndarray:
        """Instantaneous speed per node (0 while pausing)."""
        return np.where(self._pause_left > 0, 0.0, self._speed)

    def sample(self, duration_s: float, interval_s: float = 1.0) -> MobilityTrace:
        """Advance the model and record positions every ``interval_s``."""
        if duration_s < 0:
            raise ValueError(f"duration_s must be >= 0, got {duration_s}")
        check_positive("interval_s", interval_s)
        num_samples = int(duration_s // interval_s) + 1
        times = self._time + interval_s * np.arange(num_samples)
        positions = np.empty((num_samples, self._num_nodes, 2))
        positions[0] = self._pos
        for row in range(1, num_samples):
            self._advance(interval_s)
            positions[row] = self._pos
        return MobilityTrace(times=times, positions=positions)

    # -- internals ---------------------------------------------------------

    def _pick_waypoint(self, node: int, initial: bool = False) -> None:
        self._dest[node, 0] = self._rng.uniform(0, self._area[0])
        self._dest[node, 1] = self._rng.uniform(0, self._area[1])
        if initial and self._stationary_fix:
            # Stationary (time-weighted) speed density f(v) ~ 1/v on
            # [v_min, v_max]: inverse-CDF sampling.  Only the first trip
            # uses it; drawing every trip this way would over-correct.
            u = self._rng.random()
            self._speed[node] = self._v_min * math.exp(
                u * math.log(self._v_max / self._v_min)
            )
        else:
            self._speed[node] = self._rng.uniform(self._v_min, self._v_max)

    def _advance(self, dt: float) -> None:
        for node in range(self._num_nodes):
            remaining = dt
            while remaining > 1e-12:
                if self._pause_left[node] > 0:
                    waited = min(self._pause_left[node], remaining)
                    self._pause_left[node] -= waited
                    remaining -= waited
                    continue
                to_dest = self._dest[node] - self._pos[node]
                dist = float(np.linalg.norm(to_dest))
                travel_time = dist / self._speed[node] if dist > 0 else 0.0
                if travel_time <= remaining:
                    self._pos[node] = self._dest[node]
                    remaining -= travel_time
                    self._pause_left[node] = self._pause
                    self._pick_waypoint(node)
                else:
                    frac = remaining / travel_time
                    self._pos[node] = self._pos[node] + frac * to_dest
                    remaining = 0.0
        self._time += dt
