"""Command-line interface: ``python -m repro <command>``.

Eleven commands cover the everyday uses of the tool:

* ``run``         — one network scenario, printed metrics;
* ``compare``     — several protocols over the same mobility (Fig. 11);
* ``sweep``       — one scenario across a grid of values for one field;
* ``trace``       — generate a mobility trace and export it (ns-2/CSV/JSON);
* ``fundamental`` — the flow-density diagram (Fig. 4);
* ``spacetime``   — an ASCII space-time diagram (Fig. 5);
* ``components``  — list every registered component, per namespace;
* ``journal``     — ``inspect`` or ``compact`` a trial journal file;
* ``serve``       — run the crash-safe campaign scheduler over a spool
  directory (job envelopes in, incremental results out);
* ``worker``      — drain dir-queue campaigns under a queue or spool
  directory (run one per host sharing the directory);
* ``attach``      — tail a served job's incremental per-trial results.

Scenario-taking commands (``run``, ``compare``, ``sweep``, ``trace``)
accept ``--scenario FILE`` to load a declarative scenario saved by
:meth:`Scenario.save` (the individual scenario flags are then ignored)
and repeatable ``--set dotted.key=value`` overrides applied on top of
either source — ``--set seed=7 --set mac_params.cw_min=31``.

Campaign commands (``compare``, ``sweep``, ``fundamental``) take
``--journal FILE`` to durably record every completed trial, ``--resume``
to skip trials already in the journal after a crash (``--resume``
without ``--journal`` is rejected at argument-parse time), and
``--strict`` to exit nonzero when any trial failed (instead of silently
aggregating the survivors).  ``--backend`` picks the execution backend
(``local-serial``, ``local-process``, ``local-supervised``,
``dir-queue``; see :mod:`repro.core.backend` and
:mod:`repro.core.distq`), with ``--lease-ttl`` and ``--max-retries``
tuning lease duration and retry budget, and ``--queue-dir`` /
``--quarantine-after`` configuring the dir-queue's shared directory and
poison-trial threshold.  Configuration mistakes and campaign failures
surface as the typed errors of :mod:`repro.util.errors` and exit with
code 2; ``journal inspect`` exits 3 when the journal holds quarantined
trials, so scripts can distinguish "needs a human" from "corrupt".

Interrupting a campaign is graceful for both Ctrl-C and a polite kill:
completed trials are already fsync'd to the journal (when ``--journal``
is given), a partial telemetry summary and a resume hint go to stderr,
and the process exits with the conventional code — 130 for SIGINT, 143
for SIGTERM.
"""

from __future__ import annotations

import argparse
import json
import math
import signal
import sys
from typing import Any, Dict, List, Optional

import numpy as np


def _int_list(text: str) -> tuple:
    return tuple(int(part) for part in text.split(",") if part)


def _float_list(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part]


def _value_list(text: str) -> list:
    """Comma-separated sweep values, each parsed as int, float or string."""
    values = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        for cast in (int, float):
            try:
                values.append(cast(part))
                break
            except ValueError:
                continue
        else:
            values.append(part)
    return values


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CAVENET reproduction: CA mobility + VANET protocol "
        "simulation",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run one network scenario")
    _add_scenario_arguments(run)
    run.add_argument(
        "--profile",
        action="store_true",
        help="profile the run with cProfile and print the top 20 "
        "functions by cumulative time to stderr",
    )
    run.add_argument(
        "--profile-out",
        metavar="FILE",
        default=None,
        help="dump raw pstats profile data to FILE (implies --profile); "
        "inspect with `python -m pstats FILE` or snakeviz",
    )

    compare = commands.add_parser(
        "compare", help="compare protocols over the same mobility"
    )
    _add_scenario_arguments(compare)
    compare.add_argument(
        "--protocols",
        default="AODV,OLSR,DYMO",
        help="comma-separated protocol list (default: AODV,OLSR,DYMO)",
    )
    _add_parallel_arguments(compare)
    _add_campaign_arguments(compare)

    sweep = commands.add_parser(
        "sweep", help="sweep one scenario field across a grid of values"
    )
    _add_scenario_arguments(sweep)
    sweep.add_argument(
        "--field",
        required=True,
        help="Scenario field to vary (e.g. num_nodes, cbr_rate_pps)",
    )
    sweep.add_argument(
        "--values",
        type=_value_list,
        required=True,
        help="comma-separated values for the swept field",
    )
    sweep.add_argument(
        "--trials",
        type=int,
        default=1,
        help="independent seeded trials per value (default 1)",
    )
    _add_parallel_arguments(sweep)
    _add_campaign_arguments(sweep)

    trace = commands.add_parser(
        "trace", help="generate a mobility trace and export it"
    )
    _add_scenario_arguments(trace)
    trace.add_argument(
        "--format",
        choices=("ns2", "csv", "json"),
        default="ns2",
        help="output format (default ns2)",
    )
    trace.add_argument(
        "--output", default="-", help="output file, '-' for stdout"
    )

    fundamental = commands.add_parser(
        "fundamental", help="flow-density (fundamental) diagram"
    )
    fundamental.add_argument(
        "--densities",
        type=_float_list,
        default=[0.05, 0.1, 1 / 6, 0.25, 0.35, 0.5],
        help="comma-separated densities",
    )
    fundamental.add_argument("--p", type=float, default=0.0)
    fundamental.add_argument("--cells", type=int, default=400)
    fundamental.add_argument("--trials", type=int, default=10)
    fundamental.add_argument("--steps", type=int, default=300)
    fundamental.add_argument("--seed", type=int, default=0)
    _add_parallel_arguments(fundamental)
    _add_campaign_arguments(fundamental)

    spacetime = commands.add_parser(
        "spacetime", help="ASCII space-time diagram"
    )
    spacetime.add_argument("--density", type=float, default=0.3)
    spacetime.add_argument("--p", type=float, default=0.3)
    spacetime.add_argument("--cells", type=int, default=400)
    spacetime.add_argument("--steps", type=int, default=80)
    spacetime.add_argument("--warmup", type=int, default=100)
    spacetime.add_argument("--seed", type=int, default=0)

    commands.add_parser(
        "components",
        help="list every registered component (propagation, routing, "
        "mobility, traffic, boundary, fault, spatial, kernels, backend, "
        "tech, effect, queue)",
    )

    serve = commands.add_parser(
        "serve",
        help="run the crash-safe campaign scheduler over a spool "
        "directory (kill it any time; it resumes from the journals)",
    )
    serve.add_argument("spool", help="spool directory (created if absent)")
    serve.add_argument(
        "--once",
        action="store_true",
        help="one scheduling pass (recover interrupted jobs, drain "
        "what is queued now) instead of polling forever",
    )
    serve.add_argument(
        "--poll",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="idle sleep between spool scans (default 0.2)",
    )
    serve.add_argument(
        "--submit",
        default=None,
        metavar="FILE",
        help="first drop this job-envelope JSON file ('-' for stdin) "
        "into the spool, then schedule",
    )

    worker = commands.add_parser(
        "worker",
        help="drain dir-queue campaigns under a queue or spool directory "
        "(run one per host sharing the directory)",
    )
    worker.add_argument(
        "root",
        help="a campaign's --queue-dir, or a serve spool directory "
        "(then every job's queue is served as it appears)",
    )
    worker.add_argument(
        "--follow",
        action="store_true",
        help="keep polling for new queues after draining the current "
        "ones (serve mode) instead of exiting when drained",
    )
    worker.add_argument(
        "--poll",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="idle sleep between queue scans (default 0.05)",
    )
    worker.add_argument(
        "--max-trials",
        type=int,
        default=None,
        metavar="N",
        dest="max_trials",
        help="exit after committing N trials (default: unlimited)",
    )

    attach = commands.add_parser(
        "attach",
        help="tail a served job's incremental per-trial results",
    )
    attach.add_argument("spool", help="the scheduler's spool directory")
    attach.add_argument(
        "--job",
        default=None,
        metavar="ID",
        help="job id under the spool's jobs/ directory (default: the "
        "only job, when exactly one exists)",
    )
    attach.add_argument(
        "--no-follow",
        action="store_true",
        dest="no_follow",
        help="print the records available now and exit instead of "
        "following until the job finishes",
    )
    attach.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="give up (exit 2) after this long following an idle job",
    )

    journal = commands.add_parser(
        "journal", help="inspect or compact a trial journal file"
    )
    journal_commands = journal.add_subparsers(
        dest="journal_command", required=True
    )
    inspect = journal_commands.add_parser(
        "inspect",
        help="print the journal's fingerprint, trial/lease/heartbeat "
        "counts, live lease owners and quarantined trials; exits 3 "
        "when quarantined trials exist",
    )
    inspect.add_argument("path", help="journal file to inspect")
    compact = journal_commands.add_parser(
        "compact",
        help="drop superseded lease/heartbeat records and rewrite the "
        "journal atomically (resume state is unchanged)",
    )
    compact.add_argument("path", help="journal file to compact")
    compact.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the compacted journal here instead of replacing "
        "the original in place",
    )

    return parser


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="FILE",
        help="load the scenario from a JSON file saved by Scenario.save() "
        "(the individual scenario flags below are then ignored; "
        "use --set to override fields)",
    )
    parser.add_argument(
        "--set",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        dest="set",
        help="override one scenario field (dotted keys reach nested "
        "mappings: --set seed=7 --set mac_params.cw_min=31); values "
        "parse as JSON, falling back to a plain string; repeatable",
    )
    parser.add_argument("--protocol", default="AODV")
    parser.add_argument("--nodes", type=int, default=30)
    parser.add_argument("--road", type=float, default=3000.0,
                        help="road length in metres")
    parser.add_argument(
        "--boundary", default="circuit",
        help="lane topology, any registered boundary "
        "(circuit, line, ...; see `repro components`)",
    )
    parser.add_argument("--time", type=float, default=100.0,
                        help="simulated seconds")
    parser.add_argument(
        "--senders", type=_int_list, default=(1, 2, 3, 4, 5, 6, 7, 8)
    )
    parser.add_argument("--receiver", type=int, default=0)
    parser.add_argument("--p", type=float, default=0.5,
                        help="NaS dawdling probability")
    parser.add_argument("--seed", type=int, default=4)
    parser.add_argument(
        "--propagation",
        default="two_ray",
        help="any registered propagation model (two_ray, free_space, "
        "shadowing, nakagami, ...; see `repro components`)",
    )
    parser.add_argument(
        "--tech",
        default="80211-dsss",
        help="any registered radio-technology profile (80211-dsss, "
        "80211p, ...; see `repro components`)",
    )


def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for independent trials "
        "(1 = serial, 0 = one per CPU; results are identical either way)",
    )
    parser.add_argument(
        "--trial-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any trial exceeding this wall-clock bound "
        "(needs --workers > 1)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="execution backend: local-serial, local-process, "
        "local-supervised, dir-queue, or auto (default; see "
        "`repro components`)",
    )
    parser.add_argument(
        "--queue-dir",
        default=None,
        metavar="DIR",
        dest="queue_dir",
        help="dir-queue backend: shared job-queue directory; point other "
        "hosts' `repro worker` at the same directory to join the "
        "campaign (default: a private temporary directory)",
    )
    parser.add_argument(
        "--quarantine-after",
        type=int,
        default=None,
        metavar="K",
        dest="quarantine_after",
        help="dir-queue backend: park a trial after it kills K distinct "
        "workers instead of reclaiming it forever (default 3)",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        dest="lease_ttl",
        help="supervised backend: how long one worker owns one trial "
        "before its lease must be extended or reclaimed (default 30)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        dest="max_retries",
        help="re-attempts per trial after its first try (default 1)",
    )


def _add_campaign_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--journal",
        default=None,
        metavar="FILE",
        help="durably record every completed trial to this JSONL journal",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip trials already completed in --journal (after a crash); "
        "the journal is fingerprinted, so resuming a different campaign "
        "definition is rejected",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero if any trial failed (instead of aggregating "
        "the surviving trials)",
    )


def _resolve_workers(args: argparse.Namespace) -> int:
    import os

    if args.workers == 0:
        return os.cpu_count() or 1
    if args.workers < 0:
        raise SystemExit(f"--workers must be >= 0, got {args.workers}")
    return args.workers


def _report_failures(header: str, per_point, strict: bool) -> int:
    """Print a per-point failure summary; return the exit code.

    ``per_point`` is ``(label, num_failed, num_total)`` triples.  Failed
    trials are *dropped* from aggregates, so silence here would let a
    half-dead campaign masquerade as a healthy one — failures are always
    printed; ``--strict`` additionally makes them fatal (exit 1).
    """
    failures = [(label, k, n) for label, k, n in per_point if k]
    if not failures:
        return 0
    total = sum(k for _, k, _ in failures)
    print(f"\nWARNING: {total} failed trial(s) dropped from {header}:",
          file=sys.stderr)
    for label, k, n in failures:
        print(f"  {label}: {k}/{n} trials failed", file=sys.stderr)
    if strict:
        print("--strict: treating failed trials as fatal", file=sys.stderr)
        return 1
    return 0


def _campaign_telemetry(workers: int, journal: Optional[str] = None):
    """A telemetry sink for parallel or journalled CLI campaigns.

    ``None`` for a plain serial run; journalled campaigns always get one so
    the resumed-vs-fresh split is reportable.
    """
    if workers == 1 and journal is None:
        return None
    from repro.metrics.collector import CampaignTelemetry

    return CampaignTelemetry()


#: ``journal inspect`` found quarantined (poison) trials: the campaign
#: finished its healthy trials but some are parked awaiting a human.
EXIT_QUARANTINED = 3

#: Conventional exit code for death-by-SIGINT (128 + signal number 2).
EXIT_INTERRUPTED = 130
#: Conventional exit code for death-by-SIGTERM (128 + signal number 15).
EXIT_TERMINATED = 143

#: Which signal actually interrupted us — SIGTERM is delivered as a
#: KeyboardInterrupt (see :func:`_handle_sigterm`) so campaign handlers
#: have exactly one interruption path; this global remembers the true
#: origin for the exit code and the stderr message.
_interrupt_signal = "SIGINT"


def _handle_sigterm(signum, frame) -> None:
    """Treat a polite kill exactly like Ctrl-C (plus the right exit code).

    Schedulers and timeouts send SIGTERM where humans send SIGINT; both
    deserve the same graceful shutdown — journal already durable, partial
    telemetry printed, a ``--resume`` hint — rather than an abrupt death
    that *looks* like data loss.
    """
    global _interrupt_signal
    _interrupt_signal = "SIGTERM"
    raise KeyboardInterrupt


def _install_signal_handlers() -> None:
    """Route SIGTERM through the KeyboardInterrupt path (best-effort).

    Only the main thread may set handlers, and embedders may run the CLI
    elsewhere — failure to install is fine, it just means SIGTERM keeps
    its abrupt default behaviour there.
    """
    try:
        signal.signal(signal.SIGTERM, _handle_sigterm)
    except (ValueError, OSError):
        pass


def _interrupted(telemetry, journal: Optional[str]) -> int:
    """Report an interrupted campaign to stderr; return 130/143.

    Every trial that finished before the interrupt is already durable
    (the journal fsyncs per record), so the honest summary here is the
    telemetry counters plus how to pick the campaign back up.
    """
    print(f"\ninterrupted ({_interrupt_signal})", file=sys.stderr)
    if telemetry is not None:
        print(f"partial results: {telemetry.format_summary()}",
              file=sys.stderr)
    if journal:
        print(f"completed trials are journalled in {journal}; "
              "re-run with --resume to continue", file=sys.stderr)
    return (
        EXIT_TERMINATED if _interrupt_signal == "SIGTERM"
        else EXIT_INTERRUPTED
    )


def _parse_set_overrides(pairs: Optional[List[str]]) -> Dict[str, Any]:
    """Parse repeated ``--set KEY=VALUE`` flags into an override dict.

    Values parse as JSON first (``7`` -> int, ``[1,2]`` -> list,
    ``true`` -> bool), falling back to the raw string — so
    ``--set protocol=OLSR`` needs no quoting gymnastics.
    """
    from repro.util.errors import ConfigError

    overrides: Dict[str, Any] = {}
    for pair in pairs or []:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ConfigError(
                f"--set expects KEY=VALUE (dotted keys allowed), got {pair!r}"
            )
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        overrides[key] = value
    return overrides


def _max_attempts(args: argparse.Namespace) -> int:
    """``--max-retries`` N means N re-attempts on top of the first try."""
    from repro.util.errors import ConfigError

    retries = getattr(args, "max_retries", None)
    if retries is None:
        return 2
    if retries < 0:
        raise ConfigError(f"--max-retries must be >= 0, got {retries}")
    return retries + 1


def _backend_overrides(args: argparse.Namespace) -> Dict[str, Any]:
    """Scenario overrides implied by the backend-selection flags."""
    overrides: Dict[str, Any] = {}
    if getattr(args, "backend", None):
        overrides["backend"] = args.backend
    if getattr(args, "lease_ttl", None) is not None:
        overrides["lease_ttl_s"] = args.lease_ttl
    if getattr(args, "queue_dir", None) is not None:
        overrides["queue_dir"] = args.queue_dir
    if getattr(args, "quarantine_after", None) is not None:
        overrides["quarantine_after"] = args.quarantine_after
    return overrides


def _scenario_from(args: argparse.Namespace):
    from repro.core.config import Scenario

    overrides = _parse_set_overrides(getattr(args, "set", None))
    if getattr(args, "scenario", None):
        base = Scenario.load(args.scenario)
    else:
        stop = min(args.time * 0.9, args.time)
        base = Scenario(
            num_nodes=args.nodes,
            road_length_m=args.road,
            boundary=args.boundary,
            sim_time_s=args.time,
            protocol=args.protocol,
            senders=args.senders,
            receiver=args.receiver,
            dawdle_p=args.p,
            traffic_start_s=args.time * 0.1,
            traffic_stop_s=stop,
            propagation=args.propagation,
            tech=args.tech,
            seed=args.seed,
        )
    if overrides:
        base = base.with_overrides(overrides)
    return base


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core.simulation import CavenetSimulation

    scenario = _scenario_from(args)
    if args.profile or args.profile_out:
        result = _profiled_run(scenario, args.profile_out)
    else:
        result = CavenetSimulation(scenario).run()
    print(f"protocol          : {scenario.protocol}")
    if scenario.faults:
        print(f"fault models      : "
              f"{', '.join(spec['kind'] for spec in scenario.faults)}")
        print(f"fault events      : {len(result.fault_events)}")
        avail = result.availability()
        if not math.isnan(avail):
            print(f"availability      : {avail:.3f}")
        for when, gap in sorted(result.recovery_times_s().items()):
            gap_text = f"{gap:.3f} s" if not math.isnan(gap) else "never"
            print(f"  recovery after node_up at {when:.1f} s: {gap_text}")
    print(f"originated        : {result.collector.num_originated}")
    print(f"delivered         : {result.collector.num_delivered}")
    print(f"PDR               : {result.pdr():.3f}")
    delay = result.delay_stats()
    print(f"mean delay        : {delay.mean_s * 1000:.2f} ms")
    overhead = result.control_overhead()
    print(f"control packets   : {overhead.packets}")
    energy = result.collector.energy
    if energy is not None:
        print(f"energy consumed   : {energy.total_j:.2f} J "
              f"({energy.mean_j:.2f} J/node)")
    for sender in scenario.senders:
        print(
            f"  sender {sender:>2}: PDR {result.pdr(sender):.3f}  "
            f"goodput {result.mean_goodput_bps(sender):>9,.0f} bps"
        )
    return 0


def _profiled_run(scenario, profile_out: Optional[str]):
    """Run one scenario under cProfile; report to stderr, data to disk.

    The table goes to stderr so the run's normal stdout summary stays
    machine-parseable; the raw pstats dump (when requested) is the
    input for flame-graph tools.  This is how the compiled-kernel
    targets were chosen — see docs/API.md "Compiled kernels".
    """
    import cProfile
    import pstats

    from repro.core.simulation import CavenetSimulation

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = CavenetSimulation(scenario).run()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stderr)
    stats.sort_stats("cumulative")
    print("profile: top 20 functions by cumulative time", file=sys.stderr)
    stats.print_stats(20)
    if profile_out:
        stats.dump_stats(profile_out)
        print(f"profile data written to {profile_out}", file=sys.stderr)
    return result


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.render import render_bars
    from repro.core.experiment import compare_protocols

    scenario = _scenario_from(args)
    backend_overrides = _backend_overrides(args)
    if backend_overrides:
        scenario = scenario.with_overrides(backend_overrides)
    protocols = tuple(p for p in args.protocols.split(",") if p)
    workers = _resolve_workers(args)
    telemetry = _campaign_telemetry(workers, args.journal)
    try:
        comparison = compare_protocols(
            scenario,
            protocols,
            max_workers=workers,
            trial_timeout_s=args.trial_timeout,
            max_attempts=_max_attempts(args),
            telemetry=telemetry,
            journal_path=args.journal,
            resume=args.resume,
        )
    except KeyboardInterrupt:
        return _interrupted(telemetry, args.journal)
    if telemetry is not None:
        print(f"[{workers} workers] {telemetry.format_summary()}")
        print()
    print(comparison.format_pdr_table())
    print()
    print("mean PDR:")
    print(render_bars(comparison.mean_pdr(), max_value=1.0))
    print()
    print("control packets:")
    print(render_bars(
        {k: float(v) for k, v in comparison.overhead_table().items()},
        fmt="{:.0f}",
    ))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.sweep import sweep_scenario

    scenario = _scenario_from(args)
    backend_overrides = _backend_overrides(args)
    if backend_overrides:
        scenario = scenario.with_overrides(backend_overrides)
    workers = _resolve_workers(args)
    telemetry = _campaign_telemetry(workers, args.journal)
    try:
        result = sweep_scenario(
            scenario,
            field=args.field,
            values=args.values,
            trials=args.trials,
            max_workers=workers,
            trial_timeout_s=args.trial_timeout,
            max_attempts=_max_attempts(args),
            telemetry=telemetry,
            journal_path=args.journal,
            resume=args.resume,
        )
    except KeyboardInterrupt:
        return _interrupted(telemetry, args.journal)
    if telemetry is not None:
        print(f"[{workers} workers] {telemetry.format_summary()}")
        print()
    print(f"sweep: {args.field} over {len(result.points)} values, "
          f"{args.trials} trial(s) each")
    print(f"{args.field:>14}  {'PDR':>7}  {'std':>7}  {'delay ms':>9}  "
          f"{'ctrl pkts':>9}  {'failed':>6}")
    for point in result.points:
        delay_ms = point.delay_mean_s * 1000
        print(f"{point.value!s:>14}  {point.pdr_mean:>7.3f}  "
              f"{point.pdr_std:>7.3f}  {delay_ms:>9.2f}  "
              f"{point.control_packets_mean:>9.0f}  {point.num_failed:>6d}")
    return _report_failures(
        "the sweep aggregates",
        [
            (f"{args.field}={point.value!r}", point.num_failed, args.trials)
            for point in result.points
        ],
        args.strict,
    )


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.simulation import CavenetSimulation
    from repro.tracegen import Ns2TraceWriter, trace_to_csv, trace_to_json

    scenario = _scenario_from(args)
    trace = CavenetSimulation(scenario).generate_trace()
    if args.format == "ns2":
        text = Ns2TraceWriter().render(trace)
    elif args.format == "csv":
        text = trace_to_csv(trace)
    else:
        text = trace_to_json(trace, indent=2)
    if args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(text):,} characters to {args.output}")
    return 0


def _cmd_fundamental(args: argparse.Namespace) -> int:
    from repro.analysis.fundamental import fundamental_diagram
    from repro.analysis.render import render_sparkline
    from repro.util.rng import RngStreams

    workers = _resolve_workers(args)
    telemetry = _campaign_telemetry(workers, args.journal)
    try:
        diagram = fundamental_diagram(
            args.densities,
            p=args.p,
            num_cells=args.cells,
            trials=args.trials,
            steps=args.steps,
            rng=RngStreams(args.seed),
            max_workers=workers,
            trial_timeout_s=args.trial_timeout,
            max_attempts=_max_attempts(args),
            telemetry=telemetry,
            journal_path=args.journal,
            resume=args.resume,
            backend=args.backend or "auto",
            lease_ttl_s=(
                args.lease_ttl if args.lease_ttl is not None else 30.0
            ),
        )
    except KeyboardInterrupt:
        return _interrupted(telemetry, args.journal)
    if telemetry is not None:
        print(f"[{workers} workers] {telemetry.format_summary()}")
    print(f"fundamental diagram: p={args.p}, L={args.cells}, "
          f"{args.trials} trials x {args.steps} steps")
    print(f"{'rho':>8}  {'J':>8}  {'std':>8}")
    for rho, flow, std in zip(
        diagram.densities, diagram.flows, diagram.flow_std
    ):
        print(f"{rho:>8.3f}  {flow:>8.4f}  {std:>8.4f}")
    print(f"\nJ(rho): {render_sparkline(diagram.flows)}")
    rho_star, j_star = diagram.peak()
    print(f"peak: J={j_star:.3f} at rho={rho_star:.3f}")
    failed = diagram.num_failed
    per_point = [] if failed is None else [
        (f"rho={rho:.3f}", int(k), args.trials)
        for rho, k in zip(diagram.densities, failed)
    ]
    return _report_failures("the ensemble averages", per_point, args.strict)


def _cmd_spacetime(args: argparse.Namespace) -> int:
    from repro.analysis.render import render_spacetime
    from repro.ca.history import evolve
    from repro.ca.nasch import NagelSchreckenberg

    model = NagelSchreckenberg.from_density(
        args.cells,
        args.density,
        random_start=True,
        rng=np.random.default_rng(args.seed),
        p=args.p,
    )
    history = evolve(model, args.steps, warmup=args.warmup)
    print(f"rho={args.density} p={args.p} L={args.cells} "
          f"({args.steps} steps; time flows downward)")
    print(render_spacetime(history))
    return 0


def _cmd_components(args: argparse.Namespace) -> int:
    from repro.core import registry

    for kind in registry.KINDS:
        noun = registry.registry(kind).noun
        entries = registry.describe(kind)
        print(f"{kind} ({noun}, {len(entries)} registered):")
        width = max((len(name) for name in entries), default=0) + 2
        for name, implementation in entries.items():
            print(f"  {name:<{width}}{implementation}")
        print()
    return 0


def _cmd_journal(args: argparse.Namespace) -> int:
    from repro.core.journal import (
        compact_journal, inspect_journal, read_lease_state, read_quarantine,
    )

    if args.journal_command == "inspect":
        stats = inspect_journal(args.path)
        print(f"journal           : {stats.path}")
        print(f"fingerprint       : {stats.fingerprint}")
        print(f"schema            : {stats.schema}")
        print(f"size              : {stats.size_bytes:,} bytes")
        print(f"records           : {stats.records}")
        print(f"  trials ok       : {stats.trials_ok}")
        print(f"  trials failed   : {stats.trials_failed}")
        print(f"  distinct done   : {stats.distinct_completed}")
        print(f"  leases          : {stats.leases} "
              f"(live {stats.live_leases}, expired {stats.expired_leases})")
        print(f"  heartbeats      : {stats.heartbeats}")
        print(f"  events          : {stats.events}")
        print(f"  quarantined     : {stats.quarantined}")
        print(f"  superseded      : {stats.superseded}")
        torn = "yes (tolerated on resume)" if stats.torn_tail else "no"
        print(f"torn tail         : {torn}")
        leases = read_lease_state(args.path)
        if leases:
            print("open leases:")
            for key_id, lease in sorted(leases.items()):
                parts = [f"owner {lease.owner}", f"attempt {lease.attempt}"]
                if lease.host is not None:
                    parts.append(f"host {lease.host}")
                if lease.pid is not None:
                    parts.append(f"pid {lease.pid}")
                if lease.token is not None:
                    parts.append(f"fencing token {lease.token}")
                state = "expired" if lease.expired() else "live"
                print(f"  {key_id}: {', '.join(parts)} ({state})")
        quarantined = read_quarantine(args.path)
        if quarantined:
            print("quarantined trials (remove the quarantine record or "
                  "start a fresh journal to re-run them):")
            for key_id, record in sorted(quarantined.items()):
                owners = ", ".join(record.owners)
                print(f"  {key_id}: killed {len(record.owners)} distinct "
                      f"worker(s) [{owners}] after {record.attempts} "
                      "attempt(s)")
                for line in record.traceback.rstrip().splitlines():
                    print(f"    | {line}")
            return EXIT_QUARANTINED
        return 0
    before, after = compact_journal(args.path, output=args.output)
    target = args.output or args.path
    saved = before - after
    print(f"compacted {args.path} -> {target}: "
          f"{before:,} -> {after:,} bytes ({saved:,} saved)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.serve import serve_spool, submit_job
    from repro.metrics.collector import CampaignTelemetry

    if args.submit is not None:
        if args.submit == "-":
            raw = json.load(sys.stdin)
        else:
            with open(args.submit, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        name = submit_job(args.spool, raw)
        print(f"submitted job {name}", file=sys.stderr)
    telemetry = CampaignTelemetry()
    try:
        ran = serve_spool(
            args.spool,
            once=args.once,
            telemetry=telemetry,
            poll_interval_s=args.poll,
        )
    except KeyboardInterrupt:
        # Mid-job state is already durable (journal + queue); a restarted
        # scheduler resumes it, so an interrupt is a clean shutdown here.
        print(f"\ninterrupted ({_interrupt_signal}); jobs resume on the "
              "next `repro serve` over this spool", file=sys.stderr)
        return (
            EXIT_TERMINATED if _interrupt_signal == "SIGTERM"
            else EXIT_INTERRUPTED
        )
    print(f"{ran} job(s) finished; {telemetry.format_summary()}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.core.distq import run_worker_loop

    try:
        committed = run_worker_loop(
            args.root,
            poll_interval_s=args.poll,
            follow=args.follow,
            max_trials=args.max_trials,
        )
    except KeyboardInterrupt:
        # In-flight claims simply expire; a peer (or this worker,
        # restarted) reclaims them with a higher fencing token.
        print(f"\ninterrupted ({_interrupt_signal})", file=sys.stderr)
        return (
            EXIT_TERMINATED if _interrupt_signal == "SIGTERM"
            else EXIT_INTERRUPTED
        )
    print(f"worker drained: {committed} trial(s) committed",
          file=sys.stderr)
    return 0


def _cmd_attach(args: argparse.Namespace) -> int:
    import os

    from repro.core.serve import tail_results
    from repro.util.errors import ConfigError

    jobs_dir = os.path.join(args.spool, "jobs")
    job = args.job
    if job is None:
        try:
            candidates = sorted(os.listdir(jobs_dir))
        except OSError:
            candidates = []
        if len(candidates) != 1:
            raise ConfigError(
                f"--job required: spool holds {len(candidates)} job(s) "
                f"({', '.join(candidates) or 'none'})"
            )
        job = candidates[0]
    job_dir = os.path.join(jobs_dir, job)
    try:
        for record in tail_results(
            job_dir,
            follow=not args.no_follow,
            timeout_s=args.timeout,
        ):
            print(json.dumps(record, sort_keys=True), flush=True)
    except KeyboardInterrupt:
        print(f"\ninterrupted ({_interrupt_signal})", file=sys.stderr)
        return (
            EXIT_TERMINATED if _interrupt_signal == "SIGTERM"
            else EXIT_INTERRUPTED
        )
    return 0


def _validate_args(args: argparse.Namespace) -> None:
    """Cross-flag validation at parse time, before any work starts.

    ``--resume`` reads completed trials *from* the journal, so without
    ``--journal`` it can only ever silently re-run everything — reject it
    up front with the flag to add rather than mid-campaign.
    """
    from repro.util.errors import ConfigError

    if getattr(args, "resume", False) and not getattr(args, "journal", None):
        raise ConfigError(
            "--resume needs --journal FILE (resume reads completed trials "
            "from the journal; add --journal pointing at the file the "
            "interrupted campaign was writing)"
        )


_COMMANDS = {
    "run": _cmd_run,
    "compare": _cmd_compare,
    "sweep": _cmd_sweep,
    "trace": _cmd_trace,
    "fundamental": _cmd_fundamental,
    "spacetime": _cmd_spacetime,
    "components": _cmd_components,
    "journal": _cmd_journal,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
    "attach": _cmd_attach,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    The typed campaign errors (bad configuration, corrupt/stale journal,
    every-trial-failed, simulator invariant violations) print a one-line
    diagnosis to stderr and exit 2 instead of dumping a traceback — the
    exception class already says which of the four failure modes this is.
    """
    from repro.util.errors import ReproError

    _install_signal_handlers()
    args = build_parser().parse_args(argv)
    try:
        _validate_args(args)
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error ({type(exc).__name__}): {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Campaign handlers catch the interrupt themselves to print
        # partial results; this is the backstop for every other command.
        print(f"\ninterrupted ({_interrupt_signal})", file=sys.stderr)
        return (
            EXIT_TERMINATED if _interrupt_signal == "SIGTERM"
            else EXIT_INTERRUPTED
        )
