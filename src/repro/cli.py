"""Command-line interface: ``python -m repro <command>``.

Five commands cover the everyday uses of the tool:

* ``run``         — one network scenario, printed metrics;
* ``compare``     — several protocols over the same mobility (Fig. 11);
* ``trace``       — generate a mobility trace and export it (ns-2/CSV/JSON);
* ``fundamental`` — the flow-density diagram (Fig. 4);
* ``spacetime``   — an ASCII space-time diagram (Fig. 5).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _int_list(text: str) -> tuple:
    return tuple(int(part) for part in text.split(",") if part)


def _float_list(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CAVENET reproduction: CA mobility + VANET protocol "
        "simulation",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run one network scenario")
    _add_scenario_arguments(run)

    compare = commands.add_parser(
        "compare", help="compare protocols over the same mobility"
    )
    _add_scenario_arguments(compare)
    compare.add_argument(
        "--protocols",
        default="AODV,OLSR,DYMO",
        help="comma-separated protocol list (default: AODV,OLSR,DYMO)",
    )
    _add_parallel_arguments(compare)

    trace = commands.add_parser(
        "trace", help="generate a mobility trace and export it"
    )
    _add_scenario_arguments(trace)
    trace.add_argument(
        "--format",
        choices=("ns2", "csv", "json"),
        default="ns2",
        help="output format (default ns2)",
    )
    trace.add_argument(
        "--output", default="-", help="output file, '-' for stdout"
    )

    fundamental = commands.add_parser(
        "fundamental", help="flow-density (fundamental) diagram"
    )
    fundamental.add_argument(
        "--densities",
        type=_float_list,
        default=[0.05, 0.1, 1 / 6, 0.25, 0.35, 0.5],
        help="comma-separated densities",
    )
    fundamental.add_argument("--p", type=float, default=0.0)
    fundamental.add_argument("--cells", type=int, default=400)
    fundamental.add_argument("--trials", type=int, default=10)
    fundamental.add_argument("--steps", type=int, default=300)
    fundamental.add_argument("--seed", type=int, default=0)
    _add_parallel_arguments(fundamental)

    spacetime = commands.add_parser(
        "spacetime", help="ASCII space-time diagram"
    )
    spacetime.add_argument("--density", type=float, default=0.3)
    spacetime.add_argument("--p", type=float, default=0.3)
    spacetime.add_argument("--cells", type=int, default=400)
    spacetime.add_argument("--steps", type=int, default=80)
    spacetime.add_argument("--warmup", type=int, default=100)
    spacetime.add_argument("--seed", type=int, default=0)

    return parser


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--protocol", default="AODV")
    parser.add_argument("--nodes", type=int, default=30)
    parser.add_argument("--road", type=float, default=3000.0,
                        help="road length in metres")
    parser.add_argument(
        "--boundary", choices=("circuit", "line"), default="circuit"
    )
    parser.add_argument("--time", type=float, default=100.0,
                        help="simulated seconds")
    parser.add_argument(
        "--senders", type=_int_list, default=(1, 2, 3, 4, 5, 6, 7, 8)
    )
    parser.add_argument("--receiver", type=int, default=0)
    parser.add_argument("--p", type=float, default=0.5,
                        help="NaS dawdling probability")
    parser.add_argument("--seed", type=int, default=4)
    parser.add_argument(
        "--propagation",
        choices=("two_ray", "free_space", "shadowing", "nakagami"),
        default="two_ray",
    )


def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for independent trials "
        "(1 = serial, 0 = one per CPU; results are identical either way)",
    )
    parser.add_argument(
        "--trial-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any trial exceeding this wall-clock bound "
        "(needs --workers > 1)",
    )


def _resolve_workers(args: argparse.Namespace) -> int:
    import os

    if args.workers == 0:
        return os.cpu_count() or 1
    if args.workers < 0:
        raise SystemExit(f"--workers must be >= 0, got {args.workers}")
    return args.workers


def _campaign_telemetry(workers: int):
    """A telemetry sink for parallel CLI campaigns (None when serial)."""
    if workers == 1:
        return None
    from repro.metrics.collector import CampaignTelemetry

    return CampaignTelemetry()


def _scenario_from(args: argparse.Namespace):
    from repro.core.config import Scenario

    stop = min(args.time * 0.9, args.time)
    return Scenario(
        num_nodes=args.nodes,
        road_length_m=args.road,
        boundary=args.boundary,
        sim_time_s=args.time,
        protocol=args.protocol,
        senders=args.senders,
        receiver=args.receiver,
        dawdle_p=args.p,
        traffic_start_s=args.time * 0.1,
        traffic_stop_s=stop,
        propagation=args.propagation,
        seed=args.seed,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core.simulation import CavenetSimulation

    scenario = _scenario_from(args)
    result = CavenetSimulation(scenario).run()
    print(f"protocol          : {scenario.protocol}")
    print(f"originated        : {result.collector.num_originated}")
    print(f"delivered         : {result.collector.num_delivered}")
    print(f"PDR               : {result.pdr():.3f}")
    delay = result.delay_stats()
    print(f"mean delay        : {delay.mean_s * 1000:.2f} ms")
    overhead = result.control_overhead()
    print(f"control packets   : {overhead.packets}")
    for sender in scenario.senders:
        print(
            f"  sender {sender:>2}: PDR {result.pdr(sender):.3f}  "
            f"goodput {result.mean_goodput_bps(sender):>9,.0f} bps"
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.render import render_bars
    from repro.core.experiment import compare_protocols

    scenario = _scenario_from(args)
    protocols = tuple(p for p in args.protocols.split(",") if p)
    workers = _resolve_workers(args)
    telemetry = _campaign_telemetry(workers)
    comparison = compare_protocols(
        scenario,
        protocols,
        max_workers=workers,
        trial_timeout_s=args.trial_timeout,
        telemetry=telemetry,
    )
    if telemetry is not None:
        print(f"[{workers} workers] {telemetry.format_summary()}")
        print()
    print(comparison.format_pdr_table())
    print()
    print("mean PDR:")
    print(render_bars(comparison.mean_pdr(), max_value=1.0))
    print()
    print("control packets:")
    print(render_bars(
        {k: float(v) for k, v in comparison.overhead_table().items()},
        fmt="{:.0f}",
    ))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.simulation import CavenetSimulation
    from repro.tracegen import Ns2TraceWriter, trace_to_csv, trace_to_json

    scenario = _scenario_from(args)
    trace = CavenetSimulation(scenario).generate_trace()
    if args.format == "ns2":
        text = Ns2TraceWriter().render(trace)
    elif args.format == "csv":
        text = trace_to_csv(trace)
    else:
        text = trace_to_json(trace, indent=2)
    if args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(text):,} characters to {args.output}")
    return 0


def _cmd_fundamental(args: argparse.Namespace) -> int:
    from repro.analysis.fundamental import fundamental_diagram
    from repro.analysis.render import render_sparkline
    from repro.util.rng import RngStreams

    workers = _resolve_workers(args)
    telemetry = _campaign_telemetry(workers)
    diagram = fundamental_diagram(
        args.densities,
        p=args.p,
        num_cells=args.cells,
        trials=args.trials,
        steps=args.steps,
        rng=RngStreams(args.seed),
        max_workers=workers,
        trial_timeout_s=args.trial_timeout,
        telemetry=telemetry,
    )
    if telemetry is not None:
        print(f"[{workers} workers] {telemetry.format_summary()}")
    print(f"fundamental diagram: p={args.p}, L={args.cells}, "
          f"{args.trials} trials x {args.steps} steps")
    print(f"{'rho':>8}  {'J':>8}  {'std':>8}")
    for rho, flow, std in zip(
        diagram.densities, diagram.flows, diagram.flow_std
    ):
        print(f"{rho:>8.3f}  {flow:>8.4f}  {std:>8.4f}")
    print(f"\nJ(rho): {render_sparkline(diagram.flows)}")
    rho_star, j_star = diagram.peak()
    print(f"peak: J={j_star:.3f} at rho={rho_star:.3f}")
    return 0


def _cmd_spacetime(args: argparse.Namespace) -> int:
    from repro.analysis.render import render_spacetime
    from repro.ca.history import evolve
    from repro.ca.nasch import NagelSchreckenberg

    model = NagelSchreckenberg.from_density(
        args.cells,
        args.density,
        random_start=True,
        rng=np.random.default_rng(args.seed),
        p=args.p,
    )
    history = evolve(model, args.steps, warmup=args.warmup)
    print(f"rho={args.density} p={args.p} L={args.cells} "
          f"({args.steps} steps; time flows downward)")
    print(render_spacetime(history))
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "compare": _cmd_compare,
    "trace": _cmd_trace,
    "fundamental": _cmd_fundamental,
    "spacetime": _cmd_spacetime,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)
