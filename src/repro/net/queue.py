"""Drop-tail interface queue (ns-2's ``Queue/DropTail``/``PriQueue``).

ns-2 attaches its ad-hoc routing agents to ``Queue/DropTail/PriQueue``:
a 50-slot drop-tail FIFO in which *routing control packets jump to the
head*, so route maintenance is not starved behind a data backlog.  The
``priority`` flag of :meth:`DropTailQueue.enqueue` reproduces that.
"""

from __future__ import annotations

import collections
from typing import Deque, Optional, Tuple

from repro.net.packet import Packet


class DropTailQueue:
    """FIFO of ``(packet, next_hop)`` pairs with a hard capacity.

    When full, arriving packets are dropped (drop-tail) and counted —
    including priority ones: head insertion does not evict.
    """

    def __init__(self, capacity: int = 50) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._queue: Deque[Tuple[Packet, int]] = collections.deque()
        self.drops = 0

    @property
    def capacity(self) -> int:
        """Maximum number of queued packets."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        """True when another enqueue would drop."""
        return len(self._queue) >= self._capacity

    def enqueue(
        self, packet: Packet, next_hop: int, priority: bool = False
    ) -> bool:
        """Append (or, with ``priority``, prepend); False when full."""
        if self.full:
            self.drops += 1
            return False
        if priority:
            self._queue.appendleft((packet, next_hop))
        else:
            self._queue.append((packet, next_hop))
        return True

    def dequeue(self) -> Optional[Tuple[Packet, int]]:
        """Pop the head, or None when empty."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def remove_for_next_hop(self, next_hop: int) -> int:
        """Drop every queued packet bound for ``next_hop``.

        Routing calls this when a link breaks; returns how many were
        removed (they count as drops).
        """
        kept = [(p, h) for (p, h) in self._queue if h != next_hop]
        removed = len(self._queue) - len(kept)
        self._queue = collections.deque(kept)
        self.drops += removed
        return removed
