"""Node composition: radio + MAC + routing + applications.

A :class:`Node` owns one radio on the shared channel, an 802.11 MAC, a
routing agent (attached after construction, since protocols need the node)
and delivers application data to registered sinks.  It is the hub every
layer's callbacks route through.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.des.engine import Simulator
from repro.mac.dcf import Mac80211
from repro.mac.params import Mac80211Params
from repro.metrics.collector import MetricsCollector
from repro.net.address import BROADCAST
from repro.net.packet import DATA, Packet
from repro.phy.channel import Channel
from repro.phy.params import PhyParams
from repro.phy.radio import Radio

#: Default TTL for data packets (ample for a 30-node circuit).
DATA_TTL = 32


class Node:
    """One vehicle's full network stack."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        channel: Channel,
        phy_params: PhyParams,
        mac_params: Mac80211Params,
        metrics: MetricsCollector,
        rng: Optional[np.random.Generator] = None,
        queue_capacity: int = 50,
        dcf_book=None,
        tech=None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.metrics = metrics
        self.radio = Radio(sim, node_id, phy_params, channel)
        self.mac = Mac80211(
            sim, self.radio, mac_params, rng, queue_capacity,
            book=dcf_book, tech=tech,
        )
        self.mac.attach_upper(self._mac_receive, self._mac_failure)
        self.routing: Optional["RoutingProtocol"] = None
        self._sinks: List[Callable[[Packet, int], None]] = []
        #: Fault state (see :mod:`repro.faults`): a down node neither
        #: sends nor receives; a blackhole node forwards control but
        #: drops transit DATA.
        self.up = True
        self.blackhole = False

    # -- wiring ------------------------------------------------------------

    def set_routing(self, protocol: "RoutingProtocol") -> None:
        """Attach the routing agent (exactly once)."""
        if self.routing is not None:
            raise RuntimeError(f"node {self.node_id} already has routing")
        self.routing = protocol

    def add_sink(self, callback: Callable[[Packet, int], None]) -> None:
        """Register ``callback(packet, prev_hop)`` for delivered data."""
        self._sinks.append(callback)

    # -- application entry point ----------------------------------------------

    def originate_data(
        self,
        dst: int,
        size_bytes: int,
        flow_id: Optional[int] = None,
        seq: Optional[int] = None,
    ) -> Packet:
        """Inject an application data packet destined for ``dst``."""
        packet = Packet(
            kind=DATA,
            src=self.node_id,
            dst=dst,
            size_bytes=size_bytes,
            created_at=self.sim.now,
            ttl=DATA_TTL,
            flow_id=flow_id,
            seq=seq,
        )
        self.metrics.data_originated(packet)
        if not self.up:
            # Offered load still counts (the application tried), so
            # PDR-under-churn reflects the outage instead of hiding it.
            self.drop(packet, "node_down")
            return packet
        if self.routing is None:
            raise RuntimeError(f"node {self.node_id} has no routing agent")
        self.routing.route_output(packet)
        return packet

    # -- downward path -----------------------------------------------------------

    def send_via(self, packet: Packet, next_hop: int) -> None:
        """Hand a packet to the MAC for one hop (or broadcast).

        Routing control packets take priority in the interface queue
        (ns-2's PriQueue behaviour): route maintenance must not starve
        behind a data backlog.
        """
        if not self.up:
            # Before the transmission metric: a dead node's attempts must
            # not inflate control overhead.
            self.metrics.packet_dropped(packet, self.node_id, "node_down")
            return
        self.metrics.transmission(packet, self.node_id, next_hop)
        accepted = self.mac.enqueue(
            packet, next_hop, priority=not packet.is_data
        )
        if not accepted:
            self.metrics.packet_dropped(packet, self.node_id, "ifq_full")

    def drop(self, packet: Packet, reason: str) -> None:
        """Record a packet discard."""
        self.metrics.packet_dropped(packet, self.node_id, reason)

    def deliver_local(self, packet: Packet, prev_hop: int = -1) -> None:
        """Terminate a packet at this node even though ``packet.dst`` is
        not our address — the gateway case: an HNA-advertised external
        destination is reached once the packet arrives at its gateway."""
        self.metrics.data_delivered(packet, self.node_id)
        for sink in self._sinks:
            sink(packet, prev_hop)

    # -- upward path ---------------------------------------------------------------

    def _mac_receive(self, packet: Packet, prev_hop: int) -> None:
        if packet.kind == DATA:
            if packet.dst == self.node_id or packet.dst == BROADCAST:
                self.metrics.data_delivered(packet, self.node_id)
                for sink in self._sinks:
                    sink(packet, prev_hop)
            elif self.blackhole:
                # Transit DATA is eaten; control and local delivery are
                # untouched, so routes keep pointing through us.
                self.drop(packet, "blackhole")
            elif self.routing is not None:
                # Loop guard at the single forwarding dispatch point: every
                # protocol's data path passes here, so a TTL-immortal loop
                # trips regardless of which implementation caused it.
                self.routing.check_ttl_guard(packet)
                self.routing.forward_data(packet, prev_hop)
            else:
                self.drop(packet, "no_routing_agent")
        elif self.routing is not None:
            self.routing.recv_control(packet, prev_hop)

    # -- fault injection -----------------------------------------------------

    def fail(self) -> None:
        """Crash this node: radio deaf, MAC wiped, routing state gone.

        Idempotent — a second crash while already down is a no-op, so
        overlapping fault specs cannot double-count drops.  Queued and
        in-service packets are recorded as ``node_down`` drops; the
        routing protocol's volatile state is reset so the network must
        re-converge around (and later back to) this node.
        """
        if not self.up:
            return
        self.up = False
        self.radio.disable()
        for packet, _next_hop in self.mac.fail():
            self.drop(packet, "node_down")
        if self.routing is not None:
            self.routing.reset_state()
        self.metrics.record_fault("node_down", self.node_id)

    def recover(self) -> None:
        """Bring a crashed node back up with amnesia (cold boot)."""
        if self.up:
            return
        self.up = True
        self.radio.enable()
        self.mac.recover()
        self.metrics.record_fault("node_up", self.node_id)

    def _mac_failure(self, packet: Packet, next_hop: int) -> None:
        if self.routing is not None:
            self.routing.on_link_failure(packet, next_hop)
        else:
            self.drop(packet, "retry_limit")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        protocol = type(self.routing).__name__ if self.routing else "none"
        return f"<Node {self.node_id} routing={protocol}>"
