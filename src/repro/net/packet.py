"""Network-layer packets.

A :class:`Packet` is what routing protocols and applications exchange; the
MAC wraps it in a :class:`~repro.mac.frames.Frame` for the air.  Protocol
specific contents (RREQ fields, OLSR HELLO neighbour lists ...) ride in
``header``, an arbitrary dataclass owned by the protocol that created the
packet.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Optional

#: Data packets use this kind; every routing protocol defines its own kinds.
DATA = "DATA"

_uid_counter = itertools.count()


@dataclasses.dataclass
class Packet:
    """One network-layer packet.

    Attributes:
        kind: ``"DATA"`` or a protocol control kind (e.g. ``"AODV_RREQ"``).
        src: originating node id.
        dst: final destination node id, or :data:`~repro.net.address.BROADCAST`.
        size_bytes: payload size used for transmission timing (the MAC adds
            its own header on the air).
        created_at: origination time (for end-to-end delay).
        ttl: remaining hop budget; decremented per forward, dropped at 0.
        hops: hops traversed so far.
        flow_id: traffic-flow identifier for data packets.
        seq: application or protocol sequence number.
        header: protocol-specific header payload.
        uid: globally unique id, assigned automatically.
    """

    kind: str
    src: int
    dst: int
    size_bytes: int
    created_at: float
    ttl: int = 64
    hops: int = 0
    flow_id: Optional[int] = None
    seq: Optional[int] = None
    header: Any = None
    uid: int = dataclasses.field(default_factory=lambda: next(_uid_counter))

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {self.size_bytes}")
        if self.ttl < 0:
            raise ValueError(f"ttl must be >= 0, got {self.ttl}")

    def copy_for_forwarding(self) -> "Packet":
        """A forwarded copy: same uid and contents, ttl/hops updated.

        Keeping the uid lets duplicate-suppression and metrics track the
        packet across hops.
        """
        return dataclasses.replace(self, ttl=self.ttl - 1, hops=self.hops + 1)

    @property
    def is_data(self) -> bool:
        """True for application data packets."""
        return self.kind == DATA
