"""Addressing constants.

Node ids double as network- and MAC-layer addresses (the simulator has one
interface per node, so an ARP layer would be pure overhead).
"""

#: The link- and network-layer broadcast address.
BROADCAST = -1
