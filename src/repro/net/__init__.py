"""Network layer: packets, queues, addressing and node composition."""

from repro.net.address import BROADCAST
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue

__all__ = ["BROADCAST", "Packet", "DropTailQueue", "Node"]


def __getattr__(name):
    """Lazily expose :class:`Node` (PEP 562).

    ``Node`` pulls in the MAC, whose frames in turn carry network packets;
    loading it on first reference instead of at package import breaks that
    import cycle without hiding it from the public API.
    """
    if name == "Node":
        from repro.net.node import Node

        return Node
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
