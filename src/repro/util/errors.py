"""The typed exception hierarchy shared by every layer of the tool.

Long campaigns fail in qualitatively different ways, and the caller's
correct reaction differs for each: a bad configuration should be fixed and
the campaign restarted from scratch; a crashed trial should be retried (or
reported and dropped from the aggregates); a corrupt journal must never be
silently merged into fresh results; an invariant violation is a bug in the
simulator itself and should abort loudly with enough context to reproduce.

Every class multiply-inherits from the built-in exception it historically
was (``ValueError``/``RuntimeError``), so ``except ValueError`` call sites
written against earlier versions keep working while new code can catch the
precise category — or everything at once via :class:`ReproError`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ReproError(Exception):
    """Base class of every error this package raises deliberately."""


class ConfigError(ReproError, ValueError):
    """A scenario, sweep grid, or runner parameter is invalid.

    Raised *before* any worker is spawned: the campaign never started, so
    nothing needs cleaning up — fix the configuration and rerun.
    """


class TrialError(ReproError, RuntimeError):
    """A trial (or every trial of a campaign point) failed at runtime.

    Carries the first failing trial's diagnostics when available.

    Attributes:
        key: the failing trial's campaign key (``None`` when unknown).
        attempts: attempts made before giving up.
    """

    def __init__(
        self,
        message: str,
        *,
        key: Any = None,
        attempts: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.key = key
        self.attempts = attempts


class StaleLeaseError(TrialError):
    """A fenced commit arrived from a worker whose lease was reclaimed.

    The dir-queue backend stamps every claim with a monotonic fencing
    token; a worker that was paused (laptop sleep, SIGSTOP, NFS stall)
    past its lease and resumed later still holds the *old* token, and its
    attempt to commit a result is rejected with this error instead of
    racing the reclaimer's commit.  The worker's correct reaction is to
    drop the result and move on — the trial is deterministic, so whoever
    holds the current token produces the identical value.

    Attributes:
        token: the stale token the commit carried.
        current: the token the claim holds now (``None`` if unreadable).
    """

    def __init__(
        self,
        message: str,
        *,
        key: Any = None,
        token: Optional[int] = None,
        current: Optional[int] = None,
    ) -> None:
        super().__init__(message, key=key)
        self.token = token
        self.current = current


class JournalCorruptError(ReproError, RuntimeError):
    """A trial journal cannot be trusted (bad schema, fingerprint, line).

    A torn *final* line is tolerated by the reader (it is the expected
    residue of a crash mid-write); anything else — a mid-file syntax error,
    a schema the reader does not speak, a fingerprint that does not match
    the campaign being resumed — raises this instead of silently merging
    stale results.
    """


class InvariantViolation(ReproError, AssertionError):
    """The simulator broke one of its own guaranteed properties.

    This is never the user's fault: it means a bug corrupted simulation
    state (non-monotone event time, vehicles lost from a closed lane, a
    routing loop outliving its TTL ...).  ``context`` carries whatever the
    guard knew at the raise site — step/time, lane, seed, offending values —
    so the failure can be reproduced without rerunning the whole campaign.
    """

    def __init__(self, message: str, **context: Any) -> None:
        self.context: Dict[str, Any] = dict(context)
        if context:
            details = ", ".join(f"{k}={v!r}" for k, v in context.items())
            message = f"{message} [{details}]"
        super().__init__(message)
