"""Deterministic, named random-number streams.

A simulation mixes several stochastic processes (CA dawdling, MAC backoff,
jitter on routing timers ...).  Drawing them all from one generator couples
them: changing how often one consumer draws perturbs every other process.
``RngStreams`` derives an independent :class:`numpy.random.Generator` per
named stream from a single root seed, so each subsystem is reproducible in
isolation.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RngStreams:
    """A family of independent, reproducible random generators.

    Each distinct ``name`` passed to :meth:`stream` yields a generator seeded
    from ``(root_seed, name)`` via :class:`numpy.random.SeedSequence`; the
    same ``(seed, name)`` pair always produces the same sequence.

    >>> a = RngStreams(7).stream("mac")
    >>> b = RngStreams(7).stream("mac")
    >>> bool(a.integers(0, 100) == b.integers(0, 100))
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this family was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator object,
        so consumers share state within a run but never across streams.
        """
        if name not in self._streams:
            entropy = [self._seed] + [ord(c) for c in name]
            self._streams[name] = np.random.default_rng(
                np.random.SeedSequence(entropy)
            )
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child family, e.g. one per Monte-Carlo trial.

        The child's root seed is drawn deterministically from the parent's
        stream named ``name``, so trials are independent yet reproducible.
        """
        child_seed = int(self.stream(name).integers(0, 2**31 - 1))
        return RngStreams(child_seed)
