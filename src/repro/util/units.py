"""Unit conversions used across the Behavioural Analyzer and the CPS.

The Nagel-Schreckenberg automaton works in *cells per time step*; the network
simulator works in metres, seconds and watts.  The paper fixes the mapping
(Section III-A): with ``v_max = 135 km/h`` and ``dt = 1 s`` each cell is
``s = 7.5 m`` long, so one cell/step equals 7.5 m/s = 27 km/h.
"""

from __future__ import annotations

import math

#: Length of one cellular-automaton site, in metres (paper Section III-A).
CELL_LENGTH_M = 7.5

#: Duration of one cellular-automaton time step, in seconds.
TIME_STEP_S = 1.0


def cells_to_meters(cells: float, cell_length: float = CELL_LENGTH_M) -> float:
    """Convert a distance expressed in CA cells to metres."""
    return cells * cell_length


def meters_to_cells(meters: float, cell_length: float = CELL_LENGTH_M) -> int:
    """Convert a distance in metres to a whole number of CA cells.

    Rounds to the nearest cell; raises :class:`ValueError` for negative input.
    """
    if meters < 0:
        raise ValueError(f"distance must be non-negative, got {meters}")
    return int(round(meters / cell_length))


def cells_per_step_to_mps(
    velocity: float,
    cell_length: float = CELL_LENGTH_M,
    time_step: float = TIME_STEP_S,
) -> float:
    """Convert a CA velocity (cells per step) to metres per second."""
    return velocity * cell_length / time_step


def cells_per_step_to_kmh(
    velocity: float,
    cell_length: float = CELL_LENGTH_M,
    time_step: float = TIME_STEP_S,
) -> float:
    """Convert a CA velocity (cells per step) to kilometres per hour."""
    return cells_per_step_to_mps(velocity, cell_length, time_step) * 3.6


def kmh_to_cells_per_step(
    kmh: float,
    cell_length: float = CELL_LENGTH_M,
    time_step: float = TIME_STEP_S,
) -> int:
    """Convert a speed in km/h to whole CA cells per step (nearest)."""
    return int(round(kmh / 3.6 * time_step / cell_length))


def dbm_to_watts(dbm: float) -> float:
    """Convert a power level in dBm to watts."""
    return 10.0 ** (dbm / 10.0) / 1000.0


def watts_to_dbm(watts: float) -> float:
    """Convert a power level in watts to dBm.

    Raises :class:`ValueError` for non-positive power, which has no dBm
    representation.
    """
    if watts <= 0:
        raise ValueError(f"power must be positive, got {watts}")
    return 10.0 * math.log10(watts * 1000.0)
