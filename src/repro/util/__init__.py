"""Shared utilities: seeded random streams, units, validation, errors."""

from repro.util.errors import (
    ConfigError,
    InvariantViolation,
    JournalCorruptError,
    ReproError,
    TrialError,
)
from repro.util.rng import RngStreams
from repro.util.units import (
    CELL_LENGTH_M,
    TIME_STEP_S,
    cells_to_meters,
    cells_per_step_to_kmh,
    cells_per_step_to_mps,
    dbm_to_watts,
    kmh_to_cells_per_step,
    meters_to_cells,
    watts_to_dbm,
)
from repro.util.validate import check_positive, check_probability, check_range

__all__ = [
    "ReproError",
    "ConfigError",
    "TrialError",
    "JournalCorruptError",
    "InvariantViolation",
    "RngStreams",
    "CELL_LENGTH_M",
    "TIME_STEP_S",
    "cells_to_meters",
    "meters_to_cells",
    "cells_per_step_to_mps",
    "cells_per_step_to_kmh",
    "kmh_to_cells_per_step",
    "dbm_to_watts",
    "watts_to_dbm",
    "check_positive",
    "check_probability",
    "check_range",
]
