"""Small argument-validation helpers with informative error messages."""

from __future__ import annotations


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if strictly positive, else raise :class:`ValueError`."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Return ``value`` if in ``[0, 1]``, else raise :class:`ValueError`."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_range(name: str, value: float, low: float, high: float) -> float:
    """Return ``value`` if in ``[low, high]``, else raise :class:`ValueError`."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value
