"""Resilience metrics: how traffic weathers injected faults.

Three views over one run's collector, all keyed off the fault timeline
recorded by :meth:`~repro.metrics.collector.MetricsCollector.record_fault`:

* :func:`pdr_timeline` — PDR per time window, the raw dip-and-rebound
  curve of an outage;
* :func:`availability` — fraction of traffic-carrying windows whose PDR
  clears a threshold, a single-number "how often was the network usable";
* :func:`recovery_times_s` — per ``node_up`` transition, how long until
  traffic flows again: the route re-convergence time of the protocol
  under test.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.metrics.collector import MetricsCollector


def pdr_timeline(
    collector: MetricsCollector, sim_time_s: float, bin_s: float = 1.0
) -> List[Tuple[float, float]]:
    """Per-window PDR: ``[(window_start_s, pdr), ...]``.

    Packets are attributed to the window they were *originated* in, and
    count as delivered if they arrived at any later point — so a window
    during an outage shows the fate of the traffic offered during it,
    which is the quantity availability and recovery care about.  Windows
    with no offered traffic report NaN (distinguishable from a true 0.0).
    """
    if bin_s <= 0:
        raise ValueError(f"bin_s must be > 0, got {bin_s}")
    num_bins = max(1, int(math.ceil(sim_time_s / bin_s)))
    offered = [0] * num_bins
    delivered_uids = {e.uid for e in collector.delivered}
    got = [0] * num_bins
    for event in collector.originated:
        index = min(int(event.time / bin_s), num_bins - 1)
        offered[index] += 1
        if event.uid in delivered_uids:
            got[index] += 1
    return [
        (
            index * bin_s,
            got[index] / offered[index] if offered[index] else math.nan,
        )
        for index in range(num_bins)
    ]


def availability(
    collector: MetricsCollector,
    sim_time_s: float,
    bin_s: float = 1.0,
    threshold: float = 0.5,
) -> float:
    """Fraction of traffic-carrying windows with PDR >= ``threshold``.

    Windows without offered traffic are excluded (they say nothing about
    the network).  Returns NaN when no window carried traffic at all.
    """
    carrying = [
        pdr
        for _start, pdr in pdr_timeline(collector, sim_time_s, bin_s)
        if not math.isnan(pdr)
    ]
    if not carrying:
        return math.nan
    return sum(1 for pdr in carrying if pdr >= threshold) / len(carrying)


def recovery_times_s(collector: MetricsCollector) -> Dict[float, float]:
    """Route re-convergence after each recovery: ``{node_up_time: gap_s}``.

    For every ``node_up`` fault event, the gap until the *next delivery
    anywhere* — once a crashed node is back, end-to-end traffic resuming
    is exactly the protocol having re-converged around it.  NaN when
    nothing was ever delivered after the recovery.  Keyed by the
    recovery's simulation time (unique per event; a dict keyed by node
    would collapse repeated churn cycles).
    """
    delivery_times = sorted(e.time for e in collector.delivered)
    out: Dict[float, float] = {}
    for event in collector.fault_events:
        if event.kind != "node_up":
            continue
        gap = math.nan
        for time in delivery_times:
            if time > event.time:
                gap = time - event.time
                break
        out[event.time] = gap
    return out
