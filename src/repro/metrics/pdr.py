"""Packet Delivery Ratio (paper Fig. 11)."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.metrics.collector import MetricsCollector


def packet_delivery_ratio(
    collector: MetricsCollector, flow_id: Optional[int] = None
) -> float:
    """Delivered / originated for one flow (or overall with ``None``).

    Returns 0.0 when the flow originated nothing (an empty flow delivered
    nothing, and reporting NaN would poison downstream aggregation).
    """
    sent = sum(
        1
        for e in collector.originated
        if flow_id is None or e.flow_id == flow_id
    )
    if sent == 0:
        return 0.0
    received = sum(
        1
        for e in collector.delivered
        if flow_id is None or e.flow_id == flow_id
    )
    return received / sent


def pdr_by_flow(
    collector: MetricsCollector, flows: Optional[Iterable[int]] = None
) -> Dict[int, float]:
    """PDR of every observed — and every configured — flow.

    The report covers the union of flows seen in ``originated``, flows
    seen in ``delivered`` (a flow can deliver without originating when a
    trace is replayed partially), and the explicitly ``flows`` passed by
    the caller (the scenario's configured flow ids).  A configured flow
    that never sent a packet — say its source crashed at t=0 — appears
    with an explicit 0.0 instead of silently vanishing from the dict,
    so fault runs cannot hide dead flows.
    """
    seen = {e.flow_id for e in collector.originated if e.flow_id is not None}
    seen |= {e.flow_id for e in collector.delivered if e.flow_id is not None}
    if flows is not None:
        seen |= set(flows)
    return {flow: packet_delivery_ratio(collector, flow) for flow in sorted(seen)}
