"""Packet Delivery Ratio (paper Fig. 11)."""

from __future__ import annotations

from typing import Dict, Optional

from repro.metrics.collector import MetricsCollector


def packet_delivery_ratio(
    collector: MetricsCollector, flow_id: Optional[int] = None
) -> float:
    """Delivered / originated for one flow (or overall with ``None``).

    Returns 0.0 when the flow originated nothing (an empty flow delivered
    nothing, and reporting NaN would poison downstream aggregation).
    """
    sent = sum(
        1
        for e in collector.originated
        if flow_id is None or e.flow_id == flow_id
    )
    if sent == 0:
        return 0.0
    received = sum(
        1
        for e in collector.delivered
        if flow_id is None or e.flow_id == flow_id
    )
    return received / sent


def pdr_by_flow(collector: MetricsCollector) -> Dict[int, float]:
    """PDR of every flow that originated at least one packet."""
    flows = sorted(
        {e.flow_id for e in collector.originated if e.flow_id is not None}
    )
    return {flow: packet_delivery_ratio(collector, flow) for flow in flows}
