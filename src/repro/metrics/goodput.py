"""Goodput: application bytes delivered per unit time (Figs. 8-10).

The paper plots, for each sender, the goodput at the receiver in bits per
second over time.  ``goodput_series`` reproduces one ridge of those surfaces:
delivered bytes binned into windows, converted to bps.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.metrics.collector import MetricsCollector


def goodput_series(
    collector: MetricsCollector,
    flow_id: Optional[int],
    duration_s: float,
    bin_s: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-bin goodput of one flow (or all flows when ``flow_id`` is None).

    Returns ``(bin_centers_s, goodput_bps)`` covering ``[0, duration_s]``.
    """
    if bin_s <= 0:
        raise ValueError(f"bin_s must be > 0, got {bin_s}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    num_bins = int(np.ceil(duration_s / bin_s))
    edges = bin_s * np.arange(num_bins + 1)
    bits = np.zeros(num_bins)
    for event in collector.delivered:
        if flow_id is not None and event.flow_id != flow_id:
            continue
        index = min(int(event.time / bin_s), num_bins - 1)
        bits[index] += event.size_bytes * 8
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, bits / bin_s


def total_goodput_bps(
    collector: MetricsCollector,
    flow_id: Optional[int],
    start_s: float,
    stop_s: float,
) -> float:
    """Average goodput of a flow over ``[start_s, stop_s]``."""
    if stop_s <= start_s:
        raise ValueError(f"need stop_s > start_s, got [{start_s}, {stop_s}]")
    bits = sum(
        event.size_bytes * 8
        for event in collector.delivered
        if (flow_id is None or event.flow_id == flow_id)
        and start_s <= event.time <= stop_s
    )
    return bits / (stop_s - start_s)
