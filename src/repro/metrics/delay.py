"""End-to-end delay statistics (the paper's conclusion compares AODV's and
DYMO's route-search delay; these are the supporting numbers)."""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.metrics.collector import MetricsCollector


@dataclasses.dataclass(frozen=True)
class DelayStats:
    """Summary of end-to-end delays for delivered packets."""

    count: int
    mean_s: float
    median_s: float
    p95_s: float
    max_s: float


def _delays(collector: MetricsCollector, flow_id: Optional[int]) -> np.ndarray:
    return np.array(
        [
            e.delay_s
            for e in collector.delivered
            if flow_id is None or e.flow_id == flow_id
        ]
    )


def mean_delay(
    collector: MetricsCollector, flow_id: Optional[int] = None
) -> float:
    """Mean end-to-end delay; NaN when nothing was delivered."""
    delays = _delays(collector, flow_id)
    if len(delays) == 0:
        return float("nan")
    return float(delays.mean())


def delay_stats(
    collector: MetricsCollector, flow_id: Optional[int] = None
) -> DelayStats:
    """Full delay summary; NaN fields when nothing was delivered."""
    delays = _delays(collector, flow_id)
    if len(delays) == 0:
        nan = float("nan")
        return DelayStats(0, nan, nan, nan, nan)
    return DelayStats(
        count=len(delays),
        mean_s=float(delays.mean()),
        median_s=float(np.median(delays)),
        p95_s=float(np.percentile(delays, 95)),
        max_s=float(delays.max()),
    )
