"""Routing overhead metrics (named as future work in the paper's
conclusion; implemented here as part of the extension surface)."""

from __future__ import annotations

import collections
import dataclasses
from typing import Dict

from repro.metrics.collector import MetricsCollector


@dataclasses.dataclass(frozen=True)
class ControlOverhead:
    """Control traffic totals.

    Attributes:
        packets: routing-control packets handed to MACs (per-hop count).
        bytes: their total network-layer bytes.
        by_kind: packet count per control kind (e.g. ``AODV_RREQ``).
    """

    packets: int
    bytes: int
    by_kind: Dict[str, int]


def control_overhead(collector: MetricsCollector) -> ControlOverhead:
    """Total routing-control transmissions recorded during the run."""
    by_kind: Dict[str, int] = collections.defaultdict(int)
    total_bytes = 0
    events = collector.control_transmissions()
    for event in events:
        by_kind[event.kind] += 1
        total_bytes += event.size_bytes
    return ControlOverhead(
        packets=len(events), bytes=total_bytes, by_kind=dict(by_kind)
    )


def normalized_routing_load(collector: MetricsCollector) -> float:
    """Control transmissions per delivered data packet.

    The standard MANET overhead metric; infinity when control packets were
    sent but nothing was delivered, and 0.0 for an entirely silent run.
    """
    control = len(collector.control_transmissions())
    delivered = collector.num_delivered
    if delivered == 0:
        return float("inf") if control > 0 else 0.0
    return control / delivered
