"""ns-2-style packet event traces.

ns-2 users evaluate protocols by post-processing the simulator's event
trace ("s/r/f" lines); CAVENET's workflow assumed that artefact.  This
module renders our collector's events in that spirit:

.. code-block:: text

    s 10.000000 _1_ AGT DATA 512 [flow 1 uid 42]
    f 10.003120 _5_ RTR DATA 512 [flow - uid 42]
    r 10.006240 _0_ AGT DATA 512 [flow 1 uid 42]

and parses such text back into per-event records, so existing awk-style
analysis habits keep working.
"""

from __future__ import annotations

import dataclasses
import re
from typing import List, Optional

from repro.metrics.collector import MetricsCollector

_LINE_RE = re.compile(
    r"^(?P<op>[srf]) (?P<time>[0-9.eE+-]+) _(?P<node>-?\d+)_ "
    r"(?P<layer>\w+) (?P<kind>\S+) (?P<size>\d+) "
    r"\[flow (?P<flow>\S+) uid (?P<uid>\d+)\]$"
)


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One parsed trace line."""

    op: str  # s(end) / r(eceive) / f(orward, i.e. handed to a MAC)
    time: float
    node: int
    layer: str
    kind: str
    size_bytes: int
    flow_id: Optional[int]
    uid: int


def render_packet_trace(collector: MetricsCollector) -> str:
    """Render the collector's packet events as a time-ordered trace.

    * ``s`` — application origination (AGT layer);
    * ``f`` — a packet handed to some node's MAC (RTR layer; includes
      routing control packets);
    * ``r`` — delivery at the destination's application (AGT layer).
    """
    lines: List[tuple] = []
    for event in collector.originated:
        lines.append(
            (
                event.time,
                0,
                f"s {event.time:.6f} _{event.src}_ AGT DATA "
                f"{event.size_bytes} [flow {event.flow_id} uid {event.uid}]",
            )
        )
    for event in collector.transmissions:
        lines.append(
            (
                event.time,
                1,
                f"f {event.time:.6f} _{event.node}_ RTR {event.kind} "
                f"{event.size_bytes} [flow - uid {event.uid}]",
            )
        )
    for event in collector.delivered:
        lines.append(
            (
                event.time,
                2,
                f"r {event.time:.6f} _{event.node}_ AGT DATA "
                f"{event.size_bytes} [flow {event.flow_id} uid {event.uid}]",
            )
        )
    lines.sort(key=lambda item: (item[0], item[1]))
    return "\n".join(text for _, _, text in lines) + ("\n" if lines else "")


def parse_packet_trace(text: str) -> List[TraceEvent]:
    """Parse trace lines produced by :func:`render_packet_trace`.

    Unknown lines are skipped, like every awk script ever written against
    ns-2 traces.
    """
    events: List[TraceEvent] = []
    for line in text.splitlines():
        match = _LINE_RE.match(line.strip())
        if not match:
            continue
        flow_text = match.group("flow")
        events.append(
            TraceEvent(
                op=match.group("op"),
                time=float(match.group("time")),
                node=int(match.group("node")),
                layer=match.group("layer"),
                kind=match.group("kind"),
                size_bytes=int(match.group("size")),
                flow_id=(
                    None if flow_text in ("-", "None") else int(flow_text)
                ),
                uid=int(match.group("uid")),
            )
        )
    return events
