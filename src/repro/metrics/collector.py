"""Raw event recording during a network simulation."""

from __future__ import annotations

import collections
import dataclasses
from typing import Dict, List, Optional

from repro.des.engine import Simulator
from repro.net.packet import Packet


@dataclasses.dataclass(frozen=True)
class OriginatedEvent:
    """A data packet handed to the network by its application."""

    uid: int
    flow_id: Optional[int]
    src: int
    dst: int
    time: float
    size_bytes: int


@dataclasses.dataclass(frozen=True)
class DeliveredEvent:
    """A data packet arriving at its final destination."""

    uid: int
    flow_id: Optional[int]
    time: float
    size_bytes: int
    delay_s: float
    hops: int
    node: int = -1  # where it was delivered (-1 when unknown)


@dataclasses.dataclass(frozen=True)
class TransmissionEvent:
    """Any packet handed to a MAC for (one hop of) transmission."""

    uid: int
    kind: str
    node: int
    next_hop: int
    time: float
    size_bytes: int


class MetricsCollector:
    """Accumulates packet events; aggregation happens post-run."""

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self.originated: List[OriginatedEvent] = []
        self.delivered: List[DeliveredEvent] = []
        self.transmissions: List[TransmissionEvent] = []
        self.drops: Dict[str, int] = collections.defaultdict(int)
        self._delivered_uids = set()

    # -- recording hooks ----------------------------------------------------

    def data_originated(self, packet: Packet) -> None:
        """An application injected a data packet."""
        self.originated.append(
            OriginatedEvent(
                uid=packet.uid,
                flow_id=packet.flow_id,
                src=packet.src,
                dst=packet.dst,
                time=self._sim.now,
                size_bytes=packet.size_bytes,
            )
        )

    def data_delivered(self, packet: Packet, node: int = -1) -> None:
        """A data packet reached its destination (duplicates ignored)."""
        if packet.uid in self._delivered_uids:
            return
        self._delivered_uids.add(packet.uid)
        self.delivered.append(
            DeliveredEvent(
                uid=packet.uid,
                flow_id=packet.flow_id,
                time=self._sim.now,
                size_bytes=packet.size_bytes,
                delay_s=self._sim.now - packet.created_at,
                # packet.hops counts forwards; the final link makes one more.
                hops=packet.hops + 1,
                node=node,
            )
        )

    def transmission(self, packet: Packet, node: int, next_hop: int) -> None:
        """A packet (data or control) was handed to a MAC."""
        self.transmissions.append(
            TransmissionEvent(
                uid=packet.uid,
                kind=packet.kind,
                node=node,
                next_hop=next_hop,
                time=self._sim.now,
                size_bytes=packet.size_bytes,
            )
        )

    def packet_dropped(self, packet: Packet, node: int, reason: str) -> None:
        """A packet was discarded (reason examples: ``no_route``,
        ``ttl_expired``, ``ifq_full``, ``retry_limit``, ``buffer_timeout``)."""
        self.drops[reason] += 1

    # -- simple summaries -----------------------------------------------------

    @property
    def num_originated(self) -> int:
        """Data packets injected by applications."""
        return len(self.originated)

    @property
    def num_delivered(self) -> int:
        """Distinct data packets that reached their destinations."""
        return len(self.delivered)

    def control_transmissions(self) -> List[TransmissionEvent]:
        """Transmission events for routing-control packets."""
        return [t for t in self.transmissions if t.kind != "DATA"]

    def data_transmissions(self) -> List[TransmissionEvent]:
        """Per-hop transmission events for data packets."""
        return [t for t in self.transmissions if t.kind == "DATA"]
