"""Raw event recording during a network simulation, plus campaign telemetry.

Two observation scopes live here: :class:`MetricsCollector` records the
per-packet events of *one* run, while :class:`CampaignTelemetry` records
the per-trial events of a whole campaign (a sweep, ensemble or protocol
comparison fanned out by :mod:`repro.core.runner`)."""

from __future__ import annotations

import collections
import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.des.engine import Simulator
from repro.net.packet import Packet


@dataclasses.dataclass(frozen=True)
class TrialRecord:
    """One attempt of one trial inside a campaign.

    Attributes:
        key: the trial's identity within its campaign (e.g. ``(value, trial)``
            for a sweep point, a protocol name for a comparison).
        attempt: 1-based attempt number (> 1 means this was a retry).
        status: ``"ok"``, ``"error"``, ``"timeout"`` or ``"resumed"`` (the
            trial's value was restored from a journal, not re-run).
        wall_clock_s: wall-clock duration of this attempt.
        error: diagnostic text for failed attempts (``None`` on success).
    """

    key: object
    attempt: int
    status: str
    wall_clock_s: float
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether this attempt succeeded."""
        return self.status == "ok"


@dataclasses.dataclass(frozen=True)
class CampaignEvent:
    """One supervision event inside a campaign (not a trial attempt).

    The supervised execution backend emits these alongside the per-attempt
    :class:`TrialRecord` stream: lease grants/extensions/reclaims, missed
    heartbeats, retry backoffs, circuit-breaker trips and backend
    degradations.  They answer "what did the supervisor *do*" where trial
    records answer "what did the trials *return*".

    Attributes:
        kind: event name — ``"lease-granted"``, ``"lease-extended"``,
            ``"lease-reclaimed"``, ``"lease-contended"``,
            ``"heartbeat-missed"``, ``"worker-dead"``, ``"retry-backoff"``,
            ``"breaker-open"``, ``"degraded"``, or (dir-queue backend)
            ``"claim-won"``, ``"stale-commit-rejected"``,
            ``"quarantined"`` and ``"result-corrupt"``.
        key: the trial key involved (``None`` for campaign-wide events).
        detail: free-text diagnostics (owner ids, deadlines, ladder rung).
    """

    kind: str
    key: object = None
    detail: str = ""


class CampaignTelemetry:
    """Progress/health accounting for a long-running trial campaign.

    The trial runner calls :meth:`record` after every attempt; pass
    ``on_record`` to observe progress live (e.g. print a line per trial).
    Everything else is post-hoc aggregation, so campaigns of thousands of
    trials stay observable without slowing the workers down.
    """

    def __init__(
        self, on_record: Optional[Callable[["TrialRecord"], None]] = None
    ) -> None:
        self.records: List[TrialRecord] = []
        self.events: List[CampaignEvent] = []
        self._on_record = on_record

    def record(self, record: TrialRecord) -> None:
        """Append one attempt record (called by the runner)."""
        self.records.append(record)
        if self._on_record is not None:
            self._on_record(record)

    def record_event(
        self, kind: str, key: object = None, detail: str = ""
    ) -> None:
        """Append one supervision event (called by execution backends)."""
        self.events.append(CampaignEvent(kind=kind, key=key, detail=detail))

    def _count_events(self, *kinds: str) -> int:
        return sum(1 for e in self.events if e.kind in kinds)

    # -- aggregates ---------------------------------------------------------

    @property
    def trials_completed(self) -> int:
        """Attempts that returned a result."""
        return sum(1 for r in self.records if r.ok)

    @property
    def trials_resumed(self) -> int:
        """Trials restored from a journal instead of being re-run."""
        return sum(1 for r in self.records if r.status == "resumed")

    @property
    def trials_failed(self) -> int:
        """Attempts that raised or were killed (includes retried ones)."""
        return sum(
            1 for r in self.records if r.status in ("error", "timeout")
        )

    @property
    def timeouts(self) -> int:
        """Attempts killed for exceeding the trial timeout."""
        return sum(1 for r in self.records if r.status == "timeout")

    @property
    def retries(self) -> int:
        """Attempts beyond the first for any trial key (resumed records
        keep their original attempt count but are not retries *now*)."""
        return sum(
            1 for r in self.records
            if r.attempt > 1 and r.status != "resumed"
        )

    @property
    def leases_granted(self) -> int:
        """Leases granted (first claims, not extensions or reclaims)."""
        return self._count_events("lease-granted")

    @property
    def leases_extended(self) -> int:
        """Deadline extensions granted to slow-but-alive workers."""
        return self._count_events("lease-extended")

    @property
    def leases_reclaimed(self) -> int:
        """Expired leases taken over (dead/hung owner, or a resume)."""
        return self._count_events("lease-reclaimed")

    @property
    def heartbeats_missed(self) -> int:
        """Workers SIGKILLed for going silent past the heartbeat budget."""
        return self._count_events("heartbeat-missed")

    @property
    def claims_won(self) -> int:
        """Dir-queue first claims observed (fencing token 1)."""
        return self._count_events("claim-won")

    @property
    def stale_commits_rejected(self) -> int:
        """Late commits from fenced-out workers that were refused."""
        return self._count_events("stale-commit-rejected")

    @property
    def quarantined(self) -> int:
        """Poison trials parked after killing too many distinct workers."""
        return self._count_events("quarantined")

    @property
    def degradations(self) -> int:
        """Times the campaign dropped down the backend ladder."""
        return self._count_events("degraded")

    @property
    def breaker_trips(self) -> int:
        """Circuit-breaker openings (consecutive infrastructure failures)."""
        return self._count_events("breaker-open")

    def wall_clock_per_trial(self) -> List[float]:
        """Durations of the successful attempts, in completion order."""
        return [r.wall_clock_s for r in self.records if r.ok]

    @property
    def total_wall_clock_s(self) -> float:
        """Summed duration of every attempt (busy time, not elapsed time)."""
        return sum(r.wall_clock_s for r in self.records)

    def summary(self) -> Dict[str, float]:
        """The headline numbers of the campaign, as a plain dict."""
        durations = self.wall_clock_per_trial()
        return {
            "attempts": float(len(self.records)),
            "completed": float(self.trials_completed),
            "resumed": float(self.trials_resumed),
            "failed": float(self.trials_failed),
            "timeouts": float(self.timeouts),
            "retries": float(self.retries),
            "leases_granted": float(self.leases_granted),
            "leases_extended": float(self.leases_extended),
            "leases_reclaimed": float(self.leases_reclaimed),
            "heartbeats_missed": float(self.heartbeats_missed),
            "breaker_trips": float(self.breaker_trips),
            "degradations": float(self.degradations),
            "claims_won": float(self.claims_won),
            "stale_commits_rejected": float(self.stale_commits_rejected),
            "quarantined": float(self.quarantined),
            "total_wall_clock_s": self.total_wall_clock_s,
            "mean_trial_s": (
                sum(durations) / len(durations) if durations else 0.0
            ),
            "max_trial_s": max(durations) if durations else 0.0,
        }

    def format_summary(self) -> str:
        """One human-readable line, e.g. for the CLI's closing report."""
        s = self.summary()
        resumed = (
            f"{int(s['resumed'])} resumed from journal, "
            if s["resumed"]
            else ""
        )
        supervision = ""
        if s["leases_reclaimed"] or s["degradations"]:
            supervision = (
                f", {int(s['leases_reclaimed'])} leases reclaimed, "
                f"{int(s['degradations'])} backend degradations"
            )
        if s["quarantined"]:
            supervision += f", {int(s['quarantined'])} trials quarantined"
        return (
            f"{int(s['completed'])} trials ok, {resumed}"
            f"{int(s['failed'])} failed "
            f"({int(s['timeouts'])} timeouts, {int(s['retries'])} retries), "
            f"{s['total_wall_clock_s']:.2f}s busy, "
            f"{s['mean_trial_s']:.2f}s/trial mean"
            f"{supervision}"
        )


@dataclasses.dataclass(frozen=True)
class ChannelTelemetry:
    """PHY/channel health counters for one run (paper-independent).

    Attributes:
        frames_transmitted: frames put on the air by any radio.
        frames_delivered: per-receiver deliveries the channel scheduled
            (signal above the receiver's carrier-sense threshold).
        frames_cs_dropped: per-receiver drops below carrier sense.
        frames_suppressed: frames swallowed before the air by an
            injected radio-silence fault (0 in fault-free runs).
        cache_lookups: fast-path link-cache accesses (one per frame).
        cache_rebuilds: distance-matrix rebuilds (one per position slot
            actually transmitted in).
        cache_hit_rate: fraction of lookups served without a rebuild.
        events_processed: simulator events fired over the whole run.
    """

    frames_transmitted: int
    frames_delivered: int
    frames_cs_dropped: int
    frames_suppressed: int
    cache_lookups: int
    cache_rebuilds: int
    cache_hit_rate: float
    events_processed: int

    @property
    def delivery_fanout(self) -> float:
        """Mean receivers reached per transmitted frame."""
        if self.frames_transmitted == 0:
            return 0.0
        return self.frames_delivered / self.frames_transmitted


@dataclasses.dataclass(frozen=True)
class EnergyTelemetry:
    """Per-node radio energy accounting for one run (ns-2 EnergyModel).

    Attributes:
        consumed_j: joules consumed per node id, from the tech
            profile's TX/RX/idle power draws over the radio's airtime
            counters.
        total_j: joules consumed by all radios together.
        depleted_nodes: node ids whose battery hit zero during the run.
    """

    consumed_j: Dict[int, float]
    total_j: float
    depleted_nodes: Tuple[int, ...]

    @property
    def mean_j(self) -> float:
        """Mean joules consumed per node."""
        if not self.consumed_j:
            return 0.0
        return self.total_j / len(self.consumed_j)


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One fault-injection transition during a run.

    Attributes:
        kind: transition name, e.g. ``node_down``/``node_up``,
            ``radio_silence_on``/``off``, ``channel_degraded``/
            ``restored``, ``blackhole_on``/``off``.
        node: affected node id (-1 for channel-global transitions).
        time: simulation time of the transition.
        detail: free-form extra (e.g. ``"10 dB"``), ``None`` usually.
    """

    kind: str
    node: int
    time: float
    detail: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class OriginatedEvent:
    """A data packet handed to the network by its application."""

    uid: int
    flow_id: Optional[int]
    src: int
    dst: int
    time: float
    size_bytes: int


@dataclasses.dataclass(frozen=True)
class DeliveredEvent:
    """A data packet arriving at its final destination."""

    uid: int
    flow_id: Optional[int]
    time: float
    size_bytes: int
    delay_s: float
    hops: int
    node: int = -1  # where it was delivered (-1 when unknown)


@dataclasses.dataclass(frozen=True)
class TransmissionEvent:
    """Any packet handed to a MAC for (one hop of) transmission."""

    uid: int
    kind: str
    node: int
    next_hop: int
    time: float
    size_bytes: int


class MetricsCollector:
    """Accumulates packet events; aggregation happens post-run."""

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self.originated: List[OriginatedEvent] = []
        self.delivered: List[DeliveredEvent] = []
        self.transmissions: List[TransmissionEvent] = []
        self.drops: Dict[str, int] = collections.defaultdict(int)
        #: Fault-injection transitions, in simulation order (empty for a
        #: fault-free run; see :mod:`repro.faults`).
        self.fault_events: List[FaultEvent] = []
        self._delivered_uids = set()
        #: PHY/channel telemetry snapshot, filled by :meth:`record_channel`
        #: at the end of a run (``None`` until then).
        self.channel: Optional[ChannelTelemetry] = None
        #: Per-node energy telemetry snapshot, filled by
        #: :meth:`record_energy` at the end of a run (``None`` until then).
        self.energy: Optional[EnergyTelemetry] = None

    # -- recording hooks ----------------------------------------------------

    def data_originated(self, packet: Packet) -> None:
        """An application injected a data packet."""
        self.originated.append(
            OriginatedEvent(
                uid=packet.uid,
                flow_id=packet.flow_id,
                src=packet.src,
                dst=packet.dst,
                time=self._sim.now,
                size_bytes=packet.size_bytes,
            )
        )

    def data_delivered(self, packet: Packet, node: int = -1) -> None:
        """A data packet reached its destination (duplicates ignored)."""
        if packet.uid in self._delivered_uids:
            return
        self._delivered_uids.add(packet.uid)
        self.delivered.append(
            DeliveredEvent(
                uid=packet.uid,
                flow_id=packet.flow_id,
                time=self._sim.now,
                size_bytes=packet.size_bytes,
                delay_s=self._sim.now - packet.created_at,
                # packet.hops counts forwards; the final link makes one more.
                hops=packet.hops + 1,
                node=node,
            )
        )

    def transmission(self, packet: Packet, node: int, next_hop: int) -> None:
        """A packet (data or control) was handed to a MAC."""
        self.transmissions.append(
            TransmissionEvent(
                uid=packet.uid,
                kind=packet.kind,
                node=node,
                next_hop=next_hop,
                time=self._sim.now,
                size_bytes=packet.size_bytes,
            )
        )

    def record_channel(self, channel) -> ChannelTelemetry:
        """Snapshot the channel's telemetry counters (typically post-run).

        ``channel`` is duck-typed (any object exposing the
        :class:`~repro.phy.channel.Channel` counters) to keep this module
        free of a PHY dependency.
        """
        self.channel = ChannelTelemetry(
            frames_transmitted=channel.frames_transmitted,
            frames_delivered=channel.frames_delivered,
            frames_cs_dropped=channel.frames_cs_dropped,
            frames_suppressed=getattr(channel, "frames_suppressed", 0),
            cache_lookups=channel.cache_lookups,
            cache_rebuilds=channel.cache_rebuilds,
            cache_hit_rate=channel.cache_hit_rate,
            events_processed=self._sim.events_processed,
        )
        return self.channel

    def record_energy(self, meters) -> EnergyTelemetry:
        """Snapshot per-node energy meters (typically post-run).

        ``meters`` is duck-typed: a ``{node_id: meter}`` mapping whose
        values expose :meth:`~repro.phy.energy.EnergyMeter.consumed_j`
        and ``depleted``, keeping this module free of a PHY dependency.
        """
        consumed = {
            node_id: meter.consumed_j() for node_id, meter in meters.items()
        }
        self.energy = EnergyTelemetry(
            consumed_j=consumed,
            total_j=float(sum(consumed.values())),
            depleted_nodes=tuple(
                sorted(
                    node_id
                    for node_id, meter in meters.items()
                    if meter.depleted
                )
            ),
        )
        return self.energy

    def record_fault(
        self, kind: str, node: int = -1, detail: Optional[str] = None
    ) -> None:
        """A fault model (or a faulted node) logged a transition."""
        self.fault_events.append(
            FaultEvent(kind=kind, node=node, time=self._sim.now, detail=detail)
        )

    def packet_dropped(self, packet: Packet, node: int, reason: str) -> None:
        """A packet was discarded (reason examples: ``no_route``,
        ``ttl_expired``, ``ifq_full``, ``retry_limit``, ``buffer_timeout``)."""
        self.drops[reason] += 1

    # -- simple summaries -----------------------------------------------------

    @property
    def num_originated(self) -> int:
        """Data packets injected by applications."""
        return len(self.originated)

    @property
    def num_delivered(self) -> int:
        """Distinct data packets that reached their destinations."""
        return len(self.delivered)

    def control_transmissions(self) -> List[TransmissionEvent]:
        """Transmission events for routing-control packets."""
        return [t for t in self.transmissions if t.kind != "DATA"]

    def data_transmissions(self) -> List[TransmissionEvent]:
        """Per-hop transmission events for data packets."""
        return [t for t in self.transmissions if t.kind == "DATA"]
