"""Evaluation metrics: goodput, PDR, delay, routing overhead.

The collector records raw per-packet events during a run; the metric
functions aggregate them afterwards into exactly the quantities paper
Section IV-C reports (goodput time-series per sender, PDR per sender) plus
the future-work metrics the conclusion names (routing overhead, delay).
"""

from repro.metrics.collector import (
    CampaignTelemetry,
    ChannelTelemetry,
    FaultEvent,
    MetricsCollector,
    TrialRecord,
)
from repro.metrics.goodput import goodput_series, total_goodput_bps
from repro.metrics.pdr import packet_delivery_ratio, pdr_by_flow
from repro.metrics.delay import delay_stats, mean_delay
from repro.metrics.overhead import control_overhead, normalized_routing_load
from repro.metrics.resilience import (
    availability,
    pdr_timeline,
    recovery_times_s,
)
from repro.metrics.tracefile import (
    TraceEvent,
    parse_packet_trace,
    render_packet_trace,
)

__all__ = [
    "CampaignTelemetry",
    "ChannelTelemetry",
    "FaultEvent",
    "TrialRecord",
    "MetricsCollector",
    "availability",
    "pdr_timeline",
    "recovery_times_s",
    "goodput_series",
    "total_goodput_bps",
    "packet_delivery_ratio",
    "pdr_by_flow",
    "delay_stats",
    "mean_delay",
    "control_overhead",
    "normalized_routing_load",
    "TraceEvent",
    "render_packet_trace",
    "parse_packet_trace",
]
