"""Road layouts: named lanes with shapes, directions and cell grids.

A :class:`RoadLayout` bundles the lanes of a scenario: the single 3000 m
circuit of the paper's Table I, or multi-lane roads for the connectivity
study of paper Fig. 1.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Tuple

from repro.geometry.shapes import CircularShape, LaneShape, StraightShape
from repro.util.units import CELL_LENGTH_M


@dataclasses.dataclass(frozen=True)
class Lane:
    """One lane of a road.

    Attributes:
        lane_id: index of the lane within the layout.
        shape: the arc-length parametrised geometry.
        direction: +1 for travel in the direction of increasing arc length,
            -1 for the opposite (used for opposite-direction lanes in the
            interference study of paper Fig. 1-b).
        cell_length: metres per CA cell on this lane.
    """

    lane_id: int
    shape: LaneShape
    direction: int = 1
    cell_length: float = CELL_LENGTH_M

    def __post_init__(self) -> None:
        if self.direction not in (-1, 1):
            raise ValueError(f"direction must be +1 or -1, got {self.direction}")
        if self.cell_length <= 0:
            raise ValueError(f"cell_length must be > 0, got {self.cell_length}")

    @property
    def num_cells(self) -> int:
        """Number of CA cells that fit on the lane."""
        return int(self.shape.length // self.cell_length)

    def cell_to_plane(self, cell: float) -> Tuple[float, float]:
        """Map a (possibly fractional) cell index to plane coordinates.

        Respects the lane direction: on a ``direction == -1`` lane cell 0 is
        at arc length 0 but increasing cells move towards decreasing arc
        length (i.e. the vehicles flow the other way around).
        """
        s = cell * self.cell_length
        if self.direction < 0:
            s = self.shape.length - s
            if not self.shape.closed:
                s = max(0.0, min(s, self.shape.length))
        return self.shape.to_plane(s)


class RoadLayout:
    """An ordered collection of lanes forming the simulated road."""

    def __init__(self, lanes: List[Lane]) -> None:
        if not lanes:
            raise ValueError("a road layout needs at least one lane")
        ids = [lane.lane_id for lane in lanes]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate lane ids in layout: {ids}")
        self._lanes: Dict[int, Lane] = {lane.lane_id: lane for lane in lanes}
        self._order = list(ids)

    @classmethod
    def single_circuit(
        cls, length_m: float, cell_length: float = CELL_LENGTH_M
    ) -> "RoadLayout":
        """The paper's Table I road: one closed circuit of ``length_m``."""
        return cls([Lane(0, CircularShape(length_m), 1, cell_length)])

    @classmethod
    def single_line(
        cls, length_m: float, cell_length: float = CELL_LENGTH_M
    ) -> "RoadLayout":
        """The original (pre-improvement) CAVENET road: one straight lane."""
        return cls([Lane(0, StraightShape(length_m), 1, cell_length)])

    @classmethod
    def multi_lane_circuit(
        cls,
        length_m: float,
        num_lanes: int,
        lane_spacing_m: float = 3.75,
        opposite: Tuple[int, ...] = (),
        cell_length: float = CELL_LENGTH_M,
    ) -> "RoadLayout":
        """Concentric circular lanes, for the Fig. 1 multi-lane studies.

        ``opposite`` lists lane indices that carry traffic in the reverse
        direction (the interferer lane of Fig. 1-b).  All lanes share the
        same circumference parametrisation, offset radially.
        """
        if num_lanes < 1:
            raise ValueError(f"num_lanes must be >= 1, got {num_lanes}")
        lanes = [
            Lane(
                k,
                CircularShape(length_m, radius_offset=k * lane_spacing_m),
                -1 if k in opposite else 1,
                cell_length,
            )
            for k in range(num_lanes)
        ]
        return cls(lanes)

    @property
    def num_lanes(self) -> int:
        """Number of lanes in the layout."""
        return len(self._lanes)

    @property
    def lane_ids(self) -> List[int]:
        """Lane ids in declaration order."""
        return list(self._order)

    def lane(self, lane_id: int) -> Lane:
        """Return the lane with the given id (KeyError if absent)."""
        return self._lanes[lane_id]

    def __iter__(self) -> Iterator[Lane]:
        return (self._lanes[i] for i in self._order)

    def __len__(self) -> int:
        return len(self._lanes)
