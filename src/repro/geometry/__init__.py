"""Lane geometry: affine transformations and lane shapes.

The paper (Section III-D) places each lane in the plane with an affine
transformation of the vehicle's relative coordinate vector ``(X, Y, 1)``.
This package provides those transforms plus parametric lane shapes —
straight lines, polylines and the closed circuit introduced by the paper's
"improvement" of CAVENET (Section III-B).
"""

from repro.geometry.affine import AffineTransform2D
from repro.geometry.shapes import (
    CircularShape,
    LaneShape,
    PolylineShape,
    StraightShape,
)
from repro.geometry.layout import Lane, RoadLayout

__all__ = [
    "AffineTransform2D",
    "LaneShape",
    "StraightShape",
    "CircularShape",
    "PolylineShape",
    "Lane",
    "RoadLayout",
]
