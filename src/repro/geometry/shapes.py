"""Parametric lane shapes: map distance-along-lane to plane coordinates.

A lane shape is an arc-length parametrised curve ``to_plane(s) -> (x, y)``.
The original CAVENET laid lanes out as straight segments positioned by affine
transforms; the improved CAVENET (paper Section III-B) bends the lane into a
closed circle so that vehicles wrap without teleporting across the plane.
"""

from __future__ import annotations

import abc
import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry.affine import AffineTransform2D


class LaneShape(abc.ABC):
    """Abstract arc-length parametrised curve of a given total length."""

    def __init__(self, length: float) -> None:
        if length <= 0:
            raise ValueError(f"lane length must be > 0, got {length}")
        self._length = float(length)

    @property
    def length(self) -> float:
        """Total arc length of the lane in metres."""
        return self._length

    @property
    @abc.abstractmethod
    def closed(self) -> bool:
        """True if the ends of the lane are joined (a circuit)."""

    @abc.abstractmethod
    def to_plane(self, s: float) -> Tuple[float, float]:
        """Map arc-length position ``s`` (metres) to plane coordinates.

        For closed shapes, ``s`` is taken modulo :attr:`length`.  For open
        shapes, ``s`` outside ``[0, length]`` raises :class:`ValueError`.
        """

    def to_plane_many(self, positions: Sequence[float]) -> np.ndarray:
        """Vectorised :meth:`to_plane`, returning an ``(N, 2)`` array."""
        return np.array([self.to_plane(float(s)) for s in positions])

    def _check_open_range(self, s: float) -> float:
        if not 0.0 <= s <= self._length:
            raise ValueError(
                f"position {s} outside open lane of length {self._length}"
            )
        return s


class StraightShape(LaneShape):
    """A straight lane along the x axis, positioned by an affine transform.

    This is the original CAVENET lane construction (paper Fig. 3): the
    vehicle's relative coordinate ``(X, 0, 1)`` is mapped through the lane's
    transformation matrix.
    """

    def __init__(
        self,
        length: float,
        transform: AffineTransform2D = None,
    ) -> None:
        super().__init__(length)
        self._transform = (
            transform if transform is not None else AffineTransform2D.identity()
        )

    @property
    def closed(self) -> bool:
        return False

    @property
    def transform(self) -> AffineTransform2D:
        """The lane transformation matrix A(k) of the paper."""
        return self._transform

    def to_plane(self, s: float) -> Tuple[float, float]:
        self._check_open_range(s)
        return self._transform.apply(s, 0.0)


class CircularShape(LaneShape):
    """A closed circular lane — the improved CAVENET movement pattern.

    The circle has circumference ``length`` and is centred at ``center``;
    vehicles travel counter-clockwise starting from angle 0 (east).  A lane
    at a different radius (e.g. the outer lane of a two-lane ring road) keeps
    the *same* circumference parametrisation so that cell indices stay
    aligned between lanes, and differs only in ``radius_offset``.
    """

    def __init__(
        self,
        length: float,
        center: Tuple[float, float] = (0.0, 0.0),
        radius_offset: float = 0.0,
    ) -> None:
        super().__init__(length)
        self._center = (float(center[0]), float(center[1]))
        self._radius = length / (2.0 * math.pi) + radius_offset
        if self._radius <= 0:
            raise ValueError(
                f"radius_offset {radius_offset} collapses the circle"
            )

    @property
    def closed(self) -> bool:
        return True

    @property
    def radius(self) -> float:
        """Radius of the circle in metres."""
        return self._radius

    @property
    def center(self) -> Tuple[float, float]:
        """Centre of the circle."""
        return self._center

    def to_plane(self, s: float) -> Tuple[float, float]:
        angle = (s % self._length) / self._length * 2.0 * math.pi
        return (
            self._center[0] + self._radius * math.cos(angle),
            self._center[1] + self._radius * math.sin(angle),
        )


class PolylineShape(LaneShape):
    """A lane following a sequence of straight segments.

    Useful for grid or ring-road layouts that are not perfect circles.  If
    the last vertex equals the first the shape is closed.
    """

    def __init__(self, vertices: Sequence[Tuple[float, float]]) -> None:
        if len(vertices) < 2:
            raise ValueError("a polyline needs at least two vertices")
        self._vertices = [(float(x), float(y)) for x, y in vertices]
        self._seg_lengths: List[float] = []
        for (x0, y0), (x1, y1) in zip(self._vertices, self._vertices[1:]):
            seg = math.hypot(x1 - x0, y1 - y0)
            if seg <= 0:
                raise ValueError("polyline contains a zero-length segment")
            self._seg_lengths.append(seg)
        self._cumulative = np.concatenate([[0.0], np.cumsum(self._seg_lengths)])
        self._closed = self._vertices[0] == self._vertices[-1]
        super().__init__(float(self._cumulative[-1]))

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def vertices(self) -> List[Tuple[float, float]]:
        """The polyline's vertices (copy)."""
        return list(self._vertices)

    def to_plane(self, s: float) -> Tuple[float, float]:
        if self._closed:
            s = s % self._length
        else:
            self._check_open_range(s)
        # Find the segment containing s; side='right' puts a vertex position
        # at the start of the following segment.
        index = int(np.searchsorted(self._cumulative, s, side="right")) - 1
        index = min(index, len(self._seg_lengths) - 1)
        frac = (s - self._cumulative[index]) / self._seg_lengths[index]
        x0, y0 = self._vertices[index]
        x1, y1 = self._vertices[index + 1]
        return (x0 + frac * (x1 - x0), y0 + frac * (y1 - y0))


def regular_polygon_circuit(
    length: float, sides: int = 8, center: Tuple[float, float] = (0.0, 0.0)
) -> PolylineShape:
    """Build a closed regular-polygon circuit of total perimeter ``length``.

    A convenience for layouts where a piecewise-linear circuit is preferred
    over a smooth circle (e.g. matching an ns-2 setdest trace exactly).
    """
    if sides < 3:
        raise ValueError(f"a polygon circuit needs >= 3 sides, got {sides}")
    circumradius = (length / sides) / (2.0 * math.sin(math.pi / sides))
    vertices = [
        (
            center[0] + circumradius * math.cos(2.0 * math.pi * k / sides),
            center[1] + circumradius * math.sin(2.0 * math.pi * k / sides),
        )
        for k in range(sides)
    ]
    vertices.append(vertices[0])
    return PolylineShape(vertices)
