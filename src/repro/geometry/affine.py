"""2-D affine transformations in homogeneous coordinates.

The paper represents the pose of lane ``k`` as a 3x3 matrix ``A(k)`` applied
to the relative coordinate vector ``(X, Y, 1)`` of each vehicle:
``X~ = A(k) X``.  For example, the third lane of paper Fig. 3 uses a swap of
axes plus a translation.  This module implements exactly that algebra.
"""

from __future__ import annotations

import math
from typing import Iterable, Tuple

import numpy as np


class AffineTransform2D:
    """An affine map of the plane, stored as a 3x3 homogeneous matrix.

    Instances are immutable; composition returns a new transform.

    >>> t = AffineTransform2D.translation(10.0, 0.0)
    >>> t.apply(1.0, 2.0)
    (11.0, 2.0)
    """

    __slots__ = ("_matrix",)

    def __init__(self, matrix: Iterable[Iterable[float]]) -> None:
        mat = np.asarray(matrix, dtype=float)
        if mat.shape != (3, 3):
            raise ValueError(f"affine matrix must be 3x3, got shape {mat.shape}")
        if not np.allclose(mat[2], [0.0, 0.0, 1.0]):
            raise ValueError(
                f"bottom row of an affine matrix must be [0, 0, 1], got {mat[2]}"
            )
        mat.setflags(write=False)
        self._matrix = mat

    # -- constructors ------------------------------------------------------

    @classmethod
    def identity(cls) -> "AffineTransform2D":
        """The identity transform."""
        return cls(np.eye(3))

    @classmethod
    def translation(cls, dx: float, dy: float) -> "AffineTransform2D":
        """Translate by ``(dx, dy)``."""
        return cls([[1.0, 0.0, dx], [0.0, 1.0, dy], [0.0, 0.0, 1.0]])

    @classmethod
    def rotation(cls, angle_rad: float) -> "AffineTransform2D":
        """Rotate counter-clockwise about the origin by ``angle_rad``."""
        c, s = math.cos(angle_rad), math.sin(angle_rad)
        return cls([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])

    @classmethod
    def scaling(cls, sx: float, sy: float) -> "AffineTransform2D":
        """Scale by ``sx`` along x and ``sy`` along y."""
        return cls([[sx, 0.0, 0.0], [0.0, sy, 0.0], [0.0, 0.0, 1.0]])

    @classmethod
    def axis_swap(cls) -> "AffineTransform2D":
        """Swap x and y axes — the transform of lane 3 in paper Fig. 3."""
        return cls([[0.0, 1.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 1.0]])

    # -- operations --------------------------------------------------------

    @property
    def matrix(self) -> np.ndarray:
        """The read-only 3x3 matrix."""
        return self._matrix

    def apply(self, x: float, y: float) -> Tuple[float, float]:
        """Map a single point ``(x, y)``."""
        vec = self._matrix @ np.array([x, y, 1.0])
        return float(vec[0]), float(vec[1])

    def apply_many(self, points: np.ndarray) -> np.ndarray:
        """Map an ``(N, 2)`` array of points, returning an ``(N, 2)`` array."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError(f"points must have shape (N, 2), got {pts.shape}")
        homogeneous = np.column_stack([pts, np.ones(len(pts))])
        return (homogeneous @ self._matrix.T)[:, :2]

    def compose(self, other: "AffineTransform2D") -> "AffineTransform2D":
        """Return ``self ∘ other`` (``other`` applied first)."""
        return AffineTransform2D(self._matrix @ other._matrix)

    def inverse(self) -> "AffineTransform2D":
        """Return the inverse transform.

        Raises :class:`numpy.linalg.LinAlgError` if the transform is singular
        (e.g. a degenerate scaling by zero).
        """
        return AffineTransform2D(np.linalg.inv(self._matrix))

    def __matmul__(self, other: "AffineTransform2D") -> "AffineTransform2D":
        return self.compose(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AffineTransform2D):
            return NotImplemented
        return np.allclose(self._matrix, other._matrix)

    def __hash__(self) -> int:
        return hash(self._matrix.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AffineTransform2D({self._matrix.tolist()})"
