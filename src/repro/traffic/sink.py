"""Traffic sink: per-flow reception log at the destination node."""

from __future__ import annotations

import collections
import dataclasses
from typing import DefaultDict, List, Optional

from repro.net.node import Node
from repro.net.packet import Packet


@dataclasses.dataclass(frozen=True)
class Reception:
    """One packet arriving at the sink."""

    flow_id: Optional[int]
    seq: Optional[int]
    time: float
    size_bytes: int
    delay_s: float
    hops: int


class Sink:
    """Attaches to a node and logs every data packet delivered to it.

    The global :class:`~repro.metrics.MetricsCollector` already records
    deliveries; the sink adds per-flow sequence visibility (loss patterns,
    reordering) that flow-level debugging needs.
    """

    def __init__(self, node: Node) -> None:
        self._node = node
        self.receptions: List[Reception] = []
        self._by_flow: DefaultDict[Optional[int], List[Reception]] = (
            collections.defaultdict(list)
        )
        node.add_sink(self._on_packet)

    def _on_packet(self, packet: Packet, prev_hop: int) -> None:
        reception = Reception(
            flow_id=packet.flow_id,
            seq=packet.seq,
            time=self._node.sim.now,
            size_bytes=packet.size_bytes,
            delay_s=self._node.sim.now - packet.created_at,
            hops=packet.hops,
        )
        self.receptions.append(reception)
        self._by_flow[packet.flow_id].append(reception)

    def flow_receptions(self, flow_id: Optional[int]) -> List[Reception]:
        """Receptions of one flow, in arrival order."""
        return list(self._by_flow.get(flow_id, []))

    def received_seqs(self, flow_id: Optional[int]) -> List[int]:
        """Sequence numbers seen for a flow (duplicates included)."""
        return [
            r.seq for r in self._by_flow.get(flow_id, []) if r.seq is not None
        ]

    def missing_seqs(self, flow_id: Optional[int], last_sent: int) -> List[int]:
        """Which of ``1..last_sent`` never arrived for this flow."""
        seen = set(self.received_seqs(flow_id))
        return [seq for seq in range(1, last_sent + 1) if seq not in seen]
