"""Poisson on/off traffic source.

The second built-in entry of the ``traffic`` registry — and the proof that
the traffic seam is real: a bursty, memoryless source that exercises the
MAC and routing layers very differently from Table I's clockwork CBR.

During an ON period packets arrive as a Poisson process (exponential
inter-arrival times with mean ``1 / rate_pps``); ON and OFF period
lengths are themselves exponential with configurable means — the classic
Markov-modulated on/off model used for VANET safety-beacon and infotainment
traffic studies.  With ``off_mean_s = 0`` it degenerates to a plain
Poisson source.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.des.event import Event
from repro.net.node import Node
from repro.traffic.base import TrafficSource


class PoissonOnOffSource(TrafficSource):
    """Bursty traffic: exponential on/off gating over a Poisson process.

    Args:
        node: the originating node.
        dst: destination node id.
        rate_pps: mean packet rate *during ON periods*.
        size_bytes: payload size.
        start_s: no emissions before this time.
        stop_s: no emissions at or after this time.
        flow_id: tag carried by every packet for per-flow metrics.
        on_mean_s: mean ON-period duration.
        off_mean_s: mean OFF-period duration (0 = always on).
        rng: generator for every exponential draw (reproducible given the
            same seed — the simulation passes a named stream).
    """

    def __init__(
        self,
        node: Node,
        dst: int,
        rate_pps: float = 5.0,
        size_bytes: int = 512,
        start_s: float = 10.0,
        stop_s: float = 90.0,
        flow_id: Optional[int] = None,
        on_mean_s: float = 5.0,
        off_mean_s: float = 5.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if rate_pps <= 0:
            raise ValueError(f"rate_pps must be > 0, got {rate_pps}")
        if size_bytes <= 0:
            raise ValueError(f"size_bytes must be > 0, got {size_bytes}")
        if stop_s <= start_s:
            raise ValueError(
                f"need stop_s > start_s, got [{start_s}, {stop_s}]"
            )
        if on_mean_s <= 0:
            raise ValueError(f"on_mean_s must be > 0, got {on_mean_s}")
        if off_mean_s < 0:
            raise ValueError(f"off_mean_s must be >= 0, got {off_mean_s}")
        self._node = node
        self._dst = dst
        self._rate = float(rate_pps)
        self._size = int(size_bytes)
        self._start = float(start_s)
        self._stop = float(stop_s)
        self.flow_id = flow_id if flow_id is not None else node.node_id
        self._on_mean = float(on_mean_s)
        self._off_mean = float(off_mean_s)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._seq = 0
        self._on_until = 0.0
        self._event: Optional[Event] = None
        self._started = False
        self.packets_sent = 0

    def start(self) -> None:
        """Schedule the first ON period (call once, before running)."""
        if self._started:
            raise RuntimeError("Poisson source already started")
        self._started = True
        self._event = self._node.sim.schedule_at(self._start, self._begin_on)

    def stop(self) -> None:
        """Cancel any pending emission or period transition."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _begin_on(self) -> None:
        now = self._node.sim.now
        self._event = None
        if now >= self._stop:
            return
        self._on_until = now + float(self._rng.exponential(self._on_mean))
        self._schedule_next()

    def _schedule_next(self) -> None:
        now = self._node.sim.now
        arrival = now + float(self._rng.exponential(1.0 / self._rate))
        if arrival < min(self._on_until, self._stop):
            self._event = self._node.sim.schedule_at(arrival, self._emit)
            return
        # The next arrival falls past this ON period (or the window): idle
        # through the OFF gap and start a fresh ON period.
        off_end = self._on_until + float(
            self._rng.exponential(self._off_mean) if self._off_mean > 0
            else 0.0
        )
        if off_end >= self._stop:
            self._event = None
            return
        self._event = self._node.sim.schedule_at(off_end, self._begin_on)

    def _emit(self) -> None:
        self._event = None
        if self._node.sim.now >= self._stop:
            return
        self._seq += 1
        self.packets_sent += 1
        self._node.originate_data(
            self._dst, self._size, flow_id=self.flow_id, seq=self._seq
        )
        self._schedule_next()
