"""Application-layer traffic: pluggable sources and sinks.

Table I's CBR generator is the default entry of the ``traffic`` registry
namespace; a Poisson on/off source ships alongside it, and third-party
generators register with the same decorator (see
:mod:`repro.core.registry`).  A factory receives the originating node, the
destination, the scenario and a dedicated RNG stream, and returns a
started-able :class:`~repro.traffic.base.TrafficSource`;
``Scenario.traffic_options`` is forwarded as extra keyword arguments.
"""

from repro.core.registry import register
from repro.traffic.base import TrafficSource
from repro.traffic.cbr import CbrSource
from repro.traffic.poisson import PoissonOnOffSource
from repro.traffic.sink import Sink


@register("traffic", "cbr")
def _make_cbr(node, dst, *, scenario, flow_id, rng, **options) -> CbrSource:
    """Table I's constant-bit-rate source, shaped by the scenario's
    ``cbr_rate_pps``/``cbr_size_bytes`` knobs and traffic window.

    The start jitter (which breaks the lock-step phase of many sources
    started together) is the same expression the pre-registry wiring used,
    so default-scenario runs are bit-identical.
    """
    kwargs = dict(
        rate_pps=scenario.cbr_rate_pps,
        size_bytes=scenario.cbr_size_bytes,
        start_s=scenario.traffic_start_s,
        stop_s=scenario.traffic_stop_s,
        flow_id=flow_id,
        jitter_s=min(0.05, 1.0 / scenario.cbr_rate_pps / 4.0),
        rng=rng,
    )
    kwargs.update(options)  # traffic_options may override any default
    return CbrSource(node, dst, **kwargs)


# Historical per-flow stream name ("cbr-<flow>"), predating the registry;
# keeping it makes registry-dispatched default runs bit-identical.
_make_cbr.rng_stream_prefix = "cbr"


@register("traffic", "poisson")
def _make_poisson(
    node, dst, *, scenario, flow_id, rng, **options
) -> PoissonOnOffSource:
    """Bursty Poisson on/off source over the scenario's traffic window;
    ``traffic_options`` supplies ``on_mean_s``/``off_mean_s``."""
    kwargs = dict(
        rate_pps=scenario.cbr_rate_pps,
        size_bytes=scenario.cbr_size_bytes,
        start_s=scenario.traffic_start_s,
        stop_s=scenario.traffic_stop_s,
        flow_id=flow_id,
        rng=rng,
    )
    kwargs.update(options)  # traffic_options may override any default
    return PoissonOnOffSource(node, dst, **kwargs)


__all__ = [
    "CbrSource",
    "PoissonOnOffSource",
    "Sink",
    "TrafficSource",
]
