"""Application-layer traffic: CBR sources and sinks (paper Table I)."""

from repro.traffic.cbr import CbrSource
from repro.traffic.sink import Sink

__all__ = ["CbrSource", "Sink"]
