"""Constant Bit Rate traffic source.

Paper Table I: each sender emits 5 packets/s of 512 bytes between 10 s and
90 s of the 100 s run.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.des.event import Event
from repro.net.node import Node
from repro.traffic.base import TrafficSource


class CbrSource(TrafficSource):
    """Emits fixed-size packets at a fixed rate over a time window.

    Args:
        node: the originating node.
        dst: destination node id.
        rate_pps: packets per second.
        size_bytes: payload size.
        start_s: first emission time.
        stop_s: no emissions at or after this time.
        flow_id: tag carried by every packet for per-flow metrics.
        jitter_s: optional uniform jitter on the *first* emission, breaking
            the lock-step synchronisation of many sources started together
            (real traffic generators never tick in phase).
        rng: generator for the start jitter.
    """

    def __init__(
        self,
        node: Node,
        dst: int,
        rate_pps: float = 5.0,
        size_bytes: int = 512,
        start_s: float = 10.0,
        stop_s: float = 90.0,
        flow_id: Optional[int] = None,
        jitter_s: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if rate_pps <= 0:
            raise ValueError(f"rate_pps must be > 0, got {rate_pps}")
        if size_bytes <= 0:
            raise ValueError(f"size_bytes must be > 0, got {size_bytes}")
        if stop_s <= start_s:
            raise ValueError(
                f"need stop_s > start_s, got [{start_s}, {stop_s}]"
            )
        if jitter_s < 0:
            raise ValueError(f"jitter_s must be >= 0, got {jitter_s}")
        self._node = node
        self._dst = dst
        self._interval = 1.0 / rate_pps
        self._size = size_bytes
        self._start = start_s
        self._stop = stop_s
        self.flow_id = flow_id if flow_id is not None else node.node_id
        self._jitter = jitter_s
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._seq = 0
        self._event: Optional[Event] = None
        self.packets_sent = 0

    def start(self) -> None:
        """Schedule the emission train (call once, before running)."""
        if self._event is not None:
            raise RuntimeError("CBR source already started")
        first = self._start
        if self._jitter > 0:
            first += float(self._rng.uniform(0.0, self._jitter))
        self._event = self._node.sim.schedule_at(first, self._emit)

    def stop(self) -> None:
        """Cancel any pending emission."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _emit(self) -> None:
        now = self._node.sim.now
        if now >= self._stop:
            self._event = None
            return
        self._seq += 1
        self.packets_sent += 1
        self._node.originate_data(
            self._dst, self._size, flow_id=self.flow_id, seq=self._seq
        )
        self._event = self._node.sim.schedule(self._interval, self._emit)
