"""The traffic-source seam: what ``CavenetSimulation.build_traffic`` needs.

Any application traffic generator plugs into a run through two contracts:

* the **source object** — this class: ``start()`` schedules the emission
  pattern, ``stop()`` cancels it, ``packets_sent`` counts originations;
* the **registry factory** — ``factory(node, dst, *, scenario, flow_id,
  rng) -> TrafficSource`` registered under the ``"traffic"`` namespace of
  :mod:`repro.core.registry`; ``Scenario.traffic`` selects it by name and
  ``Scenario.traffic_options`` is passed through as extra keyword
  arguments.
"""

from __future__ import annotations

import abc


class TrafficSource(abc.ABC):
    """One flow's application-layer packet generator."""

    #: Originated packets (every concrete source maintains this).
    packets_sent: int = 0

    @abc.abstractmethod
    def start(self) -> None:
        """Schedule the emission pattern (call once, before running)."""

    @abc.abstractmethod
    def stop(self) -> None:
        """Cancel any pending emission."""
