"""Radio technology profiles: per-MCS rates, noise floors, airtimes.

CAVENET's evaluation fixes the PHY to one 802.11 DSSS configuration
(Table I: 2 Mbps data / 1 Mbps basic at 914 MHz) — exactly what
:class:`repro.mac.params.Mac80211Params` encodes.  A
:class:`TechProfile` lifts those numbers into a pluggable registry
namespace (``tech``, the tenth) so a scenario can swap the whole radio
— e.g. 5.9 GHz 802.11p/DSRC with its 3–27 Mbps OFDM ladder — without
touching the MAC.

Rate-adaptation contract (kept deliberately simple so every kernel
backend stays bit-identical):

* :meth:`TechProfile.rate_for_snr_db` is a pure threshold lookup over
  the profile's MCS table — **no RNG draws**.  The table is sorted
  ascending by threshold; the selected entry is the *highest-rate* MCS
  whose threshold the SNR meets, with **inclusive** comparison (an SNR
  exactly equal to a threshold selects that MCS — ties break toward
  the higher rate).  Below the lowest threshold the lowest MCS is
  returned: the frame is still sent, and whether it decodes stays the
  receiver's call (rx threshold / capture, unchanged).
* A single-entry table (``adaptive`` is ``False``) short-circuits: the
  MAC never computes an SNR, which keeps the default DSSS profile
  bit-identical to the fixed-rate code it replaced.

:meth:`TechProfile.frame_airtime` reproduces
``Mac80211Params.tx_time`` exactly (``plcp_s + size_bytes * 8.0 /
rate_bps`` — the same float expression, hence the same IEEE-754
result), so moving airtime onto the profile changes no event
timestamp.

Third-party profiles plug in with no ``repro.*`` edits::

    from repro.core.registry import register
    from repro.phy.tech import TechProfile

    @register("tech", "lora-ish")
    def make_lora(scenario, **options):
        return TechProfile(name="lora-ish", ...)

After that ``Scenario(tech="lora-ish")`` validates and runs end to
end; ``tech_options`` is passed to the factory as keyword arguments.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Tuple

from repro.core.registry import register
from repro.phy.energy import EnergyParams
from repro.util.errors import ConfigError

#: Table I carrier for the 914 MHz WaveLAN-era DSSS radio.  Lives here
#: (not in ``propagation.py``) so frequency literals stay confined to
#: the profile/params modules — the CI grep gate enforces that.
DSSS_FREQUENCY_HZ: float = 914e6

#: Boltzmann constant (J/K) and the reference temperature used for
#: thermal-noise floors (290 K, the conventional "room temperature").
BOLTZMANN_J_PER_K: float = 1.380649e-23
REFERENCE_TEMPERATURE_K: float = 290.0


@dataclasses.dataclass(frozen=True)
class TechProfile:
    """One radio technology: rates, spectrum, noise and energy figures.

    ``mcs`` is an ascending tuple of ``(snr_threshold_db, rate_bps)``
    pairs — ascending in *both* columns, validated here, so the lookup
    in :meth:`rate_for_snr_db` is unambiguous.
    """

    name: str
    frequency_hz: float
    bandwidth_hz: float
    noise_figure_db: float
    mcs: Tuple[Tuple[float, float], ...]
    basic_rate_bps: float
    plcp_s: float
    tx_power_min_w: float
    tx_power_max_w: float
    energy: EnergyParams = EnergyParams()

    def __post_init__(self) -> None:
        if not self.mcs:
            raise ConfigError(f"tech profile {self.name!r}: empty MCS table")
        mcs = tuple(
            (float(snr), float(rate)) for snr, rate in self.mcs
        )
        object.__setattr__(self, "mcs", mcs)
        for (lo_snr, lo_rate), (hi_snr, hi_rate) in zip(mcs, mcs[1:]):
            if not (hi_snr > lo_snr and hi_rate > lo_rate):
                raise ConfigError(
                    f"tech profile {self.name!r}: MCS table must be "
                    f"strictly ascending in SNR threshold and rate; got "
                    f"{mcs!r}"
                )
        if min(rate for _, rate in mcs) <= 0:
            raise ConfigError(
                f"tech profile {self.name!r}: MCS rates must be > 0"
            )
        if self.basic_rate_bps <= 0:
            raise ConfigError(
                f"tech profile {self.name!r}: basic_rate_bps must be > 0"
            )
        if self.frequency_hz <= 0 or self.bandwidth_hz <= 0:
            raise ConfigError(
                f"tech profile {self.name!r}: frequency_hz and "
                f"bandwidth_hz must be > 0"
            )
        if self.plcp_s < 0:
            raise ConfigError(
                f"tech profile {self.name!r}: plcp_s must be >= 0"
            )
        if not (0 < self.tx_power_min_w <= self.tx_power_max_w):
            raise ConfigError(
                f"tech profile {self.name!r}: need 0 < tx_power_min_w "
                f"<= tx_power_max_w"
            )

    # -- derived figures ----------------------------------------------------

    @property
    def adaptive(self) -> bool:
        """True when the MCS table has more than one rung.

        Non-adaptive profiles never trigger an SNR lookup — the single
        rate is used unconditionally, exactly like the fixed
        ``data_rate_bps`` the profile replaced.
        """
        return len(self.mcs) > 1

    @property
    def noise_floor_w(self) -> float:
        """Thermal noise floor ``kTB`` times the receiver noise figure."""
        thermal = (
            BOLTZMANN_J_PER_K * REFERENCE_TEMPERATURE_K * self.bandwidth_hz
        )
        return thermal * 10.0 ** (self.noise_figure_db / 10.0)

    # -- the MAC-facing contract --------------------------------------------

    def rate_for_snr_db(self, snr_db: float) -> float:
        """Data rate (bps) for a link SNR — deterministic, no RNG.

        Highest-rate MCS whose threshold is met, inclusive comparison
        (``snr_db == threshold`` selects that MCS); below the lowest
        threshold, the lowest MCS.
        """
        for threshold, rate in reversed(self.mcs):
            if snr_db >= threshold:
                return rate
        return self.mcs[0][1]

    def frame_airtime(self, size_bytes: int, rate_bps: float) -> float:
        """Airtime of ``size_bytes`` at ``rate_bps``.

        The exact float expression of ``Mac80211Params.tx_time`` —
        preamble plus payload — so profile-routed airtimes are
        bit-identical to the fixed-rate path they replaced.
        """
        return self.plcp_s + size_bytes * 8.0 / rate_bps

    # -- construction helpers -----------------------------------------------

    @classmethod
    def from_mac_params(cls, params: Any) -> "TechProfile":
        """The non-adaptive DSSS profile matching ``Mac80211Params``.

        Single MCS at ``data_rate_bps``; basic rate and PLCP preamble
        copied verbatim — the identity bridge between the legacy
        fixed-rate MAC parameters and the profile abstraction.
        """
        return cls(
            name="80211-dsss",
            frequency_hz=DSSS_FREQUENCY_HZ,
            bandwidth_hz=22e6,
            noise_figure_db=10.0,
            mcs=((0.0, params.data_rate_bps),),
            basic_rate_bps=params.basic_rate_bps,
            plcp_s=params.plcp_s,
            tx_power_min_w=1e-3,
            tx_power_max_w=1.0,
            energy=EnergyParams(),
        )

    def _with_options(self, **options: Any) -> "TechProfile":
        """A copy with ``Scenario.tech_options`` overrides applied.

        JSON-borne shapes are coerced (MCS lists of lists → tuples,
        energy mappings → :class:`EnergyParams`); unknown or ill-typed
        fields raise :class:`ConfigError`.
        """
        if not options:
            return self
        converted = dict(options)
        if "mcs" in converted:
            try:
                converted["mcs"] = tuple(
                    (float(snr), float(rate))
                    for snr, rate in converted["mcs"]
                )
            except (TypeError, ValueError) as exc:
                raise ConfigError(
                    f"tech profile {self.name!r}: mcs must be a list of "
                    f"(snr_threshold_db, rate_bps) pairs: {exc}"
                ) from None
        if "energy" in converted and isinstance(converted["energy"], Mapping):
            try:
                converted["energy"] = EnergyParams(**converted["energy"])
            except (TypeError, ValueError) as exc:
                raise ConfigError(
                    f"tech profile {self.name!r}: bad energy params: {exc}"
                ) from None
        try:
            return dataclasses.replace(self, **converted)
        except TypeError as exc:
            raise ConfigError(
                f"tech profile {self.name!r}: bad tech_options: {exc}"
            ) from None


# -- builtin profiles -------------------------------------------------------


@register("tech", "80211-dsss")
def _make_dsss(scenario: Any, **options: Any) -> TechProfile:
    """Table I's 802.11 DSSS radio — the default, built from the
    scenario's ``mac_params`` so the profile and the legacy MAC numbers
    can never diverge (bit-identity contract)."""
    profile = TechProfile.from_mac_params(scenario.mac_params)
    return profile._with_options(**options)


#: IEEE 802.11p OFDM rungs for a 10 MHz DSRC channel: (SNR threshold
#: dB, data rate bps).  Thresholds are the conventional AWGN decode
#: points for BPSK 1/2 through 64-QAM 3/4.
_80211P_MCS: Tuple[Tuple[float, float], ...] = (
    (5.0, 3e6),
    (6.0, 4.5e6),
    (8.0, 6e6),
    (11.0, 9e6),
    (15.0, 12e6),
    (20.0, 18e6),
    (25.0, 24e6),
    (27.0, 27e6),
)


@register("tech", "80211p")
def _make_80211p(scenario: Any, **options: Any) -> TechProfile:
    """5.9 GHz 802.11p/DSRC: 10 MHz channels, 3–27 Mbps OFDM ladder,
    40 µs preamble, control traffic at the 3 Mbps mandatory rate."""
    profile = TechProfile(
        name="80211p",
        frequency_hz=5.9e9,
        bandwidth_hz=10e6,
        noise_figure_db=6.0,
        mcs=_80211P_MCS,
        basic_rate_bps=3e6,
        plcp_s=40e-6,
        tx_power_min_w=1e-3,
        tx_power_max_w=2.0,
        energy=EnergyParams(
            tx_power_w=0.760, rx_power_w=0.430, idle_power_w=0.050
        ),
    )
    return profile._with_options(**options)
