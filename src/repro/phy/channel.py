"""The shared wireless channel.

The channel connects every radio: on each transmission it evaluates the
propagation model against the current node positions and delivers the frame
(with its received power) to every radio that can at least *detect* it.
Signals below a radio's carrier-sense threshold are dropped here — they can
neither be decoded nor defer the MAC, so simulating them would only burn
events.

Positions come from a provider callable; :class:`CachedPositionProvider`
adapts a :class:`~repro.mobility.trace.TracePlayer` and caches the whole
position matrix on a coarse time grid (vehicles move ~10 m/s while frames
last ~1 ms, so per-frame exactness is noise).

Fast path
---------

``transmit`` is the hottest call in every network run (once per frame, over
hundreds of thousands of frames).  Because the position provider quantizes
time into slots, everything distance-dependent is constant within a slot, so
the channel keeps a *link cache*: on the first transmission after the
positions change it computes the full N x N distance matrix in one
vectorized shot (and, for deterministic propagation with a uniform transmit
power, the whole received-power matrix too); each sender's first frame in a
slot then materializes a per-sender row — for deterministic models the
final filtered receiver list with powers and propagation delays, for
stochastic models the fading-free link state from
:meth:`~repro.phy.propagation.PropagationModel.link_cache_row` so that only
the per-frame fading batch is drawn per transmission.  Event scheduling
order, received powers and RNG consumption are bit-identical to the scalar
reference loop (kept available via ``fast_path=False`` and locked in by the
equivalence tests).

Cache-coherence contract: the positions callable must return a *new array
object* whenever positions change (returning the same object signals "still
valid").  :class:`CachedPositionProvider` and
:class:`~repro.mobility.trace.TracePlayer` both do; a provider that mutates
and returns one array in place must be wrapped or used with
``fast_path=False``.

Spatial culling
---------------

At city scale the dense rebuild (a full ``N x N`` distance matrix per
position slot) and the per-transmission visit of every radio are the
O(N^2) bottlenecks.  Passing a spatial index (``spatial=``, built from
the ``spatial`` registry — see :mod:`repro.phy.spatial`) switches both to
sparse: the per-slot rebuild re-buckets nodes into a uniform grid in
O(N log N), and each sender's row visits only the candidates within the
cull radius.  Nodes outside the radius are accounted as carrier-sense
drops — which, for deterministic propagation with the cull radius
covering the maximum link range, is exactly what the dense path would
have decided, so deliveries, powers, delays and every counter stay
bit-identical.  Stochastic propagation draws fading per visited link, so
culling changes RNG consumption relative to dense (documented in
docs/API.md); the run remains seeded and self-consistent.

Channel effects
---------------

An ordered stack of :class:`repro.phy.effects.ChannelEffect` instances
(``effects=``, built from the ``effect`` registry) post-processes every
link's receive power.  The canonical application order — propagation
model, then static effects in stack order, then the internal
fault-degradation offset, then per-frame effects in stack order — is
enforced identically on the cached-row, per-frame and scalar paths, so
an empty stack is bit-identical to no stack at all and the fast paths
stay bit-identical to the reference loop.  Static effects bake into
the cached deterministic rows; per-frame effects (which may draw RNG)
switch deterministic propagation onto the per-frame row format, the
same one stochastic propagation uses.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.des.engine import Simulator
from repro.kernels import resolve_backend
from repro.mac.frames import Frame
from repro.mobility.trace import TracePlayer
from repro.phy.effects import ChannelEffect, DbOffset
from repro.phy.propagation import SPEED_OF_LIGHT, PropagationModel


class CachedPositionProvider:
    """Positions of all nodes at the simulator's current time, cached.

    Args:
        player: interpolating trace reader.
        sim: the simulator whose clock drives the lookup.
        cache_dt: positions are recomputed when the clock advances past the
            current quantised cache slot; 0 disables caching.
    """

    def __init__(
        self, player: TracePlayer, sim: Simulator, cache_dt: float = 0.1
    ) -> None:
        if cache_dt < 0:
            raise ValueError(f"cache_dt must be >= 0, got {cache_dt}")
        self._player = player
        self._sim = sim
        self._cache_dt = cache_dt
        self._cached_slot: Optional[int] = None
        self._cached: Optional[np.ndarray] = None

    @property
    def num_nodes(self) -> int:
        """Number of nodes covered by the trace."""
        return self._player.num_nodes

    def positions(self) -> np.ndarray:
        """The ``(N, 2)`` position matrix at (approximately) now."""
        now = self._sim.now
        if self._cache_dt == 0:
            return self._player.positions_at(now)
        slot = int(now / self._cache_dt)
        if slot != self._cached_slot:
            self._cached = self._player.positions_at(slot * self._cache_dt)
            self._cached_slot = slot
        return self._cached

    def position(self, node: int) -> np.ndarray:
        """Position of one node (shares the cache)."""
        return self.positions()[node]


class Channel:
    """Broadcast medium shared by all registered radios.

    Telemetry counters (consumed by
    :meth:`repro.metrics.collector.MetricsCollector.record_channel`):

    * ``frames_transmitted`` — frames put on the air;
    * ``frames_delivered`` — per-receiver deliveries scheduled (signal
      above the carrier-sense threshold);
    * ``frames_cs_dropped`` — per-receiver drops below carrier sense;
    * ``cache_lookups`` / ``cache_rebuilds`` — fast-path link-cache
      accesses and distance-matrix (or grid-bucket) rebuilds (a lookup
      that needs no rebuild is a hit);
    * ``links_evaluated`` — links whose distance/power a row build
      actually computed; with spatial culling this grows ~O(k) per row
      instead of O(N), which is the whole point.

    Args:
        sim: the discrete-event simulator.
        propagation: large-scale path-loss model.
        positions: callable returning the current ``(N, 2)`` matrix.
        propagation_delay: schedule deliveries after distance/c.
        fast_path: keep the vectorized link cache (the scalar reference
            loop ignores ``spatial`` — it exists to be exact and slow).
        spatial: optional neighbor-culling index (see
            :mod:`repro.phy.spatial`) implementing ``rebuild(positions)``
            and ``candidates(node)``; ``None`` keeps the dense path.
        kernels: kernel backend (name or instance) executing the
            deterministic row-build loops (candidate selection, receiver
            filtering); see :mod:`repro.kernels`.  Bit-identical across
            backends — powers and distances stay on the shared numpy
            arithmetic, kernels only select and filter.
        effects: ordered channel-effect stack (see
            :mod:`repro.phy.effects`) applied to every link's receive
            power after the propagation model; an empty stack is the
            bit-identical default.
    """

    def __init__(
        self,
        sim: Simulator,
        propagation: PropagationModel,
        positions: Callable[[], np.ndarray],
        propagation_delay: bool = True,
        fast_path: bool = True,
        spatial: Optional[object] = None,
        kernels="auto",
        effects: Sequence[ChannelEffect] = (),
    ) -> None:
        self._sim = sim
        self._propagation = propagation
        self._positions = positions
        self._prop_delay = propagation_delay
        self._fast_path = fast_path
        self._spatial = spatial
        self._kernels = resolve_backend(kernels)
        self._radios: Dict[int, "Radio"] = {}
        self.frames_transmitted = 0
        self.frames_delivered = 0
        self.frames_cs_dropped = 0
        #: Frames suppressed by a radio-silence fault (never put on the
        #: air, so not counted in ``frames_transmitted``).
        self.frames_suppressed = 0
        self.cache_lookups = 0
        self.cache_rebuilds = 0
        self.links_evaluated = 0
        # Fault-injection state (see repro.faults): muted senders'
        # frames are suppressed; the internal dB-offset effect scales
        # every received power (driven by set_attenuation).
        self._muted: set = set()
        self._fault_offset = DbOffset()
        # Channel-effect stack, split by application time: static
        # effects bake into cached rows, per-frame effects apply at
        # transmit time (and may draw RNG).
        self._static_effects: Tuple[ChannelEffect, ...] = tuple(
            e for e in effects if not e.per_frame
        )
        self._frame_effects: Tuple[ChannelEffect, ...] = tuple(
            e for e in effects if e.per_frame
        )
        # Deterministic rows can be fully filtered at build time only
        # when no effect re-randomizes per frame.
        self._det_fast = propagation.deterministic and not self._frame_effects
        # SNR cache (rate adaptation), valid for one positions object;
        # kept separate from the link cache so its hits/misses never
        # perturb the cache_lookups/cache_rebuilds telemetry.
        self._snr_positions: Optional[np.ndarray] = None
        self._snr_cache: Dict[tuple, float] = {}
        # Link cache, valid for one positions object (= one position slot).
        self._cached_positions: Optional[np.ndarray] = None
        self._dist: Optional[np.ndarray] = None
        self._power_matrix: Optional[np.ndarray] = None
        self._rows: Dict[int, tuple] = {}
        # Registration-dependent arrays (insertion order = scalar-loop order).
        self._radio_list: List["Radio"] = []
        self._radio_ids: Optional[np.ndarray] = None
        self._cs_thresholds: Optional[np.ndarray] = None

    def register(self, radio: "Radio") -> None:
        """Add a radio; each node id may register exactly once."""
        if radio.node_id in self._radios:
            raise ValueError(f"radio for node {radio.node_id} already registered")
        self._radios[radio.node_id] = radio
        self._radio_ids = None
        self._cached_positions = None  # force full cache rebuild

    @property
    def num_radios(self) -> int:
        """Number of registered radios."""
        return len(self._radios)

    @property
    def spatial(self) -> Optional[object]:
        """The neighbor-culling index, or ``None`` on the dense path."""
        return self._spatial

    def invalidate_link_cache(self) -> None:
        """Force a rebuild on the next transmission.

        Escape hatch for position providers that mutate their array in
        place instead of returning a fresh object (see the cache-coherence
        contract in the module docstring).
        """
        self._cached_positions = None

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of transmissions served without a cache rebuild."""
        if self.cache_lookups == 0:
            return 0.0
        return 1.0 - self.cache_rebuilds / self.cache_lookups

    # -- fault hooks --------------------------------------------------------

    def mute(self, node_id: Optional[int] = None) -> None:
        """Suppress every frame ``node_id`` offers (``None``: all senders).

        The sender's radio/MAC behave normally — airtime is spent,
        ACK timeouts run — but nothing reaches any receiver, exactly an
        RF blackout.  Driven by the ``radio-silence`` fault model.
        """
        self._muted.add(node_id)

    def unmute(self, node_id: Optional[int] = None) -> None:
        """Lift a :meth:`mute` (unknown ids are ignored)."""
        self._muted.discard(node_id)

    def set_attenuation(self, factor: float) -> None:
        """Scale every received power by ``factor`` (1.0 = no fault).

        Applied identically on the vectorized and scalar receive paths
        (one IEEE-754 multiply per link either way), so the fast path's
        bit-identity contract holds during degradation bursts.  Sets the
        factor absolutely; the ``channel-degradation`` fault restores
        1.0 when its burst ends.  Invalidation is as narrow as the
        staleness: only *deterministic* per-sender rows bake the factor
        into their filtered powers, so only those are dropped here;
        per-frame rows apply the factor per frame and survive, and the
        attenuation-free structures — the distance/power matrices and
        the spatial index's grid cells — always survive, so a burst
        never forces an O(N^2) (or even O(N log N)) rebuild.

        Internally this drives the channel's own
        :class:`~repro.phy.effects.DbOffset` instance, which sits at a
        fixed point of the effect stack (after static effects, before
        per-frame effects) on every receive path — the
        ``channel-degradation`` fault is a thin adapter over it.
        """
        if factor <= 0.0:
            raise ValueError(f"attenuation factor must be > 0, got {factor}")
        if factor != self._fault_offset.factor:
            self._fault_offset.factor = factor
            if self._det_fast:
                self._rows = {}
            self._snr_cache = {}

    # -- link quality (rate adaptation) -------------------------------------

    def link_snr_db(
        self, sender_id: int, receiver_id: int, noise_floor_w: float
    ) -> float:
        """Mean SNR (dB) of the link, for SNR->MCS rate adaptation.

        Deterministic by construction: built from the propagation
        model's *mean* receive power (no fading draw — RNG consumption
        is untouched), shaded by the static effect stack and the fault
        offset, over the caller's noise floor.  ``-inf`` when the mean
        power is driven to zero (e.g. by an obstacle with infinite
        loss).  Cached per position slot, keyed by (sender, receiver,
        noise floor), in a cache separate from the link rows so the
        channel telemetry counters stay untouched.
        """
        positions = self._positions()
        if positions is not self._snr_positions:
            self._snr_positions = positions
            self._snr_cache = {}
        key = (sender_id, receiver_id, noise_floor_w)
        snr = self._snr_cache.get(key)
        if snr is None:
            sender_pos = positions[sender_id]
            delta = positions[receiver_id] - sender_pos
            distance = float(np.hypot(delta[0], delta[1]))
            tx_power = self._radios[sender_id].tx_power_w
            power = self._propagation.mean_rx_power(tx_power, distance)
            for effect in self._static_effects:
                power = effect.apply_link(
                    power, sender_id, receiver_id, positions
                )
            power = self._fault_offset.apply_link(
                power, sender_id, receiver_id, positions
            )
            if power <= 0.0 or noise_floor_w <= 0.0:
                snr = float("-inf")
            else:
                snr = 10.0 * math.log10(power / noise_floor_w)
            self._snr_cache[key] = snr
        return snr

    # -- link cache ---------------------------------------------------------

    def _refresh_cache(self, positions: np.ndarray) -> None:
        """Rebuild the per-slot link cache for a new positions matrix.

        Dense: the full pairwise distance matrix (and, when possible,
        the received-power matrix) in one vectorized shot.  Spatial:
        re-bucket the nodes into the grid — O(N log N) instead of
        O(N^2) — and defer all distance work to the per-sender rows.
        """
        self.cache_rebuilds += 1
        self._cached_positions = positions
        self._rows = {}
        if self._radio_ids is None:
            self._radio_list = list(self._radios.values())
            self._radio_ids = np.array(
                [radio.node_id for radio in self._radio_list], dtype=np.intp
            )
            self._cs_thresholds = np.array(
                [radio.cs_threshold_w for radio in self._radio_list],
                dtype=float,
            )
        self._dist = None
        self._power_matrix = None
        if self._spatial is not None:
            self._spatial.rebuild(positions)
            return
        # Full pairwise distances: dist[s, j] = |positions[j] - positions[s]|,
        # the same subtraction + hypot the scalar loop performs per pair.
        diff = positions[None, :, :] - positions[:, None, :]
        self._dist = np.hypot(diff[..., 0], diff[..., 1])
        # For deterministic propagation with one shared transmit power the
        # whole received-power matrix is precomputed in a single batch.
        if self._propagation.deterministic and self._radio_list:
            tx_powers = {radio.tx_power_w for radio in self._radio_list}
            if len(tx_powers) == 1:
                self._power_matrix = self._propagation.rx_power_vector(
                    tx_powers.pop(), self._dist
                )

    def _build_row(self, sender_id: int) -> tuple:
        """Materialize the per-sender row of the link cache.

        Dense rows cover every registered radio; culled rows cover only
        the spatial index's candidates, selected *through* the
        registration-order mask so receivers are visited in the same
        relative order either way.  The distance arithmetic is the
        identical elementwise subtraction + hypot on the identical
        operands, so a culled row's values are bit-equal to the dense
        row's values at the surviving indices.
        """
        ids = self._radio_ids
        if self._spatial is not None:
            positions = self._cached_positions
            sel_ids, reg_idx = self._kernels.row_select(
                self._spatial.candidates(sender_id), ids, len(positions)
            )
            dist_row = self._kernels.row_distances(
                positions, sel_ids, sender_id
            )
            thresholds = self._cs_thresholds[reg_idx]
        else:
            reg_idx = None
            sel_ids = ids
            dist_row = self._dist[sender_id][ids]
            thresholds = self._cs_thresholds
        self.links_evaluated += len(dist_row)
        tx_power = self._radios[sender_id].tx_power_w
        if self._prop_delay:
            delays = dist_row / SPEED_OF_LIGHT
        else:
            delays = np.zeros(len(dist_row))
        if self._propagation.deterministic:
            if self._power_matrix is not None:
                powers = self._power_matrix[sender_id][ids]
            else:
                powers = self._propagation.rx_power_vector(tx_power, dist_row)
            # Static effects bake into the cached row (stack order, then
            # the fault offset — the canonical order of every path).
            for effect in self._static_effects:
                powers = effect.apply_row(
                    powers, sender_id, sel_ids, self._cached_positions
                )
            if self._det_fast:
                powers = self._fault_offset.apply_row(
                    powers, sender_id, sel_ids, self._cached_positions
                )
                idx = self._kernels.row_filter(
                    powers, thresholds, sel_ids, sender_id
                )
                pick = idx if reg_idx is None else reg_idx[idx]
                radio_list = self._radio_list
                row = (
                    [radio_list[k] for k in pick.tolist()],
                    powers[idx].tolist(),
                    delays[idx].tolist(),
                )
            else:
                # Per-frame effects in play: keep the statically-shaded
                # powers and finish (fault offset + per-frame stack +
                # filtering) per transmission, like stochastic rows.
                row = (
                    sel_ids != sender_id,
                    powers,
                    delays,
                    reg_idx,
                    thresholds,
                    sel_ids,
                )
        else:
            state = self._propagation.link_cache_row(tx_power, dist_row)
            row = (
                sel_ids != sender_id,
                state,
                delays,
                reg_idx,
                thresholds,
                sel_ids,
            )
        self._rows[sender_id] = row
        return row

    # -- transmit -----------------------------------------------------------

    def transmit(self, sender_id: int, frame: Frame, duration_s: float) -> None:
        """Fan a transmission out to every radio that can detect it."""
        if self._muted and (sender_id in self._muted or None in self._muted):
            self.frames_suppressed += 1
            return
        self.frames_transmitted += 1
        if not self._fast_path:
            self._transmit_scalar(sender_id, frame, duration_s)
            return
        self.cache_lookups += 1
        positions = self._positions()
        if positions is not self._cached_positions:
            self._refresh_cache(positions)
        row = self._rows.get(sender_id)
        if row is None:
            row = self._build_row(sender_id)
        if self._det_fast:
            radios, powers, delays = row
        else:
            mask_other, state, delay_row, reg_idx, thresholds, sel_ids = row
            if self._propagation.deterministic:
                # Static effects are already baked into the cached row.
                all_powers = state
            else:
                all_powers = self._propagation.rx_power_from_cache(state)
                for effect in self._static_effects:
                    all_powers = effect.apply_row(
                        all_powers, sender_id, sel_ids,
                        self._cached_positions,
                    )
            all_powers = self._fault_offset.apply_row(
                all_powers, sender_id, sel_ids, self._cached_positions
            )
            for effect in self._frame_effects:
                all_powers = effect.apply_frame(
                    all_powers, sender_id, sel_ids
                )
            idx = np.nonzero(mask_other & (all_powers >= thresholds))[0]
            pick = idx if reg_idx is None else reg_idx[idx]
            radio_list = self._radio_list
            radios = [radio_list[k] for k in pick.tolist()]
            powers = all_powers[idx].tolist()
            delays = delay_row[idx].tolist()
        self.frames_delivered += len(radios)
        self.frames_cs_dropped += len(self._radios) - 1 - len(radios)
        self._sim.schedule_batch(
            (delay, radio.signal_start, (frame, power, duration_s))
            for radio, power, delay in zip(radios, powers, delays)
        )

    def _transmit_scalar(
        self, sender_id: int, frame: Frame, duration_s: float
    ) -> None:
        """Pre-vectorization reference loop (one rx_power call per radio).

        Kept as the equivalence baseline for tests and the channel
        microbenchmark; produces the identical event stream, received
        powers and RNG consumption as the fast path.
        """
        positions = self._positions()
        sender_pos = positions[sender_id]
        tx_power = self._radios[sender_id].params.tx_power_w
        for node_id, radio in self._radios.items():
            if node_id == sender_id:
                continue
            delta = positions[node_id] - sender_pos
            distance = float(np.hypot(delta[0], delta[1]))
            power = self._propagation.rx_power(tx_power, distance)
            # Canonical effect order, scalar form: static stack, fault
            # offset, per-frame stack — same float ops, same results.
            for effect in self._static_effects:
                power = effect.apply_link(
                    power, sender_id, node_id, positions
                )
            power = self._fault_offset.apply_link(
                power, sender_id, node_id, positions
            )
            for effect in self._frame_effects:
                power = effect.apply_frame_link(power, sender_id, node_id)
            if power < radio.params.cs_threshold_w:
                self.frames_cs_dropped += 1
                continue
            delay = distance / SPEED_OF_LIGHT if self._prop_delay else 0.0
            self.frames_delivered += 1
            self._sim.schedule(
                delay, radio.signal_start, frame, power, duration_s
            )
