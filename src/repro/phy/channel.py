"""The shared wireless channel.

The channel connects every radio: on each transmission it evaluates the
propagation model against the current node positions and delivers the frame
(with its received power) to every radio that can at least *detect* it.
Signals below a radio's carrier-sense threshold are dropped here — they can
neither be decoded nor defer the MAC, so simulating them would only burn
events.

Positions come from a provider callable; :class:`CachedPositionProvider`
adapts a :class:`~repro.mobility.trace.TracePlayer` and caches the whole
position matrix on a coarse time grid (vehicles move ~10 m/s while frames
last ~1 ms, so per-frame exactness is noise).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.des.engine import Simulator
from repro.mac.frames import Frame
from repro.mobility.trace import TracePlayer
from repro.phy.propagation import SPEED_OF_LIGHT, PropagationModel


class CachedPositionProvider:
    """Positions of all nodes at the simulator's current time, cached.

    Args:
        player: interpolating trace reader.
        sim: the simulator whose clock drives the lookup.
        cache_dt: positions are recomputed when the clock advances past the
            current quantised cache slot; 0 disables caching.
    """

    def __init__(
        self, player: TracePlayer, sim: Simulator, cache_dt: float = 0.1
    ) -> None:
        if cache_dt < 0:
            raise ValueError(f"cache_dt must be >= 0, got {cache_dt}")
        self._player = player
        self._sim = sim
        self._cache_dt = cache_dt
        self._cached_slot: Optional[int] = None
        self._cached: Optional[np.ndarray] = None

    @property
    def num_nodes(self) -> int:
        """Number of nodes covered by the trace."""
        return self._player.num_nodes

    def positions(self) -> np.ndarray:
        """The ``(N, 2)`` position matrix at (approximately) now."""
        now = self._sim.now
        if self._cache_dt == 0:
            return self._player.positions_at(now)
        slot = int(now / self._cache_dt)
        if slot != self._cached_slot:
            self._cached = self._player.positions_at(slot * self._cache_dt)
            self._cached_slot = slot
        return self._cached

    def position(self, node: int) -> np.ndarray:
        """Position of one node (shares the cache)."""
        return self.positions()[node]


class Channel:
    """Broadcast medium shared by all registered radios."""

    def __init__(
        self,
        sim: Simulator,
        propagation: PropagationModel,
        positions: Callable[[], np.ndarray],
        propagation_delay: bool = True,
    ) -> None:
        self._sim = sim
        self._propagation = propagation
        self._positions = positions
        self._prop_delay = propagation_delay
        self._radios: Dict[int, "Radio"] = {}
        self.frames_transmitted = 0

    def register(self, radio: "Radio") -> None:
        """Add a radio; each node id may register exactly once."""
        if radio.node_id in self._radios:
            raise ValueError(f"radio for node {radio.node_id} already registered")
        self._radios[radio.node_id] = radio

    @property
    def num_radios(self) -> int:
        """Number of registered radios."""
        return len(self._radios)

    def transmit(self, sender_id: int, frame: Frame, duration_s: float) -> None:
        """Fan a transmission out to every radio that can detect it."""
        self.frames_transmitted += 1
        positions = self._positions()
        sender_pos = positions[sender_id]
        tx_power = self._radios[sender_id].params.tx_power_w
        for node_id, radio in self._radios.items():
            if node_id == sender_id:
                continue
            delta = positions[node_id] - sender_pos
            distance = float(np.hypot(delta[0], delta[1]))
            power = self._propagation.rx_power(tx_power, distance)
            if power < radio.params.cs_threshold_w:
                continue
            delay = distance / SPEED_OF_LIGHT if self._prop_delay else 0.0
            self._sim.schedule(
                delay, radio.signal_start, frame, power, duration_s
            )
