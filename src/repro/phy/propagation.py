"""Radio propagation models.

The paper's Table I uses ns-2's two-ray-ground model; its future-work
section points at shadowing models [18, 19], so the log-normal shadowing
model is implemented as well.  All models answer one question: given a
transmit power and a distance, what power arrives at the receiver?
"""

from __future__ import annotations

import abc
import math
from typing import Optional

import numpy as np

#: Speed of light, m/s.
SPEED_OF_LIGHT = 299_792_458.0


class PropagationModel(abc.ABC):
    """Deterministic or stochastic large-scale path loss."""

    @abc.abstractmethod
    def rx_power(self, tx_power_w: float, distance_m: float) -> float:
        """Received power in watts at ``distance_m`` metres.

        ``distance_m`` of 0 returns ``tx_power_w`` (co-located radios).
        """

    def range_for_threshold(
        self, tx_power_w: float, threshold_w: float, max_range_m: float = 1e5
    ) -> float:
        """Distance at which the received power falls to ``threshold_w``.

        Solved by bisection so it works for any monotone model; stochastic
        models answer for their *median* loss.
        """
        if self.rx_power(tx_power_w, max_range_m) > threshold_w:
            return max_range_m
        low, high = 0.1, max_range_m
        for _ in range(200):
            mid = 0.5 * (low + high)
            if self.rx_power(tx_power_w, mid) >= threshold_w:
                low = mid
            else:
                high = mid
        return 0.5 * (low + high)


class FreeSpace(PropagationModel):
    """Friis free-space model: ``Pr = Pt Gt Gr lambda^2 / ((4 pi d)^2 L)``."""

    def __init__(
        self,
        frequency_hz: float = 914e6,
        gain_tx: float = 1.0,
        gain_rx: float = 1.0,
        system_loss: float = 1.0,
    ) -> None:
        if frequency_hz <= 0:
            raise ValueError(f"frequency must be > 0, got {frequency_hz}")
        if system_loss < 1.0:
            raise ValueError(f"system_loss must be >= 1, got {system_loss}")
        self._wavelength = SPEED_OF_LIGHT / frequency_hz
        self._gain_tx = float(gain_tx)
        self._gain_rx = float(gain_rx)
        self._loss = float(system_loss)

    @property
    def wavelength_m(self) -> float:
        """Carrier wavelength in metres."""
        return self._wavelength

    def rx_power(self, tx_power_w: float, distance_m: float) -> float:
        if distance_m <= 0:
            return tx_power_w
        numerator = (
            tx_power_w * self._gain_tx * self._gain_rx * self._wavelength**2
        )
        return numerator / ((4.0 * math.pi * distance_m) ** 2 * self._loss)


class TwoRayGround(PropagationModel):
    """ns-2's two-ray-ground model (Table I's propagation model).

    Below the crossover distance ``dc = 4 pi ht hr / lambda`` the direct ray
    dominates and Friis applies; beyond it the ground reflection gives
    ``Pr = Pt Gt Gr ht^2 hr^2 / (d^4 L)`` — a steeper d^-4 falloff.
    """

    def __init__(
        self,
        frequency_hz: float = 914e6,
        gain_tx: float = 1.0,
        gain_rx: float = 1.0,
        height_tx_m: float = 1.5,
        height_rx_m: float = 1.5,
        system_loss: float = 1.0,
    ) -> None:
        self._friis = FreeSpace(frequency_hz, gain_tx, gain_rx, system_loss)
        if height_tx_m <= 0 or height_rx_m <= 0:
            raise ValueError("antenna heights must be > 0")
        self._gain_tx = float(gain_tx)
        self._gain_rx = float(gain_rx)
        self._ht = float(height_tx_m)
        self._hr = float(height_rx_m)
        self._loss = float(system_loss)
        self._crossover = (
            4.0 * math.pi * self._ht * self._hr / self._friis.wavelength_m
        )

    @property
    def crossover_distance_m(self) -> float:
        """Distance where the model switches from Friis to d^-4."""
        return self._crossover

    def rx_power(self, tx_power_w: float, distance_m: float) -> float:
        if distance_m <= 0:
            return tx_power_w
        if distance_m < self._crossover:
            return self._friis.rx_power(tx_power_w, distance_m)
        numerator = (
            tx_power_w
            * self._gain_tx
            * self._gain_rx
            * self._ht**2
            * self._hr**2
        )
        return numerator / (distance_m**4 * self._loss)


class NakagamiFading(PropagationModel):
    """Nakagami-m small-scale fading over a deterministic mean path loss.

    The received *power* is gamma-distributed with shape ``m`` around the
    mean given by the underlying large-scale model (two-ray ground by
    default); ``m = 1`` is Rayleigh fading, larger ``m`` approaches the
    deterministic limit.  This is the standard VANET fading model of the
    propagation studies the paper cites as future work (e.g. Dhoutaut et
    al., VANET 2006).  Each call draws fresh fading (per-frame, ns-2
    semantics).
    """

    def __init__(
        self,
        m: float = 3.0,
        mean_model: Optional[PropagationModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if m < 0.5:
            raise ValueError(f"Nakagami shape m must be >= 0.5, got {m}")
        self._m = float(m)
        self._mean_model = (
            mean_model if mean_model is not None else TwoRayGround()
        )
        self._rng = rng if rng is not None else np.random.default_rng(0)

    @property
    def m(self) -> float:
        """The fading shape parameter."""
        return self._m

    def mean_rx_power(self, tx_power_w: float, distance_m: float) -> float:
        """The large-scale (fading-free) received power."""
        return self._mean_model.rx_power(tx_power_w, distance_m)

    def rx_power(self, tx_power_w: float, distance_m: float) -> float:
        mean = self.mean_rx_power(tx_power_w, distance_m)
        if distance_m <= 0:
            return mean
        return float(self._rng.gamma(self._m, mean / self._m))


class LogNormalShadowing(PropagationModel):
    """Log-normal shadowing: path-loss exponent plus Gaussian dB noise.

    ``Pr(d)[dB] = Pr(d0)[dB] - 10 beta log10(d / d0) + X`` with
    ``X ~ N(0, sigma_db^2)``.  The reference power ``Pr(d0)`` comes from
    Friis.  Each call draws fresh shadowing (ns-2 semantics); pass
    ``sigma_db = 0`` for the deterministic pure-exponent model.
    """

    def __init__(
        self,
        path_loss_exponent: float = 2.7,
        sigma_db: float = 4.0,
        reference_distance_m: float = 1.0,
        frequency_hz: float = 914e6,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if path_loss_exponent <= 0:
            raise ValueError(
                f"path_loss_exponent must be > 0, got {path_loss_exponent}"
            )
        if sigma_db < 0:
            raise ValueError(f"sigma_db must be >= 0, got {sigma_db}")
        if reference_distance_m <= 0:
            raise ValueError(
                f"reference_distance_m must be > 0, got {reference_distance_m}"
            )
        self._beta = float(path_loss_exponent)
        self._sigma = float(sigma_db)
        self._d0 = float(reference_distance_m)
        self._friis = FreeSpace(frequency_hz)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def rx_power(self, tx_power_w: float, distance_m: float) -> float:
        if distance_m <= self._d0:
            return self._friis.rx_power(tx_power_w, distance_m)
        reference_db = 10.0 * math.log10(
            self._friis.rx_power(tx_power_w, self._d0)
        )
        loss_db = 10.0 * self._beta * math.log10(distance_m / self._d0)
        shadow_db = (
            float(self._rng.normal(0.0, self._sigma)) if self._sigma > 0 else 0.0
        )
        return 10.0 ** ((reference_db - loss_db + shadow_db) / 10.0)
