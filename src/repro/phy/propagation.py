"""Radio propagation models.

The paper's Table I uses ns-2's two-ray-ground model; its future-work
section points at shadowing models [18, 19], so the log-normal shadowing
model is implemented as well.  All models answer one question: given a
transmit power and a distance, what power arrives at the receiver?

Two evaluation paths exist and are kept bit-identical:

* the scalar :meth:`PropagationModel.rx_power` (one link), and
* the vectorized :meth:`PropagationModel.rx_power_vector` (a whole batch of
  links at once), which the channel's fast path feeds with cached per-slot
  distance rows.

Bit-identity is non-trivial: NumPy's array ``**`` and the C library's
scalar ``pow`` may round differently at the last ulp, so both paths are
written in terms of operations that *are* elementwise-identical
(multiplication chains instead of ``d**4``, and the NumPy ufuncs
``np.log10``/``np.power`` in the scalar path as well).  The equivalence is
locked in by ``tests/test_phy_propagation_vector.py``.

Stochastic models (Nakagami, log-normal shadowing) additionally define a
*documented draw order*: one variate per eligible link (``d > 0`` for
Nakagami, ``d > d0`` for shadowing) in ascending index order.  NumPy's
``Generator`` fills arrays in exactly that order, so a vectorized batch
consumes the RNG identically to a loop of scalar calls.

The batch a model sees need not cover every node: with spatial culling
(:mod:`repro.phy.spatial`) the channel hands :meth:`link_cache_row` a
*masked* distance row holding only the links within the cull radius.
Every method here is elementwise, so masked rows produce bit-identical
values at the surviving indices; for stochastic models, however, the
draw order is per *row* — one variate per eligible link of the batch it
was given — so a culled run consumes the RNG differently from a dense
run whenever culling removes eligible links.  That divergence is the
documented cost of culling under stochastic fading (deterministic
models are unaffected; see docs/API.md, "Spatial indexing").
"""

from __future__ import annotations

import abc
import math
from typing import Optional, Tuple

import numpy as np

from repro.core.registry import register
from repro.phy.tech import DSSS_FREQUENCY_HZ

#: Speed of light, m/s.
SPEED_OF_LIGHT = 299_792_458.0


class PropagationModel(abc.ABC):
    """Deterministic or stochastic large-scale path loss."""

    @abc.abstractmethod
    def rx_power(self, tx_power_w: float, distance_m: float) -> float:
        """Received power in watts at ``distance_m`` metres.

        ``distance_m`` of 0 returns ``tx_power_w`` (co-located radios).
        """

    @property
    def deterministic(self) -> bool:
        """Whether :meth:`rx_power` is a pure function of distance.

        Deterministic models may have their received powers precomputed and
        cached per position slot; stochastic models must re-draw fading per
        frame (ns-2 semantics) and therefore override this to ``False``.
        """
        return True

    def mean_rx_power(self, tx_power_w: float, distance_m: float) -> float:
        """The deterministic mean/median received power (no fading draw).

        For deterministic models this *is* :meth:`rx_power`.  Stochastic
        models must override it with their fading-free large-scale power
        (the mean for Nakagami, the median for log-normal shadowing) —
        this is what threshold/range inversion works on.
        """
        return self.rx_power(tx_power_w, distance_m)

    def rx_power_vector(
        self, tx_power_w: float, distances_m: np.ndarray
    ) -> np.ndarray:
        """Received power for a batch of distances, shape-preserving.

        The base implementation is a scalar loop, guaranteed equivalent to
        :meth:`rx_power` by construction; subclasses override it with NumPy
        kernels that produce bit-identical results (stochastic subclasses
        also consume the RNG in the same order as the scalar loop).
        """
        distances = np.asarray(distances_m, dtype=float)
        flat = distances.reshape(-1)
        out = np.array(
            [self.rx_power(tx_power_w, float(d)) for d in flat], dtype=float
        )
        return out.reshape(distances.shape)

    def mean_rx_power_vector(
        self, tx_power_w: float, distances_m: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`mean_rx_power` (no RNG consumption)."""
        if self.deterministic:
            return self.rx_power_vector(tx_power_w, distances_m)
        distances = np.asarray(distances_m, dtype=float)
        flat = distances.reshape(-1)
        out = np.array(
            [self.mean_rx_power(tx_power_w, float(d)) for d in flat],
            dtype=float,
        )
        return out.reshape(distances.shape)

    # -- link-cache protocol (used by the channel's fast path) --------------

    def link_cache_row(
        self, tx_power_w: float, distances_m: np.ndarray
    ) -> object:
        """Precompute whatever is distance-dependent for a batch of links.

        The returned state is opaque to the caller and valid as long as the
        distances are.  For deterministic models it is the received-power
        row itself; stochastic models cache the fading-free part so that
        :meth:`rx_power_from_cache` only has to draw per-frame fading.

        ``distances_m`` may be a masked (culled) subset of a sender's
        links; the cached state — and, for stochastic models, the
        per-frame draw order — then covers exactly that subset (see the
        module docstring).
        """
        if self.deterministic:
            return self.rx_power_vector(tx_power_w, distances_m)
        return (tx_power_w, np.asarray(distances_m, dtype=float))

    def rx_power_from_cache(self, state: object) -> np.ndarray:
        """Received powers for a cached link row.

        Equivalent to calling :meth:`rx_power_vector` on the original
        distances — bit-identical results and identical RNG consumption —
        but without recomputing the distance-dependent part.  Deterministic
        models return the cached row itself (callers must not mutate it).
        """
        if self.deterministic:
            return state  # type: ignore[return-value]
        tx_power_w, distances = state  # generic fallback: recompute fully
        return self.rx_power_vector(tx_power_w, distances)

    def range_for_threshold(
        self, tx_power_w: float, threshold_w: float, max_range_m: float = 1e5
    ) -> float:
        """Distance at which the *mean* received power falls to
        ``threshold_w``.

        Solved by bisection over :meth:`mean_rx_power`, which is monotone
        for every model here; stochastic models answer for their
        deterministic mean/median loss and consume no randomness (bisecting
        the random :meth:`rx_power` would chase a non-monotone function).
        """
        if self.mean_rx_power(tx_power_w, max_range_m) > threshold_w:
            return max_range_m
        low, high = 0.1, max_range_m
        for _ in range(200):
            mid = 0.5 * (low + high)
            if self.mean_rx_power(tx_power_w, mid) >= threshold_w:
                low = mid
            else:
                high = mid
        return 0.5 * (low + high)


class FreeSpace(PropagationModel):
    """Friis free-space model: ``Pr = Pt Gt Gr lambda^2 / ((4 pi d)^2 L)``."""

    def __init__(
        self,
        frequency_hz: float = DSSS_FREQUENCY_HZ,
        gain_tx: float = 1.0,
        gain_rx: float = 1.0,
        system_loss: float = 1.0,
    ) -> None:
        if frequency_hz <= 0:
            raise ValueError(f"frequency must be > 0, got {frequency_hz}")
        if system_loss < 1.0:
            raise ValueError(f"system_loss must be >= 1, got {system_loss}")
        self._wavelength = SPEED_OF_LIGHT / frequency_hz
        self._gain_tx = float(gain_tx)
        self._gain_rx = float(gain_rx)
        self._loss = float(system_loss)

    @property
    def wavelength_m(self) -> float:
        """Carrier wavelength in metres."""
        return self._wavelength

    def rx_power(self, tx_power_w: float, distance_m: float) -> float:
        if distance_m <= 0:
            return tx_power_w
        numerator = (
            tx_power_w * self._gain_tx * self._gain_rx * self._wavelength**2
        )
        # q*q instead of q**2: multiplication rounds identically for Python
        # floats and NumPy arrays (libm pow occasionally differs by 1 ulp),
        # keeping the scalar and vector paths bit-identical.
        q = 4.0 * math.pi * distance_m
        return numerator / (q * q * self._loss)

    def rx_power_vector(
        self, tx_power_w: float, distances_m: np.ndarray
    ) -> np.ndarray:
        d = np.asarray(distances_m, dtype=float)
        numerator = (
            tx_power_w * self._gain_tx * self._gain_rx * self._wavelength**2
        )
        with np.errstate(divide="ignore"):
            q = 4.0 * math.pi * d
            powers = numerator / (q * q * self._loss)
        return np.where(d <= 0, tx_power_w, powers)


class TwoRayGround(PropagationModel):
    """ns-2's two-ray-ground model (Table I's propagation model).

    Below the crossover distance ``dc = 4 pi ht hr / lambda`` the direct ray
    dominates and Friis applies; beyond it the ground reflection gives
    ``Pr = Pt Gt Gr ht^2 hr^2 / (d^4 L)`` — a steeper d^-4 falloff.
    """

    def __init__(
        self,
        frequency_hz: float = DSSS_FREQUENCY_HZ,
        gain_tx: float = 1.0,
        gain_rx: float = 1.0,
        height_tx_m: float = 1.5,
        height_rx_m: float = 1.5,
        system_loss: float = 1.0,
    ) -> None:
        self._friis = FreeSpace(frequency_hz, gain_tx, gain_rx, system_loss)
        if height_tx_m <= 0 or height_rx_m <= 0:
            raise ValueError("antenna heights must be > 0")
        self._gain_tx = float(gain_tx)
        self._gain_rx = float(gain_rx)
        self._ht = float(height_tx_m)
        self._hr = float(height_rx_m)
        self._loss = float(system_loss)
        self._crossover = (
            4.0 * math.pi * self._ht * self._hr / self._friis.wavelength_m
        )

    @property
    def crossover_distance_m(self) -> float:
        """Distance where the model switches from Friis to d^-4."""
        return self._crossover

    def rx_power(self, tx_power_w: float, distance_m: float) -> float:
        if distance_m <= 0:
            return tx_power_w
        if distance_m < self._crossover:
            return self._friis.rx_power(tx_power_w, distance_m)
        numerator = (
            tx_power_w
            * self._gain_tx
            * self._gain_rx
            * self._ht**2
            * self._hr**2
        )
        # (d*d)*(d*d) instead of d**4: pure multiplications round the same
        # way for Python floats and NumPy arrays, keeping the scalar and
        # vector paths bit-identical (libm pow(d, 4.0) does not).
        d2 = distance_m * distance_m
        return numerator / (d2 * d2 * self._loss)

    def rx_power_vector(
        self, tx_power_w: float, distances_m: np.ndarray
    ) -> np.ndarray:
        d = np.asarray(distances_m, dtype=float)
        friis = self._friis.rx_power_vector(tx_power_w, d)
        numerator = (
            tx_power_w
            * self._gain_tx
            * self._gain_rx
            * self._ht**2
            * self._hr**2
        )
        with np.errstate(divide="ignore"):
            d2 = d * d
            ground = numerator / (d2 * d2 * self._loss)
        powers = np.where(d < self._crossover, friis, ground)
        return np.where(d <= 0, tx_power_w, powers)


class NakagamiFading(PropagationModel):
    """Nakagami-m small-scale fading over a deterministic mean path loss.

    The received *power* is gamma-distributed with shape ``m`` around the
    mean given by the underlying large-scale model (two-ray ground by
    default); ``m = 1`` is Rayleigh fading, larger ``m`` approaches the
    deterministic limit.  This is the standard VANET fading model of the
    propagation studies the paper cites as future work (e.g. Dhoutaut et
    al., VANET 2006).  Each call draws fresh fading (per-frame, ns-2
    semantics).

    Draw order: one gamma variate per link with ``d > 0``, in ascending
    index order — a vectorized batch therefore consumes the RNG exactly
    like a loop of scalar :meth:`rx_power` calls.
    """

    def __init__(
        self,
        m: float = 3.0,
        mean_model: Optional[PropagationModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if m < 0.5:
            raise ValueError(f"Nakagami shape m must be >= 0.5, got {m}")
        self._m = float(m)
        self._mean_model = (
            mean_model if mean_model is not None else TwoRayGround()
        )
        self._rng = rng if rng is not None else np.random.default_rng(0)

    @property
    def m(self) -> float:
        """The fading shape parameter."""
        return self._m

    @property
    def deterministic(self) -> bool:
        return False

    def mean_rx_power(self, tx_power_w: float, distance_m: float) -> float:
        """The large-scale (fading-free) received power."""
        return self._mean_model.rx_power(tx_power_w, distance_m)

    def mean_rx_power_vector(
        self, tx_power_w: float, distances_m: np.ndarray
    ) -> np.ndarray:
        return self._mean_model.rx_power_vector(tx_power_w, distances_m)

    def rx_power(self, tx_power_w: float, distance_m: float) -> float:
        mean = self.mean_rx_power(tx_power_w, distance_m)
        if distance_m <= 0:
            return mean
        return float(self._rng.gamma(self._m, mean / self._m))

    def link_cache_row(
        self, tx_power_w: float, distances_m: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        d = np.asarray(distances_m, dtype=float)
        return self.mean_rx_power_vector(tx_power_w, d), d > 0

    def rx_power_from_cache(self, state: object) -> np.ndarray:
        means, fading_mask = state
        out = means.copy()
        out[fading_mask] = self._rng.gamma(
            self._m, means[fading_mask] / self._m
        )
        return out

    def rx_power_vector(
        self, tx_power_w: float, distances_m: np.ndarray
    ) -> np.ndarray:
        return self.rx_power_from_cache(
            self.link_cache_row(tx_power_w, distances_m)
        )


class LogNormalShadowing(PropagationModel):
    """Log-normal shadowing: path-loss exponent plus Gaussian dB noise.

    ``Pr(d)[dB] = Pr(d0)[dB] - 10 beta log10(d / d0) + X`` with
    ``X ~ N(0, sigma_db^2)``.  The reference power ``Pr(d0)`` comes from
    Friis.  Each call draws fresh shadowing (ns-2 semantics); pass
    ``sigma_db = 0`` for the deterministic pure-exponent model.

    Draw order: one normal variate per link with ``d > d0`` (links at or
    below the reference distance are pure Friis), in ascending index order.
    """

    def __init__(
        self,
        path_loss_exponent: float = 2.7,
        sigma_db: float = 4.0,
        reference_distance_m: float = 1.0,
        frequency_hz: float = DSSS_FREQUENCY_HZ,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if path_loss_exponent <= 0:
            raise ValueError(
                f"path_loss_exponent must be > 0, got {path_loss_exponent}"
            )
        if sigma_db < 0:
            raise ValueError(f"sigma_db must be >= 0, got {sigma_db}")
        if reference_distance_m <= 0:
            raise ValueError(
                f"reference_distance_m must be > 0, got {reference_distance_m}"
            )
        self._beta = float(path_loss_exponent)
        self._sigma = float(sigma_db)
        self._d0 = float(reference_distance_m)
        self._friis = FreeSpace(frequency_hz)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    @property
    def deterministic(self) -> bool:
        return self._sigma == 0.0

    def _db_terms(
        self, tx_power_w: float, distance_m: float
    ) -> Tuple[float, float]:
        # np.log10 on scalars matches np.log10 on arrays bit-for-bit (the
        # libm math.log10 need not), which keeps both paths identical.
        reference_db = 10.0 * float(
            np.log10(self._friis.rx_power(tx_power_w, self._d0))
        )
        loss_db = 10.0 * self._beta * float(
            np.log10(distance_m / self._d0)
        )
        return reference_db, loss_db

    def mean_rx_power(self, tx_power_w: float, distance_m: float) -> float:
        """The median (zero-shadowing) received power."""
        if distance_m <= self._d0:
            return self._friis.rx_power(tx_power_w, distance_m)
        reference_db, loss_db = self._db_terms(tx_power_w, distance_m)
        return float(np.power(10.0, (reference_db - loss_db + 0.0) / 10.0))

    def mean_rx_power_vector(
        self, tx_power_w: float, distances_m: np.ndarray
    ) -> np.ndarray:
        reference_db, loss_db, friis = self._db_row(tx_power_w, distances_m)
        d = np.asarray(distances_m, dtype=float)
        with np.errstate(over="ignore", invalid="ignore"):
            powers = np.power(10.0, (reference_db - loss_db + 0.0) / 10.0)
        return np.where(d <= self._d0, friis, powers)

    def rx_power(self, tx_power_w: float, distance_m: float) -> float:
        if distance_m <= self._d0:
            return self._friis.rx_power(tx_power_w, distance_m)
        reference_db, loss_db = self._db_terms(tx_power_w, distance_m)
        shadow_db = (
            float(self._rng.normal(0.0, self._sigma)) if self._sigma > 0 else 0.0
        )
        return float(
            np.power(10.0, (reference_db - loss_db + shadow_db) / 10.0)
        )

    def _db_row(
        self, tx_power_w: float, distances_m: np.ndarray
    ) -> Tuple[float, np.ndarray, np.ndarray]:
        d = np.asarray(distances_m, dtype=float)
        reference_db = 10.0 * float(
            np.log10(self._friis.rx_power(tx_power_w, self._d0))
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            loss_db = 10.0 * self._beta * np.log10(d / self._d0)
        friis = self._friis.rx_power_vector(tx_power_w, d)
        return reference_db, loss_db, friis

    def link_cache_row(
        self, tx_power_w: float, distances_m: np.ndarray
    ) -> Tuple[float, np.ndarray, np.ndarray, np.ndarray]:
        d = np.asarray(distances_m, dtype=float)
        reference_db, loss_db, friis = self._db_row(tx_power_w, d)
        return reference_db, loss_db, friis, d > self._d0

    def rx_power_from_cache(self, state: object) -> np.ndarray:
        reference_db, loss_db, friis, shadow_mask = state
        out = friis.copy()
        if self._sigma > 0:
            shadow_db = self._rng.normal(
                0.0, self._sigma, size=int(np.count_nonzero(shadow_mask))
            )
        else:
            shadow_db = 0.0
        masked_loss = (
            loss_db[shadow_mask] if isinstance(loss_db, np.ndarray) else loss_db
        )
        out[shadow_mask] = np.power(
            10.0, (reference_db - masked_loss + shadow_db) / 10.0
        )
        return out

    def rx_power_vector(
        self, tx_power_w: float, distances_m: np.ndarray
    ) -> np.ndarray:
        return self.rx_power_from_cache(
            self.link_cache_row(tx_power_w, distances_m)
        )


# -- registry entries ---------------------------------------------------------
#
# Factories take (scenario, streams) and build the model from the scenario's
# knobs, drawing any fading randomness from the named RngStreams the scalar
# era already used ("fading" for Nakagami, "shadowing" for log-normal), so a
# registry-dispatched run is bit-identical to the old if/elif dispatch.


@register("propagation", "two_ray")
def _make_two_ray(scenario, streams) -> TwoRayGround:
    """Table I's two-ray-ground model (scenario knobs: none)."""
    return TwoRayGround()


@register("propagation", "free_space")
def _make_free_space(scenario, streams) -> FreeSpace:
    """Friis free-space model (scenario knobs: none)."""
    return FreeSpace()


@register("propagation", "shadowing")
def _make_shadowing(scenario, streams) -> LogNormalShadowing:
    """Log-normal shadowing (knobs: shadowing_exponent, shadowing_sigma_db)."""
    return LogNormalShadowing(
        path_loss_exponent=scenario.shadowing_exponent,
        sigma_db=scenario.shadowing_sigma_db,
        rng=streams.stream("shadowing"),
    )


@register("propagation", "nakagami")
def _make_nakagami(scenario, streams) -> NakagamiFading:
    """Nakagami-m fading over a two-ray mean (knob: nakagami_m)."""
    return NakagamiFading(m=scenario.nakagami_m, rng=streams.stream("fading"))
