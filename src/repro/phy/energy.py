"""Per-node radio energy accounting (ns-2's EnergyModel).

ns-2 nodes carry an optional energy model that depletes a battery at
distinct transmit/receive/idle powers; VANET studies use it for
protocol-overhead comparisons (every control packet costs energy at every
hearer).  The :class:`Radio` keeps cumulative TX/RX airtime counters;
:class:`EnergyMeter` turns them into joules.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.des.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    # Imported lazily so repro.phy.tech (-> energy) stays importable
    # from repro.phy.propagation without a radio -> params cycle.
    from repro.phy.radio import Radio


@dataclasses.dataclass(frozen=True)
class EnergyParams:
    """Power draw per transceiver activity (ns-2 WaveLAN-like defaults)."""

    tx_power_w: float = 0.660
    rx_power_w: float = 0.395
    idle_power_w: float = 0.035
    initial_energy_j: float = 1000.0

    def __post_init__(self) -> None:
        if min(self.tx_power_w, self.rx_power_w, self.idle_power_w) < 0:
            raise ValueError("power draws must be >= 0")
        if self.initial_energy_j <= 0:
            raise ValueError("initial_energy_j must be > 0")


class EnergyMeter:
    """Battery bookkeeping over one radio's airtime counters.

    Attach any time; consumption is measured from the attach instant.
    """

    def __init__(
        self,
        sim: Simulator,
        radio: Radio,
        params: EnergyParams = EnergyParams(),
    ) -> None:
        self._sim = sim
        self._radio = radio
        self._params = params
        self._start_time = sim.now
        self._start_tx = radio.airtime_tx_s
        self._start_rx = radio.airtime_rx_s

    @property
    def tx_time_s(self) -> float:
        """Transmit airtime since attachment."""
        return self._radio.airtime_tx_s - self._start_tx

    @property
    def rx_time_s(self) -> float:
        """Receive airtime since attachment."""
        return self._radio.airtime_rx_s - self._start_rx

    @property
    def elapsed_s(self) -> float:
        """Wall-clock simulated seconds since attachment."""
        return self._sim.now - self._start_time

    @property
    def idle_time_s(self) -> float:
        """Elapsed time not spent transmitting or receiving.

        Clamped at zero: overlapping receptions are each charged, so the
        active time can nominally exceed the elapsed time under extreme
        contention.
        """
        return max(self.elapsed_s - self.tx_time_s - self.rx_time_s, 0.0)

    def consumed_j(self) -> float:
        """Joules consumed since attachment."""
        params = self._params
        return (
            self.tx_time_s * params.tx_power_w
            + self.rx_time_s * params.rx_power_w
            + self.idle_time_s * params.idle_power_w
        )

    def remaining_j(self) -> float:
        """Battery remaining (clamped at 0)."""
        return max(self._params.initial_energy_j - self.consumed_j(), 0.0)

    @property
    def depleted(self) -> bool:
        """True once the battery is exhausted."""
        return self.remaining_j() <= 0.0
