"""Half-duplex radio transceiver with interference and capture.

Reception semantics follow ns-2's WirelessPhy/Mac-802.11 pair:

* a frame is *detectable* when it arrives above the carrier-sense threshold
  (the channel only delivers detectable frames);
* it is *decodable* when it arrives above the receive threshold, does not
  overlap the radio's own transmissions, and is stronger than every
  overlapping signal by at least the capture ratio (10 dB by default) —
  otherwise the overlap is a collision and the frame is dropped;
* the medium is *busy* while any detectable signal is in the air or the
  radio itself is transmitting.

The MAC attaches through four callbacks: ``on_medium_busy``,
``on_medium_idle``, ``on_frame_received(frame, rx_power)`` and
``on_tx_done``.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Protocol

from repro.des.engine import Simulator
from repro.mac.frames import Frame
from repro.phy.params import PhyParams


class RadioState(enum.Enum):
    """Transceiver activity."""

    IDLE = "idle"
    RX = "rx"
    TX = "tx"


class MacCallbacks(Protocol):
    """What the radio needs from its MAC."""

    def on_medium_busy(self) -> None: ...

    def on_medium_idle(self) -> None: ...

    def on_frame_received(self, frame: Frame, rx_power_w: float) -> None: ...

    def on_tx_done(self) -> None: ...


class _Signal:
    """One in-flight arriving transmission at this radio."""

    __slots__ = ("frame", "power", "end_time", "corrupted", "max_interference")

    def __init__(self, frame: Frame, power: float, end_time: float) -> None:
        self.frame = frame
        self.power = power
        self.end_time = end_time
        self.corrupted = False
        self.max_interference = 0.0


class Radio:
    """One node's transceiver, attached to the shared :class:`Channel`."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        params: PhyParams,
        channel: "Channel",
    ) -> None:
        self._sim = sim
        self._node_id = node_id
        self._params = params
        self._channel = channel
        #: Hot-path copies of the PHY parameters the channel reads per
        #: frame (attribute access on a frozen dataclass is measurably
        #: slower than a plain instance attribute).
        self.tx_power_w = params.tx_power_w
        self.cs_threshold_w = params.cs_threshold_w
        self._rx_threshold_w = params.rx_threshold_w
        self._capture_ratio = params.capture_ratio
        self._mac: Optional[MacCallbacks] = None
        self._signals: List[_Signal] = []
        #: Power state: a disabled radio (crashed node) ignores arriving
        #: signals entirely — nothing is detectable, nothing decodable.
        self.enabled = True
        self._transmitting = False
        self._tx_end = 0.0
        #: Cumulative seconds spent transmitting (energy accounting).
        self.airtime_tx_s = 0.0
        #: Cumulative seconds of arriving signals heard while not
        #: transmitting (energy accounting; overlapping arrivals each
        #: count — the front end is demodulating throughout).
        self.airtime_rx_s = 0.0
        channel.register(self)

    # -- wiring ------------------------------------------------------------

    def attach_mac(self, mac: MacCallbacks) -> None:
        """Connect the MAC that receives this radio's callbacks."""
        self._mac = mac

    @property
    def node_id(self) -> int:
        """The owning node's identifier (also the MAC address)."""
        return self._node_id

    @property
    def params(self) -> PhyParams:
        """The radio's PHY parameter set."""
        return self._params

    @property
    def state(self) -> RadioState:
        """Current transceiver state."""
        if self._transmitting:
            return RadioState.TX
        if self._signals:
            return RadioState.RX
        return RadioState.IDLE

    def medium_busy(self) -> bool:
        """Physical carrier sense: any detectable signal, or own TX."""
        return self._transmitting or bool(self._signals)

    def link_snr_db(self, receiver_id: int, noise_floor_w: float) -> float:
        """Mean SNR (dB) of the link from this radio to ``receiver_id``.

        Delegates to the channel's slot-cached, deterministic SNR (no
        fading draw); the MAC's rate adaptation is the caller.
        """
        return self._channel.link_snr_db(
            self._node_id, receiver_id, noise_floor_w
        )

    # -- power state (fault injection) -------------------------------------

    def disable(self) -> None:
        """Power the receiver down (node crash).

        In-flight arrivals are corrupted, not removed: their
        ``_signal_end`` events are already scheduled and must find their
        signal in the list.  New arrivals are ignored at
        :meth:`signal_start` while disabled.
        """
        self.enabled = False
        for signal in self._signals:
            signal.corrupted = True

    def enable(self) -> None:
        """Power the receiver back up (node recovery)."""
        self.enabled = True

    # -- transmit path -----------------------------------------------------

    def transmit(self, frame: Frame, duration_s: float) -> None:
        """Put ``frame`` on the air for ``duration_s`` seconds.

        Half-duplex: any reception in progress is corrupted.  Raises if the
        radio is already transmitting (a MAC logic error).
        """
        if self._transmitting:
            raise RuntimeError(
                f"radio {self._node_id} is already transmitting"
            )
        was_busy = self.medium_busy()
        self._transmitting = True
        self._tx_end = self._sim.now + duration_s
        self.airtime_tx_s += duration_s
        for signal in self._signals:
            signal.corrupted = True
        if not was_busy and self._mac is not None:
            self._mac.on_medium_busy()
        self._channel.transmit(self._node_id, frame, duration_s)
        self._sim.schedule(duration_s, self._tx_done)

    def _tx_done(self) -> None:
        self._transmitting = False
        if self._mac is not None:
            self._mac.on_tx_done()
            if not self.medium_busy():
                self._mac.on_medium_idle()

    # -- receive path (driven by the channel) ------------------------------

    def signal_start(self, frame: Frame, power_w: float, duration_s: float) -> None:
        """The channel announces an arriving signal (already above CS)."""
        if not self.enabled:
            return
        was_busy = self.medium_busy()
        signal = _Signal(frame, power_w, self._sim.now + duration_s)
        if self._transmitting:
            signal.corrupted = True
        else:
            self.airtime_rx_s += duration_s
        # Mutual interference bookkeeping with every overlapping signal.
        for other in self._signals:
            other.max_interference = max(other.max_interference, power_w)
            signal.max_interference = max(signal.max_interference, other.power)
        self._signals.append(signal)
        if not was_busy and self._mac is not None:
            self._mac.on_medium_busy()
        self._sim.schedule(duration_s, self._signal_end, signal)

    def _signal_end(self, signal: _Signal) -> None:
        self._signals.remove(signal)
        decodable = (
            not signal.corrupted
            and signal.power >= self._rx_threshold_w
            and signal.power >= self._capture_ratio * signal.max_interference
        )
        if decodable and not self._transmitting and self._mac is not None:
            self._mac.on_frame_received(signal.frame, signal.power)
        if not self.medium_busy() and self._mac is not None:
            self._mac.on_medium_idle()
