"""Wireless physical layer: propagation, radios and the shared channel.

Implements the PHY of the Communication Protocol Simulator with ns-2's
default constants: 914 MHz WaveLAN-like radios, two-ray-ground propagation,
reception/carrier-sense thresholds set for 250 m / 550 m ranges (paper
Table I), and a 10 dB capture threshold.
"""

from repro.phy.propagation import (
    FreeSpace,
    LogNormalShadowing,
    NakagamiFading,
    PropagationModel,
    TwoRayGround,
)
from repro.phy.radio import Radio, RadioState
from repro.phy.channel import Channel, CachedPositionProvider
from repro.phy.energy import EnergyMeter, EnergyParams
from repro.phy.params import PhyParams

__all__ = [
    "PropagationModel",
    "FreeSpace",
    "TwoRayGround",
    "LogNormalShadowing",
    "NakagamiFading",
    "PhyParams",
    "Radio",
    "RadioState",
    "Channel",
    "CachedPositionProvider",
    "EnergyMeter",
    "EnergyParams",
]
