"""Spatial neighbor culling for the channel's receive fan-out.

At city scale (thousands of vehicles) the dense link cache rebuilds an
``N x N`` distance matrix per position slot and visits every radio per
transmission — O(N^2) work that collapses somewhere past a few hundred
nodes.  But the carrier-sense threshold already makes deliveries *local*:
a signal below it is dropped by the channel, so the receive fan-out only
ever needs the nodes within the maximum link range.  A uniform grid
(cell hash) over the lane geometry yields exactly that neighborhood in
O(1) per sender: with the cell size at least the cull radius, every node
within the radius of a sender lies in the sender's own cell or one of
its eight neighbors, so a 3 x 3 cell scan is a guaranteed superset of
the in-range nodes (nodes exactly *on* the radius or on a cell boundary
included — the containment argument uses closed inequalities
throughout).

Culling is **exact** for deterministic propagation when the cull radius
covers the maximum link range (the distance at which received power
falls to the carrier-sense threshold): every culled link would have been
dropped by the threshold filter anyway, so the delivered frame set,
received powers, propagation delays and telemetry counters are
bit-identical to the dense path — the contract the scale smoke and the
grid-vs-golden regression tests lock in.  Stochastic models (Nakagami,
log-normal shadowing) draw fading per *visited* link, so culling changes
RNG consumption: a grid run with stochastic propagation is seeded and
deterministic in its own right, but not draw-for-draw identical to the
dense run (see docs/API.md, "Spatial indexing").

Selection is declarative: ``Scenario(spatial="grid")`` resolves through
the ``spatial`` registry namespace (``"dense"`` — the default — keeps
the exact O(N^2) path), and the cell size derives from the scenario's
carrier-sense radius unless ``cull_radius_m`` overrides it.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.registry import register
from repro.util.errors import ConfigError

#: Relative offsets of the 3 x 3 cell neighborhood scanned per sender.
_NEIGHBORHOOD: Tuple[Tuple[int, int], ...] = tuple(
    (dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)
)


class UniformGridIndex:
    """Uniform-grid cell hash over the node position matrix.

    Nodes are bucketed by ``floor(position / cell_size)`` per axis;
    :meth:`candidates` returns every node in the 3 x 3 neighborhood of
    a query node's cell.  With ``cell_size_m >= cull radius`` that set
    is a superset of all nodes within the radius, and the channel's
    carrier-sense filter does the exact trimming — the index never has
    to compute a distance itself.

    Args:
        cell_size_m: grid pitch in metres (= the cull radius; larger
            cells only widen the candidate superset).
    """

    def __init__(self, cell_size_m: float) -> None:
        if cell_size_m <= 0:
            raise ConfigError(
                f"spatial cell size must be > 0 m, got {cell_size_m}"
            )
        self.cell_size_m = float(cell_size_m)
        self._cells: Dict[Tuple[int, int], np.ndarray] = {}
        self._coords: Optional[np.ndarray] = None
        # Per-cell candidate memo: every sender in one cell shares the
        # same 3 x 3 neighborhood, so the concatenation is done once per
        # occupied cell per rebuild instead of once per sender.
        self._neighborhoods: Dict[Tuple[int, int], np.ndarray] = {}

    @property
    def num_nodes(self) -> int:
        """Nodes covered by the last :meth:`rebuild` (0 before any)."""
        return 0 if self._coords is None else len(self._coords)

    @property
    def num_occupied_cells(self) -> int:
        """Non-empty grid cells after the last :meth:`rebuild`."""
        return len(self._cells)

    @property
    def mean_occupancy(self) -> float:
        """Average nodes per occupied cell (0.0 before any rebuild)."""
        if not self._cells:
            return 0.0
        return self.num_nodes / self.num_occupied_cells

    def rebuild(self, positions: np.ndarray) -> None:
        """Re-bucket every node for a new ``(N, 2)`` position matrix.

        O(N log N) (one lexsort); called once per position slot by the
        channel, in place of the dense path's O(N^2) distance matrix.
        """
        positions = np.asarray(positions, dtype=float)
        coords = np.floor(positions / self.cell_size_m).astype(np.int64)
        self._coords = coords
        cells: Dict[Tuple[int, int], np.ndarray] = {}
        if len(coords):
            order = np.lexsort((coords[:, 1], coords[:, 0]))
            sorted_coords = coords[order]
            change = np.any(np.diff(sorted_coords, axis=0) != 0, axis=1)
            starts = np.concatenate(([0], np.nonzero(change)[0] + 1))
            ends = np.concatenate((starts[1:], [len(order)]))
            for start, end in zip(starts, ends):
                key = (
                    int(sorted_coords[start, 0]),
                    int(sorted_coords[start, 1]),
                )
                cells[key] = order[start:end]
        self._cells = cells
        self._neighborhoods = {}

    def candidates(self, node: int) -> np.ndarray:
        """Indices of every node in the 3 x 3 neighborhood of ``node``.

        A superset of all nodes within ``cell_size_m`` of ``node``
        (including ``node`` itself); empty neighbor cells contribute
        nothing.  Order is unspecified — the channel re-orders through
        its registration mask, so culled and dense paths iterate
        receivers identically.
        """
        if self._coords is None:
            raise ConfigError(
                "spatial index queried before rebuild(); the channel "
                "must rebuild the index for each position slot first"
            )
        cx = int(self._coords[node, 0])
        cy = int(self._coords[node, 1])
        cached = self._neighborhoods.get((cx, cy))
        if cached is not None:
            return cached
        cells = self._cells
        chunks = [
            arr
            for arr in (
                cells.get((cx + dx, cy + dy)) for dx, dy in _NEIGHBORHOOD
            )
            if arr is not None
        ]
        if len(chunks) == 1:
            result = chunks[0]
        else:
            result = np.concatenate(chunks)
        self._neighborhoods[(cx, cy)] = result
        return result


# -- registry entries ---------------------------------------------------------
#
# Factories take the scenario and return either ``None`` (dense: the channel
# keeps its exact O(N^2) link cache) or an index object implementing
# ``rebuild(positions)`` / ``candidates(node)``.  The cull radius defaults to
# the scenario's carrier-sense range — the maximum link range by construction
# (PhyParams.for_ranges derives the CS threshold from it) — so the default
# grid configuration is always in the bit-identical regime.


def cull_radius_for(scenario) -> float:
    """The effective cull radius of a scenario (explicit or CS-derived)."""
    if scenario.cull_radius_m is not None:
        return float(scenario.cull_radius_m)
    return float(scenario.cs_range_m)


@register("spatial", "dense")
def _make_dense(scenario) -> None:
    """Exact O(N^2) link cache — no culling (scenario knobs: none)."""
    return None


@register("spatial", "grid")
def _make_grid(scenario) -> UniformGridIndex:
    """Uniform-grid culling (knob: cull_radius_m, default cs_range_m)."""
    radius = cull_radius_for(scenario)
    if radius < scenario.cs_range_m:
        raise ConfigError(
            f"cull_radius_m={radius:g} is smaller than the maximum link "
            f"range (cs_range_m={scenario.cs_range_m:g}); culling inside "
            "carrier sense would silently drop detectable links"
        )
    return UniformGridIndex(cell_size_m=radius)
