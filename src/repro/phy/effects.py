"""Composable channel effects: a deterministic per-link power stack.

The eleventh registry namespace (``effect``).  A scenario declares an
ordered list of effect specs (``Scenario.effects``, the same shape as
``faults``); :meth:`CavenetSimulation.build_effects` resolves each
through the registry and :class:`repro.phy.channel.Channel` applies
them to every link's receive power — identically on the vectorized
row-cache path, the per-frame stochastic path, and the scalar
reference path, so the PR 2/PR 6 fast paths stay bit-identical to the
slow ones.

Ordering and determinism rules (the contract third-party effects must
honour):

* Effects are applied **in stack order**, after the propagation model
  and before the channel's internal fault-degradation offset and any
  per-frame effects.  Order matters bit-for-bit: float multiplication
  is not associative across different orderings, so the canonical
  order is enforced identically on all three receive paths.
* An effect is either *static* (``per_frame = False``; a pure function
  of sender, receiver and current positions — cacheable inside the
  per-slot link rows) or *per-frame* (``per_frame = True``; may draw
  RNG per transmission).  Per-frame effects disqualify the cached
  deterministic fast rows, exactly like a stochastic propagation
  model.
* Per-frame randomness must come from named streams
  (``streams.stream(f"{name}-{sender_id}")``) so runs reproduce
  independently of worker count, and draws must happen in receiver
  registration order (the scalar path's order) — vector paths draw one
  batch for the non-sender receivers of a row, which consumes the
  generator identically.
* Returning the input array *unchanged* (same object) when the effect
  is a no-op keeps the empty-stack/default identity contract exact.

Third-party effects plug in with no ``repro.*`` edits::

    from repro.core.registry import register
    from repro.phy.effects import ChannelEffect

    @register("effect", "rain-fade")
    def make_rain(scenario, streams, name, **options):
        return RainFade(**options)
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple

import numpy as np

from repro.core.registry import register
from repro.util.errors import ConfigError


class ChannelEffect:
    """Base class: every hook is the identity.

    Static effects (``per_frame = False``) override :meth:`apply_row`
    (vector) and :meth:`apply_link` (scalar); per-frame effects
    (``per_frame = True``) override :meth:`apply_frame` and
    :meth:`apply_frame_link` instead.  Powers are linear watts; a
    receive power driven to ``0.0`` falls below every carrier-sense
    threshold, so losses surface through the existing
    ``frames_cs_dropped`` accounting with no new code paths.
    """

    #: True when the effect may differ between frames in the same slot
    #: (e.g. draws RNG per transmission).  Per-frame effects are applied
    #: at transmit time and disable the cached deterministic fast rows.
    per_frame: bool = False

    # -- static hooks (cacheable; positions are the current slot's) --------

    def apply_row(
        self,
        powers: np.ndarray,
        sender_id: int,
        sel_ids: np.ndarray,
        positions: np.ndarray,
    ) -> np.ndarray:
        """Vector hook: powers[k] is the link sender -> sel_ids[k]."""
        return powers

    def apply_link(
        self,
        power: float,
        sender_id: int,
        receiver_id: int,
        positions: np.ndarray,
    ) -> float:
        """Scalar hook: must match :meth:`apply_row` bit-for-bit."""
        return power

    # -- per-frame hooks ----------------------------------------------------

    def apply_frame(
        self, powers: np.ndarray, sender_id: int, sel_ids: np.ndarray
    ) -> np.ndarray:
        """Vector per-frame hook (one call per transmitted frame)."""
        return powers

    def apply_frame_link(
        self, power: float, sender_id: int, receiver_id: int
    ) -> float:
        """Scalar per-frame hook; one RNG draw per non-sender receiver,
        in registration order, to match :meth:`apply_frame` exactly."""
        return power


class DbOffset(ChannelEffect):
    """A flat dB attenuation on every link.

    ``offset_db`` is the loss in dB (positive attenuates).  This is
    also the primitive behind PR 5's channel-degradation fault: the
    channel owns one internal instance whose factor
    ``Channel.set_attenuation`` drives, so the fault model is now a
    thin adapter over the same effect stack.
    """

    def __init__(self, offset_db: float = 0.0) -> None:
        self.offset_db = float(offset_db)
        #: Linear multiplier; mutable so ``set_attenuation`` can drive
        #: the channel's internal fault instance directly.
        self.factor = 10.0 ** (-self.offset_db / 10.0)

    def apply_row(
        self,
        powers: np.ndarray,
        sender_id: int,
        sel_ids: np.ndarray,
        positions: np.ndarray,
    ) -> np.ndarray:
        if self.factor == 1.0:
            return powers
        return powers * self.factor

    def apply_link(
        self,
        power: float,
        sender_id: int,
        receiver_id: int,
        positions: np.ndarray,
    ) -> float:
        if self.factor == 1.0:
            return power
        return power * self.factor


class RandomLoss(ChannelEffect):
    """Independent per-frame, per-link Bernoulli loss.

    Each delivery attempt is erased (receive power forced to ``0.0``)
    with probability ``loss_p``.  Randomness comes from one named
    stream per *sender* (``f"{name}-{sender_id}"``), created lazily and
    cached, so adding the effect never perturbs any other stream and
    trials reproduce regardless of sweep worker count.  Draw order is
    the receiver registration order; the vector path draws one batch
    of ``mask.sum()`` uniforms, which consumes the generator exactly
    like the scalar path's one-draw-per-receiver loop.
    """

    per_frame = True

    def __init__(self, streams: Any, name: str, loss_p: float) -> None:
        if not 0.0 <= loss_p <= 1.0:
            raise ConfigError(
                f"random-loss effect: loss_p must be in [0, 1], got "
                f"{loss_p!r}"
            )
        self.loss_p = float(loss_p)
        self._streams = streams
        self._name = name
        self._rngs: Dict[int, np.random.Generator] = {}

    def _rng(self, sender_id: int) -> np.random.Generator:
        rng = self._rngs.get(sender_id)
        if rng is None:
            rng = self._streams.stream(f"{self._name}-{sender_id}")
            self._rngs[sender_id] = rng
        return rng

    def apply_frame(
        self, powers: np.ndarray, sender_id: int, sel_ids: np.ndarray
    ) -> np.ndarray:
        if self.loss_p == 0.0:
            return powers
        mask = sel_ids != sender_id
        u = self._rng(sender_id).random(int(mask.sum()))
        out = powers.copy()
        # np.where keeps survivors' powers bit-identical (no float op).
        out[mask] = np.where(u < self.loss_p, 0.0, powers[mask])
        return out

    def apply_frame_link(
        self, power: float, sender_id: int, receiver_id: int
    ) -> float:
        if self.loss_p == 0.0:
            return power
        if self._rng(sender_id).random() < self.loss_p:
            return 0.0
        return power


class Obstacle:
    """A convex-or-not polygon that blocks radio line of sight."""

    def __init__(self, vertices: Sequence[Sequence[float]]) -> None:
        self.vertices: Tuple[Tuple[float, float], ...] = tuple(
            (float(x), float(y)) for x, y in vertices
        )
        if len(self.vertices) < 3:
            raise ConfigError(
                f"obstacle polygon needs >= 3 vertices, got "
                f"{len(self.vertices)}"
            )

    @staticmethod
    def _orient(
        ax: float, ay: float, bx: float, by: float, cx: float, cy: float
    ) -> float:
        return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)

    def contains(self, x: float, y: float) -> bool:
        """Even-odd ray cast (boundary points count as inside enough:
        a vehicle on the wall is shadowed)."""
        inside = False
        pts = self.vertices
        j = len(pts) - 1
        for i in range(len(pts)):
            xi, yi = pts[i]
            xj, yj = pts[j]
            if (yi > y) != (yj > y):
                x_cross = xi + (y - yi) * (xj - xi) / (yj - yi)
                if x < x_cross:
                    inside = not inside
            j = i
        return inside

    def blocks(self, ax: float, ay: float, bx: float, by: float) -> bool:
        """True when segment a->b crosses an edge or an endpoint is
        inside the polygon."""
        if self.contains(ax, ay) or self.contains(bx, by):
            return True
        pts = self.vertices
        j = len(pts) - 1
        for i in range(len(pts)):
            cx, cy = pts[j]
            dx, dy = pts[i]
            d1 = self._orient(ax, ay, bx, by, cx, cy)
            d2 = self._orient(ax, ay, bx, by, dx, dy)
            d3 = self._orient(cx, cy, dx, dy, ax, ay)
            d4 = self._orient(cx, cy, dx, dy, bx, by)
            if ((d1 > 0) != (d2 > 0)) and ((d3 > 0) != (d4 > 0)):
                return True
            j = i
        return False


class ObstacleShadowing(ChannelEffect):
    """Geometric shadowing: links crossing any polygon lose
    ``extra_loss_db``.

    Static (a pure function of the slot's positions), so it composes
    with the PR 6 spatial grid and bakes into the cached deterministic
    rows.  Unshadowed links pass through with their power object
    untouched — their event streams are bit-identical to a run without
    the effect.
    """

    def __init__(
        self, obstacles: Sequence[Obstacle], extra_loss_db: float
    ) -> None:
        if extra_loss_db < 0:
            raise ConfigError(
                f"obstacle effect: extra_loss_db must be >= 0, got "
                f"{extra_loss_db!r}"
            )
        self.obstacles = tuple(obstacles)
        self.extra_loss_db = float(extra_loss_db)
        self.factor = 10.0 ** (-self.extra_loss_db / 10.0)

    def _blocked(
        self, ax: float, ay: float, bx: float, by: float
    ) -> bool:
        for obstacle in self.obstacles:
            if obstacle.blocks(ax, ay, bx, by):
                return True
        return False

    def apply_row(
        self,
        powers: np.ndarray,
        sender_id: int,
        sel_ids: np.ndarray,
        positions: np.ndarray,
    ) -> np.ndarray:
        if self.factor == 1.0 or not self.obstacles:
            return powers
        ax, ay = positions[sender_id]
        out = None
        for k, rid in enumerate(sel_ids.tolist()):
            if rid == sender_id:
                continue
            bx, by = positions[rid]
            if self._blocked(ax, ay, bx, by):
                if out is None:
                    out = powers.copy()
                # Same float op as the scalar path: power * factor.
                out[k] = out[k] * self.factor
        return powers if out is None else out

    def apply_link(
        self,
        power: float,
        sender_id: int,
        receiver_id: int,
        positions: np.ndarray,
    ) -> float:
        if self.factor == 1.0 or not self.obstacles:
            return power
        ax, ay = positions[sender_id]
        bx, by = positions[receiver_id]
        if self._blocked(ax, ay, bx, by):
            return power * self.factor
        return power


# -- builtin factories ------------------------------------------------------
#
# Contract: ``factory(scenario, streams, name, **options) ->
# ChannelEffect``; ``name`` is the per-effect stream prefix
# (``"effect-{index}"``) handed out by ``build_effects``.


@register("effect", "db-offset")
def _make_db_offset(
    scenario: Any, streams: Any, name: str, offset_db: float = 0.0
) -> DbOffset:
    """Flat attenuation in dB (positive values attenuate)."""
    return DbOffset(offset_db=float(offset_db))


@register("effect", "random-loss")
def _make_random_loss(
    scenario: Any, streams: Any, name: str, loss_p: float = 0.0
) -> RandomLoss:
    """Bernoulli per-frame loss with probability ``loss_p``."""
    return RandomLoss(streams, name, float(loss_p))


@register("effect", "obstacle")
def _make_obstacle(
    scenario: Any,
    streams: Any,
    name: str,
    polygons: Sequence[Sequence[Sequence[float]]] = (),
    extra_loss_db: float = 20.0,
) -> ObstacleShadowing:
    """Polygonal obstacles shadowing any link that crosses them.

    ``polygons`` is a list of vertex lists (``[[x, y], ...]``), the
    JSON-friendly shape a scenario file carries.
    """
    try:
        obstacles = tuple(Obstacle(vertices) for vertices in polygons)
    except (TypeError, ValueError) as exc:
        raise ConfigError(
            f"obstacle effect: polygons must be lists of [x, y] vertex "
            f"lists: {exc}"
        ) from None
    return ObstacleShadowing(obstacles, float(extra_loss_db))
