"""PHY parameter set with ns-2 WaveLAN defaults.

The thresholds reproduce the classic ns-2 values: with 0.28183815 W transmit
power and two-ray-ground propagation at 1.5 m antenna height, the receive
threshold of 3.652e-10 W corresponds to a 250 m transmission range and the
carrier-sense threshold of 1.559e-11 W to a 550 m sensing range — the
ranges of paper Table I.
"""

from __future__ import annotations

import dataclasses

from repro.phy.propagation import PropagationModel, TwoRayGround


@dataclasses.dataclass(frozen=True)
class PhyParams:
    """Radio-front-end parameters.

    Attributes:
        tx_power_w: transmit power (ns-2 default 0.28183815 W).
        rx_threshold_w: minimum power for successful decoding.
        cs_threshold_w: minimum power for carrier sensing (medium busy).
        capture_ratio: power ratio (linear) above which the stronger of two
            overlapping frames survives (ns-2 CPThresh = 10 dB -> 10.0).
        frequency_hz: carrier frequency.
    """

    tx_power_w: float = 0.28183815
    rx_threshold_w: float = 3.652e-10
    cs_threshold_w: float = 1.559e-11
    capture_ratio: float = 10.0
    frequency_hz: float = 914e6

    def __post_init__(self) -> None:
        if self.tx_power_w <= 0:
            raise ValueError(f"tx_power_w must be > 0, got {self.tx_power_w}")
        if not 0 < self.rx_threshold_w:
            raise ValueError("rx_threshold_w must be > 0")
        if not 0 < self.cs_threshold_w <= self.rx_threshold_w:
            raise ValueError(
                "cs_threshold_w must be in (0, rx_threshold_w]: carrier "
                "sensing is more sensitive than decoding"
            )
        if self.capture_ratio < 1.0:
            raise ValueError(
                f"capture_ratio must be >= 1, got {self.capture_ratio}"
            )

    @classmethod
    def for_ranges(
        cls,
        model: PropagationModel,
        tx_range_m: float = 250.0,
        cs_range_m: float = 550.0,
        tx_power_w: float = 0.28183815,
        capture_ratio: float = 10.0,
    ) -> "PhyParams":
        """Derive thresholds so the given model yields the given ranges.

        This is how ns-2 users tune RXThresh with the ``threshold`` utility;
        it keeps Table I's "transmission range 250 m" true under any
        propagation model (used by the propagation-model ablation).

        Thresholds come from the model's *deterministic* mean/median power
        (:meth:`~repro.phy.propagation.PropagationModel.mean_rx_power`), so
        passing a stochastic model is well-defined: the range is the
        distance at which the mean/median — not one random draw — crosses
        the threshold, and no randomness is consumed.
        """
        if cs_range_m < tx_range_m:
            raise ValueError(
                f"cs_range_m ({cs_range_m}) must be >= tx_range_m ({tx_range_m})"
            )
        rx_threshold = model.mean_rx_power(tx_power_w, tx_range_m)
        cs_threshold = model.mean_rx_power(tx_power_w, cs_range_m)
        return cls(
            tx_power_w=tx_power_w,
            rx_threshold_w=rx_threshold,
            cs_threshold_w=cs_threshold,
            capture_ratio=capture_ratio,
        )


def default_phy() -> PhyParams:
    """Table I defaults: two-ray ground, 250 m TX / 550 m CS ranges."""
    return PhyParams.for_ranges(TwoRayGround(), 250.0, 550.0)
