"""Chaos harness: inject *real* worker failures into a trial campaign.

The crash-safety machinery (retries, journal resume, telemetry) was built
against synthetic unit-test failures; this module lets a test or smoke
script subject it to the genuine article — a worker SIGKILLed before it
reports, a worker that hangs past its timeout, a result payload that
detonates during unpickling in the parent — while the campaign's *final
results stay bit-identical* to an undisturbed run, because every
sabotaged attempt still computes the true value first and the retry
re-runs the same pure trial function.

Usage (test-only; production campaigns never construct one)::

    chaos = ChaosMonkey(kill_on={1}, hang_on={2}, corrupt_on={3})
    runner = TrialRunner(max_workers=4, trial_timeout_s=5.0, chaos=chaos)
    outcomes = runner.run(specs)   # identical values, noisier telemetry

Sabotage applies to first attempts only, so ``max_attempts >= 2``
recovers every trial; ``kill_all_attempts_on`` kills *every* attempt of
a trial — the way to manufacture a journalled failure for resume tests.
"""

from __future__ import annotations

import os
import pickle
import signal
import time
from typing import Any, Callable, Dict, Iterable, Optional, Tuple

#: Sabotage modes, in the order chaos checks them.  ``mute`` (heartbeat
#: suppression) only differs from ``hang`` under the supervised backend,
#: which additionally disables the worker's heartbeat thread for muted
#: attempts — the monitor must then classify the worker as *hung* (no
#: heartbeats) rather than merely *slow* (heartbeats but no result).
MODES = ("sigkill", "hang", "corrupt", "mute")


def _explode() -> None:
    """Unpickling payload for the ``corrupt`` mode: raises in the parent."""
    raise pickle.UnpicklingError("chaos: corrupted result payload")


class _CorruptPayload:
    """Pickles cleanly in the worker, explodes when unpickled."""

    def __reduce__(self):
        return (_explode, ())


def sabotage(fn: Callable[..., Any], args, kwargs, mode: str) -> Any:
    """Worker-side wrapper: run the real trial, then fail in ``mode``.

    Module-level (not a closure) so it pickles under spawn as well as
    fork.  The true value is computed before the failure, which is what
    makes the bit-identity assertion meaningful: the retry must
    reproduce exactly what the killed worker had computed.
    """
    value = fn(*args, **kwargs)
    if mode == "sigkill":
        # Death without cleanup: the parent sees the pipe close with no
        # result, exactly like an OOM kill or segfault.
        os.kill(os.getpid(), signal.SIGKILL)
    elif mode in ("hang", "mute"):
        # Never return: the parent's supervision (timeout, lease cap, or
        # missed-heartbeat detection for "mute") must terminate us.
        while True:  # pragma: no cover - killed from outside
            time.sleep(3600.0)
    elif mode == "corrupt":
        return _CorruptPayload()
    return value


class ChaosMonkey:
    """Deterministic sabotage plan over trial indices.

    Args:
        kill_on: trial indices whose first attempt is SIGKILLed after
            computing its result.
        hang_on: indices whose first attempt hangs forever (requires the
            runner to enforce ``trial_timeout_s``).
        corrupt_on: indices whose first attempt returns a payload that
            raises while unpickling in the parent.
        kill_all_attempts_on: indices whose *every* attempt is SIGKILLed
            — the trial ends as a journalled failure.
        mute_on: indices whose first attempt goes silent after computing
            — under the supervised backend its heartbeats are suppressed
            too, so the monitor must SIGKILL it as *hung* and reclaim
            the lease (elsewhere it behaves like ``hang_on``).
        contend_on: indices whose trial starts under a short-lived lease
            held by a foreign owner ("chaos-ghost").  This is
            parent-side sabotage consumed only by the supervised
            backend: it must wait the lease out, reclaim it with the
            next attempt number, and still produce the identical
            result exactly once.

    Indices refer to positions in the spec sequence handed to
    ``TrialRunner.run`` (after journal-resume filtering).
    """

    def __init__(
        self,
        kill_on: Iterable[int] = (),
        hang_on: Iterable[int] = (),
        corrupt_on: Iterable[int] = (),
        kill_all_attempts_on: Iterable[int] = (),
        mute_on: Iterable[int] = (),
        contend_on: Iterable[int] = (),
    ) -> None:
        self.kill_on = frozenset(kill_on)
        self.hang_on = frozenset(hang_on)
        self.corrupt_on = frozenset(corrupt_on)
        self.kill_all_attempts_on = frozenset(kill_all_attempts_on)
        self.mute_on = frozenset(mute_on)
        self.contend_on = frozenset(contend_on)

    def mode_for(self, index: int, attempt: int) -> Optional[str]:
        """The sabotage mode for this attempt, or ``None`` to run clean."""
        if index in self.kill_all_attempts_on:
            return "sigkill"
        if attempt > 1:
            return None
        if index in self.kill_on:
            return "sigkill"
        if index in self.hang_on:
            return "hang"
        if index in self.corrupt_on:
            return "corrupt"
        if index in self.mute_on:
            return "mute"
        return None

    def contends_for(self, index: int) -> bool:
        """Whether this trial starts under a foreign (ghost) lease."""
        return index in self.contend_on

    def wrap(
        self, fn: Callable[..., Any], args, kwargs, mode: str
    ) -> Tuple[Callable[..., Any], Tuple[Any, ...], Dict[str, Any]]:
        """The ``(fn, args, kwargs)`` triple that runs ``fn`` sabotaged."""
        return sabotage, (fn, args, kwargs, mode), {}
